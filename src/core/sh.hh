/**
 * @file
 * Successive halving (SH) and the paper's modified successive
 * halving (MSH, Sec. 3.3): survivor selection by terminal value (TV)
 * augmented with an area-under-curve (AUC) convergence-rate quota.
 *
 * Survivors H^k = H_TV^(k-p)  UNION  H_AUC^(p), with the AUC picks
 * drawn from candidates not already promoted by TV. Setting p = 0
 * recovers default SH.
 */

#ifndef UNICO_CORE_SH_HH
#define UNICO_CORE_SH_HH

#include <cstddef>
#include <vector>

namespace unico::core {

/** Parameters of (modified) successive halving. */
struct ShConfig
{
    int bMax = 300;      ///< maximum SW search budget per candidate
    double eta = 2.0;    ///< budget growth per round
    double kFrac = 0.5;  ///< survivor fraction per round
    double pFrac = 0.15; ///< AUC-promoted fraction (0 = default SH)
};

/**
 * Select the indices of the survivors of one SH/MSH round.
 *
 * @param tv  terminal values (smaller is better), one per candidate
 * @param auc convergence AUC (larger is better), one per candidate
 * @param k   total survivors
 * @param p   how many survivors are promoted by AUC (p <= k); AUC
 *            picks skip candidates already promoted by TV
 * @return indices of survivors (TV picks first, then AUC picks)
 */
std::vector<std::size_t>
selectSurvivors(const std::vector<double> &tv,
                const std::vector<double> &auc, std::size_t k,
                std::size_t p);

/**
 * The cumulative budget after round @p j (1-based) of @p rounds
 * total rounds: b_j = bMax * eta^{-(rounds - j)}, clamped to at
 * least @p min_budget.
 */
int roundBudget(const ShConfig &cfg, int j, int rounds, int min_budget);

/** Number of SH rounds for a batch of @p n candidates:
 *  ceil(log2(n)), at least 1. */
int shRounds(std::size_t n);

/**
 * Convergence AUC of a best-so-far loss history (Fig. 4b), computed
 * on log10-compressed losses so that infeasibility penalty values do
 * not dominate the area.
 */
double convergenceAuc(const std::vector<double> &best_loss_history);

} // namespace unico::core

#endif // UNICO_CORE_SH_HH
