/**
 * @file
 * The bi-level co-optimization driver (Algorithm 1).
 *
 * One configurable driver implements UNICO and the paper's
 * comparison points as mode combinations:
 *
 *   UNICO            = MSH budgets + HighFidelity update + R metric
 *   MSH + Champion   = ablation of Sec. 4.5
 *   SH  + Champion   = ablation of Sec. 4.5
 *   MOBOHB-like      = SH budgets + update with all samples
 *   HASCO-like       = full budget for every sample + Champion update
 *                      ("ChampionUpdate without SH", Sec. 4.5)
 */

#ifndef UNICO_CORE_DRIVER_HH
#define UNICO_CORE_DRIVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "accel/design_space.hh"
#include "accel/ppa.hh"
#include "common/eval_clock.hh"
#include "core/env.hh"
#include "core/sh.hh"
#include "moo/pareto.hh"

namespace unico::core {

/** SW search budget allocation policy across a HW batch. */
enum class BudgetMode {
    FullBudget, ///< every candidate receives bMax (no early stopping)
    SH,         ///< default successive halving (TV only)
    MSH,        ///< modified successive halving (TV + AUC quota)
    Hyperband,  ///< SH brackets of varying aggressiveness (BOHB-style)
};

/** Surrogate-model update policy. */
enum class UpdateMode {
    All,          ///< train on every sample (BOHB-style)
    HighFidelity, ///< High Fidelity Update Rule (UUL)
    Champion,     ///< train only on each batch's best sample
};

/** Human-readable mode names. */
const char *toString(BudgetMode mode);
const char *toString(UpdateMode mode);

/** Full driver configuration. */
struct DriverConfig
{
    std::string name = "unico";       ///< label used in reports
    int batchSize = 30;               ///< N, HW samples per MOBO trial
    int maxIter = 10;                 ///< MaxIter MOBO trials
    ShConfig sh;                      ///< bMax / eta / kFrac / pFrac
    BudgetMode budgetMode = BudgetMode::MSH;
    UpdateMode updateMode = UpdateMode::HighFidelity;
    bool useRobustness = true;        ///< append R as 4th objective
    double alpha = 0.05;              ///< sub-optimal quantile for R
    /** Fraction of HW samples drawn at random instead of by the
     *  acquisition (BOHB-style exploration; MOBOHB uses 1/3). */
    double randomFraction = 0.0;
    /** Use per-dimension ARD lengthscales in the surrogate. */
    bool ardSurrogate = false;
    std::size_t workers = 8;          ///< virtual worker pool size
    /** Host threads actually used to run SW-search jobs of one SH
     *  round concurrently (Sec. 3.5's parallel implementation).
     *  Results are bit-identical to the serial execution: each job
     *  owns its MappingRun and its seeded RNG. */
    std::size_t realThreads = 1;
    int minBudgetPerRound = 8;        ///< floor on per-round budget
    std::uint64_t seed = 1;

    /** The canonical UNICO configuration. */
    static DriverConfig unico();
    /** HASCO-like baseline: full budget + champion update, no R. */
    static DriverConfig hascoLike();
    /** MOBOHB-like baseline: default SH + update-with-all, no R. */
    static DriverConfig mobohbLike();
    /** Ablation: default SH + champion update, no R. */
    static DriverConfig shChampion();
    /** Ablation: modified SH + champion update, no R. */
    static DriverConfig mshChampion();
};

/** One fully evaluated hardware sample. */
struct HwEvalRecord
{
    accel::HwPoint hw;
    accel::Ppa ppa;            ///< PPA at the best mapping found
    double sensitivity = 0.0;  ///< R (0 when robustness disabled)
    int budgetSpent = 0;       ///< SW evaluations granted by SH
    bool constraintOk = false; ///< feasible and within power/area
    bool fullySearched = false; ///< survived to the full b_max budget
    bool highFidelity = false; ///< passed the surrogate update rule
    int iteration = 0;         ///< MOBO trial that produced it
};

/** Pareto-front snapshot along the search-cost axis. */
struct TracePoint
{
    double hours;                        ///< virtual search cost
    std::vector<moo::Objectives> front;  ///< (lat, pow, area) points
};

/** Outcome of one co-search. */
struct CoSearchResult
{
    std::vector<HwEvalRecord> records; ///< every HW evaluated
    moo::ParetoFront front;  ///< constrained (lat, pow, area) front;
                             ///< entry ids index into records
    std::vector<TracePoint> trace; ///< per-iteration snapshots
    double totalHours = 0.0;
    std::uint64_t evaluations = 0;

    /** Record index of the min-Euclidean-distance Pareto design
     *  (Sec. 4.2); requires a non-empty front. */
    std::size_t minDistanceRecord() const;
};

/** The bi-level co-optimizer. */
class CoOptimizer
{
  public:
    CoOptimizer(CoSearchEnv &env, DriverConfig cfg);

    /** Execute Algorithm 1 and return the search outcome. */
    CoSearchResult run();

  private:
    CoSearchEnv &env_;
    DriverConfig cfg_;
};

} // namespace unico::core

#endif // UNICO_CORE_DRIVER_HH
