/**
 * @file
 * The bi-level co-optimization driver (Algorithm 1).
 *
 * One configurable driver implements UNICO and the paper's
 * comparison points as mode combinations:
 *
 *   UNICO            = MSH budgets + HighFidelity update + R metric
 *   MSH + Champion   = ablation of Sec. 4.5
 *   SH  + Champion   = ablation of Sec. 4.5
 *   MOBOHB-like      = SH budgets + update with all samples
 *   HASCO-like       = full budget for every sample + Champion update
 *                      ("ChampionUpdate without SH", Sec. 4.5)
 */

#ifndef UNICO_CORE_DRIVER_HH
#define UNICO_CORE_DRIVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/design_space.hh"
#include "accel/ppa.hh"
#include "common/cancel.hh"
#include "common/eval_clock.hh"
#include "core/env.hh"
#include "core/job_context.hh"
#include "core/progress.hh"
#include "core/sh.hh"
#include "moo/pareto.hh"

namespace unico::common {
class ThreadPool;
class Watchdog;
} // namespace unico::common

namespace unico::core {

class MoboHwSampler;
class HighFidelitySelector;

/** SW search budget allocation policy across a HW batch. */
enum class BudgetMode {
    FullBudget, ///< every candidate receives bMax (no early stopping)
    SH,         ///< default successive halving (TV only)
    MSH,        ///< modified successive halving (TV + AUC quota)
    Hyperband,  ///< SH brackets of varying aggressiveness (BOHB-style)
};

/** Surrogate-model update policy. */
enum class UpdateMode {
    All,          ///< train on every sample (BOHB-style)
    HighFidelity, ///< High Fidelity Update Rule (UUL)
    Champion,     ///< train only on each batch's best sample
};

/** Human-readable mode names. */
const char *toString(BudgetMode mode);
const char *toString(UpdateMode mode);

/** Inverse of toString(); throws std::invalid_argument on an
 *  unknown name. Round-trip: fromString(toString(m)) == m. */
BudgetMode budgetModeFromString(const std::string &name);
UpdateMode updateModeFromString(const std::string &name);

/**
 * Recovery policy of the fault-tolerant evaluation supervisor.
 *
 * Evaluations classified Transient or Timeout (common::EvalStatus)
 * are retried with capped exponential backoff, every retry and
 * backoff charged to the EvalClock as real search cost. After
 * degradeAfterFaults faults on the same candidate the supervisor
 * drops the run one fidelity rung (cycle-level simulator ->
 * analytical model). A candidate that exhausts its retries, or hits
 * a Fatal fault, falls back to penalty PPA so the SH round and the
 * MOBO archive proceed with N-f survivors instead of aborting.
 */
struct RecoveryConfig
{
    /** Retries per candidate per SH round before penalty fallback. */
    int maxRetries = 3;
    /** Backoff after the i-th retry: base * 2^(i-1), capped. */
    double backoffBaseSeconds = 5.0;
    double backoffCapSeconds = 60.0;
    /** Faults on one candidate before degrading its PPA engine. */
    int degradeAfterFaults = 2;
};

/** Per-category fault counts observed by the supervisor. */
struct FaultStats
{
    std::uint64_t transient = 0;    ///< crashes / garbage (retryable)
    std::uint64_t timeout = 0;      ///< deadline expiries (virtual or
                                    ///< wall-clock watchdog)
    std::uint64_t corrupt = 0;      ///< invalid PPA detected
    std::uint64_t fatal = 0;        ///< non-retryable failures
    std::uint64_t retries = 0;      ///< retry attempts issued
    std::uint64_t degradations = 0; ///< engine-downgrade events
    std::uint64_t penalized = 0;    ///< candidates on penalty PPA
    /** MOBO trials whose GP fit failed (Cholesky jitter exhausted or
     *  non-finite posterior) and fell back to space-filling
     *  candidate selection instead of aborting. */
    std::uint64_t gpFallbacks = 0;
    /** Corrupted/truncated checkpoint generations skipped while
     *  resuming from the rotation window. */
    std::uint64_t checkpointRecoveries = 0;
    /** Transport-layer faults the evaluation fleet absorbed (worker
     *  crashes, hangs, torn/corrupt frames) plus its recovery
     *  actions. Diagnostics only — transport recovery is transparent
     *  to the search, so these never enter total(), checkpoints, or
     *  the trajectory CSVs. */
    common::TransportStats transport;

    /** Total faults across categories. */
    std::uint64_t
    total() const
    {
        return transient + timeout + corrupt + fatal;
    }

    /** Accumulate another counter set. */
    void merge(const FaultStats &other);
};

/** One-line digest ("faults: transient=2 timeout=1 ..."). */
std::string toString(const FaultStats &stats);

/** Full driver configuration. */
struct DriverConfig
{
    std::string name = "unico";       ///< label used in reports
    int batchSize = 30;               ///< N, HW samples per MOBO trial
    int maxIter = 10;                 ///< MaxIter MOBO trials
    ShConfig sh;                      ///< bMax / eta / kFrac / pFrac
    BudgetMode budgetMode = BudgetMode::MSH;
    UpdateMode updateMode = UpdateMode::HighFidelity;
    bool useRobustness = true;        ///< append R as 4th objective
    double alpha = 0.05;              ///< sub-optimal quantile for R
    /** Fraction of HW samples drawn at random instead of by the
     *  acquisition (BOHB-style exploration; MOBOHB uses 1/3). */
    double randomFraction = 0.0;
    /** Use per-dimension ARD lengthscales in the surrogate. */
    bool ardSurrogate = false;
    std::size_t workers = 8;          ///< virtual worker pool size
    /** Host threads actually used to run SW-search jobs of one SH
     *  round concurrently (Sec. 3.5's parallel implementation).
     *  Results are bit-identical to the serial execution: each job
     *  owns its MappingRun and its seeded RNG. */
    std::size_t realThreads = 1;
    int minBudgetPerRound = 8;        ///< floor on per-round budget
    std::uint64_t seed = 1;
    RecoveryConfig recovery;          ///< fault-recovery policy
    /** Checkpoint file written at trial boundaries (empty =
     *  checkpointing disabled). Writes are CRC-trailed, fsynced and
     *  atomically renamed. */
    std::string checkpointPath;
    /** Resume from the checkpoint rotation window if any generation
     *  exists; the checkpoint's config fingerprint must match this
     *  configuration. */
    bool resumeFromCheckpoint = false;
    /** Auto-checkpoint every N completed trials (>= 1). */
    int checkpointEvery = 1;
    /** Rotated checkpoint generations kept on disk (path, path.1,
     *  ...); resume falls back past generations that fail CRC/parse
     *  validation. <= 1 keeps only the newest. */
    int checkpointKeep = 3;
    /** Whole-run wall-clock deadline in real seconds (0 = none);
     *  enforced by a watchdog thread independent of the virtual
     *  EvalClock. On expiry the run drains, checkpoints and returns
     *  with interrupted state, exactly like a shutdown signal. */
    double wallDeadlineSeconds = 0.0;
    /** Per-evaluation-attempt wall-clock deadline in real seconds
     *  (0 = none). Expiry cancels the attempt cooperatively and is
     *  classified EvalStatus::Timeout (retry/degrade/penalty). */
    double evalWallDeadlineSeconds = 0.0;
    /** External cancellation (e.g. the process-wide shutdown token
     *  cancelled by SIGINT/SIGTERM handlers); polled at iteration and
     *  evaluation-chunk boundaries. Not owned. */
    const common::CancelToken *cancel = nullptr;

    /** The canonical UNICO configuration. */
    static DriverConfig unico();
    /** HASCO-like baseline: full budget + champion update, no R. */
    static DriverConfig hascoLike();
    /** MOBOHB-like baseline: default SH + update-with-all, no R. */
    static DriverConfig mobohbLike();
    /** Ablation: default SH + champion update, no R. */
    static DriverConfig shChampion();
    /** Ablation: modified SH + champion update, no R. */
    static DriverConfig mshChampion();
};

/** One fully evaluated hardware sample. */
struct HwEvalRecord
{
    accel::HwPoint hw;
    accel::Ppa ppa;            ///< PPA at the best mapping found
    double sensitivity = 0.0;  ///< R (0 when robustness disabled)
    int budgetSpent = 0;       ///< SW evaluations granted by SH
    bool constraintOk = false; ///< feasible and within power/area
    bool fullySearched = false; ///< survived to the full b_max budget
    bool highFidelity = false; ///< passed the surrogate update rule
    int iteration = 0;         ///< MOBO trial that produced it
    int faults = 0;            ///< evaluation faults on this candidate
    bool degraded = false;     ///< PPA engine was downgraded
    bool penalized = false;    ///< retries exhausted -> penalty PPA
};

/** Pareto-front snapshot along the search-cost axis. */
struct TracePoint
{
    double hours;                        ///< virtual search cost
    std::vector<moo::Objectives> front;  ///< (lat, pow, area) points
};

/** Outcome of one co-search. */
struct CoSearchResult
{
    std::vector<HwEvalRecord> records; ///< every HW evaluated
    moo::ParetoFront front;  ///< constrained (lat, pow, area) front;
                             ///< entry ids index into records
    std::vector<TracePoint> trace; ///< per-iteration snapshots
    double totalHours = 0.0;
    std::uint64_t evaluations = 0;
    FaultStats faults;       ///< supervisor-observed fault counts
    /** Evaluation-cache counters (all zero when caching is off).
     *  Diagnostics only: never serialized into checkpoints and never
     *  part of the records/front CSVs, which stay byte-identical
     *  with the cache on or off. */
    common::CacheStats cacheStats;
    /** Surrogate-screening counters (disabled/zero without the
     *  learned fast-path). Diagnostics only, like cacheStats: never
     *  serialized into checkpoints or the records/front/trace CSVs,
     *  which stay byte-identical with screening off. */
    surrogate::SurrogateStats surrogateStats;
    /** True when the run wound down early (shutdown signal or
     *  wall-clock deadline) after draining in-flight work and writing
     *  a resumable checkpoint; partial-trial state is rolled back so
     *  a resume reproduces the uninterrupted run bit-for-bit. */
    bool interrupted = false;
    /** Why the run stopped early ("signal", "wall-deadline"). */
    std::string interruptReason;
    /** Non-fatal incidents worth surfacing (checkpoint save failures,
     *  corrupted-generation fallbacks, GP-fit degradations). Not
     *  serialized; transient to the producing process. */
    std::vector<std::string> warnings;

    /** Record index of the min-Euclidean-distance Pareto design
     *  (Sec. 4.2); requires a non-empty front. */
    std::size_t minDistanceRecord() const;
};

/**
 * The named algorithm presets the CLI and the job manager share
 * ("unico", "hasco", "mobohb", "sh", "msh" — the DriverConfig
 * factory of the same flavour). Throws std::invalid_argument on an
 * unknown name so both front-ends reject specs identically.
 */
DriverConfig driverConfigForAlgo(const std::string &algo);

/**
 * The bi-level co-optimizer in resumable stepped form.
 *
 * start() binds the environment (and restores a checkpoint when the
 * configuration asks for one); each step() executes exactly one MOBO
 * trial and returns whether more work remains; result() seals the
 * outcome (final checkpoint, totals, diagnostics snapshots). The
 * monolithic CoOptimizer::run() is now a thin loop over this class.
 *
 * Per-job isolation: with an external JobContext the search charges
 * the job's EvalClock and polls the job's CancelToken at every
 * cooperative boundary (trial, SH round, evaluation chunk), so any
 * number of CoSearch instances can run concurrently in one process
 * — each on its own thread — without sharing mutable state beyond
 * the read-mostly evaluation cache their environments may point at.
 *
 * Progress: life-cycle milestones (trial completed, incumbent
 * changed, Pareto-front delta, checkpoint written) are emitted
 * through the optional ProgressObserver; events are observations
 * only and never alter the trajectory.
 */
class CoSearch
{
  public:
    /** @param ctx per-job state; nullptr uses an internal context.
     *  @param observer progress sink; nullptr disables emission.
     *  Both, when given, must outlive the CoSearch. */
    CoSearch(CoSearchEnv &env, DriverConfig cfg,
             JobContext *ctx = nullptr,
             ProgressObserver *observer = nullptr);
    ~CoSearch();

    CoSearch(const CoSearch &) = delete;
    CoSearch &operator=(const CoSearch &) = delete;

    /** Bind, resume, arm deadlines; idempotent. May throw
     *  CheckpointMismatchError on a foreign checkpoint. */
    void start();

    /** Run one MOBO trial. Returns true while more trials remain
     *  and the search has not been interrupted. */
    bool step();

    /** Trials completed so far (including restored ones). */
    int completedIterations() const { return completedIters_; }

    /** True once every trial ran or the search was interrupted. */
    bool finished() const;

    /** Seal and return the outcome (final checkpoint, totals);
     *  idempotent after the first call. */
    CoSearchResult result();

  private:
    bool pollInterrupt();
    void runTrial();
    void saveCheckpoint(int completed);
    void emit(ProgressEvent event);
    void emitIncumbentIfChanged();

    CoSearchEnv &env_;
    DriverConfig cfg_;
    JobContext ownedCtx_;
    JobContext *ctx_;
    ProgressObserver *observer_;

    std::size_t numObj_ = 3;
    std::unique_ptr<MoboHwSampler> sampler_;
    std::unique_ptr<HighFidelitySelector> selector_;
    std::vector<double> championW_;
    int minBudget_ = 1;
    StackIdentity stackId_;
    common::CancelToken runToken_;
    std::unique_ptr<common::ThreadPool> roundPool_;
    std::unique_ptr<common::Watchdog> watchdog_;
    std::uint64_t runWatchId_ = 0;
    CoSearchResult result_;
    int startIter_ = 0;
    int completedIters_ = 0;
    int lastSavedIter_ = 0;
    int iter_ = 0;
    std::size_t lastIncumbent_ = static_cast<std::size_t>(-1);
    bool started_ = false;
    bool sealed_ = false;
};

/** The bi-level co-optimizer (one-shot facade over CoSearch). */
class CoOptimizer
{
  public:
    CoOptimizer(CoSearchEnv &env, DriverConfig cfg,
                JobContext *ctx = nullptr,
                ProgressObserver *observer = nullptr);

    /** Execute Algorithm 1 and return the search outcome. */
    CoSearchResult run();

  private:
    CoSearch search_;
};

} // namespace unico::core

#endif // UNICO_CORE_DRIVER_HH
