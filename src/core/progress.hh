/**
 * @file
 * Typed progress events of a stepped co-search.
 *
 * The stepped driver (core::CoSearch) reports its life cycle through
 * an observer interface instead of writing to any particular sink:
 * one event when the search starts, one per completed MOBO trial,
 * one whenever the recommended incumbent design changes, one per
 * Pareto-front delta, one per durable checkpoint, and a final
 * summary. The same events feed every consumer — the CLI's
 * --progress-every JSON-lines output, the job manager's status
 * ledger, and the HTTP front-end's newline-delimited JSON streams —
 * so a script watching the CLI and a client watching the server see
 * the same taxonomy.
 *
 * Events are pure observations: emitting (or dropping) them cannot
 * change the search trajectory, and they carry only deterministic
 * quantities (virtual hours, counts), never wall-clock timestamps.
 */

#ifndef UNICO_CORE_PROGRESS_HH
#define UNICO_CORE_PROGRESS_HH

#include <cstdint>
#include <string>

#include "common/json.hh"

namespace unico::core {

/** What a ProgressEvent reports. */
enum class ProgressKind {
    Started,           ///< start() finished binding (after resume)
    TrialCompleted,    ///< one MOBO trial fully assessed
    IncumbentChanged,  ///< the recommended design changed
    FrontDelta,        ///< Pareto archive gained entries this trial
    CheckpointWritten, ///< a durable checkpoint generation landed
    Finished,          ///< result() sealed the search outcome
};

/** Wire/display name of an event kind ("trial", "incumbent", ...). */
const char *toString(ProgressKind kind);

/** One progress observation. */
struct ProgressEvent
{
    ProgressKind kind = ProgressKind::TrialCompleted;
    /** Job id under a manager (0 when driven standalone/CLI). */
    std::uint64_t job = 0;
    /** MOBO trials completed so far. */
    int iteration = 0;
    /** Configured trial budget (maxIter). */
    int maxIterations = 0;
    /** Virtual search cost so far (EvalClock hours). */
    double hours = 0.0;
    /** SW evaluations charged so far. */
    std::uint64_t evaluations = 0;
    /** Pareto-archive size after this event. */
    std::size_t frontSize = 0;
    /** Entries the archive gained this trial (FrontDelta). */
    int frontDelta = 0;
    /** Evaluated-record count so far. */
    std::size_t records = 0;
    /** Incumbent description (IncumbentChanged) / checkpoint path
     *  (CheckpointWritten) / interrupt reason (Finished). */
    std::string detail;
    /** Incumbent PPA (IncumbentChanged, Finished with a front). */
    double bestLatencyMs = 0.0;
    double bestPowerMw = 0.0;
    double bestAreaMm2 = 0.0;
    /** Finished only: the run wound down early. */
    bool interrupted = false;
};

/** Serialize an event as a compact JSON object (one NDJSON line when
 *  dumped without indentation). */
common::Json toJson(const ProgressEvent &event);

/** Observer interface; callbacks arrive on the searching thread. */
class ProgressObserver
{
  public:
    virtual ~ProgressObserver() = default;

    virtual void onProgress(const ProgressEvent &event) = 0;
};

} // namespace unico::core

#endif // UNICO_CORE_PROGRESS_HH
