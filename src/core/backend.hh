/**
 * @file
 * Named backend registry: one place where evaluation stacks
 * (platform binding = HW design space + mapping search + PPA engine)
 * are registered, looked up and constructed.
 *
 * The CLI, every bench binary and the tests select their platform
 * through this registry ("spatial", "ascend"), so adding a backend
 * is one registerBackend() call — no per-tool plumbing. Each backend
 * owns its option vocabulary: parseBackendOptions() maps the shared
 * CLI flags onto BackendOptions and rejects flags that do not apply
 * to the chosen backend with a typed BackendError.
 */

#ifndef UNICO_CORE_BACKEND_HH
#define UNICO_CORE_BACKEND_HH

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/ppa.hh"
#include "accel/spatial.hh"
#include "common/cancel.hh"
#include "common/cli.hh"
#include "core/env.hh"
#include "mapping/engine.hh"
#include "workload/network.hh"

namespace unico::common {
class LazyThreadPool;
} // namespace unico::common

namespace unico::core {

/** Typed failure of backend lookup or option parsing. */
class BackendError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Backend-agnostic construction options. Each backend consumes the
 * fields it understands and its option parser rejects CLI flags
 * that would silently be ignored.
 */
struct BackendOptions
{
    /** Power scenario (spatial backend). */
    accel::Scenario scenario = accel::Scenario::Edge;
    /** Mapping-search engine family (spatial backend). */
    mapping::EngineKind engine = mapping::EngineKind::Annealing;
    /** Chip area envelope in mm^2 (ascend backend). */
    double areaBudgetMm2 = 200.0;
    /** Dominant unique layer shapes kept per network. */
    std::size_t maxShapesPerNetwork = 5;
    /** Shared evaluation cache; nullptr disables memoization. */
    accel::EvalCache *cache = nullptr;
    /** Learned surrogate screening context; nullptr (or a disabled
     *  context) keeps the exact-only byte-identical path. */
    surrogate::SurrogateContext *surrogate = nullptr;
    /** Shared cold-evaluation pool handle; non-null asks backends
     *  that support it (spatial) to batch evaluation-independent
     *  candidate blocks across it. Trajectories stay byte-identical
     *  to serial. Lazy for fork-safety under the evaluation fleet.
     *  Must differ from any pool whose jobs construct or step runs
     *  of the resulting env (nested-wait deadlock). */
    common::LazyThreadPool *evalPool = nullptr;
    /** Per-job cancellation token; forwarded into the env so every
     *  MappingRun it creates can return early once the owning job is
     *  cancelled. nullptr = non-cancellable runs (historical
     *  behavior, and bit-identical trajectories either way). */
    const common::CancelToken *cancel = nullptr;
};

/** Constructs a ready-to-search environment for a workload list. */
using BackendFactory = std::function<std::unique_ptr<CoSearchEnv>(
    std::vector<workload::Network> networks, const BackendOptions &opt)>;

/** Maps shared CLI flags onto BackendOptions; throws BackendError on
 *  a malformed value or a flag foreign to the backend. */
using BackendOptionParser =
    std::function<BackendOptions(const common::CliArgs &args)>;

/** One registered backend. */
struct BackendInfo
{
    std::string description; ///< one-line summary for --help output
    BackendFactory factory;
    BackendOptionParser parseOptions;
};

/**
 * Register (or replace) a backend under @p name. The built-in
 * backends ("spatial", "ascend") are registered on first use of any
 * registry call; user backends may be added at any time.
 */
void registerBackend(const std::string &name, BackendInfo info);

/** Whether @p name is a registered backend. */
bool isBackendRegistered(const std::string &name);

/** All registered backend names, sorted. */
std::vector<std::string> backendNames();

/** Lookup; throws BackendError (listing known names) when absent. */
const BackendInfo &backendInfo(const std::string &name);

/** Construct backend @p name over @p networks. */
std::unique_ptr<CoSearchEnv>
makeBackendEnv(const std::string &name,
               std::vector<workload::Network> networks,
               const BackendOptions &opt);

/**
 * Parse the per-backend options of @p name from CLI flags
 * (--scenario / --engine / --area-budget / --max-shapes). Throws
 * BackendError for an unknown backend, a malformed value, or a flag
 * the chosen backend does not support.
 */
BackendOptions parseBackendOptions(const std::string &name,
                                   const common::CliArgs &args);

} // namespace unico::core

#endif // UNICO_CORE_BACKEND_HH
