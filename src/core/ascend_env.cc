#include "core/ascend_env.hh"

#include <cassert>
#include <sstream>

#include "camodel/search.hh"
#include "core/layered_run.hh"

namespace unico::core {

namespace {

/**
 * Ascend backend binding for the shared layered run: per-layer
 * searches are depth-first buffer-fusion sweeps over the cycle-level
 * simulator, whose virtual cost is evaluation-dependent — the policy
 * charges it from inside the evaluators (fixedEvalSeconds() < 0).
 */
class AscendRunPolicy final : public LayeredRunPolicy
{
  public:
    AscendRunPolicy(const std::vector<workload::WeightedOp> &layers,
                    const std::vector<camodel::CubeMappingSpace> &spaces,
                    const camodel::CycleAccurateModel &model,
                    accel::CubeHwConfig hw, accel::EvalCache *cache,
                    surrogate::SurrogateContext *surrogate)
        : layers_(layers), spaces_(spaces), model_(model), hw_(hw),
          cache_(cache), surrogate_(surrogate), screens_(layers.size()),
          preps_(layers.size()), degradedPreps_(layers.size())
    {
    }

    std::unique_ptr<LayerSearch>
    startLayer(std::size_t layer, std::uint64_t seed) override
    {
        const workload::TensorOp &op = layers_[layer].op;
        // Candidate-invariant query contexts, one per rung (the
        // degraded rung's coarser tech yields a distinct context
        // fingerprint, so the rungs never share cache entries).
        // Built lazily per layer and amortized over every candidate;
        // the degraded rung's context is only built once a run
        // actually degrades.
        if (preps_[layer] == nullptr)
            preps_[layer] = std::make_unique<camodel::PreparedCubeQuery>(
                model_.prepare(op, hw_));
        auto evaluator = [this, layer, &op](const camodel::CubeMapping &m) {
            // Degradation ladder: the cycle-level model is the
            // default; after repeated faults the supervisor drops
            // this run onto the coarse (analytical-fidelity) rung
            // which charges analytical-scale virtual cost.
            const camodel::CycleAccurateModel &engine =
                degraded_ ? degradedModel_ : model_;
            if (degraded_ && degradedPreps_[layer] == nullptr)
                degradedPreps_[layer] =
                    std::make_unique<camodel::PreparedCubeQuery>(
                        degradedModel_.prepare(op, hw_));
            const camodel::PreparedCubeQuery &prep =
                degraded_ ? *degradedPreps_[layer] : *preps_[layer];
            const double fixed_seconds =
                degraded_ ? camodel::CycleAccurateModel::
                                nominalDegradedEvalSeconds()
                          : -1.0;
            accel::Ppa ppa;
            if (cache_ != nullptr) {
                // Below the fault layer: FaultyRun decorates the
                // MappingRun, so only clean results reach here.
                double seconds = 0.0;
                ppa = engine.evaluateCached(prep, m, *cache_, &seconds,
                                            fixed_seconds);
                charge(seconds);
            } else {
                camodel::SimStats stats;
                ppa = engine.evaluate(prep, m, &stats);
                charge(fixed_seconds >= 0.0
                           ? fixed_seconds
                           : model_.nominalEvalSeconds(stats));
            }
            mapping::MappingEval eval;
            eval.ppa = ppa;
            eval.loss = ppa.feasible ? ppa.latencyMs : 1e12;
            return eval;
        };
        // Screening sits above the evaluator (and thus above the
        // cache + charge()): screened-out candidates cost no virtual
        // seconds and never touch the cache. One screen per layer,
        // trained run-locally on whatever exact rung is active.
        if (screens_[layer] == nullptr)
            screens_[layer] = surrogate::makeCubeScreen(
                surrogate_, op, hw_, preps_[layer]->context);
        return std::make_unique<
            LayerSearchAdapter<camodel::CubeSearchRun>>(
            std::make_unique<camodel::CubeSearchRun>(
                spaces_[layer],
                camodel::screeningEvaluator(screens_[layer].get(),
                                            std::move(evaluator)),
                seed));
    }

    double areaMm2() const override { return model_.areaMm2(hw_); }

    bool
    degradeToAnalytical() override
    {
        if (degraded_)
            return false;
        degradedModel_ = model_.degraded();
        degraded_ = true;
        return true;
    }

  private:
    const std::vector<workload::WeightedOp> &layers_;
    const std::vector<camodel::CubeMappingSpace> &spaces_;
    const camodel::CycleAccurateModel &model_;
    camodel::CycleAccurateModel degradedModel_;
    accel::CubeHwConfig hw_;
    accel::EvalCache *cache_ = nullptr;
    surrogate::SurrogateContext *surrogate_ = nullptr;
    std::vector<std::unique_ptr<camodel::CubeCandidateScreen>> screens_;
    std::vector<std::unique_ptr<camodel::PreparedCubeQuery>> preps_;
    std::vector<std::unique_ptr<camodel::PreparedCubeQuery>> degradedPreps_;
    bool degraded_ = false;
};

} // namespace

AscendEnv::AscendEnv(std::vector<workload::Network> networks,
                     AscendEnvOptions opt)
    : opt_(opt), model_(opt.tech),
      layers_(collectDominantLayers(networks, opt.maxShapesPerNetwork))
{
    assert(!networks.empty());
    mapSpaces_.reserve(layers_.size());
    for (const auto &wop : layers_)
        mapSpaces_.emplace_back(wop.op);
}

const accel::DesignSpace &
AscendEnv::hwSpace() const
{
    return space_.space();
}

std::unique_ptr<MappingRun>
AscendEnv::createRun(const accel::HwPoint &h, std::uint64_t seed) const
{
    return std::make_unique<LayeredMappingRun>(
        layers_,
        std::make_unique<AscendRunPolicy>(layers_, mapSpaces_, model_,
                                          space_.decode(h), opt_.cache,
                                          opt_.surrogate),
        seed, opt_.cancel);
}

std::string
AscendEnv::describeHw(const accel::HwPoint &h) const
{
    return space_.decode(h).describe();
}

std::string
AscendEnv::scenarioName() const
{
    // The Ascend scenario is the edge-device area envelope.
    std::ostringstream oss;
    oss << "area" << opt_.areaBudgetMm2;
    return oss.str();
}

std::uint64_t
AscendEnv::workloadDigest() const
{
    return layersDigest(layers_);
}

std::optional<accel::HwPoint>
AscendEnv::expertDefault() const
{
    return space_.encodeDefault();
}

} // namespace unico::core
