#include "core/ascend_env.hh"

#include <cassert>
#include <cmath>

#include "camodel/search.hh"
#include "core/robustness.hh"

namespace unico::core {

namespace {

constexpr double kUnmappedLatencyMs = 1e7;

/** Multi-layer run over the cycle-level simulator. */
class AscendMappingRun : public MappingRun
{
  public:
    AscendMappingRun(const std::vector<workload::WeightedOp> &layers,
                     const std::vector<camodel::CubeMappingSpace> &spaces,
                     const camodel::CycleAccurateModel &model,
                     accel::CubeHwConfig hw, std::uint64_t seed,
                     accel::EvalCache *cache)
        : layers_(layers), model_(model), hw_(hw), cache_(cache)
    {
        common::Rng seeder(seed);
        runs_.reserve(layers_.size());
        for (std::size_t l = 0; l < layers_.size(); ++l) {
            const workload::TensorOp &op = layers_[l].op;
            auto evaluator = [this, &op](const camodel::CubeMapping &m) {
                // Degradation ladder: the cycle-level model is the
                // default; after repeated faults the supervisor drops
                // this run onto the coarse (analytical-fidelity) rung
                // which charges analytical-scale virtual cost. The
                // degraded model has a distinct tech fingerprint, so
                // the rungs never share cache entries.
                const camodel::CycleAccurateModel &engine =
                    degraded_ ? degradedModel_ : model_;
                const double fixed_seconds =
                    degraded_ ? camodel::CycleAccurateModel::
                                    nominalDegradedEvalSeconds()
                              : -1.0;
                accel::Ppa ppa;
                if (cache_ != nullptr) {
                    // Below the fault layer: FaultyRun decorates the
                    // MappingRun, so only clean results reach here.
                    double seconds = 0.0;
                    ppa = engine.evaluateCached(op, hw_, m, *cache_,
                                                &seconds, fixed_seconds);
                    chargedSeconds_ += seconds;
                } else {
                    camodel::SimStats stats;
                    ppa = engine.evaluate(op, hw_, m, &stats);
                    chargedSeconds_ +=
                        fixed_seconds >= 0.0
                            ? fixed_seconds
                            : model_.nominalEvalSeconds(stats);
                }
                mapping::MappingEval eval;
                eval.ppa = ppa;
                eval.loss = ppa.feasible ? ppa.latencyMs : 1e12;
                return eval;
            };
            runs_.push_back(std::make_unique<camodel::CubeSearchRun>(
                spaces[l], evaluator, seeder.next()));
        }
    }

    void
    step(int sweeps) override
    {
        // One budget unit is a sweep: one simulator query per layer.
        for (int i = 0; i < sweeps; ++i) {
            ++cursor_;
            for (auto &run : runs_)
                run->step(1);
            lossHistory_.push_back(networkLoss());
        }
    }

    int spent() const override { return static_cast<int>(cursor_); }

    accel::Ppa
    bestPpa() const override
    {
        double latency = 0.0;
        double energy = 0.0;
        for (std::size_t l = 0; l < runs_.size(); ++l) {
            const auto &eval = runs_[l]->bestEval();
            if (runs_[l]->spent() == 0 || !eval.ppa.feasible)
                return accel::Ppa::infeasible();
            const double count = static_cast<double>(layers_[l].count);
            latency += count * eval.ppa.latencyMs;
            energy += count * eval.ppa.energyMj;
        }
        accel::Ppa ppa;
        ppa.latencyMs = latency;
        ppa.energyMj = energy;
        ppa.powerMw = latency > 0.0 ? energy / latency * 1000.0 : 0.0;
        ppa.areaMm2 = model_.areaMm2(hw_);
        ppa.feasible = true;
        return ppa;
    }

    const std::vector<double> &
    bestLossHistory() const override
    {
        return lossHistory_;
    }

    double
    sensitivity(double alpha) const override
    {
        double total_w = 0.0;
        double acc = 0.0;
        for (std::size_t l = 0; l < runs_.size(); ++l) {
            const double w = static_cast<double>(layers_[l].count) *
                             static_cast<double>(layers_[l].op.macs());
            acc += w * computeSensitivity(runs_[l]->samples(), alpha);
            total_w += w;
        }
        return total_w > 0.0 ? acc / total_w : 0.0;
    }

    double chargedSeconds() const override { return chargedSeconds_; }

    bool
    degradeToAnalytical() override
    {
        if (degraded_)
            return false;
        degradedModel_ = model_.degraded();
        degraded_ = true;
        return true;
    }

  private:
    double
    networkLoss() const
    {
        double total = 0.0;
        for (std::size_t l = 0; l < runs_.size(); ++l) {
            const double count = static_cast<double>(layers_[l].count);
            if (runs_[l]->spent() == 0) {
                total += count * kUnmappedLatencyMs;
            } else {
                total += count *
                         std::min(runs_[l]->bestLossHistory().back(),
                                  kUnmappedLatencyMs);
            }
        }
        return total;
    }

    const std::vector<workload::WeightedOp> &layers_;
    const camodel::CycleAccurateModel &model_;
    camodel::CycleAccurateModel degradedModel_;
    accel::CubeHwConfig hw_;
    accel::EvalCache *cache_ = nullptr;
    std::vector<std::unique_ptr<camodel::CubeSearchRun>> runs_;
    std::vector<double> lossHistory_;
    std::size_t cursor_ = 0;
    double chargedSeconds_ = 0.0;
    bool degraded_ = false;
};

} // namespace

AscendEnv::AscendEnv(std::vector<workload::Network> networks,
                     AscendEnvOptions opt)
    : opt_(opt), model_(opt.tech)
{
    assert(!networks.empty());
    for (const auto &net : networks) {
        for (auto &wop : net.dominantOps(opt_.maxShapesPerNetwork))
            layers_.push_back(std::move(wop));
    }
    mapSpaces_.reserve(layers_.size());
    for (const auto &wop : layers_)
        mapSpaces_.emplace_back(wop.op);
}

const accel::DesignSpace &
AscendEnv::hwSpace() const
{
    return space_.space();
}

std::unique_ptr<MappingRun>
AscendEnv::createRun(const accel::HwPoint &h, std::uint64_t seed) const
{
    return std::make_unique<AscendMappingRun>(layers_, mapSpaces_, model_,
                                              space_.decode(h), seed,
                                              opt_.cache);
}

std::string
AscendEnv::describeHw(const accel::HwPoint &h) const
{
    return space_.decode(h).describe();
}

accel::Ppa
AscendEnv::evaluateConfig(const accel::HwPoint &h, int budget,
                          std::uint64_t seed) const
{
    auto run = createRun(h, seed);
    run->step(budget);
    return run->bestPpa();
}

} // namespace unico::core
