/**
 * @file
 * Per-job execution context.
 *
 * The historical driver stack assumed "process == run": one global
 * shutdown token, one EvalClock, one checkpoint prefix. A JobContext
 * bundles exactly the state that must be private to one co-search
 * job so several jobs can coexist in a single process — each with
 * its own seeded trajectory, virtual-time ledger, cancellation token
 * and checkpoint file namespace — while sharing only read-mostly
 * resources (the sharded evaluation cache, the backend registry).
 *
 * The stepped driver (core::CoSearch) accepts an optional JobContext;
 * when given one it charges the job's clock, polls the job's cancel
 * token at every cooperative boundary, and stamps the job's stack
 * identity after environment binding. The job manager registers each
 * context's token with the scoped shutdown fan-out so one SIGINT
 * drains every live job to a valid checkpoint.
 */

#ifndef UNICO_CORE_JOB_CONTEXT_HH
#define UNICO_CORE_JOB_CONTEXT_HH

#include <cstdint>
#include <string>

#include "common/cancel.hh"
#include "common/eval_clock.hh"

namespace unico::core {

class CoSearchEnv;

/**
 * Identity triple of a live evaluation stack, in the exact string
 * form stamped into checkpoints.
 */
struct StackIdentity
{
    std::string backend;
    std::string scenario;
    std::string workloadDigest;

    /** Snapshot an environment's identity (digest in hex). */
    static StackIdentity of(const CoSearchEnv &env);
};

/** State private to one co-search job. */
struct JobContext
{
    /** Run-level seed the job's whole trajectory derives from. */
    std::uint64_t seed = 1;
    /** The job's virtual-time ledger. Re-dimensioned by
     *  CoSearch::start() to the configured worker-pool size. */
    common::EvalClock clock;
    /** The job's cancellation token: cancelled by the job manager
     *  (cancel endpoint) or by the shutdown fan-out (SIGINT). */
    common::CancelToken cancel;
    /** File namespace of the job's durable artifacts (checkpoint
     *  generations, CSV exports): "<prefix>.ck.json",
     *  "<prefix>_records.csv", ... Empty disables both. */
    std::string checkpointPrefix;
    /** Identity of the evaluation stack the job binds; filled by
     *  CoSearch::start() once the environment is known. */
    StackIdentity stack;
};

} // namespace unico::core

#endif // UNICO_CORE_JOB_CONTEXT_HH
