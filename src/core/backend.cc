#include "core/backend.hh"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>

#include "core/ascend_env.hh"
#include "core/spatial_env.hh"

namespace unico::core {

namespace {

std::size_t
parseMaxShapes(const common::CliArgs &args)
{
    const std::int64_t v = args.getInt("max-shapes", 5);
    if (v <= 0)
        throw BackendError("--max-shapes must be positive");
    return static_cast<std::size_t>(v);
}

/** Reject a flag the chosen backend would silently ignore. */
void
rejectForeignFlag(const common::CliArgs &args, const char *flag,
                  const char *backend)
{
    if (args.has(flag))
        throw BackendError(std::string("backend '") + backend +
                           "' does not support --" + flag);
}

BackendOptions
parseSpatialOptions(const common::CliArgs &args)
{
    BackendOptions opt;
    opt.maxShapesPerNetwork = parseMaxShapes(args);
    const std::string scenario = args.getString("scenario", "edge");
    if (scenario == "edge")
        opt.scenario = accel::Scenario::Edge;
    else if (scenario == "cloud")
        opt.scenario = accel::Scenario::Cloud;
    else
        throw BackendError("unknown scenario '" + scenario +
                           "' (expected edge|cloud)");
    const std::string engine = args.getString("engine", "annealing");
    if (engine == "random")
        opt.engine = mapping::EngineKind::Random;
    else if (engine == "annealing")
        opt.engine = mapping::EngineKind::Annealing;
    else if (engine == "genetic")
        opt.engine = mapping::EngineKind::Genetic;
    else
        throw BackendError("unknown engine '" + engine +
                           "' (expected random|annealing|genetic)");
    rejectForeignFlag(args, "area-budget", "spatial");
    return opt;
}

BackendOptions
parseAscendOptions(const common::CliArgs &args)
{
    BackendOptions opt;
    opt.maxShapesPerNetwork = parseMaxShapes(args);
    opt.areaBudgetMm2 = args.getDouble("area-budget", 200.0);
    if (!(opt.areaBudgetMm2 > 0.0))
        throw BackendError("--area-budget must be positive");
    rejectForeignFlag(args, "scenario", "ascend");
    rejectForeignFlag(args, "engine", "ascend");
    return opt;
}

std::unique_ptr<CoSearchEnv>
makeSpatial(std::vector<workload::Network> networks,
            const BackendOptions &opt)
{
    SpatialEnvOptions env_opt;
    env_opt.scenario = opt.scenario;
    env_opt.engine = opt.engine;
    env_opt.maxShapesPerNetwork = opt.maxShapesPerNetwork;
    env_opt.cache = opt.cache;
    env_opt.surrogate = opt.surrogate;
    env_opt.evalPool = opt.evalPool;
    env_opt.cancel = opt.cancel;
    return std::make_unique<SpatialEnv>(std::move(networks), env_opt);
}

std::unique_ptr<CoSearchEnv>
makeAscend(std::vector<workload::Network> networks,
           const BackendOptions &opt)
{
    AscendEnvOptions env_opt;
    env_opt.areaBudgetMm2 = opt.areaBudgetMm2;
    env_opt.maxShapesPerNetwork = opt.maxShapesPerNetwork;
    env_opt.cache = opt.cache;
    env_opt.surrogate = opt.surrogate;
    env_opt.cancel = opt.cancel;
    return std::make_unique<AscendEnv>(std::move(networks), env_opt);
}

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

/**
 * The registry itself. Built-ins are installed by the initializer of
 * the function-local static, so every entry point (lookup, listing,
 * registration) sees them without a separate init call and without
 * static-initialization-order hazards.
 */
std::map<std::string, BackendInfo> &
registry()
{
    static std::map<std::string, BackendInfo> reg = [] {
        std::map<std::string, BackendInfo> r;
        r.emplace("spatial",
                  BackendInfo{"spatial template + analytical "
                              "(MAESTRO-style) cost model",
                              makeSpatial, parseSpatialOptions});
        r.emplace("ascend",
                  BackendInfo{"Ascend-like cube core + cycle-level "
                              "simulator",
                              makeAscend, parseAscendOptions});
        return r;
    }();
    return reg;
}

} // namespace

void
registerBackend(const std::string &name, BackendInfo info)
{
    if (name.empty())
        throw BackendError("backend name must be non-empty");
    if (!info.factory)
        throw BackendError("backend '" + name + "' needs a factory");
    std::lock_guard<std::mutex> lock(registryMutex());
    registry()[name] = std::move(info);
}

bool
isBackendRegistered(const std::string &name)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    return registry().count(name) > 0;
}

std::vector<std::string>
backendNames()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto &[name, info] : registry())
        names.push_back(name);
    return names;
}

const BackendInfo &
backendInfo(const std::string &name)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    const auto it = registry().find(name);
    if (it == registry().end()) {
        std::ostringstream oss;
        oss << "unknown backend '" << name << "' (registered:";
        for (const auto &[known, info] : registry())
            oss << " " << known;
        oss << ")";
        throw BackendError(oss.str());
    }
    return it->second;
}

std::unique_ptr<CoSearchEnv>
makeBackendEnv(const std::string &name,
               std::vector<workload::Network> networks,
               const BackendOptions &opt)
{
    return backendInfo(name).factory(std::move(networks), opt);
}

BackendOptions
parseBackendOptions(const std::string &name, const common::CliArgs &args)
{
    const BackendInfo &info = backendInfo(name);
    if (!info.parseOptions) {
        BackendOptions opt;
        opt.maxShapesPerNetwork = parseMaxShapes(args);
        return opt;
    }
    return info.parseOptions(args);
}

} // namespace unico::core
