#include "core/layered_run.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "common/shard_cache.hh"
#include "core/robustness.hh"

namespace unico::core {

LayeredMappingRun::LayeredMappingRun(
    const std::vector<workload::WeightedOp> &layers,
    std::unique_ptr<LayeredRunPolicy> policy, std::uint64_t seed,
    const common::CancelToken *cancel)
    : layers_(layers), policy_(std::move(policy)), cancel_(cancel)
{
    policy_->chargeSink_ = &chargedSeconds_;
    common::Rng seeder(seed);
    runs_.reserve(layers_.size());
    for (std::size_t l = 0; l < layers_.size(); ++l)
        runs_.push_back(policy_->startLayer(l, seeder.next()));
}

void
LayeredMappingRun::step(int sweeps)
{
    // One budget unit is a *sweep*: one mapping evaluation per unique
    // layer (the paper's budget b counts per-operator search steps).
    // Fixed-cost backends are charged here, right after each layer
    // step; evaluation-dependent backends charge from inside their
    // evaluators via LayeredRunPolicy::charge().
    const double fixed = policy_->fixedEvalSeconds();
    for (int i = 0; i < sweeps; ++i) {
        // Sweep-boundary cancellation: abandon *before* starting a
        // sweep so completed sweeps are never torn. The driver's
        // supervisor re-polls the same token before classifying the
        // resulting "no progress" as a fault.
        if (cancel_ != nullptr && cancel_->cancelled())
            return;
        ++cursor_;
        for (auto &run : runs_) {
            run->step(1);
            if (fixed >= 0.0)
                chargedSeconds_ += fixed;
        }
        lossHistory_.push_back(networkLoss());
    }
}

int
LayeredMappingRun::spent() const
{
    return static_cast<int>(cursor_);
}

accel::Ppa
LayeredMappingRun::bestPpa() const
{
    double latency = 0.0;
    double energy = 0.0;
    for (std::size_t l = 0; l < runs_.size(); ++l) {
        const auto &eval = runs_[l]->bestEval();
        if (runs_[l]->spent() == 0 || !eval.ppa.feasible)
            return accel::Ppa::infeasible();
        const double count = static_cast<double>(layers_[l].count);
        latency += count * eval.ppa.latencyMs;
        energy += count * eval.ppa.energyMj;
    }
    // A degenerate aggregate (zero or non-finite latency) has no
    // meaningful power figure; report infeasible instead of a
    // latency=0 / power=0 point that would dominate the whole front.
    if (!(latency > 0.0) || !std::isfinite(latency))
        return accel::Ppa::infeasible();
    accel::Ppa ppa;
    ppa.latencyMs = latency;
    ppa.energyMj = energy;
    // mJ / ms == W; report mW.
    ppa.powerMw = energy / latency * 1000.0;
    ppa.areaMm2 = policy_->areaMm2();
    ppa.feasible = true;
    return ppa;
}

const std::vector<double> &
LayeredMappingRun::bestLossHistory() const
{
    return lossHistory_;
}

double
LayeredMappingRun::sensitivity(double alpha) const
{
    // Count*MACs-weighted mean of per-layer sensitivities: every
    // layer's mapping landscape contributes in proportion to its
    // share of network execution.
    double total_w = 0.0;
    double acc = 0.0;
    for (std::size_t l = 0; l < runs_.size(); ++l) {
        const double w = static_cast<double>(layers_[l].count) *
                         static_cast<double>(layers_[l].op.macs());
        acc += w * computeSensitivity(runs_[l]->samples(), alpha);
        total_w += w;
    }
    return total_w > 0.0 ? acc / total_w : 0.0;
}

double
LayeredMappingRun::chargedSeconds() const
{
    return chargedSeconds_;
}

bool
LayeredMappingRun::degradeToAnalytical()
{
    return policy_->degradeToAnalytical();
}

double
LayeredMappingRun::networkLoss() const
{
    double total = 0.0;
    for (std::size_t l = 0; l < runs_.size(); ++l) {
        const double count = static_cast<double>(layers_[l].count);
        if (runs_[l]->spent() == 0) {
            total += count * kUnmappedLatencyMs;
        } else {
            total += count * std::min(runs_[l]->bestLossHistory().back(),
                                      kUnmappedLatencyMs);
        }
    }
    return total;
}

std::vector<workload::WeightedOp>
collectDominantLayers(const std::vector<workload::Network> &networks,
                      std::size_t maxShapesPerNetwork)
{
    std::vector<workload::WeightedOp> layers;
    for (const auto &net : networks) {
        for (auto &wop : net.dominantOps(maxShapesPerNetwork))
            layers.push_back(std::move(wop));
    }
    return layers;
}

std::uint64_t
layersDigest(const std::vector<workload::WeightedOp> &layers)
{
    common::FingerprintBuilder fb;
    fb.add(static_cast<std::uint64_t>(layers.size()));
    for (const auto &wop : layers) {
        fb.add(wop.op.fingerprint());
        fb.add(wop.count);
    }
    const common::Fingerprint fp = fb.fingerprint();
    return fp.hi ^ fp.lo;
}

} // namespace unico::core
