#include "core/driver.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include <memory>

#include "common/status.hh"
#include "common/thread_pool.hh"
#include "common/watchdog.hh"
#include "core/checkpoint.hh"
#include "core/fidelity.hh"
#include "core/mobo.hh"
#include "core/robustness.hh"
#include "moo/scalarize.hh"

namespace unico::core {

void
FaultStats::merge(const FaultStats &other)
{
    transient += other.transient;
    timeout += other.timeout;
    corrupt += other.corrupt;
    fatal += other.fatal;
    retries += other.retries;
    degradations += other.degradations;
    penalized += other.penalized;
    gpFallbacks += other.gpFallbacks;
    checkpointRecoveries += other.checkpointRecoveries;
    transport.merge(other.transport);
}

std::string
toString(const FaultStats &stats)
{
    std::ostringstream oss;
    oss << "faults: transient=" << stats.transient
        << " timeout=" << stats.timeout << " corrupt=" << stats.corrupt
        << " fatal=" << stats.fatal << " retries=" << stats.retries
        << " degradations=" << stats.degradations
        << " penalized=" << stats.penalized
        << " gp_fallbacks=" << stats.gpFallbacks
        << " ckpt_recoveries=" << stats.checkpointRecoveries;
    if (stats.transport.total() > 0 ||
        stats.transport.workerRespawns > 0 ||
        stats.transport.workSteals > 0 ||
        stats.transport.inprocFallbacks > 0) {
        oss << " | transport: crashes=" << stats.transport.workerCrashes
            << " timeouts=" << stats.transport.requestTimeouts
            << " (hangs=" << stats.transport.workerHangs << ")"
            << " torn=" << stats.transport.tornFrames
            << " corrupt=" << stats.transport.corruptFrames
            << " respawns=" << stats.transport.workerRespawns
            << " steals=" << stats.transport.workSteals
            << " local_fallbacks=" << stats.transport.inprocFallbacks;
        if (stats.transport.connectionsLost > 0 ||
            stats.transport.connectFailures > 0 ||
            stats.transport.staleFrames > 0 ||
            stats.transport.reconnects > 0) {
            oss << " conn_lost=" << stats.transport.connectionsLost
                << " conn_fail=" << stats.transport.connectFailures
                << " stale=" << stats.transport.staleFrames
                << " reconnects=" << stats.transport.reconnects;
        }
    }
    return oss.str();
}

const char *
toString(BudgetMode mode)
{
    switch (mode) {
      case BudgetMode::FullBudget: return "full";
      case BudgetMode::SH: return "sh";
      case BudgetMode::MSH: return "msh";
      case BudgetMode::Hyperband: return "hyperband";
    }
    return "?";
}

const char *
toString(UpdateMode mode)
{
    switch (mode) {
      case UpdateMode::All: return "all";
      case UpdateMode::HighFidelity: return "high-fidelity";
      case UpdateMode::Champion: return "champion";
    }
    return "?";
}

BudgetMode
budgetModeFromString(const std::string &name)
{
    if (name == "full")
        return BudgetMode::FullBudget;
    if (name == "sh")
        return BudgetMode::SH;
    if (name == "msh")
        return BudgetMode::MSH;
    if (name == "hyperband")
        return BudgetMode::Hyperband;
    throw std::invalid_argument("unknown budget mode '" + name +
                                "' (expected full|sh|msh|hyperband)");
}

UpdateMode
updateModeFromString(const std::string &name)
{
    if (name == "all")
        return UpdateMode::All;
    if (name == "high-fidelity")
        return UpdateMode::HighFidelity;
    if (name == "champion")
        return UpdateMode::Champion;
    throw std::invalid_argument(
        "unknown update mode '" + name +
        "' (expected all|high-fidelity|champion)");
}

DriverConfig
DriverConfig::unico()
{
    DriverConfig cfg;
    cfg.name = "UNICO";
    cfg.budgetMode = BudgetMode::MSH;
    cfg.updateMode = UpdateMode::HighFidelity;
    cfg.useRobustness = true;
    return cfg;
}

DriverConfig
DriverConfig::hascoLike()
{
    DriverConfig cfg;
    cfg.name = "HASCO";
    cfg.budgetMode = BudgetMode::FullBudget;
    cfg.updateMode = UpdateMode::Champion;
    cfg.useRobustness = false;
    return cfg;
}

DriverConfig
DriverConfig::mobohbLike()
{
    DriverConfig cfg;
    cfg.name = "MOBOHB";
    cfg.budgetMode = BudgetMode::Hyperband;
    cfg.updateMode = UpdateMode::All;
    cfg.useRobustness = false;
    // BOHB interleaves a fixed fraction of random configurations.
    cfg.randomFraction = 1.0 / 3.0;
    return cfg;
}

DriverConfig
DriverConfig::shChampion()
{
    DriverConfig cfg;
    cfg.name = "SH+ChampionUpdate";
    cfg.budgetMode = BudgetMode::SH;
    cfg.updateMode = UpdateMode::Champion;
    cfg.useRobustness = false;
    return cfg;
}

DriverConfig
DriverConfig::mshChampion()
{
    DriverConfig cfg;
    cfg.name = "MSH+ChampionUpdate";
    cfg.budgetMode = BudgetMode::MSH;
    cfg.updateMode = UpdateMode::Champion;
    cfg.useRobustness = false;
    return cfg;
}

std::size_t
CoSearchResult::minDistanceRecord() const
{
    assert(!front.empty());
    // The representative is picked among fully-searched designs (an
    // early-stopped sample's mapping is low fidelity and not what a
    // designer would ship), normalized by the nadir of that same
    // subset so low-fidelity archive points cannot skew the scales.
    std::vector<const moo::ParetoFront::Entry *> shippable;
    for (const auto &entry : front.entries())
        if (records[entry.id].fullySearched)
            shippable.push_back(&entry);
    if (shippable.empty()) {
        const auto nadir = moo::nadirPoint(front.points());
        return static_cast<std::size_t>(
            front.minDistanceEntry(nadir).id);
    }
    std::vector<moo::Objectives> pts;
    pts.reserve(shippable.size());
    for (const auto *entry : shippable)
        pts.push_back(entry->objectives);
    const auto nadir = moo::nadirPoint(pts);

    const moo::ParetoFront::Entry *best = nullptr;
    double best_dist = std::numeric_limits<double>::infinity();
    for (const auto *entry : shippable) {
        double acc = 0.0;
        for (std::size_t i = 0; i < entry->objectives.size(); ++i) {
            const double s = nadir[i] > 0.0 ? nadir[i] : 1.0;
            const double v = entry->objectives[i] / s;
            acc += v * v;
        }
        if (acc < best_dist) {
            best_dist = acc;
            best = entry;
        }
    }
    return static_cast<std::size_t>(best->id);
}

DriverConfig
driverConfigForAlgo(const std::string &algo)
{
    if (algo == "unico")
        return DriverConfig::unico();
    if (algo == "hasco")
        return DriverConfig::hascoLike();
    if (algo == "mobohb")
        return DriverConfig::mobohbLike();
    if (algo == "sh")
        return DriverConfig::shChampion();
    if (algo == "msh")
        return DriverConfig::mshChampion();
    throw std::invalid_argument("unknown algorithm '" + algo +
                                "' (expected unico|hasco|mobohb|sh|msh)");
}

namespace {

/** Penalty objectives recorded for HW with no feasible mapping;
 *  fixed constants keep min-max normalization bounded. */
moo::Objectives
penaltyObjectives(std::size_t dims)
{
    moo::Objectives y = {1e6, 1e5, 1e3, 10.0};
    y.resize(dims, 10.0);
    return y;
}

} // namespace

CoSearch::CoSearch(CoSearchEnv &env, DriverConfig cfg, JobContext *ctx,
                   ProgressObserver *observer)
    : env_(env), cfg_(std::move(cfg)),
      ctx_(ctx != nullptr ? ctx : &ownedCtx_), observer_(observer)
{
    assert(cfg_.batchSize >= 1);
    assert(cfg_.maxIter >= 1);
}

CoSearch::~CoSearch()
{
    if (watchdog_ && runWatchId_ != 0)
        watchdog_->release(runWatchId_);
}

bool
CoSearch::pollInterrupt()
{
    // One internal run token fed by (a) the external shutdown token
    // (SIGINT/SIGTERM), (b) the job's own cancel token (job-manager
    // cancel, shutdown fan-out), bridged at every poll, and (c) the
    // wall-clock watchdog's whole-run deadline. Everything below —
    // trial boundaries, SH rounds, thread-pool queue, evaluation
    // chunks — polls this single token.
    if (cfg_.cancel != nullptr && cfg_.cancel->cancelled())
        runToken_.cancel(common::CancelReason::Signal);
    if (ctx_->cancel.cancelled())
        runToken_.cancel(ctx_->cancel.reason());
    return runToken_.cancelled();
}

void
CoSearch::emit(ProgressEvent event)
{
    if (observer_ == nullptr)
        return;
    event.iteration = completedIters_;
    event.maxIterations = cfg_.maxIter;
    event.hours = ctx_->clock.hours();
    event.evaluations = ctx_->clock.evaluations();
    event.frontSize = result_.front.size();
    event.records = result_.records.size();
    observer_->onProgress(event);
}

void
CoSearch::emitIncumbentIfChanged()
{
    if (observer_ == nullptr || result_.front.empty())
        return;
    const std::size_t idx = result_.minDistanceRecord();
    if (idx == lastIncumbent_)
        return;
    lastIncumbent_ = idx;
    const auto &rec = result_.records[idx];
    ProgressEvent ev;
    ev.kind = ProgressKind::IncumbentChanged;
    ev.detail = env_.describeHw(rec.hw);
    ev.bestLatencyMs = rec.ppa.latencyMs;
    ev.bestPowerMw = rec.ppa.powerMw;
    ev.bestAreaMm2 = rec.ppa.areaMm2;
    emit(std::move(ev));
}

void
CoSearch::saveCheckpoint(int completed)
{
    if (cfg_.checkpointPath.empty())
        return;
    SearchCheckpoint ck;
    ck.configKey = configFingerprint(cfg_);
    ck.backend = stackId_.backend;
    ck.scenario = stackId_.scenario;
    ck.workloadDigest = stackId_.workloadDigest;
    ck.completedIterations = completed;
    ck.clockSeconds = ctx_->clock.seconds();
    ck.clockEvaluations = ctx_->clock.evaluations();
    ck.samplerState = sampler_->saveState();
    ck.selector = selector_->saveState();
    ck.result = result_;
    const auto st = saveCheckpointRotated(cfg_.checkpointPath, ck,
                                          cfg_.checkpointKeep);
    if (st.ok()) {
        lastSavedIter_ = completed;
        ProgressEvent ev;
        ev.kind = ProgressKind::CheckpointWritten;
        ev.detail = cfg_.checkpointPath;
        emit(std::move(ev));
    } else {
        result_.warnings.push_back("checkpoint save failed: " +
                                   st.message);
    }
}

void
CoSearch::start()
{
    if (started_)
        return;
    started_ = true;

    numObj_ = cfg_.useRobustness ? 4 : 3;
    MoboConfig mobo_cfg;
    mobo_cfg.randomFraction = cfg_.randomFraction;
    mobo_cfg.useArd = cfg_.ardSurrogate;
    // GP grid-search fits reuse the evaluation worker budget; the
    // selection is thread-count independent, so this only affects
    // wall-clock.
    mobo_cfg.gpThreads = cfg_.realThreads;
    sampler_ = std::make_unique<MoboHwSampler>(env_.hwSpace(), numObj_,
                                               cfg_.seed, mobo_cfg);
    selector_ = std::make_unique<HighFidelitySelector>(
        std::vector<double>(numObj_,
                            1.0 / static_cast<double>(numObj_)));
    ctx_->seed = cfg_.seed;
    ctx_->clock = common::EvalClock(cfg_.workers);
    championW_.assign(numObj_, 1.0 / static_cast<double>(numObj_));

    // Even the smallest SH round must seed every layer once.
    minBudget_ = std::max(cfg_.minBudgetPerRound, env_.minSeedBudget());

    // Persistent round-dispatch pool: one set of workers for every SH
    // round of the whole run, instead of a fresh pool per grow_to()
    // call. realThreads <= 1 keeps the historical inline execution.
    // Constructed here — after the evaluation fleet (if any) forked
    // its zygote from a single-threaded process.
    if (cfg_.realThreads > 1)
        roundPool_ =
            std::make_unique<common::ThreadPool>(cfg_.realThreads);
    if (cfg_.wallDeadlineSeconds > 0.0 ||
        cfg_.evalWallDeadlineSeconds > 0.0)
        watchdog_ = std::make_unique<common::Watchdog>();
    if (watchdog_ && cfg_.wallDeadlineSeconds > 0.0)
        runWatchId_ =
            watchdog_->watch(runToken_, cfg_.wallDeadlineSeconds,
                             common::CancelReason::RunDeadline);

    stackId_ = StackIdentity::of(env_);
    ctx_->stack = stackId_;

    // --- Checkpoint resume: restore sampler, selector, clock and
    // archive, then continue with the first unfinished trial. Seeds
    // of a trial's mapping runs derive from (seed, trial, slot), so
    // an interrupted trial re-runs identically from its start.
    // Resume walks the rotation window newest-first and skips any
    // generation that fails CRC/parse validation.
    startIter_ = 0;
    if (cfg_.resumeFromCheckpoint && !cfg_.checkpointPath.empty()) {
        if (auto rec = loadNewestValidCheckpoint(cfg_.checkpointPath,
                                                 cfg_.checkpointKeep)) {
            if (const auto compat = checkpointCompatibility(
                    rec->checkpoint, configFingerprint(cfg_), stackId_);
                !compat.ok())
                throw CheckpointMismatchError("checkpoint '" +
                                              rec->path +
                                              "': " + compat.message);
            sampler_->restoreState(rec->checkpoint.samplerState);
            selector_->restoreState(rec->checkpoint.selector);
            ctx_->clock.restore(rec->checkpoint.clockSeconds,
                                rec->checkpoint.clockEvaluations);
            result_ = std::move(rec->checkpoint.result);
            startIter_ = rec->checkpoint.completedIterations;
            result_.faults.checkpointRecoveries +=
                static_cast<std::uint64_t>(rec->rejected.size());
            for (const auto &why : rec->rejected)
                result_.warnings.push_back("checkpoint fallback: " +
                                           why);
            if (rec->generation > 0)
                result_.warnings.push_back(
                    "resumed from rotated generation '" + rec->path +
                    "' (" + std::to_string(rec->generation) +
                    " save(s) old)");
        }
    }

    completedIters_ = startIter_;
    lastSavedIter_ = startIter_;
    iter_ = startIter_;

    ProgressEvent ev;
    ev.kind = ProgressKind::Started;
    ev.detail = stackId_.backend;
    emit(std::move(ev));
}

bool
CoSearch::step()
{
    if (!started_)
        start();
    if (sealed_ || result_.interrupted || iter_ >= cfg_.maxIter)
        return false;
    if (pollInterrupt())
        return false;
    runTrial();
    return !result_.interrupted && iter_ < cfg_.maxIter;
}

bool
CoSearch::finished() const
{
    return started_ &&
           (sealed_ || result_.interrupted || iter_ >= cfg_.maxIter ||
            runToken_.cancelled());
}

void
CoSearch::runTrial()
{
    // Rollback snapshot: an interrupt mid-trial discards the
    // partial trial (clock charges and fault counts included) so
    // the final checkpoint holds exactly the last completed-trial
    // state and a resume replays the straight run bit-for-bit.
    const double snap_seconds = ctx_->clock.seconds();
    const std::uint64_t snap_evals = ctx_->clock.evaluations();
    const FaultStats snap_faults = result_.faults;
    // With a sparse cadence the final interrupted save happens
    // mid-window, so the sampler (whose RNG already advanced for
    // the discarded trial's batch) must be rolled back too. With
    // the default cadence of 1 the on-disk checkpoint already
    // holds the boundary state and no snapshot is needed.
    common::Json snap_sampler;
    const bool need_sampler_snap =
        !cfg_.checkpointPath.empty() && cfg_.checkpointEvery > 1;
    if (need_sampler_snap)
        snap_sampler = sampler_->saveState();
    // Batch size and round count for this trial. Hyperband
    // cycles through SH brackets of decreasing aggressiveness:
    // bracket s starts n_s ~ (s_max+1)/(s+1) * eta^s candidates
    // at budget bMax * eta^{-s}.
    std::size_t batch_n = static_cast<std::size_t>(cfg_.batchSize);
    int rounds = shRounds(batch_n);
    if (cfg_.budgetMode == BudgetMode::Hyperband) {
        const double eta = cfg_.sh.eta;
        const double budget_ratio = std::max(
            static_cast<double>(cfg_.sh.bMax) /
                static_cast<double>(std::max(minBudget_, 1)),
            eta);
        const int s_max = std::max(
            1, static_cast<int>(
                   std::floor(std::log(budget_ratio) /
                              std::log(eta))));
        const int s = s_max - (iter_ % (s_max + 1));
        rounds = s + 1;
        batch_n = static_cast<std::size_t>(std::llround(
            (s_max + 1.0) / (s + 1.0) * std::pow(eta, s)));
        batch_n = std::clamp<std::size_t>(
            batch_n, 2,
            static_cast<std::size_t>(2 * cfg_.batchSize));
    }

    // --- Line 4: sample a batch of N hardware configurations.
    // GP-fit failures inside the sampler degrade to space-filling
    // proposals instead of aborting; surface them as fault-stat
    // deltas so interrupt rollback stays consistent.
    const std::uint64_t gp_before = sampler_->gpFallbacks();
    const auto batch = sampler_->sampleBatch(batch_n);
    result_.faults.gpFallbacks += sampler_->gpFallbacks() - gp_before;

    std::vector<std::unique_ptr<MappingRun>> runs;
    runs.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        runs.push_back(env_.createRun(
            batch[i], cfg_.seed ^ (0x9e3779b97f4a7c15ULL *
                                   (iter_ * 1000 + i + 1))));

    // --- Lines 5-9: adaptive SW mapping search, supervised.
    std::vector<std::size_t> alive(batch.size());
    for (std::size_t i = 0; i < alive.size(); ++i)
        alive[i] = i;

    // Per-candidate fault state, persistent across SH rounds.
    struct CandidateHealth
    {
        int faults = 0;    ///< faults observed so far
        bool degraded = false;
        bool failed = false; ///< retries exhausted or fatal
    };
    std::vector<CandidateHealth> health(batch.size());

    auto grow_to = [&](const std::vector<std::size_t> &set,
                       int budget) {
        std::vector<double> task_seconds(set.size(), 0.0);
        std::vector<FaultStats> job_faults(set.size());
        // Each job owns one MappingRun, so the round's jobs run
        // concurrently on host threads without synchronization
        // and deterministically (Sec. 3.5). A job supervises its
        // candidate: faults are caught and classified, retries
        // get capped exponential backoff (charged as search
        // cost), repeated faults degrade the PPA engine, and
        // exhausted candidates fall back to penalty PPA instead
        // of aborting the search.
        std::vector<std::function<void()>> jobs;
        jobs.reserve(set.size());
        for (std::size_t i = 0; i < set.size(); ++i) {
            jobs.push_back([&, i] {
                const std::size_t idx = set[i];
                MappingRun &run = *runs[idx];
                CandidateHealth &hs = health[idx];
                FaultStats &fs = job_faults[i];
                if (hs.failed)
                    return; // penalty fallback: no more work
                double seconds = 0.0;
                int attempts = 0;
                int target = budget;
                common::CancelToken eval_token;
                for (;;) {
                    if (pollInterrupt())
                        break; // abandoned; the trial rolls back
                    const double before = run.chargedSeconds();
                    const int spent_before = run.spent();
                    auto st = common::EvalStatus::Ok;
                    bool corrupt = false;
                    std::uint64_t watch_id = 0;
                    if (watchdog_ &&
                        cfg_.evalWallDeadlineSeconds > 0.0)
                        watch_id = watchdog_->watch(
                            eval_token,
                            cfg_.evalWallDeadlineSeconds,
                            common::CancelReason::EvalDeadline);
                    try {
                        // Chunked stepping is bit-identical to
                        // one large step (the engine advances one
                        // sweep at a time) but gives the watchdog
                        // and the shutdown path cooperative
                        // cancellation points. pollInterrupt()
                        // (not a bare runToken_ read) so an
                        // external job-cancel is seen here and
                        // cannot be misclassified as a stalled
                        // engine below.
                        constexpr int kChunk = 4;
                        while (run.spent() < target) {
                            if (eval_token.cancelled() ||
                                pollInterrupt())
                                break;
                            const int chunk_before = run.spent();
                            run.step(std::min(
                                kChunk, target - run.spent()));
                            if (run.spent() == chunk_before)
                                break; // stalled; guarded below
                        }
                        // Corrupted-result detection: garbage
                        // PPA (NaN/negative) must never reach
                        // the archive or the surrogate.
                        if (!run.bestPpa().valid()) {
                            st = common::EvalStatus::Transient;
                            corrupt = true;
                        }
                    } catch (const common::EvalFault &f) {
                        st = f.status();
                    } catch (const std::exception &) {
                        st = common::EvalStatus::Fatal;
                    }
                    // release() is atomic with expiry: once it
                    // returns, the watchdog holds no reference to
                    // eval_token. false = the deadline fired.
                    const bool expired =
                        watch_id != 0 &&
                        !watchdog_->release(watch_id);
                    seconds += run.chargedSeconds() - before;
                    if (pollInterrupt())
                        break; // interrupted; trial is discarded
                    if ((expired || eval_token.cancelled()) &&
                        st == common::EvalStatus::Ok &&
                        run.spent() < target)
                        st = common::EvalStatus::Timeout;
                    eval_token.reset();
                    if (st == common::EvalStatus::Ok) {
                        if (run.spent() >= target)
                            break; // healthy and complete
                        if (run.spent() == spent_before) {
                            // No fault, no progress: broken
                            // engine; do not spin forever.
                            st = common::EvalStatus::Fatal;
                        } else {
                            continue;
                        }
                    }
                    // --- Fault path: classify, then recover.
                    ++hs.faults;
                    switch (st) {
                      case common::EvalStatus::Timeout:
                        ++fs.timeout;
                        break;
                      case common::EvalStatus::Fatal:
                        ++fs.fatal;
                        break;
                      default:
                        if (corrupt)
                            ++fs.corrupt;
                        else
                            ++fs.transient;
                    }
                    if (st == common::EvalStatus::Fatal ||
                        attempts >= cfg_.recovery.maxRetries) {
                        hs.failed = true;
                        ++fs.penalized;
                        break;
                    }
                    ++attempts;
                    ++fs.retries;
                    // Capped exponential backoff, charged to the
                    // virtual clock like any other search cost.
                    seconds += std::min(
                        cfg_.recovery.backoffCapSeconds,
                        cfg_.recovery.backoffBaseSeconds *
                            std::pow(2.0, attempts - 1));
                    // Degradation ladder: repeated faults on one
                    // candidate drop it from the cycle-level
                    // simulator to the analytical rung.
                    if (!hs.degraded &&
                        hs.faults >=
                            cfg_.recovery.degradeAfterFaults &&
                        run.degradeToAnalytical()) {
                        hs.degraded = true;
                        ++fs.degradations;
                    }
                    // A corrupted incumbent with the budget fully
                    // spent needs one repair re-evaluation.
                    if (corrupt && run.spent() >= target)
                        target = run.spent() + 1;
                }
                task_seconds[i] = seconds;
            });
        }
        if (roundPool_ != nullptr)
            common::runParallel(jobs, *roundPool_, &runToken_);
        else
            common::runParallel(jobs, cfg_.realThreads, &runToken_);
        for (const auto &fs : job_faults)
            result_.faults.merge(fs);
        ctx_->clock.chargeParallel(task_seconds);
    };

    // Drop penalty-fallback candidates from an alive set so SH
    // rounds proceed with the N-f survivors.
    auto drop_failed = [&](std::vector<std::size_t> &set) {
        std::vector<std::size_t> healthy;
        healthy.reserve(set.size());
        for (std::size_t idx : set)
            if (!health[idx].failed)
                healthy.push_back(idx);
        set = std::move(healthy);
    };

    if (cfg_.budgetMode == BudgetMode::FullBudget) {
        grow_to(alive, std::max(cfg_.sh.bMax, minBudget_));
    } else {
        for (int j = 1; j <= rounds && !alive.empty(); ++j) {
            const int budget =
                roundBudget(cfg_.sh, j, rounds, minBudget_);
            grow_to(alive, budget);
            if (pollInterrupt())
                break; // survivor stats may be half-grown
            drop_failed(alive);
            if (j == rounds || alive.empty())
                break;
            // Survivor selection by TV (and AUC under MSH).
            std::vector<double> tv, auc;
            tv.reserve(alive.size());
            auc.reserve(alive.size());
            for (std::size_t idx : alive) {
                tv.push_back(runs[idx]->bestLossHistory().back());
                auc.push_back(
                    convergenceAuc(runs[idx]->bestLossHistory()));
            }
            // MSH/SH keep kFrac of the set; Hyperband brackets
            // keep 1/eta per round.
            const double keep_frac =
                cfg_.budgetMode == BudgetMode::Hyperband
                    ? 1.0 / cfg_.sh.eta
                    : cfg_.sh.kFrac;
            const auto k = std::max<std::size_t>(
                1, static_cast<std::size_t>(std::floor(
                       keep_frac *
                       static_cast<double>(alive.size()))));
            const std::size_t p =
                cfg_.budgetMode == BudgetMode::MSH
                    ? static_cast<std::size_t>(std::floor(
                          cfg_.sh.pFrac *
                          static_cast<double>(alive.size())))
                    : 0;
            const auto keep = selectSurvivors(tv, auc, k, p);
            std::vector<std::size_t> next;
            next.reserve(keep.size());
            for (std::size_t local : keep)
                next.push_back(alive[local]);
            alive = std::move(next);
        }
    }

    // --- Graceful interrupt: drain happened inside runParallel
    // (queued jobs skipped, started jobs finished). Discard the
    // partial trial entirely — clock charges and fault counters
    // included — so the checkpoint holds the last completed-trial
    // state and a resume replays the straight run bit-for-bit.
    if (pollInterrupt()) {
        ctx_->clock.restore(snap_seconds, snap_evals);
        result_.faults = snap_faults;
        if (need_sampler_snap)
            sampler_->restoreState(snap_sampler);
        result_.interrupted = true;
        result_.interruptReason =
            common::toString(runToken_.reason());
        return;
    }

    // --- Assess the batch: final PPA, robustness, constraints.
    std::vector<moo::Objectives> batch_y(batch.size());
    std::vector<std::size_t> record_idx(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        HwEvalRecord rec;
        rec.hw = batch[i];
        rec.ppa = runs[i]->bestPpa();
        rec.budgetSpent = runs[i]->spent();
        rec.iteration = iter_;
        rec.faults = health[i].faults;
        rec.degraded = health[i].degraded;
        // Penalty fallback: a candidate whose supervisor gave up
        // (or whose incumbent is still corrupt after repair) is
        // recorded as infeasible so the penalty objectives keep
        // the surrogate informed without poisoning the archive.
        if (health[i].failed || !rec.ppa.valid()) {
            rec.ppa = accel::Ppa::infeasible();
            rec.penalized = true;
        }
        // R is always recorded (it is cheap and Sec. 4.3 inspects
        // it even for runs trained without it); useRobustness
        // only controls whether it becomes a 4th objective.
        rec.sensitivity = runs[i]->sensitivity(cfg_.alpha);
        rec.constraintOk =
            rec.ppa.feasible &&
            rec.ppa.powerMw <= env_.powerBudgetMw() &&
            rec.ppa.areaMm2 <= env_.areaBudgetMm2();
        rec.fullySearched = rec.budgetSpent >= cfg_.sh.bMax;

        if (rec.ppa.feasible) {
            batch_y[i] = {rec.ppa.latencyMs, rec.ppa.powerMw,
                          rec.ppa.areaMm2};
            if (cfg_.useRobustness)
                batch_y[i].push_back(rec.sensitivity);
        } else {
            batch_y[i] = penaltyObjectives(numObj_);
        }

        record_idx[i] = result_.records.size();
        result_.records.push_back(std::move(rec));
    }

    // --- Lines 10-12: surrogate update and Pareto maintenance.
    for (std::size_t i = 0; i < batch.size(); ++i)
        sampler_->observe(batch[i], batch_y[i], false);

    std::vector<std::size_t> hf_local;
    switch (cfg_.updateMode) {
      case UpdateMode::All:
        for (std::size_t i = 0; i < batch.size(); ++i)
            hf_local.push_back(i);
        break;
      case UpdateMode::Champion: {
        std::size_t best = 0;
        double best_v = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const double v = moo::parego(
                sampler_->normalize(batch_y[i]), championW_);
            if (v < best_v) {
                best_v = v;
                best = i;
            }
        }
        hf_local.push_back(best);
        break;
      }
      case UpdateMode::HighFidelity: {
        std::vector<moo::Objectives> normalized;
        normalized.reserve(batch.size());
        for (const auto &y : batch_y)
            normalized.push_back(sampler_->normalize(y));
        hf_local = selector_->select(normalized);
        break;
      }
    }
    for (std::size_t local : hf_local) {
        const std::size_t obs_index =
            sampler_->observations() - batch.size() + local;
        sampler_->setHighFidelity(obs_index, true);
        result_.records[record_idx[local]].highFidelity = true;
    }

    // Every constraint-satisfying sample is a real (HW, mapping)
    // design point and enters the archive; the min-distance
    // *representative* is restricted to fully-searched designs.
    const std::size_t front_before = result_.front.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto &rec = result_.records[record_idx[i]];
        if (rec.constraintOk) {
            result_.front.insert({rec.ppa.latencyMs, rec.ppa.powerMw,
                                 rec.ppa.areaMm2},
                                record_idx[i]);
        }
    }

    ctx_->clock.chargeOverhead(1.0); // surrogate refit bookkeeping
    result_.trace.push_back(
        TracePoint{ctx_->clock.hours(), result_.front.points()});

    completedIters_ = iter_ + 1;
    ++iter_;

    emit(ProgressEvent{ProgressKind::TrialCompleted});
    const int front_delta = static_cast<int>(result_.front.size()) -
                            static_cast<int>(front_before);
    if (front_delta != 0) {
        ProgressEvent ev;
        ev.kind = ProgressKind::FrontDelta;
        ev.frontDelta = front_delta;
        emit(std::move(ev));
    }
    emitIncumbentIfChanged();

    // --- Checkpoint cadence: persist the complete resumable
    // state every checkpointEvery finished trials (CRC trailer,
    // fsync + atomic rename, rotation window).
    const int every = std::max(cfg_.checkpointEvery, 1);
    if ((completedIters_ - startIter_) % every == 0)
        saveCheckpoint(completedIters_);
}

CoSearchResult
CoSearch::result()
{
    if (!started_)
        start();
    if (sealed_)
        return result_;
    sealed_ = true;

    if (watchdog_ && runWatchId_ != 0) {
        watchdog_->release(runWatchId_);
        runWatchId_ = 0;
    }
    // An interrupt that lands exactly on an iteration boundary needs
    // no rollback but is still an early exit.
    if (!result_.interrupted && runToken_.cancelled()) {
        result_.interrupted = true;
        result_.interruptReason = common::toString(runToken_.reason());
    }
    // Final save: cover trials completed since the last cadence save
    // (also the drain path of an interrupted run).
    if (!cfg_.checkpointPath.empty() &&
        completedIters_ != lastSavedIter_)
        saveCheckpoint(completedIters_);

    result_.totalHours = ctx_->clock.hours();
    // Count actual PPA queries (budget spent), not scheduled jobs.
    result_.evaluations = 0;
    for (const auto &rec : result_.records)
        result_.evaluations +=
            static_cast<std::uint64_t>(rec.budgetSpent);
    if (const accel::EvalCache *cache = env_.evalCache())
        result_.cacheStats = cache->stats();
    result_.surrogateStats = env_.surrogateStats();
    // Snapshot at the very end (after any rollback restored
    // result_.faults): transport counters live in the env, not in the
    // per-iteration fault ledger, so an interrupted-iteration
    // rollback must not erase them.
    result_.faults.transport = env_.transportStats();

    ProgressEvent ev;
    ev.kind = ProgressKind::Finished;
    ev.interrupted = result_.interrupted;
    ev.detail = result_.interruptReason;
    if (observer_ != nullptr && !result_.front.empty()) {
        const auto &rec = result_.records[result_.minDistanceRecord()];
        ev.bestLatencyMs = rec.ppa.latencyMs;
        ev.bestPowerMw = rec.ppa.powerMw;
        ev.bestAreaMm2 = rec.ppa.areaMm2;
    }
    emit(std::move(ev));
    return result_;
}

CoOptimizer::CoOptimizer(CoSearchEnv &env, DriverConfig cfg,
                         JobContext *ctx, ProgressObserver *observer)
    : search_(env, std::move(cfg), ctx, observer)
{}

CoSearchResult
CoOptimizer::run()
{
    search_.start();
    while (search_.step()) {
    }
    return search_.result();
}

} // namespace unico::core
