#include "core/driver.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include <memory>

#include "common/status.hh"
#include "common/thread_pool.hh"
#include "common/watchdog.hh"
#include "core/checkpoint.hh"
#include "core/fidelity.hh"
#include "core/mobo.hh"
#include "core/robustness.hh"
#include "moo/scalarize.hh"

namespace unico::core {

void
FaultStats::merge(const FaultStats &other)
{
    transient += other.transient;
    timeout += other.timeout;
    corrupt += other.corrupt;
    fatal += other.fatal;
    retries += other.retries;
    degradations += other.degradations;
    penalized += other.penalized;
    gpFallbacks += other.gpFallbacks;
    checkpointRecoveries += other.checkpointRecoveries;
    transport.merge(other.transport);
}

std::string
toString(const FaultStats &stats)
{
    std::ostringstream oss;
    oss << "faults: transient=" << stats.transient
        << " timeout=" << stats.timeout << " corrupt=" << stats.corrupt
        << " fatal=" << stats.fatal << " retries=" << stats.retries
        << " degradations=" << stats.degradations
        << " penalized=" << stats.penalized
        << " gp_fallbacks=" << stats.gpFallbacks
        << " ckpt_recoveries=" << stats.checkpointRecoveries;
    if (stats.transport.total() > 0 ||
        stats.transport.workerRespawns > 0 ||
        stats.transport.workSteals > 0 ||
        stats.transport.inprocFallbacks > 0) {
        oss << " | transport: crashes=" << stats.transport.workerCrashes
            << " timeouts=" << stats.transport.requestTimeouts
            << " (hangs=" << stats.transport.workerHangs << ")"
            << " torn=" << stats.transport.tornFrames
            << " corrupt=" << stats.transport.corruptFrames
            << " respawns=" << stats.transport.workerRespawns
            << " steals=" << stats.transport.workSteals
            << " local_fallbacks=" << stats.transport.inprocFallbacks;
        if (stats.transport.connectionsLost > 0 ||
            stats.transport.connectFailures > 0 ||
            stats.transport.staleFrames > 0 ||
            stats.transport.reconnects > 0) {
            oss << " conn_lost=" << stats.transport.connectionsLost
                << " conn_fail=" << stats.transport.connectFailures
                << " stale=" << stats.transport.staleFrames
                << " reconnects=" << stats.transport.reconnects;
        }
    }
    return oss.str();
}

const char *
toString(BudgetMode mode)
{
    switch (mode) {
      case BudgetMode::FullBudget: return "full";
      case BudgetMode::SH: return "sh";
      case BudgetMode::MSH: return "msh";
      case BudgetMode::Hyperband: return "hyperband";
    }
    return "?";
}

const char *
toString(UpdateMode mode)
{
    switch (mode) {
      case UpdateMode::All: return "all";
      case UpdateMode::HighFidelity: return "high-fidelity";
      case UpdateMode::Champion: return "champion";
    }
    return "?";
}

BudgetMode
budgetModeFromString(const std::string &name)
{
    if (name == "full")
        return BudgetMode::FullBudget;
    if (name == "sh")
        return BudgetMode::SH;
    if (name == "msh")
        return BudgetMode::MSH;
    if (name == "hyperband")
        return BudgetMode::Hyperband;
    throw std::invalid_argument("unknown budget mode '" + name +
                                "' (expected full|sh|msh|hyperband)");
}

UpdateMode
updateModeFromString(const std::string &name)
{
    if (name == "all")
        return UpdateMode::All;
    if (name == "high-fidelity")
        return UpdateMode::HighFidelity;
    if (name == "champion")
        return UpdateMode::Champion;
    throw std::invalid_argument(
        "unknown update mode '" + name +
        "' (expected all|high-fidelity|champion)");
}

DriverConfig
DriverConfig::unico()
{
    DriverConfig cfg;
    cfg.name = "UNICO";
    cfg.budgetMode = BudgetMode::MSH;
    cfg.updateMode = UpdateMode::HighFidelity;
    cfg.useRobustness = true;
    return cfg;
}

DriverConfig
DriverConfig::hascoLike()
{
    DriverConfig cfg;
    cfg.name = "HASCO";
    cfg.budgetMode = BudgetMode::FullBudget;
    cfg.updateMode = UpdateMode::Champion;
    cfg.useRobustness = false;
    return cfg;
}

DriverConfig
DriverConfig::mobohbLike()
{
    DriverConfig cfg;
    cfg.name = "MOBOHB";
    cfg.budgetMode = BudgetMode::Hyperband;
    cfg.updateMode = UpdateMode::All;
    cfg.useRobustness = false;
    // BOHB interleaves a fixed fraction of random configurations.
    cfg.randomFraction = 1.0 / 3.0;
    return cfg;
}

DriverConfig
DriverConfig::shChampion()
{
    DriverConfig cfg;
    cfg.name = "SH+ChampionUpdate";
    cfg.budgetMode = BudgetMode::SH;
    cfg.updateMode = UpdateMode::Champion;
    cfg.useRobustness = false;
    return cfg;
}

DriverConfig
DriverConfig::mshChampion()
{
    DriverConfig cfg;
    cfg.name = "MSH+ChampionUpdate";
    cfg.budgetMode = BudgetMode::MSH;
    cfg.updateMode = UpdateMode::Champion;
    cfg.useRobustness = false;
    return cfg;
}

std::size_t
CoSearchResult::minDistanceRecord() const
{
    assert(!front.empty());
    // The representative is picked among fully-searched designs (an
    // early-stopped sample's mapping is low fidelity and not what a
    // designer would ship), normalized by the nadir of that same
    // subset so low-fidelity archive points cannot skew the scales.
    std::vector<const moo::ParetoFront::Entry *> shippable;
    for (const auto &entry : front.entries())
        if (records[entry.id].fullySearched)
            shippable.push_back(&entry);
    if (shippable.empty()) {
        const auto nadir = moo::nadirPoint(front.points());
        return static_cast<std::size_t>(
            front.minDistanceEntry(nadir).id);
    }
    std::vector<moo::Objectives> pts;
    pts.reserve(shippable.size());
    for (const auto *entry : shippable)
        pts.push_back(entry->objectives);
    const auto nadir = moo::nadirPoint(pts);

    const moo::ParetoFront::Entry *best = nullptr;
    double best_dist = std::numeric_limits<double>::infinity();
    for (const auto *entry : shippable) {
        double acc = 0.0;
        for (std::size_t i = 0; i < entry->objectives.size(); ++i) {
            const double s = nadir[i] > 0.0 ? nadir[i] : 1.0;
            const double v = entry->objectives[i] / s;
            acc += v * v;
        }
        if (acc < best_dist) {
            best_dist = acc;
            best = entry;
        }
    }
    return static_cast<std::size_t>(best->id);
}

CoOptimizer::CoOptimizer(CoSearchEnv &env, DriverConfig cfg)
    : env_(env), cfg_(std::move(cfg))
{
    assert(cfg_.batchSize >= 1);
    assert(cfg_.maxIter >= 1);
}

namespace {

/** Penalty objectives recorded for HW with no feasible mapping;
 *  fixed constants keep min-max normalization bounded. */
moo::Objectives
penaltyObjectives(std::size_t dims)
{
    moo::Objectives y = {1e6, 1e5, 1e3, 10.0};
    y.resize(dims, 10.0);
    return y;
}

} // namespace

CoSearchResult
CoOptimizer::run()
{
    const std::size_t num_obj = cfg_.useRobustness ? 4 : 3;
    MoboConfig mobo_cfg;
    mobo_cfg.randomFraction = cfg_.randomFraction;
    mobo_cfg.useArd = cfg_.ardSurrogate;
    // GP grid-search fits reuse the evaluation worker budget; the
    // selection is thread-count independent, so this only affects
    // wall-clock.
    mobo_cfg.gpThreads = cfg_.realThreads;
    MoboHwSampler sampler(env_.hwSpace(), num_obj, cfg_.seed, mobo_cfg);
    HighFidelitySelector selector(
        std::vector<double>(num_obj, 1.0 / static_cast<double>(num_obj)));
    common::EvalClock clock(cfg_.workers);
    CoSearchResult result;

    const std::vector<double> champion_w(
        num_obj, 1.0 / static_cast<double>(num_obj));

    // Even the smallest SH round must seed every layer once.
    const int min_budget =
        std::max(cfg_.minBudgetPerRound, env_.minSeedBudget());

    // --- Cancellation plumbing: one internal run token fed by (a)
    // the external shutdown token (SIGINT/SIGTERM), bridged at every
    // poll, and (b) the wall-clock watchdog's whole-run deadline.
    // Everything below — loop boundaries, SH rounds, thread-pool
    // queue, evaluation chunks — polls this single token.
    common::CancelToken run_token;
    // Persistent round-dispatch pool: one set of workers for every SH
    // round of the whole run, instead of a fresh pool per grow_to()
    // call. realThreads <= 1 keeps the historical inline execution.
    // Constructed here — after the evaluation fleet (if any) forked
    // its zygote from a single-threaded process.
    std::unique_ptr<common::ThreadPool> round_pool;
    if (cfg_.realThreads > 1)
        round_pool = std::make_unique<common::ThreadPool>(cfg_.realThreads);
    std::unique_ptr<common::Watchdog> watchdog;
    if (cfg_.wallDeadlineSeconds > 0.0 ||
        cfg_.evalWallDeadlineSeconds > 0.0)
        watchdog = std::make_unique<common::Watchdog>();
    std::uint64_t run_watch_id = 0;
    if (watchdog && cfg_.wallDeadlineSeconds > 0.0)
        run_watch_id =
            watchdog->watch(run_token, cfg_.wallDeadlineSeconds,
                            common::CancelReason::RunDeadline);
    auto poll_interrupt = [&]() -> bool {
        if (cfg_.cancel != nullptr && cfg_.cancel->cancelled())
            run_token.cancel(common::CancelReason::Signal);
        return run_token.cancelled();
    };

    // --- Checkpoint resume: restore sampler, selector, clock and
    // archive, then continue with the first unfinished trial. Seeds
    // of a trial's mapping runs derive from (seed, trial, slot), so
    // an interrupted trial re-runs identically from its start.
    // Resume walks the rotation window newest-first and skips any
    // generation that fails CRC/parse validation.
    const StackIdentity stack_id = StackIdentity::of(env_);
    int start_iter = 0;
    if (cfg_.resumeFromCheckpoint && !cfg_.checkpointPath.empty()) {
        if (auto rec = loadNewestValidCheckpoint(cfg_.checkpointPath,
                                                 cfg_.checkpointKeep)) {
            if (const auto compat = checkpointCompatibility(
                    rec->checkpoint, configFingerprint(cfg_), stack_id);
                !compat.ok())
                throw CheckpointMismatchError("checkpoint '" +
                                              rec->path +
                                              "': " + compat.message);
            sampler.restoreState(rec->checkpoint.samplerState);
            selector.restoreState(rec->checkpoint.selector);
            clock.restore(rec->checkpoint.clockSeconds,
                          rec->checkpoint.clockEvaluations);
            result = std::move(rec->checkpoint.result);
            start_iter = rec->checkpoint.completedIterations;
            result.faults.checkpointRecoveries +=
                static_cast<std::uint64_t>(rec->rejected.size());
            for (const auto &why : rec->rejected)
                result.warnings.push_back("checkpoint fallback: " + why);
            if (rec->generation > 0)
                result.warnings.push_back(
                    "resumed from rotated generation '" + rec->path +
                    "' (" + std::to_string(rec->generation) +
                    " save(s) old)");
        }
    }

    int completed_iters = start_iter;
    int last_saved_iter = start_iter;
    auto save_checkpoint = [&](int completed) {
        if (cfg_.checkpointPath.empty())
            return;
        SearchCheckpoint ck;
        ck.configKey = configFingerprint(cfg_);
        ck.backend = stack_id.backend;
        ck.scenario = stack_id.scenario;
        ck.workloadDigest = stack_id.workloadDigest;
        ck.completedIterations = completed;
        ck.clockSeconds = clock.seconds();
        ck.clockEvaluations = clock.evaluations();
        ck.samplerState = sampler.saveState();
        ck.selector = selector.saveState();
        ck.result = result;
        const auto st = saveCheckpointRotated(cfg_.checkpointPath, ck,
                                              cfg_.checkpointKeep);
        if (st.ok())
            last_saved_iter = completed;
        else
            result.warnings.push_back("checkpoint save failed: " +
                                      st.message);
    };

    for (int iter = start_iter; iter < cfg_.maxIter; ++iter) {
        if (poll_interrupt())
            break;

        // Rollback snapshot: an interrupt mid-trial discards the
        // partial trial (clock charges and fault counts included) so
        // the final checkpoint holds exactly the last completed-trial
        // state and a resume replays the straight run bit-for-bit.
        const double snap_seconds = clock.seconds();
        const std::uint64_t snap_evals = clock.evaluations();
        const FaultStats snap_faults = result.faults;
        // With a sparse cadence the final interrupted save happens
        // mid-window, so the sampler (whose RNG already advanced for
        // the discarded trial's batch) must be rolled back too. With
        // the default cadence of 1 the on-disk checkpoint already
        // holds the boundary state and no snapshot is needed.
        common::Json snap_sampler;
        const bool need_sampler_snap =
            !cfg_.checkpointPath.empty() && cfg_.checkpointEvery > 1;
        if (need_sampler_snap)
            snap_sampler = sampler.saveState();
        // Batch size and round count for this trial. Hyperband
        // cycles through SH brackets of decreasing aggressiveness:
        // bracket s starts n_s ~ (s_max+1)/(s+1) * eta^s candidates
        // at budget bMax * eta^{-s}.
        std::size_t batch_n = static_cast<std::size_t>(cfg_.batchSize);
        int rounds = shRounds(batch_n);
        if (cfg_.budgetMode == BudgetMode::Hyperband) {
            const double eta = cfg_.sh.eta;
            const double budget_ratio = std::max(
                static_cast<double>(cfg_.sh.bMax) /
                    static_cast<double>(std::max(min_budget, 1)),
                eta);
            const int s_max = std::max(
                1, static_cast<int>(
                       std::floor(std::log(budget_ratio) /
                                  std::log(eta))));
            const int s = s_max - (iter % (s_max + 1));
            rounds = s + 1;
            batch_n = static_cast<std::size_t>(std::llround(
                (s_max + 1.0) / (s + 1.0) * std::pow(eta, s)));
            batch_n = std::clamp<std::size_t>(
                batch_n, 2,
                static_cast<std::size_t>(2 * cfg_.batchSize));
        }

        // --- Line 4: sample a batch of N hardware configurations.
        // GP-fit failures inside the sampler degrade to space-filling
        // proposals instead of aborting; surface them as fault-stat
        // deltas so interrupt rollback stays consistent.
        const std::uint64_t gp_before = sampler.gpFallbacks();
        const auto batch = sampler.sampleBatch(batch_n);
        result.faults.gpFallbacks += sampler.gpFallbacks() - gp_before;

        std::vector<std::unique_ptr<MappingRun>> runs;
        runs.reserve(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i)
            runs.push_back(env_.createRun(
                batch[i], cfg_.seed ^ (0x9e3779b97f4a7c15ULL *
                                       (iter * 1000 + i + 1))));

        // --- Lines 5-9: adaptive SW mapping search, supervised.
        std::vector<std::size_t> alive(batch.size());
        for (std::size_t i = 0; i < alive.size(); ++i)
            alive[i] = i;

        // Per-candidate fault state, persistent across SH rounds.
        struct CandidateHealth
        {
            int faults = 0;    ///< faults observed so far
            bool degraded = false;
            bool failed = false; ///< retries exhausted or fatal
        };
        std::vector<CandidateHealth> health(batch.size());

        auto grow_to = [&](const std::vector<std::size_t> &set,
                           int budget) {
            std::vector<double> task_seconds(set.size(), 0.0);
            std::vector<FaultStats> job_faults(set.size());
            // Each job owns one MappingRun, so the round's jobs run
            // concurrently on host threads without synchronization
            // and deterministically (Sec. 3.5). A job supervises its
            // candidate: faults are caught and classified, retries
            // get capped exponential backoff (charged as search
            // cost), repeated faults degrade the PPA engine, and
            // exhausted candidates fall back to penalty PPA instead
            // of aborting the search.
            std::vector<std::function<void()>> jobs;
            jobs.reserve(set.size());
            for (std::size_t i = 0; i < set.size(); ++i) {
                jobs.push_back([&, i] {
                    const std::size_t idx = set[i];
                    MappingRun &run = *runs[idx];
                    CandidateHealth &hs = health[idx];
                    FaultStats &fs = job_faults[i];
                    if (hs.failed)
                        return; // penalty fallback: no more work
                    double seconds = 0.0;
                    int attempts = 0;
                    int target = budget;
                    common::CancelToken eval_token;
                    for (;;) {
                        if (poll_interrupt())
                            break; // abandoned; the trial rolls back
                        const double before = run.chargedSeconds();
                        const int spent_before = run.spent();
                        auto st = common::EvalStatus::Ok;
                        bool corrupt = false;
                        std::uint64_t watch_id = 0;
                        if (watchdog &&
                            cfg_.evalWallDeadlineSeconds > 0.0)
                            watch_id = watchdog->watch(
                                eval_token,
                                cfg_.evalWallDeadlineSeconds,
                                common::CancelReason::EvalDeadline);
                        try {
                            // Chunked stepping is bit-identical to
                            // one large step (the engine advances one
                            // sweep at a time) but gives the watchdog
                            // and the shutdown path cooperative
                            // cancellation points.
                            constexpr int kChunk = 4;
                            while (run.spent() < target) {
                                if (eval_token.cancelled() ||
                                    run_token.cancelled())
                                    break;
                                const int chunk_before = run.spent();
                                run.step(std::min(
                                    kChunk, target - run.spent()));
                                if (run.spent() == chunk_before)
                                    break; // stalled; guarded below
                            }
                            // Corrupted-result detection: garbage
                            // PPA (NaN/negative) must never reach
                            // the archive or the surrogate.
                            if (!run.bestPpa().valid()) {
                                st = common::EvalStatus::Transient;
                                corrupt = true;
                            }
                        } catch (const common::EvalFault &f) {
                            st = f.status();
                        } catch (const std::exception &) {
                            st = common::EvalStatus::Fatal;
                        }
                        // release() is atomic with expiry: once it
                        // returns, the watchdog holds no reference to
                        // eval_token. false = the deadline fired.
                        const bool expired =
                            watch_id != 0 &&
                            !watchdog->release(watch_id);
                        seconds += run.chargedSeconds() - before;
                        if (run_token.cancelled())
                            break; // interrupted; trial is discarded
                        if ((expired || eval_token.cancelled()) &&
                            st == common::EvalStatus::Ok &&
                            run.spent() < target)
                            st = common::EvalStatus::Timeout;
                        eval_token.reset();
                        if (st == common::EvalStatus::Ok) {
                            if (run.spent() >= target)
                                break; // healthy and complete
                            if (run.spent() == spent_before) {
                                // No fault, no progress: broken
                                // engine; do not spin forever.
                                st = common::EvalStatus::Fatal;
                            } else {
                                continue;
                            }
                        }
                        // --- Fault path: classify, then recover.
                        ++hs.faults;
                        switch (st) {
                          case common::EvalStatus::Timeout:
                            ++fs.timeout;
                            break;
                          case common::EvalStatus::Fatal:
                            ++fs.fatal;
                            break;
                          default:
                            if (corrupt)
                                ++fs.corrupt;
                            else
                                ++fs.transient;
                        }
                        if (st == common::EvalStatus::Fatal ||
                            attempts >= cfg_.recovery.maxRetries) {
                            hs.failed = true;
                            ++fs.penalized;
                            break;
                        }
                        ++attempts;
                        ++fs.retries;
                        // Capped exponential backoff, charged to the
                        // virtual clock like any other search cost.
                        seconds += std::min(
                            cfg_.recovery.backoffCapSeconds,
                            cfg_.recovery.backoffBaseSeconds *
                                std::pow(2.0, attempts - 1));
                        // Degradation ladder: repeated faults on one
                        // candidate drop it from the cycle-level
                        // simulator to the analytical rung.
                        if (!hs.degraded &&
                            hs.faults >=
                                cfg_.recovery.degradeAfterFaults &&
                            run.degradeToAnalytical()) {
                            hs.degraded = true;
                            ++fs.degradations;
                        }
                        // A corrupted incumbent with the budget fully
                        // spent needs one repair re-evaluation.
                        if (corrupt && run.spent() >= target)
                            target = run.spent() + 1;
                    }
                    task_seconds[i] = seconds;
                });
            }
            if (round_pool != nullptr)
                common::runParallel(jobs, *round_pool, &run_token);
            else
                common::runParallel(jobs, cfg_.realThreads, &run_token);
            for (const auto &fs : job_faults)
                result.faults.merge(fs);
            clock.chargeParallel(task_seconds);
        };

        // Drop penalty-fallback candidates from an alive set so SH
        // rounds proceed with the N-f survivors.
        auto drop_failed = [&](std::vector<std::size_t> &set) {
            std::vector<std::size_t> healthy;
            healthy.reserve(set.size());
            for (std::size_t idx : set)
                if (!health[idx].failed)
                    healthy.push_back(idx);
            set = std::move(healthy);
        };

        if (cfg_.budgetMode == BudgetMode::FullBudget) {
            grow_to(alive, std::max(cfg_.sh.bMax, min_budget));
        } else {
            for (int j = 1; j <= rounds && !alive.empty(); ++j) {
                const int budget =
                    roundBudget(cfg_.sh, j, rounds, min_budget);
                grow_to(alive, budget);
                if (poll_interrupt())
                    break; // survivor stats may be half-grown
                drop_failed(alive);
                if (j == rounds || alive.empty())
                    break;
                // Survivor selection by TV (and AUC under MSH).
                std::vector<double> tv, auc;
                tv.reserve(alive.size());
                auc.reserve(alive.size());
                for (std::size_t idx : alive) {
                    tv.push_back(runs[idx]->bestLossHistory().back());
                    auc.push_back(
                        convergenceAuc(runs[idx]->bestLossHistory()));
                }
                // MSH/SH keep kFrac of the set; Hyperband brackets
                // keep 1/eta per round.
                const double keep_frac =
                    cfg_.budgetMode == BudgetMode::Hyperband
                        ? 1.0 / cfg_.sh.eta
                        : cfg_.sh.kFrac;
                const auto k = std::max<std::size_t>(
                    1, static_cast<std::size_t>(std::floor(
                           keep_frac *
                           static_cast<double>(alive.size()))));
                const std::size_t p =
                    cfg_.budgetMode == BudgetMode::MSH
                        ? static_cast<std::size_t>(std::floor(
                              cfg_.sh.pFrac *
                              static_cast<double>(alive.size())))
                        : 0;
                const auto keep = selectSurvivors(tv, auc, k, p);
                std::vector<std::size_t> next;
                next.reserve(keep.size());
                for (std::size_t local : keep)
                    next.push_back(alive[local]);
                alive = std::move(next);
            }
        }

        // --- Graceful interrupt: drain happened inside runParallel
        // (queued jobs skipped, started jobs finished). Discard the
        // partial trial entirely — clock charges and fault counters
        // included — so the checkpoint holds the last completed-trial
        // state and a resume replays the straight run bit-for-bit.
        if (poll_interrupt()) {
            clock.restore(snap_seconds, snap_evals);
            result.faults = snap_faults;
            if (need_sampler_snap)
                sampler.restoreState(snap_sampler);
            result.interrupted = true;
            result.interruptReason =
                common::toString(run_token.reason());
            break;
        }

        // --- Assess the batch: final PPA, robustness, constraints.
        std::vector<moo::Objectives> batch_y(batch.size());
        std::vector<std::size_t> record_idx(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            HwEvalRecord rec;
            rec.hw = batch[i];
            rec.ppa = runs[i]->bestPpa();
            rec.budgetSpent = runs[i]->spent();
            rec.iteration = iter;
            rec.faults = health[i].faults;
            rec.degraded = health[i].degraded;
            // Penalty fallback: a candidate whose supervisor gave up
            // (or whose incumbent is still corrupt after repair) is
            // recorded as infeasible so the penalty objectives keep
            // the surrogate informed without poisoning the archive.
            if (health[i].failed || !rec.ppa.valid()) {
                rec.ppa = accel::Ppa::infeasible();
                rec.penalized = true;
            }
            // R is always recorded (it is cheap and Sec. 4.3 inspects
            // it even for runs trained without it); useRobustness
            // only controls whether it becomes a 4th objective.
            rec.sensitivity = runs[i]->sensitivity(cfg_.alpha);
            rec.constraintOk =
                rec.ppa.feasible &&
                rec.ppa.powerMw <= env_.powerBudgetMw() &&
                rec.ppa.areaMm2 <= env_.areaBudgetMm2();
            rec.fullySearched = rec.budgetSpent >= cfg_.sh.bMax;

            if (rec.ppa.feasible) {
                batch_y[i] = {rec.ppa.latencyMs, rec.ppa.powerMw,
                              rec.ppa.areaMm2};
                if (cfg_.useRobustness)
                    batch_y[i].push_back(rec.sensitivity);
            } else {
                batch_y[i] = penaltyObjectives(num_obj);
            }

            record_idx[i] = result.records.size();
            result.records.push_back(std::move(rec));
        }

        // --- Lines 10-12: surrogate update and Pareto maintenance.
        for (std::size_t i = 0; i < batch.size(); ++i)
            sampler.observe(batch[i], batch_y[i], false);

        std::vector<std::size_t> hf_local;
        switch (cfg_.updateMode) {
          case UpdateMode::All:
            for (std::size_t i = 0; i < batch.size(); ++i)
                hf_local.push_back(i);
            break;
          case UpdateMode::Champion: {
            std::size_t best = 0;
            double best_v = std::numeric_limits<double>::infinity();
            for (std::size_t i = 0; i < batch.size(); ++i) {
                const double v = moo::parego(
                    sampler.normalize(batch_y[i]), champion_w);
                if (v < best_v) {
                    best_v = v;
                    best = i;
                }
            }
            hf_local.push_back(best);
            break;
          }
          case UpdateMode::HighFidelity: {
            std::vector<moo::Objectives> normalized;
            normalized.reserve(batch.size());
            for (const auto &y : batch_y)
                normalized.push_back(sampler.normalize(y));
            hf_local = selector.select(normalized);
            break;
          }
        }
        for (std::size_t local : hf_local) {
            const std::size_t obs_index =
                sampler.observations() - batch.size() + local;
            sampler.setHighFidelity(obs_index, true);
            result.records[record_idx[local]].highFidelity = true;
        }

        // Every constraint-satisfying sample is a real (HW, mapping)
        // design point and enters the archive; the min-distance
        // *representative* is restricted to fully-searched designs.
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const auto &rec = result.records[record_idx[i]];
            if (rec.constraintOk) {
                result.front.insert({rec.ppa.latencyMs, rec.ppa.powerMw,
                                     rec.ppa.areaMm2},
                                    record_idx[i]);
            }
        }

        clock.chargeOverhead(1.0); // surrogate refit bookkeeping
        result.trace.push_back(
            TracePoint{clock.hours(), result.front.points()});

        // --- Checkpoint cadence: persist the complete resumable
        // state every checkpointEvery finished trials (CRC trailer,
        // fsync + atomic rename, rotation window).
        completed_iters = iter + 1;
        const int every = std::max(cfg_.checkpointEvery, 1);
        if ((completed_iters - start_iter) % every == 0)
            save_checkpoint(completed_iters);
    }

    if (watchdog && run_watch_id != 0)
        watchdog->release(run_watch_id);
    // An interrupt that lands exactly on an iteration boundary needs
    // no rollback but is still an early exit.
    if (!result.interrupted && run_token.cancelled()) {
        result.interrupted = true;
        result.interruptReason = common::toString(run_token.reason());
    }
    // Final save: cover trials completed since the last cadence save
    // (also the drain path of an interrupted run).
    if (!cfg_.checkpointPath.empty() &&
        completed_iters != last_saved_iter)
        save_checkpoint(completed_iters);

    result.totalHours = clock.hours();
    // Count actual PPA queries (budget spent), not scheduled jobs.
    result.evaluations = 0;
    for (const auto &rec : result.records)
        result.evaluations += static_cast<std::uint64_t>(rec.budgetSpent);
    if (const accel::EvalCache *cache = env_.evalCache())
        result.cacheStats = cache->stats();
    result.surrogateStats = env_.surrogateStats();
    // Snapshot at the very end (after any rollback restored
    // result.faults): transport counters live in the env, not in the
    // per-iteration fault ledger, so an interrupted-iteration
    // rollback must not erase them.
    result.faults.transport = env_.transportStats();
    return result;
}

} // namespace unico::core
