/**
 * @file
 * Transport seam of the evaluation fleet.
 *
 * The fleet protocol (framed request / response with op-history
 * replay, core/fleet) does not care how worker channels come to
 * exist — forked locally over an AF_UNIX socketpair, or dialed in
 * over TCP from another host. FleetTransport is that seam: it
 * produces connected worker channels and disposes of them, and the
 * worker pool supervises whatever it gets. Two implementations live
 * in fleet.cc: the zygote transport (PR 6 behavior, fork-on-demand)
 * and the TCP transport (a net::TcpFleetListener adopting remote
 * workers as they handshake in).
 *
 * open() is a blocking call and is ALWAYS invoked outside the pool
 * lock: a TCP reconnect can legitimately wait seconds for a
 * partitioned worker to dial back, and that wait must never stall
 * requests to healthy workers.
 */

#ifndef UNICO_CORE_FLEET_TRANSPORT_HH
#define UNICO_CORE_FLEET_TRANSPORT_HH

#include <cstdint>

namespace unico::core {

/** One connected worker conversation, however it was produced. */
struct WorkerChannel
{
    int fd = -1;
    /** Worker pid when the transport forked it locally (the pool may
     *  SIGKILL it on faults); <= 0 for remote workers. */
    std::int64_t pid = -1;
    /** Remote worker's session id — stable across reconnects of the
     *  same worker process. 0 for local workers. */
    std::uint64_t session = 0;
    /** 0 on a worker's first connect; > 0 means this adoption is a
     *  reconnect of a previously-seen session (counted as a
     *  reconnect, not a respawn, and its resident runs are warm). */
    std::uint64_t epoch = 0;
    /** True when the peer is on the far side of a network. */
    bool remote = false;
};

/** Produces and disposes of worker channels for the pool. */
class FleetTransport
{
  public:
    virtual ~FleetTransport() = default;

    /** False when the transport can never produce another channel
     *  (zygote dead, listener failed to bind). */
    virtual bool ok() const = 0;

    /**
     * Produce one connected channel, waiting up to @p wait_seconds.
     * Blocking; called outside the pool lock. Returns false on
     * failure (budget/deadline handling is the pool's job).
     */
    virtual bool open(WorkerChannel &out, double wait_seconds) = 0;

    /** Dispose of a channel's fd (never kills the process). */
    virtual void close(WorkerChannel &ch) = 0;

    /** True when a failed open() may succeed if retried (a remote
     *  worker may still dial in); false when failure is terminal
     *  (the zygote cannot fork). */
    virtual bool retryableOpenFailure() const = 0;

    /** Transport name for diagnostics. */
    virtual const char *name() const = 0;

    /** Bound TCP port (resolves ":0"), or -1 for local transports. */
    virtual int listenPort() const { return -1; }
};

} // namespace unico::core

#endif // UNICO_CORE_FLEET_TRANSPORT_HH
