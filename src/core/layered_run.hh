/**
 * @file
 * Backend-agnostic multi-layer mapping run.
 *
 * Every platform binding (spatial + analytical model, Ascend-like +
 * cycle-level simulator, future backends) shares the same network-
 * level machinery: one budgeted mapping search per unique layer
 * shape, stepped round-robin; count-weighted PPA aggregation over
 * the per-layer incumbents; MACs-weighted sensitivity; and the
 * fidelity-degradation hook. LayeredMappingRun implements all of it
 * once, parameterized by a small LayeredRunPolicy that supplies the
 * per-layer search engine, the virtual-cost charging rule and the
 * area model — the only parts that actually differ per platform.
 *
 * Determinism contract (shared by every backend): per-layer search
 * seeds derive from the run seed via one common::Rng draw per layer
 * in layer order, and each sweep steps every layer exactly once
 * before the network loss is recorded. Refactoring an env onto this
 * core must keep its trajectories bit-identical (covered by the
 * golden-CSV parity test).
 */

#ifndef UNICO_CORE_LAYERED_RUN_HH
#define UNICO_CORE_LAYERED_RUN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/cancel.hh"
#include "core/env.hh"
#include "mapping/engine.hh"
#include "workload/network.hh"

namespace unico::core {

/** Latency penalty (ms) for a layer with no feasible mapping yet. */
constexpr double kUnmappedLatencyMs = 1e7;

/**
 * One budgeted mapping search over a single layer shape. The two
 * backend search runs (mapping::SearchRun, camodel::CubeSearchRun)
 * expose this duck-typed surface already; LayerSearchAdapter lifts
 * either behind a common virtual interface.
 */
class LayerSearch
{
  public:
    virtual ~LayerSearch() = default;

    virtual void step(int evals) = 0;
    virtual int spent() const = 0;
    virtual const mapping::MappingEval &bestEval() const = 0;
    virtual const std::vector<double> &bestLossHistory() const = 0;
    virtual const std::vector<mapping::SamplePoint> &samples() const = 0;
};

/** Virtual-interface adapter over a concrete per-layer search run. */
template <typename Run>
class LayerSearchAdapter final : public LayerSearch
{
  public:
    explicit LayerSearchAdapter(std::unique_ptr<Run> run)
        : run_(std::move(run))
    {
    }

    void step(int evals) override { run_->step(evals); }
    int spent() const override { return run_->spent(); }
    const mapping::MappingEval &
    bestEval() const override
    {
        return run_->bestEval();
    }
    const std::vector<double> &
    bestLossHistory() const override
    {
        return run_->bestLossHistory();
    }
    const std::vector<mapping::SamplePoint> &
    samples() const override
    {
        return run_->samples();
    }

  private:
    std::unique_ptr<Run> run_;
};

/**
 * The per-backend part of a multi-layer run: how to start one
 * layer's search, how evaluation cost is charged, and which area
 * model applies. Owned by the LayeredMappingRun it parameterizes.
 */
class LayeredRunPolicy
{
  public:
    virtual ~LayeredRunPolicy() = default;

    /**
     * Begin the budgeted mapping search for layer @p layer. The seed
     * is the layer's draw from the run-level seeder; evaluator
     * lambdas created here may capture `this` (the policy outlives
     * every layer search it starts).
     */
    virtual std::unique_ptr<LayerSearch>
    startLayer(std::size_t layer, std::uint64_t seed) = 0;

    /**
     * Fixed virtual seconds charged per layer evaluation by the
     * shared core (immediately after each per-layer step). Return a
     * negative value when the cost is evaluation-dependent; the
     * policy then reports it through charge() from inside its
     * evaluators instead.
     */
    virtual double fixedEvalSeconds() const { return -1.0; }

    /** Silicon area (mm^2) of the hardware sample under search. */
    virtual double areaMm2() const = 0;

    /** Fidelity-degradation hook; see MappingRun::degradeToAnalytical. */
    virtual bool degradeToAnalytical() { return false; }

  protected:
    /** Charge evaluation-dependent virtual cost to the owning run. */
    void
    charge(double seconds)
    {
        *chargeSink_ += seconds;
    }

  private:
    friend class LayeredMappingRun;

    double *chargeSink_ = nullptr;
};

/**
 * Multi-layer mapping run shared by every backend: one budgeted
 * search per unique layer shape, stepped round-robin; the recorded
 * loss is the count-weighted network latency under the current
 * per-layer incumbents.
 */
class LayeredMappingRun final : public MappingRun
{
  public:
    /**
     * @param layers the count-weighted layer set (owned by the env;
     *        must outlive the run).
     * @param policy backend binding; the run takes ownership.
     * @param seed   run-level seed; per-layer seeds are drawn from it
     *        in layer order.
     * @param cancel optional job-cancellation token (not owned; must
     *        outlive the run). step() polls it at sweep boundaries
     *        and returns early once cancelled, so a cancelled job
     *        stops paying for mapping search mid-call instead of at
     *        the driver's next chunk boundary. Completed sweeps are
     *        never torn: spent() and the loss history stay
     *        consistent, and an uncancelled run is bit-identical to
     *        one constructed without a token.
     */
    LayeredMappingRun(const std::vector<workload::WeightedOp> &layers,
                      std::unique_ptr<LayeredRunPolicy> policy,
                      std::uint64_t seed,
                      const common::CancelToken *cancel = nullptr);

    void step(int sweeps) override;
    int spent() const override;
    accel::Ppa bestPpa() const override;
    const std::vector<double> &bestLossHistory() const override;
    double sensitivity(double alpha) const override;
    double chargedSeconds() const override;
    bool degradeToAnalytical() override;

  private:
    double networkLoss() const;

    const std::vector<workload::WeightedOp> &layers_;
    std::unique_ptr<LayeredRunPolicy> policy_;
    const common::CancelToken *cancel_ = nullptr;
    std::vector<std::unique_ptr<LayerSearch>> runs_;
    std::vector<double> lossHistory_;
    std::size_t cursor_ = 0;
    double chargedSeconds_ = 0.0;
};

/**
 * The dominant count-weighted layer set of a workload list — the
 * common first step of every env constructor.
 */
std::vector<workload::WeightedOp>
collectDominantLayers(const std::vector<workload::Network> &networks,
                      std::size_t maxShapesPerNetwork);

/**
 * Order-sensitive digest of a count-weighted layer set; stamped into
 * checkpoints so --resume can refuse a different workload stack.
 */
std::uint64_t
layersDigest(const std::vector<workload::WeightedOp> &layers);

} // namespace unico::core

#endif // UNICO_CORE_LAYERED_RUN_HH
