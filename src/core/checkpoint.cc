#include "core/checkpoint.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/crc64.hh"
#include "common/io.hh"

namespace unico::core {

namespace {

using common::Json;

/** Infinity-safe double encoding (JSON has no Inf literal). */
Json
numberOrInf(double v)
{
    if (v == std::numeric_limits<double>::infinity())
        return Json("inf");
    if (v == -std::numeric_limits<double>::infinity())
        return Json("-inf");
    return Json(v);
}

double
parseNumberOrInf(const Json &j)
{
    if (j.isString()) {
        if (j.asString() == "inf")
            return std::numeric_limits<double>::infinity();
        if (j.asString() == "-inf")
            return -std::numeric_limits<double>::infinity();
        throw std::runtime_error("checkpoint: bad number literal '" +
                                 j.asString() + "'");
    }
    return j.asDouble();
}

Json
objectivesToJson(const moo::Objectives &y)
{
    Json arr = Json::array();
    for (double v : y)
        arr.push(v);
    return arr;
}

moo::Objectives
objectivesFromJson(const Json &j)
{
    moo::Objectives y;
    y.reserve(j.size());
    for (std::size_t i = 0; i < j.size(); ++i)
        y.push_back(j.at(i).asDouble());
    return y;
}

Json
hwToJson(const accel::HwPoint &h)
{
    Json arr = Json::array();
    for (std::size_t axis : h)
        arr.push(axis);
    return arr;
}

accel::HwPoint
hwFromJson(const Json &j)
{
    accel::HwPoint h;
    h.reserve(j.size());
    for (std::size_t i = 0; i < j.size(); ++i)
        h.push_back(static_cast<std::size_t>(j.at(i).asInt()));
    return h;
}

Json
recordToJson(const HwEvalRecord &rec)
{
    Json j = Json::object();
    j["hw"] = hwToJson(rec.hw);
    j["latencyMs"] = rec.ppa.latencyMs;
    j["powerMw"] = rec.ppa.powerMw;
    j["areaMm2"] = rec.ppa.areaMm2;
    j["energyMj"] = rec.ppa.energyMj;
    j["feasible"] = rec.ppa.feasible;
    j["sensitivity"] = rec.sensitivity;
    j["budgetSpent"] = rec.budgetSpent;
    j["constraintOk"] = rec.constraintOk;
    j["fullySearched"] = rec.fullySearched;
    j["highFidelity"] = rec.highFidelity;
    j["iteration"] = rec.iteration;
    j["faults"] = rec.faults;
    j["degraded"] = rec.degraded;
    j["penalized"] = rec.penalized;
    return j;
}

HwEvalRecord
recordFromJson(const Json &j)
{
    HwEvalRecord rec;
    rec.hw = hwFromJson(j.at("hw"));
    rec.ppa.latencyMs = j.at("latencyMs").asDouble();
    rec.ppa.powerMw = j.at("powerMw").asDouble();
    rec.ppa.areaMm2 = j.at("areaMm2").asDouble();
    rec.ppa.energyMj = j.at("energyMj").asDouble();
    rec.ppa.feasible = j.at("feasible").asBool();
    rec.sensitivity = j.at("sensitivity").asDouble();
    rec.budgetSpent = static_cast<int>(j.at("budgetSpent").asInt());
    rec.constraintOk = j.at("constraintOk").asBool();
    rec.fullySearched = j.at("fullySearched").asBool();
    rec.highFidelity = j.at("highFidelity").asBool();
    rec.iteration = static_cast<int>(j.at("iteration").asInt());
    rec.faults = static_cast<int>(j.at("faults").asInt());
    rec.degraded = j.at("degraded").asBool();
    rec.penalized = j.at("penalized").asBool();
    return rec;
}

Json
faultsToJson(const FaultStats &f)
{
    Json j = Json::object();
    j["transient"] = static_cast<std::size_t>(f.transient);
    j["timeout"] = static_cast<std::size_t>(f.timeout);
    j["corrupt"] = static_cast<std::size_t>(f.corrupt);
    j["fatal"] = static_cast<std::size_t>(f.fatal);
    j["retries"] = static_cast<std::size_t>(f.retries);
    j["degradations"] = static_cast<std::size_t>(f.degradations);
    j["penalized"] = static_cast<std::size_t>(f.penalized);
    j["gpFallbacks"] = static_cast<std::size_t>(f.gpFallbacks);
    j["checkpointRecoveries"] =
        static_cast<std::size_t>(f.checkpointRecoveries);
    // f.transport is deliberately NOT serialized: transport faults
    // are recovered transparently by the fleet, so a checkpoint (and
    // therefore a resume) must be byte-identical whether or not
    // workers were killed along the way.
    return j;
}

std::uint64_t
countOrZero(const Json &j, const char *key)
{
    return j.has(key) ? static_cast<std::uint64_t>(j.at(key).asInt())
                      : 0;
}

FaultStats
faultsFromJson(const Json &j)
{
    FaultStats f;
    f.transient = static_cast<std::uint64_t>(j.at("transient").asInt());
    f.timeout = static_cast<std::uint64_t>(j.at("timeout").asInt());
    f.corrupt = static_cast<std::uint64_t>(j.at("corrupt").asInt());
    f.fatal = static_cast<std::uint64_t>(j.at("fatal").asInt());
    f.retries = static_cast<std::uint64_t>(j.at("retries").asInt());
    f.degradations =
        static_cast<std::uint64_t>(j.at("degradations").asInt());
    f.penalized = static_cast<std::uint64_t>(j.at("penalized").asInt());
    // Absent in version-1 documents.
    f.gpFallbacks = countOrZero(j, "gpFallbacks");
    f.checkpointRecoveries = countOrZero(j, "checkpointRecoveries");
    return f;
}

} // namespace

std::string
configFingerprint(const DriverConfig &cfg)
{
    std::ostringstream oss;
    // maxIter is deliberately excluded: per-trial behaviour depends
    // only on the trial index, so a checkpoint taken after k trials
    // resumes under any maxIter > k (a killed run does not know how
    // many trials it completed).
    oss << cfg.name << '|' << cfg.batchSize << '|'
        << cfg.sh.bMax << '|' << cfg.sh.eta << '|' << cfg.sh.kFrac << '|'
        << cfg.sh.pFrac << '|' << toString(cfg.budgetMode) << '|'
        << toString(cfg.updateMode) << '|' << cfg.useRobustness << '|'
        << cfg.alpha << '|' << cfg.randomFraction << '|'
        << cfg.ardSurrogate << '|' << cfg.workers << '|'
        << cfg.minBudgetPerRound << '|' << common::hexU64(cfg.seed)
        << '|' << cfg.recovery.maxRetries << '|'
        << cfg.recovery.backoffBaseSeconds << '|'
        << cfg.recovery.backoffCapSeconds << '|'
        << cfg.recovery.degradeAfterFaults;
    return oss.str();
}

StackIdentity
StackIdentity::of(const CoSearchEnv &env)
{
    StackIdentity id;
    id.backend = env.backendName();
    id.scenario = env.scenarioName();
    const std::uint64_t digest = env.workloadDigest();
    id.workloadDigest = digest != 0 ? common::hexU64(digest) : "";
    return id;
}

CheckpointIoStatus
checkpointCompatibility(const SearchCheckpoint &ck,
                        const std::string &liveConfigKey,
                        const StackIdentity &live)
{
    if (ck.configKey != liveConfigKey)
        return CheckpointIoStatus::failure(
            "produced by a different configuration");
    // Stack identity: empty fields (legacy documents, ad-hoc envs)
    // are unknown rather than different — skip them.
    if (!ck.backend.empty() && !live.backend.empty() &&
        ck.backend != live.backend)
        return CheckpointIoStatus::failure(
            "backend mismatch: checkpoint was produced by backend '" +
            ck.backend + "', live run uses '" + live.backend + "'");
    if (!ck.scenario.empty() && !live.scenario.empty() &&
        ck.scenario != live.scenario)
        return CheckpointIoStatus::failure(
            "scenario mismatch: checkpoint was produced under '" +
            ck.scenario + "', live run uses '" + live.scenario + "'");
    if (!ck.workloadDigest.empty() && !live.workloadDigest.empty() &&
        ck.workloadDigest != live.workloadDigest)
        return CheckpointIoStatus::failure(
            "workload mismatch: checkpoint digest " + ck.workloadDigest +
            " != live digest " + live.workloadDigest);
    return CheckpointIoStatus::success();
}

common::Json
toJson(const SearchCheckpoint &ck)
{
    Json doc = Json::object();
    doc["version"] = ck.version;
    doc["configKey"] = ck.configKey;
    doc["backend"] = ck.backend;
    doc["scenario"] = ck.scenario;
    doc["workloadDigest"] = ck.workloadDigest;
    doc["completedIterations"] = ck.completedIterations;
    doc["clockSeconds"] = ck.clockSeconds;
    doc["clockEvaluations"] =
        static_cast<std::size_t>(ck.clockEvaluations);
    doc["sampler"] = ck.samplerState;

    Json sel = Json::object();
    sel["vBest"] = numberOrInf(ck.selector.vBest);
    sel["uul"] = numberOrInf(ck.selector.uul);
    Json dist = Json::array();
    for (double d : ck.selector.distances)
        dist.push(d);
    sel["distances"] = std::move(dist);
    doc["selector"] = std::move(sel);

    Json records = Json::array();
    for (const auto &rec : ck.result.records)
        records.push(recordToJson(rec));
    doc["records"] = std::move(records);

    Json front = Json::array();
    for (const auto &entry : ck.result.front.entries()) {
        Json e = Json::object();
        e["objectives"] = objectivesToJson(entry.objectives);
        e["id"] = static_cast<std::size_t>(entry.id);
        front.push(std::move(e));
    }
    doc["front"] = std::move(front);

    Json trace = Json::array();
    for (const auto &tp : ck.result.trace) {
        Json t = Json::object();
        t["hours"] = tp.hours;
        Json pts = Json::array();
        for (const auto &y : tp.front)
            pts.push(objectivesToJson(y));
        t["front"] = std::move(pts);
        trace.push(std::move(t));
    }
    doc["trace"] = std::move(trace);

    doc["faults"] = faultsToJson(ck.result.faults);
    return doc;
}

SearchCheckpoint
checkpointFromJson(const common::Json &doc)
{
    SearchCheckpoint ck;
    ck.version = static_cast<int>(doc.at("version").asInt());
    if (ck.version < 1 || ck.version > 3)
        throw std::runtime_error(
            "checkpoint: unsupported version " +
            std::to_string(ck.version));
    ck.configKey = doc.at("configKey").asString();
    // Stack identity fields are new in version 3; older documents
    // leave them empty (= unknown) and stay resumable.
    ck.backend = doc.has("backend") ? doc.at("backend").asString() : "";
    ck.scenario =
        doc.has("scenario") ? doc.at("scenario").asString() : "";
    ck.workloadDigest = doc.has("workloadDigest")
                            ? doc.at("workloadDigest").asString()
                            : "";
    ck.completedIterations =
        static_cast<int>(doc.at("completedIterations").asInt());
    ck.clockSeconds = doc.at("clockSeconds").asDouble();
    ck.clockEvaluations =
        static_cast<std::uint64_t>(doc.at("clockEvaluations").asInt());
    ck.samplerState = doc.at("sampler");

    const Json &sel = doc.at("selector");
    ck.selector.vBest = parseNumberOrInf(sel.at("vBest"));
    ck.selector.uul = parseNumberOrInf(sel.at("uul"));
    ck.selector.distances.clear();
    const Json &dist = sel.at("distances");
    for (std::size_t i = 0; i < dist.size(); ++i)
        ck.selector.distances.push_back(dist.at(i).asDouble());

    const Json &records = doc.at("records");
    for (std::size_t i = 0; i < records.size(); ++i)
        ck.result.records.push_back(recordFromJson(records.at(i)));

    std::vector<moo::ParetoFront::Entry> entries;
    const Json &front = doc.at("front");
    for (std::size_t i = 0; i < front.size(); ++i) {
        const Json &e = front.at(i);
        entries.push_back(moo::ParetoFront::Entry{
            objectivesFromJson(e.at("objectives")),
            static_cast<std::uint64_t>(e.at("id").asInt())});
    }
    ck.result.front.restore(std::move(entries));

    const Json &trace = doc.at("trace");
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Json &t = trace.at(i);
        TracePoint tp;
        tp.hours = t.at("hours").asDouble();
        const Json &pts = t.at("front");
        for (std::size_t p = 0; p < pts.size(); ++p)
            tp.front.push_back(objectivesFromJson(pts.at(p)));
        ck.result.trace.push_back(std::move(tp));
    }

    ck.result.faults = faultsFromJson(doc.at("faults"));
    return ck;
}

namespace {

constexpr const char *kCrcPrefix = "#crc64:";

/** Directory part of a path ("." when the path has no slash). */
std::string
dirnameOf(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

std::string
errnoMessage(const std::string &what, const std::string &path)
{
    return what + " '" + path + "': " + std::strerror(errno);
}

/** Write @p bytes to @p path and flush them to stable storage. */
CheckpointIoStatus
writeDurable(const std::string &path, const std::string &bytes)
{
#if defined(_WIN32)
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    if (!out)
        return CheckpointIoStatus::failure("cannot open '" + path + "'");
    out << bytes;
    out.flush();
    if (!out.good())
        return CheckpointIoStatus::failure("write failed '" + path + "'");
    return CheckpointIoStatus::success();
#else
    // O_CLOEXEC: checkpoint descriptors must never leak into fleet
    // worker processes forked while a save is in flight.
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        return CheckpointIoStatus::failure(errnoMessage("open", path));
    if (common::writeFull(fd, bytes) != common::IoStatus::Ok) {
        const auto st =
            CheckpointIoStatus::failure(errnoMessage("write", path));
        ::close(fd);
        return st;
    }
    // fsync before rename: otherwise a power loss can surface the
    // new name with zero-length contents.
    if (::fsync(fd) != 0) {
        const auto st =
            CheckpointIoStatus::failure(errnoMessage("fsync", path));
        ::close(fd);
        return st;
    }
    if (::close(fd) != 0)
        return CheckpointIoStatus::failure(errnoMessage("close", path));
    return CheckpointIoStatus::success();
#endif
}

/** Persist the directory entry (rename durability). */
void
syncDirectory(const std::string &dir)
{
#if !defined(_WIN32)
    const int dfd =
        ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
        ::fsync(dfd); // best effort: some filesystems refuse dir fsync
        ::close(dfd);
    }
#else
    (void)dir;
#endif
}

bool
fileExists(const std::string &path)
{
    std::ifstream in(path);
    return static_cast<bool>(in);
}

} // namespace

std::string
rotatedCheckpointPath(const std::string &path, int n)
{
    return n <= 0 ? path : path + "." + std::to_string(n);
}

CheckpointIoStatus
saveCheckpointFile(const std::string &path, const SearchCheckpoint &ck)
{
    std::string body = toJson(ck).dump(2);
    body += "\n";
    std::ostringstream trailer;
    trailer << kCrcPrefix << common::hexU64(common::crc64(body)) << "\n";
    body += trailer.str();

    const std::string tmp = path + ".tmp";
    if (auto st = writeDurable(tmp, body); !st)
        return st;
    // Atomic replace: a kill mid-write leaves the previous checkpoint
    // intact.
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return CheckpointIoStatus::failure(
            errnoMessage("rename", tmp + " -> " + path));
    syncDirectory(dirnameOf(path));
    return CheckpointIoStatus::success();
}

CheckpointIoStatus
saveCheckpointRotated(const std::string &path, const SearchCheckpoint &ck,
                      int keep)
{
    // Shift generations oldest-first so every intermediate state
    // keeps each surviving generation under exactly one name; a kill
    // between renames at worst leaves a gap the fallback walk skips.
    for (int n = keep - 2; n >= 0; --n) {
        const std::string from = rotatedCheckpointPath(path, n);
        if (!fileExists(from))
            continue;
        const std::string to = rotatedCheckpointPath(path, n + 1);
        if (std::rename(from.c_str(), to.c_str()) != 0)
            return CheckpointIoStatus::failure(
                errnoMessage("rotate", from + " -> " + to));
    }
    return saveCheckpointFile(path, ck);
}

std::optional<SearchCheckpoint>
loadCheckpointFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string raw = buf.str();

    // The integrity trailer is the last line; everything before it is
    // the checksummed document. A missing trailer means the file was
    // truncated (or predates the trailer format) — reject it rather
    // than trust unverifiable state.
    const auto pos = raw.rfind(kCrcPrefix);
    if (pos == std::string::npos ||
        (pos != 0 && raw[pos - 1] != '\n'))
        throw std::runtime_error("checkpoint '" + path +
                                 "': missing integrity trailer "
                                 "(truncated or legacy file)");
    const std::string body = raw.substr(0, pos);
    std::string hex = raw.substr(pos + std::strlen(kCrcPrefix));
    while (!hex.empty() && (hex.back() == '\n' || hex.back() == '\r'))
        hex.pop_back();
    if (hex.empty())
        throw std::runtime_error("checkpoint '" + path +
                                 "': malformed integrity trailer");
    const std::uint64_t expected = common::parseHexU64(hex);
    const std::uint64_t actual = common::crc64(body);
    if (actual != expected)
        throw std::runtime_error(
            "checkpoint '" + path + "': CRC mismatch (stored " + hex +
            ", computed " + common::hexU64(actual) +
            "); file is truncated or corrupt");
    return checkpointFromJson(common::Json::parse(body));
}

std::optional<RecoveredCheckpoint>
loadNewestValidCheckpoint(const std::string &path, int keep)
{
    RecoveredCheckpoint out;
    bool any_exists = false;
    const int window = std::max(keep, 1);
    for (int n = 0; n < window; ++n) {
        const std::string gen = rotatedCheckpointPath(path, n);
        try {
            auto ck = loadCheckpointFile(gen);
            if (!ck.has_value())
                continue; // gap in the window: keep walking
            any_exists = true;
            out.checkpoint = std::move(*ck);
            out.path = gen;
            out.generation = n;
            return out;
        } catch (const std::exception &e) {
            any_exists = true;
            out.rejected.push_back(e.what());
        }
    }
    if (!any_exists)
        return std::nullopt;
    std::string all;
    for (const auto &msg : out.rejected)
        all += "\n  " + msg;
    throw std::runtime_error(
        "no valid checkpoint in the rotation window of '" + path +
        "':" + all);
}

} // namespace unico::core
