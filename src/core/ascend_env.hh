/**
 * @file
 * Ascend-like co-search environment (Sec. 4.6): the cube-core design
 * space, the depth-first buffer-fusion mapping search and the
 * cycle-level simulator as the (expensive) PPA engine. Each query
 * charges minutes of virtual search cost, reproducing the economics
 * that make UNICO's fast convergence matter on industrial platforms.
 */

#ifndef UNICO_CORE_ASCEND_ENV_HH
#define UNICO_CORE_ASCEND_ENV_HH

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "accel/ascend.hh"
#include "camodel/simulator.hh"
#include "common/cancel.hh"
#include "core/env.hh"
#include "workload/network.hh"

namespace unico::core {

/** Construction options for AscendEnv. */
struct AscendEnvOptions
{
    /** Edge-device chip area constraint of Sec. 4.6. */
    double areaBudgetMm2 = 200.0;
    std::size_t maxShapesPerNetwork = 5;
    camodel::CubeTech tech;
    /** Shared evaluation cache (owned by the caller, e.g. the CLI);
     *  nullptr disables memoization. Results are bit-identical with
     *  or without it — only wall-clock changes. */
    accel::EvalCache *cache = nullptr;
    /** Learned surrogate screening context (owned by the caller);
     *  nullptr or options.enabled == false keeps the exact-only path
     *  byte-identical to builds without the surrogate. */
    surrogate::SurrogateContext *surrogate = nullptr;
    /** Per-job cancellation token (owned by the caller); threaded
     *  into every MappingRun for mid-sweep early return. nullptr
     *  keeps the historical non-cancellable runs. */
    const common::CancelToken *cancel = nullptr;
};

/** Ascend-like co-search environment. */
class AscendEnv : public CoSearchEnv
{
  public:
    AscendEnv(std::vector<workload::Network> networks,
              AscendEnvOptions opt = AscendEnvOptions{});

    const accel::DesignSpace &hwSpace() const override;
    std::unique_ptr<MappingRun>
    createRun(const accel::HwPoint &h, std::uint64_t seed) const override;
    double areaBudgetMm2() const override { return opt_.areaBudgetMm2; }
    std::string describeHw(const accel::HwPoint &h) const override;
    const accel::EvalCache *evalCache() const override
    {
        return opt_.cache;
    }
    surrogate::SurrogateStats surrogateStats() const override
    {
        return opt_.surrogate != nullptr
                   ? opt_.surrogate->snapshot()
                   : surrogate::SurrogateStats{};
    }
    /** Every SH round must seed each unique layer shape once. */
    int minSeedBudget() const override
    {
        return std::max<int>(1, static_cast<int>(layers_.size()));
    }
    std::string backendName() const override { return "ascend"; }
    std::string scenarioName() const override;
    std::uint64_t workloadDigest() const override;
    /** The hand-designed cube-core reference point of Fig. 11. */
    std::optional<accel::HwPoint> expertDefault() const override;

    /** The typed Ascend design space. */
    const accel::AscendDesignSpace &ascendSpace() const { return space_; }

    /** The cycle-level PPA engine. */
    const camodel::CycleAccurateModel &model() const { return model_; }

    /** The count-weighted layer set being co-optimized. */
    const std::vector<workload::WeightedOp> &layers() const
    {
        return layers_;
    }

  private:
    AscendEnvOptions opt_;
    accel::AscendDesignSpace space_;
    camodel::CycleAccurateModel model_;
    std::vector<workload::WeightedOp> layers_;
    std::vector<camodel::CubeMappingSpace> mapSpaces_;
};

} // namespace unico::core

#endif // UNICO_CORE_ASCEND_ENV_HH
