#include "core/sh.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/statistics.hh"

namespace unico::core {

std::vector<std::size_t>
selectSurvivors(const std::vector<double> &tv,
                const std::vector<double> &auc, std::size_t k,
                std::size_t p)
{
    assert(tv.size() == auc.size());
    const std::size_t n = tv.size();
    k = std::min(k, n);
    p = std::min(p, k);

    const auto tv_order = common::argsortAscending(tv);
    const auto auc_order = common::argsortDescending(auc);

    std::vector<bool> taken(n, false);
    std::vector<std::size_t> survivors;
    survivors.reserve(k);

    // Top-(k - p) by terminal value.
    for (std::size_t i = 0; i < n && survivors.size() < k - p; ++i) {
        const std::size_t idx = tv_order[i];
        if (!taken[idx]) {
            taken[idx] = true;
            survivors.push_back(idx);
        }
    }
    // Top-p by AUC, skipping candidates already promoted by TV
    // (the disjointness constraint of Sec. 3.3).
    for (std::size_t i = 0; i < n && survivors.size() < k; ++i) {
        const std::size_t idx = auc_order[i];
        if (!taken[idx]) {
            taken[idx] = true;
            survivors.push_back(idx);
        }
    }
    // Backfill from TV if AUC ties exhausted the pool early.
    for (std::size_t i = 0; i < n && survivors.size() < k; ++i) {
        const std::size_t idx = tv_order[i];
        if (!taken[idx]) {
            taken[idx] = true;
            survivors.push_back(idx);
        }
    }
    return survivors;
}

int
roundBudget(const ShConfig &cfg, int j, int rounds, int min_budget)
{
    assert(j >= 1 && j <= rounds);
    const double b = static_cast<double>(cfg.bMax) *
                     std::pow(cfg.eta, -(rounds - j));
    return std::max(static_cast<int>(std::floor(b)), min_budget);
}

int
shRounds(std::size_t n)
{
    if (n <= 1)
        return 1;
    return static_cast<int>(
        std::ceil(std::log2(static_cast<double>(n))));
}

double
convergenceAuc(const std::vector<double> &best_loss_history)
{
    if (best_loss_history.size() < 2)
        return 0.0;
    std::vector<double> logged;
    logged.reserve(best_loss_history.size());
    for (double v : best_loss_history)
        logged.push_back(std::log10(std::max(v, 1e-15)));
    return common::aucAboveTerminal(logged);
}

} // namespace unico::core
