#include "core/job_manager.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/cli.hh"
#include "common/fault.hh"
#include "common/shard_cache.hh"
#include "common/shutdown.hh"
#include "core/backend.hh"
#include "core/fault_env.hh"
#include "core/report.hh"
#include "surrogate/learned_model.hh"
#include "workload/model_zoo.hh"
#include "workload/parser.hh"

namespace unico::core {

const char *
toString(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Paused: return "paused";
      case JobState::Completed: return "completed";
      case JobState::Cancelled: return "cancelled";
      case JobState::Failed: return "failed";
    }
    return "?";
}

bool
isTerminal(JobState state)
{
    return state == JobState::Completed ||
           state == JobState::Cancelled || state == JobState::Failed;
}

const char *
toString(SubmitError error)
{
    switch (error) {
      case SubmitError::None: return "none";
      case SubmitError::BadSpec: return "bad-spec";
      case SubmitError::QueueFull: return "queue-full";
      case SubmitError::ShuttingDown: return "shutting-down";
    }
    return "?";
}

namespace {

std::vector<std::string>
stringArray(const common::Json &value)
{
    std::vector<std::string> out;
    if (value.isString()) {
        out.push_back(value.asString());
        return out;
    }
    for (std::size_t i = 0; i < value.size(); ++i)
        out.push_back(value.at(i).asString());
    return out;
}

} // namespace

JobSpec
jobSpecFromJson(const common::Json &doc)
{
    if (!doc.isObject())
        throw std::runtime_error("job spec must be a JSON object");
    JobSpec spec;
    for (const auto &[key, value] : doc.members()) {
        try {
            if (key == "name") {
                spec.name = value.asString();
            } else if (key == "model" || key == "models") {
                for (auto &m : stringArray(value))
                    spec.models.push_back(std::move(m));
            } else if (key == "workload" || key == "workloads") {
                for (auto &w : stringArray(value))
                    spec.workloads.push_back(std::move(w));
            } else if (key == "backend") {
                spec.backend = value.asString();
            } else if (key == "scenario") {
                spec.scenario = value.asString();
            } else if (key == "engine") {
                spec.engine = value.asString();
            } else if (key == "area_budget") {
                spec.areaBudgetMm2 = value.asDouble();
            } else if (key == "max_shapes") {
                spec.maxShapes = value.asInt();
            } else if (key == "algo") {
                spec.algo = value.asString();
            } else if (key == "batch") {
                spec.batch = static_cast<int>(value.asInt());
            } else if (key == "iters") {
                spec.iters = static_cast<int>(value.asInt());
            } else if (key == "bmax") {
                spec.bmax = static_cast<int>(value.asInt());
            } else if (key == "seed") {
                spec.seed = static_cast<std::uint64_t>(value.asInt());
            } else if (key == "threads") {
                spec.threads =
                    static_cast<std::size_t>(value.asInt());
            } else if (key == "checkpoint") {
                spec.checkpoint = value.asString();
            } else if (key == "resume") {
                spec.resume = value.asBool();
            } else if (key == "checkpoint_every") {
                spec.checkpointEvery =
                    static_cast<int>(value.asInt());
            } else if (key == "checkpoint_keep") {
                spec.checkpointKeep = static_cast<int>(value.asInt());
            } else if (key == "csv_prefix") {
                spec.csvPrefix = value.asString();
            } else if (key == "fault_rate") {
                spec.faultRate = value.asDouble();
            } else if (key == "hang_rate") {
                spec.hangRate = value.asDouble();
            } else if (key == "corrupt_rate") {
                spec.corruptRate = value.asDouble();
            } else if (key == "fault_seed") {
                spec.faultSeed =
                    static_cast<std::uint64_t>(value.asInt());
            } else if (key == "surrogate_keep") {
                spec.surrogateKeep = value.asDouble();
            } else {
                throw std::runtime_error("unknown field");
            }
        } catch (const std::exception &e) {
            throw std::runtime_error("job-spec field '" + key +
                                     "': " + e.what());
        }
    }
    return spec;
}

common::Json
toJson(const JobSpec &spec)
{
    common::Json doc = common::Json::object();
    if (!spec.name.empty())
        doc["name"] = spec.name;
    common::Json models = common::Json::array();
    for (const auto &m : spec.models)
        models.push(m);
    doc["models"] = std::move(models);
    common::Json workloads = common::Json::array();
    for (const auto &w : spec.workloads)
        workloads.push(w);
    doc["workloads"] = std::move(workloads);
    doc["backend"] = spec.backend;
    if (!spec.scenario.empty())
        doc["scenario"] = spec.scenario;
    if (!spec.engine.empty())
        doc["engine"] = spec.engine;
    if (spec.areaBudgetMm2 > 0.0)
        doc["area_budget"] = spec.areaBudgetMm2;
    if (spec.maxShapes > 0)
        doc["max_shapes"] = spec.maxShapes;
    doc["algo"] = spec.algo;
    doc["batch"] = spec.batch;
    doc["iters"] = spec.iters;
    doc["bmax"] = spec.bmax;
    doc["seed"] = static_cast<std::int64_t>(spec.seed);
    doc["threads"] = spec.threads;
    if (!spec.checkpoint.empty()) {
        doc["checkpoint"] = spec.checkpoint;
        doc["resume"] = spec.resume;
        doc["checkpoint_every"] = spec.checkpointEvery;
        doc["checkpoint_keep"] = spec.checkpointKeep;
    }
    if (!spec.csvPrefix.empty())
        doc["csv_prefix"] = spec.csvPrefix;
    if (spec.faultRate > 0.0)
        doc["fault_rate"] = spec.faultRate;
    if (spec.hangRate > 0.0)
        doc["hang_rate"] = spec.hangRate;
    if (spec.corruptRate > 0.0)
        doc["corrupt_rate"] = spec.corruptRate;
    if (spec.faultRate > 0.0 || spec.hangRate > 0.0 ||
        spec.corruptRate > 0.0)
        doc["fault_seed"] = static_cast<std::int64_t>(spec.faultSeed);
    if (spec.surrogateKeep > 0.0)
        doc["surrogate_keep"] = spec.surrogateKeep;
    return doc;
}

common::Json
toJson(const JobStatus &status)
{
    common::Json doc = common::Json::object();
    doc["id"] = static_cast<std::int64_t>(status.id);
    if (!status.name.empty())
        doc["name"] = status.name;
    doc["state"] = toString(status.state);
    doc["iteration"] = status.iteration;
    doc["max_iterations"] = status.maxIterations;
    doc["hours"] = status.hours;
    doc["evaluations"] = static_cast<std::int64_t>(status.evaluations);
    doc["front_size"] = status.frontSize;
    doc["records"] = status.records;
    doc["events"] = status.events;
    doc["interrupted"] = status.interrupted;
    if (!status.error.empty())
        doc["error"] = status.error;
    return doc;
}

namespace {

/**
 * Synthesize the CLI flag set a spec's backend options correspond to
 * and run it through parseBackendOptions — the exact validation and
 * defaulting path co_search_cli uses, so the server and the CLI
 * accept and reject backend options identically.
 */
core::BackendOptions
backendOptionsFor(const JobSpec &spec)
{
    std::vector<std::string> argv = {"job-spec"};
    auto add = [&](const char *flag, std::string value) {
        argv.emplace_back(flag);
        argv.push_back(std::move(value));
    };
    if (!spec.scenario.empty())
        add("--scenario", spec.scenario);
    if (!spec.engine.empty())
        add("--engine", spec.engine);
    if (spec.areaBudgetMm2 > 0.0)
        add("--area-budget", std::to_string(spec.areaBudgetMm2));
    if (spec.maxShapes > 0)
        add("--max-shapes", std::to_string(spec.maxShapes));
    std::vector<const char *> ptrs;
    ptrs.reserve(argv.size());
    for (const auto &arg : argv)
        ptrs.push_back(arg.c_str());
    const common::CliArgs args(static_cast<int>(ptrs.size()),
                               ptrs.data());
    return parseBackendOptions(spec.backend, args);
}

/** First validation failure of a spec, or empty when acceptable. */
std::string
validateSpec(const JobSpec &spec)
{
    if (spec.models.empty() && spec.workloads.empty())
        return "spec needs at least one model or workload";
    if (spec.batch < 1 || spec.iters < 1 || spec.bmax < 1)
        return "batch, iters and bmax must be >= 1";
    if (spec.threads < 1 || spec.threads > 256)
        return "threads must be 1..256";
    if (spec.resume && spec.checkpoint.empty())
        return "resume requires a checkpoint path";
    if (spec.checkpointEvery < 1 || spec.checkpointKeep < 1)
        return "checkpoint_every and checkpoint_keep must be >= 1";
    if (spec.surrogateKeep < 0.0 || spec.surrogateKeep > 1.0)
        return "surrogate_keep must be in [0, 1]";
    if (spec.faultRate < 0.0 || spec.faultRate > 1.0 ||
        spec.hangRate < 0.0 || spec.hangRate > 1.0 ||
        spec.corruptRate < 0.0 || spec.corruptRate > 1.0)
        return "fault rates must be in [0, 1]";
    try {
        driverConfigForAlgo(spec.algo);
    } catch (const std::exception &e) {
        return e.what();
    }
    try {
        backendOptionsFor(spec);
    } catch (const std::exception &e) {
        return e.what();
    }
    return {};
}

} // namespace

/** One managed job: spec, isolated context, life-cycle state and the
 *  replayable progress-event log. Guarded by JobManager::mu_. */
struct JobManager::Job
{
    std::uint64_t id = 0;
    JobSpec spec;
    JobContext ctx;
    JobState state = JobState::Queued;
    bool pauseRequested = false;
    std::string error;
    std::vector<ProgressEvent> events;
    std::optional<CoSearchResult> result;
    /** Signaled on state transitions, pause/resume and new events. */
    std::condition_variable cv;
};

JobManager::JobManager(JobManagerConfig cfg) : cfg_(cfg)
{
    cfg_.maxConcurrent = std::max<std::size_t>(cfg_.maxConcurrent, 1);
    schedulers_.reserve(cfg_.maxConcurrent);
    for (std::size_t i = 0; i < cfg_.maxConcurrent; ++i)
        schedulers_.emplace_back([this] { schedulerLoop(); });
}

JobManager::~JobManager()
{
    shutdown();
    for (auto &t : schedulers_)
        t.join();
    // Tokens outlive their fan-out registration: unregister every
    // job's token (idempotent) only after all schedulers stopped.
    if (cfg_.shutdownFanout)
        for (auto &[id, job] : jobs_)
            common::unregisterShutdownToken(job->ctx.cancel);
}

SubmitResult
JobManager::submit(JobSpec spec)
{
    if (const std::string why = validateSpec(spec); !why.empty())
        return SubmitResult{0, SubmitError::BadSpec, why};

    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_)
        return SubmitResult{0, SubmitError::ShuttingDown,
                            "manager is shutting down"};
    if (queuedCount_ >= cfg_.maxQueued)
        return SubmitResult{
            0, SubmitError::QueueFull,
            "queue full (" + std::to_string(queuedCount_) +
                " jobs queued, bound " +
                std::to_string(cfg_.maxQueued) + ")"};

    auto job = std::make_unique<Job>();
    job->id = nextId_++;
    job->spec = std::move(spec);
    job->ctx.seed = job->spec.seed;
    job->ctx.checkpointPrefix = job->spec.checkpoint;
    if (cfg_.shutdownFanout)
        common::registerShutdownToken(job->ctx.cancel);
    const std::uint64_t id = job->id;
    queue_.push_back(id);
    ++queuedCount_;
    jobs_.emplace(id, std::move(job));
    workCv_.notify_one();
    return SubmitResult{id, SubmitError::None, {}};
}

bool
JobManager::cancel(std::uint64_t id, common::CancelReason reason)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || isTerminal(it->second->state))
        return false;
    Job &job = *it->second;
    job.ctx.cancel.cancel(reason);
    if (job.state == JobState::Queued) {
        // Never started: terminal immediately; the scheduler skips
        // the stale queue entry when it reaches it.
        job.state = JobState::Cancelled;
        job.error = common::toString(reason);
    }
    job.pauseRequested = false; // a paused job must wake to drain
    job.cv.notify_all();
    return true;
}

bool
JobManager::pause(std::uint64_t id)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || isTerminal(it->second->state) ||
        it->second->ctx.cancel.cancelled())
        return false;
    it->second->pauseRequested = true;
    it->second->cv.notify_all();
    return true;
}

bool
JobManager::resume(std::uint64_t id)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || isTerminal(it->second->state))
        return false;
    it->second->pauseRequested = false;
    it->second->cv.notify_all();
    return true;
}

JobStatus
JobManager::statusLocked(const Job &job) const
{
    JobStatus st;
    st.id = job.id;
    st.name = job.spec.name.empty() ? job.spec.algo : job.spec.name;
    st.state = job.state;
    st.maxIterations = job.spec.iters;
    st.events = job.events.size();
    if (!job.events.empty()) {
        const auto &last = job.events.back();
        st.iteration = last.iteration;
        st.hours = last.hours;
        st.evaluations = last.evaluations;
        st.frontSize = last.frontSize;
        st.records = last.records;
    }
    if (job.result)
        st.interrupted = job.result->interrupted;
    st.error = job.error;
    return st;
}

std::optional<JobStatus>
JobManager::status(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return statusLocked(*it->second);
}

std::vector<JobStatus>
JobManager::list() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<JobStatus> out;
    out.reserve(jobs_.size());
    for (const auto &[id, job] : jobs_)
        out.push_back(statusLocked(*job));
    return out;
}

std::optional<JobStatus>
JobManager::wait(std::uint64_t id)
{
    std::unique_lock<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    Job &job = *it->second;
    job.cv.wait(lk, [&] { return isTerminal(job.state); });
    return statusLocked(job);
}

std::vector<ProgressEvent>
JobManager::eventsSince(std::uint64_t id, std::size_t from)
{
    std::unique_lock<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return {};
    Job &job = *it->second;
    job.cv.wait(lk, [&] {
        return job.events.size() > from || isTerminal(job.state);
    });
    std::vector<ProgressEvent> out;
    for (std::size_t i = from; i < job.events.size(); ++i)
        out.push_back(job.events[i]);
    return out;
}

std::optional<CoSearchResult>
JobManager::result(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return it->second->result;
}

void
JobManager::cancelAll(common::CancelReason reason)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &[id, job] : jobs_) {
        if (isTerminal(job->state))
            continue;
        job->ctx.cancel.cancel(reason);
        if (job->state == JobState::Queued) {
            job->state = JobState::Cancelled;
            job->error = common::toString(reason);
        }
        job->pauseRequested = false;
        job->cv.notify_all();
    }
}

void
JobManager::shutdown()
{
    cancelAll(common::CancelReason::JobCancel);
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    workCv_.notify_all();
}

void
JobManager::schedulerLoop()
{
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lk(mu_);
            workCv_.wait(lk, [&] {
                return stopping_ || !queue_.empty();
            });
            while (!queue_.empty()) {
                const std::uint64_t id = queue_.front();
                queue_.pop_front();
                --queuedCount_;
                Job &candidate = *jobs_.at(id);
                if (candidate.state == JobState::Queued) {
                    job = &candidate;
                    break;
                }
            }
            if (job == nullptr) {
                if (stopping_)
                    return;
                continue;
            }
            job->state = JobState::Running;
            job->cv.notify_all();
        }
        runJob(*job);
    }
}

void
JobManager::runJob(Job &job)
{
    JobState final_state = JobState::Completed;
    std::string error;
    std::optional<CoSearchResult> final_result;
    try {
        // Everything below is private to this job and built on its
        // scheduler thread: workloads, environment, fault injector,
        // surrogate context, driver. The only shared mutable
        // resource is the (byte-neutral) evaluation cache.
        std::vector<workload::Network> nets;
        for (const auto &model : job.spec.models)
            nets.push_back(workload::makeNetwork(model));
        for (const auto &file : job.spec.workloads)
            nets.push_back(workload::parseNetworkFile(file));

        BackendOptions env_opt = backendOptionsFor(job.spec);
        env_opt.cache = cfg_.sharedCache;
        env_opt.cancel = &job.ctx.cancel;

        surrogate::SurrogateContext surrogate_ctx;
        surrogate_ctx.options.enabled = job.spec.surrogateKeep > 0.0;
        if (surrogate_ctx.options.enabled) {
            surrogate_ctx.options.keep = job.spec.surrogateKeep;
            env_opt.surrogate = &surrogate_ctx;
        }

        const std::unique_ptr<CoSearchEnv> backend_env =
            makeBackendEnv(job.spec.backend, std::move(nets), env_opt);

        common::FaultSpec fault_spec;
        fault_spec.transientRate = job.spec.faultRate;
        fault_spec.hangRate = job.spec.hangRate;
        fault_spec.corruptRate = job.spec.corruptRate;
        fault_spec.seed = job.spec.faultSeed;
        FaultyEnv faulty_env(*backend_env,
                             common::FaultPlan(fault_spec));
        CoSearchEnv &env =
            fault_spec.active()
                ? static_cast<CoSearchEnv &>(faulty_env)
                : *backend_env;

        DriverConfig cfg = driverConfigForAlgo(job.spec.algo);
        cfg.batchSize = job.spec.batch;
        cfg.maxIter = job.spec.iters;
        cfg.sh.bMax = job.spec.bmax;
        cfg.realThreads = job.spec.threads;
        cfg.seed = job.spec.seed;
        cfg.checkpointPath = job.spec.checkpoint;
        cfg.resumeFromCheckpoint = job.spec.resume;
        cfg.checkpointEvery = job.spec.checkpointEvery;
        cfg.checkpointKeep = job.spec.checkpointKeep;

        // Observer: append to the job's replayable event log under
        // the manager lock and wake streaming subscribers.
        struct Sink final : ProgressObserver
        {
            JobManager *mgr;
            Job *job;

            Sink(JobManager *m, Job *j) : mgr(m), job(j) {}

            void
            onProgress(const ProgressEvent &event) override
            {
                std::lock_guard<std::mutex> lk(mgr->mu_);
                ProgressEvent ev = event;
                ev.job = job->id;
                job->events.push_back(std::move(ev));
                job->cv.notify_all();
            }
        };
        Sink sink{this, &job};

        CoSearch search(env, cfg, &job.ctx, &sink);
        search.start();
        for (;;) {
            // Pause gate between trials: a pause request parks the
            // scheduler thread here; cancel always wins and wakes
            // the job so it can drain and checkpoint.
            {
                std::unique_lock<std::mutex> lk(mu_);
                while (job.pauseRequested &&
                       !job.ctx.cancel.cancelled()) {
                    if (job.state != JobState::Paused) {
                        job.state = JobState::Paused;
                        job.cv.notify_all();
                    }
                    job.cv.wait(lk);
                }
                if (job.state == JobState::Paused) {
                    job.state = JobState::Running;
                    job.cv.notify_all();
                }
            }
            if (!search.step())
                break;
        }
        CoSearchResult result = search.result();

        if (!job.spec.csvPrefix.empty()) {
            // Same writers, same order as co_search_cli — the three
            // result CSVs plus the fault ledger. cache.csv is
            // skipped: shared-cache hit counters depend on job
            // scheduling and have no per-job meaning.
            const std::string &prefix = job.spec.csvPrefix;
            bool ok =
                writeRecordsCsv(result, env,
                                prefix + "_records.csv") &&
                writeFrontCsv(result, env, prefix + "_front.csv") &&
                writeTraceCsv(result, prefix + "_trace.csv") &&
                writeFaultsCsv(result, prefix + "_faults.csv");
            if (!ok) {
                final_state = JobState::Failed;
                error = "csv write failed: " + prefix;
            }
        }
        if (final_state != JobState::Failed) {
            if (result.interrupted) {
                final_state = JobState::Cancelled;
                error = result.interruptReason;
            } else {
                final_state = JobState::Completed;
            }
        }
        final_result = std::move(result);
    } catch (const std::exception &e) {
        final_state = JobState::Failed;
        error = e.what();
    }

    std::lock_guard<std::mutex> lk(mu_);
    job.state = final_state;
    job.error = std::move(error);
    job.result = std::move(final_result);
    job.cv.notify_all();
}

} // namespace unico::core
