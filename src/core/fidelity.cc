#include "core/fidelity.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/statistics.hh"
#include "moo/scalarize.hh"

namespace unico::core {

HighFidelitySelector::HighFidelitySelector(std::vector<double> weights,
                                           double rho, double percentile)
    : weights_(std::move(weights)),
      rho_(rho),
      percentile_(percentile),
      vBest_(std::numeric_limits<double>::infinity()),
      uul_(std::numeric_limits<double>::infinity())
{
    assert(!weights_.empty());
}

double
HighFidelitySelector::scalar(const moo::Objectives &normalized_y) const
{
    return moo::parego(normalized_y, weights_, rho_);
}

std::vector<std::size_t>
HighFidelitySelector::select(
    const std::vector<moo::Objectives> &normalized_batch)
{
    std::vector<std::size_t> selected;
    if (normalized_batch.empty())
        return selected;

    // Step 1: fidelity scalar per sample; track the global best.
    std::vector<double> v(normalized_batch.size(), 0.0);
    for (std::size_t i = 0; i < normalized_batch.size(); ++i) {
        v[i] = scalar(normalized_batch[i]);
        vBest_ = std::min(vBest_, v[i]);
    }

    // Steps 2-3: distance to the best scalar; keep d <= UUL.
    std::vector<double> kept_d;
    for (std::size_t i = 0; i < normalized_batch.size(); ++i) {
        const double d = std::abs(v[i] - vBest_);
        if (d <= uul_) {
            selected.push_back(i);
            kept_d.push_back(d);
        }
    }
    // Never return an empty update set: the best sample of the batch
    // always qualifies (its distance can exceed a collapsed UUL when
    // the batch is uniformly poor).
    if (selected.empty()) {
        const std::size_t best_idx = static_cast<std::size_t>(
            std::min_element(v.begin(), v.end()) - v.begin());
        selected.push_back(best_idx);
        kept_d.push_back(std::abs(v[best_idx] - vBest_));
    }

    // Step 4: refresh the Upper Update Limit.
    distances_.insert(distances_.end(), kept_d.begin(), kept_d.end());
    uul_ = common::percentile(distances_, percentile_);
    return selected;
}

} // namespace unico::core
