#include "core/robustness.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace unico::core {

double
fTheta(double theta)
{
    const double pi = M_PI;
    return (6.0 / (pi * pi)) * theta * theta - (5.0 / pi) * theta + 1.0;
}

double
displacementAngle(double lat_opt, double pow_opt, double lat_sub,
                  double pow_sub)
{
    // Latency never increases from sub-optimal to optimal (the
    // optimum minimizes the loss), so the horizontal component is
    // |lat_sub - lat_opt| >= 0; the sign of the power change selects
    // the quadrant: decreasing power (pow_sub > pow_opt) gives
    // theta in [0, pi/2), increasing power gives (pi/2, pi].
    const double dl = std::abs(lat_sub - lat_opt);
    const double dp = pow_sub - pow_opt;
    const double theta = std::atan2(dl, dp);
    assert(theta >= 0.0 && theta <= M_PI);
    return theta;
}

double
computeSensitivity(const std::vector<mapping::SamplePoint> &samples,
                   double alpha)
{
    // Non-finite loss/PPA (an engine fault that slipped past the
    // supervisor) must not poison R: such samples carry no usable
    // evidence and are excluded like infeasible ones.
    std::vector<const mapping::SamplePoint *> feasible;
    feasible.reserve(samples.size());
    for (const auto &s : samples)
        if (s.feasible && std::isfinite(s.loss) &&
            std::isfinite(s.latencyMs) && std::isfinite(s.powerMw))
            feasible.push_back(&s);
    if (feasible.size() < 2)
        return 0.0;

    std::sort(feasible.begin(), feasible.end(),
              [](const mapping::SamplePoint *a,
                 const mapping::SamplePoint *b) {
                  return a->loss < b->loss;
              });
    const mapping::SamplePoint &opt = *feasible.front();

    // Sub-optimal: the sample at the (1 - alpha) right-tail
    // percentile of the loss history (Fig. 5a) — a mapping worse
    // than (1 - alpha) of everything the search visited. The spread
    // between it and the converged optimum measures how much the
    // achieved PPA depends on the SW search succeeding.
    const auto idx = static_cast<std::size_t>(std::min<double>(
        (1.0 - alpha) * static_cast<double>(feasible.size() - 1),
        static_cast<double>(feasible.size() - 1)));
    const mapping::SamplePoint &sub =
        *feasible[std::max<std::size_t>(idx, 1)];

    const double lat_scale = std::max(std::abs(opt.latencyMs), 1e-12);
    const double pow_scale = std::max(std::abs(opt.powerMw), 1e-12);
    const double dl = (sub.latencyMs - opt.latencyMs) / lat_scale;
    const double dp = (sub.powerMw - opt.powerMw) / pow_scale;
    const double delta = std::sqrt(dl * dl + dp * dp);

    // Feasibility hardness: a hardware sample whose mapping space is
    // mostly infeasible is *sensitive to SW search* in the most
    // direct way — a budget-limited search often fails to land in the
    // narrow feasible region at all. The feasible samples of such a
    // design cluster tightly (deceptively small Delta), so Delta
    // alone under-reports its fragility; dividing by the feasible
    // fraction restores the signal (documented in DESIGN.md as a
    // reproduction-specific extension of Eq. 2).
    const double feasible_fraction =
        static_cast<double>(feasible.size()) /
        static_cast<double>(samples.size());

    if (delta <= 0.0) {
        // No PPA variation among feasible mappings; residual
        // sensitivity comes from feasibility hardness alone.
        return (1.0 / feasible_fraction) - 1.0;
    }

    const double theta = displacementAngle(
        opt.latencyMs / lat_scale, opt.powerMw / pow_scale,
        sub.latencyMs / lat_scale, sub.powerMw / pow_scale);
    const double r = delta * (1.0 + fTheta(theta)) / feasible_fraction;
    // R feeds the surrogate as a 4th objective; keep it finite under
    // any remaining pathological input.
    return std::isfinite(r) ? r : 0.0;
}

} // namespace unico::core
