/**
 * @file
 * Distributed evaluation fleet: master/worker evaluation behind the
 * CoSearchEnv seam.
 *
 * UNICO's original deployment (Sec. 3.5) ran evaluations on a
 * master/worker cluster of four machines; this module reproduces
 * that topology with worker *processes* so a crashed, hung or
 * babbling evaluation can never take the co-search down with it.
 * FleetEnv decorates any environment: createRun() returns a proxy
 * whose step/sensitivity/degrade calls are serialized into
 * CRC-64-framed requests (common/frame) and served by worker
 * processes forked from a pre-threading zygote (common/subprocess).
 *
 * Determinism is the design invariant. A mapping run is a pure
 * function of (hardware point, seed) and of the op sequence applied
 * to it, so the master keeps each proxy's full op history and every
 * request carries it. A fresh worker — first spawn, respawn after a
 * SIGKILL, or an off-home worker serving a stolen request — replays
 * the history and lands in the bit-identical state, injected
 * evaluation faults included (the fault oracle is a pure function of
 * (stream, index)). Transport faults are therefore *transparent*:
 * trajectories, Pareto fronts and checkpoints are byte-identical to
 * the in-process run regardless of worker count, work stealing,
 * worker kills, or the circuit breaker falling back to local
 * evaluation. The TransportStats counters record what the fleet
 * absorbed without ever entering the search state.
 *
 * Placement: run affinity uses rendezvous (highest-random-weight)
 * hashing of the run fingerprint over the live workers, so each
 * worker's process-local evaluation-cache shard serves a stable
 * slice of the fingerprint space and a worker's death only moves its
 * own runs. An idle worker steals requests whose home worker is
 * busy.
 */

#ifndef UNICO_CORE_FLEET_HH
#define UNICO_CORE_FLEET_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.hh"
#include "core/env.hh"

namespace unico::core {

/** Fleet topology and transport-supervisor policy. */
struct FleetConfig
{
    /** Worker processes to fork (>= 1). */
    std::size_t workers = 4;
    /** Real-seconds deadline per request round-trip; expiry kills
     *  the worker (hang) and replays elsewhere. <= 0 disables. */
    double requestDeadlineSeconds = 30.0;
    /** Transport-level attempts per request (across respawns /
     *  steals) before the circuit breaker evaluates in-process. */
    int maxRequestRetries = 3;
    /** Circuit breaker: respawns per worker slot before the slot is
     *  declared flapping and permanently retired. When every slot is
     *  retired the whole fleet degrades to in-process evaluation. */
    int maxRespawnsPerWorker = 3;
    /** Worker-side resident-run cap (LRU evicted; evicted runs are
     *  rebuilt by history replay on their next request). */
    std::size_t workerResidentRuns = 256;
    /** Coalesce consecutive mutating ops into one framed request:
     *  step() queues locally and the batch ships on the next state
     *  read (bestPpa / history / chargedSeconds / sensitivity).
     *  Trajectories are byte-identical either way — ops queued after
     *  a faulting op are dropped exactly as the unbatched master
     *  would never have issued them — only round-trip count changes. */
    bool coalesceOps = true;

    /** Chaos testing: SIGKILL a worker before this many requests,
     *  at deterministic seeded points (0 = no chaos). The kills hit
     *  real worker processes mid-run; results must not change. */
    int chaosKills = 0;
    std::uint64_t chaosSeed = 0x5eedULL;
    /** Chaos testing: workers corrupt every Nth response frame
     *  (payload bit flip) to exercise CRC rejection (0 = off). */
    int chaosCorruptEvery = 0;
};

namespace detail {
class WorkerPool;
}

/** Master-side fleet decorator over any co-search environment. */
class FleetEnv : public CoSearchEnv
{
  public:
    /**
     * Fork the zygote and the initial worker fleet. MUST be
     * constructed while the process is single-threaded (before the
     * driver starts its pool); @p inner must outlive the wrapper.
     * If no worker can be spawned (fork limits, unsupported
     * platform) the env still works — every run silently evaluates
     * in-process and inprocFallbacks counts them.
     */
    FleetEnv(CoSearchEnv &inner, FleetConfig cfg);
    ~FleetEnv() override;

    const accel::DesignSpace &hwSpace() const override;
    std::unique_ptr<MappingRun>
    createRun(const accel::HwPoint &h, std::uint64_t seed) const override;
    double powerBudgetMw() const override;
    double areaBudgetMm2() const override;
    std::string describeHw(const accel::HwPoint &h) const override;
    int minSeedBudget() const override;
    const accel::EvalCache *evalCache() const override;
    // Stack identity is the wrapped environment's: the fleet is
    // execution topology, not search identity, so checkpoints written
    // in fleet mode resume in-process and vice versa.
    std::string backendName() const override;
    std::string scenarioName() const override;
    std::uint64_t workloadDigest() const override;
    std::optional<accel::HwPoint> expertDefault() const override;
    surrogate::SurrogateStats surrogateStats() const override;
    common::TransportStats transportStats() const override;

    /** Workers currently alive (0 = fully degraded to in-process). */
    std::size_t liveWorkers() const;

    /** Pids of the live workers (chaos harnesses kill these). */
    std::vector<std::int64_t> workerPids() const;

    const FleetConfig &config() const { return cfg_; }

  private:
    friend class RemoteRun;

    CoSearchEnv &inner_;
    FleetConfig cfg_;
    std::unique_ptr<detail::WorkerPool> pool_;
};

} // namespace unico::core

#endif // UNICO_CORE_FLEET_HH
