/**
 * @file
 * Distributed evaluation fleet: master/worker evaluation behind the
 * CoSearchEnv seam.
 *
 * UNICO's original deployment (Sec. 3.5) ran evaluations on a
 * master/worker cluster of four machines; this module reproduces
 * that topology with worker *processes* so a crashed, hung or
 * babbling evaluation can never take the co-search down with it.
 * FleetEnv decorates any environment: createRun() returns a proxy
 * whose step/sensitivity/degrade calls are serialized into
 * CRC-64-framed requests (common/frame) and served by worker
 * processes forked from a pre-threading zygote (common/subprocess).
 *
 * Determinism is the design invariant. A mapping run is a pure
 * function of (hardware point, seed) and of the op sequence applied
 * to it, so the master keeps each proxy's full op history and every
 * request carries it. A fresh worker — first spawn, respawn after a
 * SIGKILL, or an off-home worker serving a stolen request — replays
 * the history and lands in the bit-identical state, injected
 * evaluation faults included (the fault oracle is a pure function of
 * (stream, index)). Transport faults are therefore *transparent*:
 * trajectories, Pareto fronts and checkpoints are byte-identical to
 * the in-process run regardless of worker count, work stealing,
 * worker kills, or the circuit breaker falling back to local
 * evaluation. The TransportStats counters record what the fleet
 * absorbed without ever entering the search state.
 *
 * Placement: run affinity uses rendezvous (highest-random-weight)
 * hashing of the run fingerprint over the live workers, so each
 * worker's process-local evaluation-cache shard serves a stable
 * slice of the fingerprint space and a worker's death only moves its
 * own runs. An idle worker steals requests whose home worker is
 * busy.
 */

#ifndef UNICO_CORE_FLEET_HH
#define UNICO_CORE_FLEET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hh"
#include "core/env.hh"

namespace unico::core {

/** Fleet topology and transport-supervisor policy. */
struct FleetConfig
{
    /** Worker processes to fork (>= 1). */
    std::size_t workers = 4;
    /** Real-seconds deadline per request round-trip; expiry kills
     *  the worker (hang) and replays elsewhere. <= 0 disables. */
    double requestDeadlineSeconds = 30.0;
    /** Transport-level attempts per request (across respawns /
     *  steals) before the circuit breaker evaluates in-process. */
    int maxRequestRetries = 3;
    /** Circuit breaker: respawns per worker slot before the slot is
     *  declared flapping and permanently retired. When every slot is
     *  retired the whole fleet degrades to in-process evaluation. */
    int maxRespawnsPerWorker = 3;
    /** Worker-side resident-run cap (LRU evicted; evicted runs are
     *  rebuilt by history replay on their next request). */
    std::size_t workerResidentRuns = 256;
    /** Coalesce consecutive mutating ops into one framed request:
     *  step() queues locally and the batch ships on the next state
     *  read (bestPpa / history / chargedSeconds / sensitivity).
     *  Trajectories are byte-identical either way — ops queued after
     *  a faulting op are dropped exactly as the unbatched master
     *  would never have issued them — only round-trip count changes. */
    bool coalesceOps = true;

    /** Chaos testing: SIGKILL a worker before this many requests,
     *  at deterministic seeded points (0 = no chaos). The kills hit
     *  real worker processes mid-run; results must not change. */
    int chaosKills = 0;
    std::uint64_t chaosSeed = 0x5eedULL;
    /** Chaos testing: workers corrupt every Nth response frame
     *  (payload bit flip) to exercise CRC rejection (0 = off). */
    int chaosCorruptEvery = 0;

    /** Multi-host mode: non-empty "host:port" switches the fleet
     *  from forked socketpair workers to a TCP listener that adopts
     *  remote workers as they dial in (":0" picks a free port). */
    std::string listenAddr;
    /** TCP: how long the master waits for each *initial* worker to
     *  connect before starting with a smaller fleet. */
    double connectWaitSeconds = 30.0;
    /** TCP: write the bound port here the moment the listener is up —
     *  BEFORE waiting for workers, who need it to dial in (the
     *  chicken-and-egg a ":0" port otherwise creates). Empty = off. */
    std::string listenPortFile;
    /** TCP: how long each reopen attempt waits for a partitioned /
     *  killed worker to dial back in. Each failed attempt consumes
     *  one unit of the slot's maxRespawnsPerWorker budget and counts
     *  a ConnectFailure, feeding the circuit breaker. */
    double reconnectWaitSeconds = 5.0;
};

/** Options for a remote worker process (see runFleetWorkerClient). */
struct FleetWorkerOptions
{
    /** Master address to dial ("host:port"). */
    std::string connectAddr;
    /** Per-attempt connect + handshake deadline. */
    double connectDeadlineSeconds = 10.0;
    /** Jittered exponential reconnect backoff: base * 2^k, capped. */
    double reconnectBaseSeconds = 0.05;
    double reconnectMaxSeconds = 2.0;
    /** Consecutive failed connect attempts before giving up. */
    int maxReconnectAttempts = 10;
    /** Resident-run / chaos knobs applied inside the worker. */
    FleetConfig cfg;
};

/**
 * Run this process as a remote fleet worker: dial the master, serve
 * framed evaluation requests over TCP, and on disconnection (network
 * fault, hard partition, master-side kill of the channel) reconnect
 * with jittered exponential backoff under a bumped session epoch —
 * resident runs survive the reconnect, and op-history replay makes
 * resumption exactly-once. Returns a process exit code: 0 after a
 * clean shutdown ("bye" from the master, or the master going away
 * after at least one successful session), 1 when the master was
 * never reachable, 2 when the master rejected this worker's stack
 * identity (wrong backend/scenario/workload).
 */
int runFleetWorkerClient(const CoSearchEnv &env,
                         const FleetWorkerOptions &opts);

/** Rendezvous (highest-random-weight) score of worker slot @p slot
 *  for the run key (@p hi, @p lo). Exposed so placement stability is
 *  unit-testable: scores are pure, so the argmax over alive slots is
 *  deterministic across processes and removing one slot only moves
 *  the runs whose argmax was that slot. */
std::uint64_t rendezvousScore(std::uint64_t hi, std::uint64_t lo,
                              std::size_t slot);

/** Home slot for a run key: argmax of rendezvousScore over slots
 *  where @p alive is true; -1 when none are. */
int rendezvousHome(std::uint64_t hi, std::uint64_t lo,
                   const std::vector<bool> &alive);

namespace detail {
class WorkerPool;
}

/** Master-side fleet decorator over any co-search environment. */
class FleetEnv : public CoSearchEnv
{
  public:
    /**
     * Fork the zygote and the initial worker fleet. MUST be
     * constructed while the process is single-threaded (before the
     * driver starts its pool); @p inner must outlive the wrapper.
     * If no worker can be spawned (fork limits, unsupported
     * platform) the env still works — every run silently evaluates
     * in-process and inprocFallbacks counts them.
     */
    FleetEnv(CoSearchEnv &inner, FleetConfig cfg);
    ~FleetEnv() override;

    const accel::DesignSpace &hwSpace() const override;
    std::unique_ptr<MappingRun>
    createRun(const accel::HwPoint &h, std::uint64_t seed) const override;
    double powerBudgetMw() const override;
    double areaBudgetMm2() const override;
    std::string describeHw(const accel::HwPoint &h) const override;
    int minSeedBudget() const override;
    const accel::EvalCache *evalCache() const override;
    // Stack identity is the wrapped environment's: the fleet is
    // execution topology, not search identity, so checkpoints written
    // in fleet mode resume in-process and vice versa.
    std::string backendName() const override;
    std::string scenarioName() const override;
    std::uint64_t workloadDigest() const override;
    std::optional<accel::HwPoint> expertDefault() const override;
    surrogate::SurrogateStats surrogateStats() const override;
    common::TransportStats transportStats() const override;

    /** Workers currently alive (0 = fully degraded to in-process). */
    std::size_t liveWorkers() const;

    /** Pids of the live workers (chaos harnesses kill these). */
    std::vector<std::int64_t> workerPids() const;

    /** Bound TCP port in multi-host mode (resolves ":0"), else -1. */
    int listenPort() const;

    const FleetConfig &config() const { return cfg_; }

  private:
    friend class RemoteRun;

    CoSearchEnv &inner_;
    FleetConfig cfg_;
    std::unique_ptr<detail::WorkerPool> pool_;
};

} // namespace unico::core

#endif // UNICO_CORE_FLEET_HH
