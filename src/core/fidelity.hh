/**
 * @file
 * The High Fidelity Update Rule of Sec. 3.2.
 *
 * After each MOBO trial, only hardware samples whose ParEGO fidelity
 * scalar lies within the adaptive Upper Update Limit (UUL) of the
 * best scalar seen so far are used to update the surrogate model:
 *
 *   1. v = v_ParEGO(Y)                            (Eq. 1)
 *   2. d = | v - v_best |
 *   3. select samples with d <= UUL; add their d to the set D
 *   4. UUL <- 95th percentile of D
 *
 * UUL tends to shrink over trials, giving progressively stricter,
 * more exploitative surrogate updates.
 */

#ifndef UNICO_CORE_FIDELITY_HH
#define UNICO_CORE_FIDELITY_HH

#include <cstddef>
#include <vector>

#include "moo/pareto.hh"

namespace unico::core {

/** Stateful implementation of the High Fidelity Update Rule. */
class HighFidelitySelector
{
  public:
    /**
     * @param weights importance weights of Eq. (1); must sum to 1.
     * @param rho augmentation coefficient of Eq. (1).
     * @param percentile UUL refresh percentile (paper: 95).
     */
    explicit HighFidelitySelector(std::vector<double> weights,
                                  double rho = 0.2,
                                  double percentile = 95.0);

    /**
     * Select the high-fidelity subset of a batch.
     *
     * @param normalized_batch batch objective vectors, min-max
     *        normalized into [0,1]^d (the caller owns normalization
     *        so the scalar is comparable across trials).
     * @return indices of selected samples, in batch order. The first
     *         trial (UUL not yet set) selects every sample.
     */
    std::vector<std::size_t>
    select(const std::vector<moo::Objectives> &normalized_batch);

    /** Current Upper Update Limit (infinity before the first trial). */
    double uul() const { return uul_; }

    /** Best (smallest) fidelity scalar seen so far. */
    double bestScalar() const { return vBest_; }

    /** Fidelity scalar of a single objective vector (Eq. 1). */
    double scalar(const moo::Objectives &normalized_y) const;

    /** Mutable rule state, exposed for checkpoint/resume. */
    struct State
    {
        double vBest;
        double uul;
        std::vector<double> distances;
    };

    /** Snapshot the rule state. */
    State
    saveState() const
    {
        return State{vBest_, uul_, distances_};
    }

    /** Restore a snapshot taken with saveState(). */
    void
    restoreState(const State &st)
    {
        vBest_ = st.vBest;
        uul_ = st.uul;
        distances_ = st.distances;
    }

  private:
    std::vector<double> weights_;
    double rho_;
    double percentile_;
    double vBest_;
    double uul_;
    std::vector<double> distances_; ///< the set D
};

} // namespace unico::core

#endif // UNICO_CORE_FIDELITY_HH
