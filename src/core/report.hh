/**
 * @file
 * Result reporting: export a CoSearchResult (records, Pareto front,
 * convergence trace) to CSV files for offline analysis/plotting, and
 * summarize a search in a human-readable digest.
 */

#ifndef UNICO_CORE_REPORT_HH
#define UNICO_CORE_REPORT_HH

#include <string>

#include "core/driver.hh"
#include "core/env.hh"

namespace unico::core {

/** Compact per-search summary statistics. */
struct SearchSummary
{
    std::size_t samples = 0;          ///< HW configurations evaluated
    std::size_t feasible = 0;         ///< with a feasible mapping
    std::size_t constraintOk = 0;     ///< within power/area budgets
    std::size_t frontSize = 0;        ///< archived Pareto points
    std::size_t fullySearched = 0;    ///< received the full b_max
    double totalHours = 0.0;
    std::uint64_t evaluations = 0;    ///< SW search budget spent
    double bestLatencyMs = 0.0;       ///< over constraint-ok samples
    double bestPowerMw = 0.0;
    double bestAreaMm2 = 0.0;
    double meanSensitivity = 0.0;     ///< mean R over feasible samples
};

/** Compute summary statistics of a finished search. */
SearchSummary summarize(const CoSearchResult &result);

/** Render the summary as a short multi-line string. */
std::string toString(const SearchSummary &summary);

/**
 * Write the per-record table as CSV:
 * iteration, hw (description), latency, power, area, sensitivity,
 * budget, constraint_ok, fully_searched, high_fidelity.
 * @return false on I/O failure.
 */
bool writeRecordsCsv(const CoSearchResult &result, const CoSearchEnv &env,
                     const std::string &path);

/** Write the Pareto front as CSV (hw, latency, power, area). */
bool writeFrontCsv(const CoSearchResult &result, const CoSearchEnv &env,
                   const std::string &path);

/** Write the convergence trace as CSV (hours, front_size,
 *  best_latency, best_power). */
bool writeTraceCsv(const CoSearchResult &result, const std::string &path);

/**
 * Write the evaluation-cache counters as a one-row CSV (hits, misses,
 * hit_rate, insertions, evictions, entries, bytes, capacity_bytes,
 * shards). Kept separate from the records/front CSVs so those stay
 * byte-identical with the cache on or off.
 */
bool writeCacheCsv(const CoSearchResult &result, const std::string &path);

/**
 * Write the fault ledger as a one-row CSV: the evaluation-fault
 * categories the supervisor handled (transient, timeout, corrupt,
 * fatal, retries, degradations, penalized, gp_fallbacks,
 * ckpt_recoveries) followed by the transport categories the fleet
 * absorbed (worker_crashes, request_timeouts, worker_hangs,
 * torn_frames, corrupt_frames, worker_respawns, work_steals,
 * inproc_fallbacks). Kept separate from the records/front/trace CSVs
 * so those stay byte-identical across execution topologies.
 */
bool writeFaultsCsv(const CoSearchResult &result, const std::string &path);

} // namespace unico::core

#endif // UNICO_CORE_REPORT_HH
