/**
 * @file
 * Open-source-platform co-search environment: the spatial template
 * (Fig. 1), a FlexTensor/GAMMA-style mapping search engine and the
 * analytical (MAESTRO-style) PPA model. Supports multi-workload
 * co-optimization: the aggregated objective is the count-weighted
 * sum over the dominant unique layer shapes of every input network.
 */

#ifndef UNICO_CORE_SPATIAL_ENV_HH
#define UNICO_CORE_SPATIAL_ENV_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "accel/spatial.hh"
#include "common/cancel.hh"
#include "core/env.hh"
#include "costmodel/analytical.hh"
#include "mapping/engine.hh"
#include "workload/network.hh"

namespace unico::common {
class LazyThreadPool;
} // namespace unico::common

namespace unico::core {

/** Construction options for SpatialEnv. */
struct SpatialEnvOptions
{
    accel::Scenario scenario = accel::Scenario::Edge;
    mapping::EngineKind engine = mapping::EngineKind::Annealing;
    /** Dominant unique layer shapes kept per network (bounds the
     *  per-HW mapping-search work; layers are count-weighted so the
     *  latency profile is preserved). */
    std::size_t maxShapesPerNetwork = 6;
    costmodel::TechParams tech;
    /** Shared evaluation cache (owned by the caller, e.g. the CLI);
     *  nullptr disables memoization. Results are bit-identical with
     *  or without it — only wall-clock changes. */
    accel::EvalCache *cache = nullptr;
    /** Learned surrogate screening context (owned by the caller);
     *  nullptr or options.enabled == false keeps the exact-only path
     *  byte-identical to builds without the surrogate. */
    surrogate::SurrogateContext *surrogate = nullptr;
    /** Shared cold-evaluation pool handle (owned by the caller);
     *  non-null enables batched evaluation of the engines'
     *  evaluation-independent phases (Random sampling, Annealing
     *  exploration, Genetic seeding). The deterministic batch
     *  contract keeps trajectories byte-identical to serial; only
     *  wall-clock changes. Lazy so it is fork-safe under the
     *  evaluation fleet: each evaluating process materializes its own
     *  pool on first use. Must be a different pool from any pool
     *  whose jobs create or step runs of this env (a job must never
     *  wait on a batch submitted to its own pool). */
    common::LazyThreadPool *evalPool = nullptr;
    /** Per-job cancellation token (owned by the caller, e.g. a
     *  JobContext); threaded into every MappingRun the env creates so
     *  a cancelled job stops mid-sweep instead of at the driver's
     *  next chunk boundary. nullptr (the default) keeps runs
     *  non-cancellable from inside, exactly as before. */
    const common::CancelToken *cancel = nullptr;
};

/** Spatial-accelerator co-search environment. */
class SpatialEnv : public CoSearchEnv
{
  public:
    SpatialEnv(std::vector<workload::Network> networks,
               SpatialEnvOptions opt = SpatialEnvOptions{});

    const accel::DesignSpace &hwSpace() const override;
    std::unique_ptr<MappingRun>
    createRun(const accel::HwPoint &h, std::uint64_t seed) const override;
    double powerBudgetMw() const override;
    std::string describeHw(const accel::HwPoint &h) const override;
    const accel::EvalCache *evalCache() const override
    {
        return opt_.cache;
    }
    surrogate::SurrogateStats surrogateStats() const override
    {
        return opt_.surrogate != nullptr
                   ? opt_.surrogate->snapshot()
                   : surrogate::SurrogateStats{};
    }
    /** Every SH round must seed each unique layer shape once. */
    int minSeedBudget() const override
    {
        return std::max<int>(1, static_cast<int>(layers_.size()));
    }
    std::string backendName() const override { return "spatial"; }
    std::string scenarioName() const override;
    std::uint64_t workloadDigest() const override;

    /** The typed spatial design space (for decode in benches). */
    const accel::SpatialDesignSpace &spatialSpace() const { return space_; }

    /** The PPA engine (for direct evaluation in tests/benches). */
    const costmodel::AnalyticalCostModel &model() const { return model_; }

    /** The count-weighted layer set being co-optimized. */
    const std::vector<workload::WeightedOp> &layers() const
    {
        return layers_;
    }

    /** Engine family used for mapping search. */
    mapping::EngineKind engine() const { return opt_.engine; }

  private:
    SpatialEnvOptions opt_;
    accel::SpatialDesignSpace space_;
    costmodel::AnalyticalCostModel model_;
    std::vector<workload::WeightedOp> layers_;
    std::vector<mapping::MappingSpace> mapSpaces_;
};

} // namespace unico::core

#endif // UNICO_CORE_SPATIAL_ENV_HH
