/**
 * @file
 * Batched multi-objective Bayesian-optimization hardware sampler
 * (Sec. 3.2): a ParEGO-style surrogate (GP over the scalarized
 * objective with per-slot random simplex weights) proposes batches
 * of N hardware configurations by maximizing expected improvement
 * over a candidate pool of random and locally mutated designs.
 */

#ifndef UNICO_CORE_MOBO_HH
#define UNICO_CORE_MOBO_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "accel/design_space.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "moo/pareto.hh"
#include "surrogate/gp.hh"

namespace unico::core {

/** Tunables of the MOBO hardware sampler. */
struct MoboConfig
{
    std::size_t candidatePool = 192; ///< random candidates per slot
    std::size_t eliteMutants = 48;   ///< mutated elite candidates
    std::size_t maxGpPoints = 256;   ///< subset-of-data cap
    double rho = 0.2;                ///< ParEGO augmentation
    /** Fraction of each batch drawn uniformly at random (BOHB-style
     *  exploration mix; 0 = fully model-guided). */
    double randomFraction = 0.0;
    /** Tune per-dimension ARD lengthscales when first fitting the
     *  surrogate (slower, but down-weights irrelevant HW axes). */
    bool useArd = false;
    /** Worker threads for the GP hyperparameter grid search
     *  (0 = hardware concurrency; results are thread-count
     *  independent). */
    std::size_t gpThreads = 0;
};

/** Batched MOBO sampler over a discrete hardware design space. */
class MoboHwSampler
{
  public:
    MoboHwSampler(const accel::DesignSpace &space,
                  std::size_t num_objectives, std::uint64_t seed,
                  MoboConfig cfg = MoboConfig{});

    /**
     * Record an evaluated hardware sample.
     * @param high_fidelity whether the sample passed the High
     *        Fidelity Update Rule (only these train the surrogate).
     */
    void observe(const accel::HwPoint &h, const moo::Objectives &y,
                 bool high_fidelity);

    /** Total observations recorded. */
    std::size_t observations() const { return all_.size(); }

    /** Observations currently marked high fidelity. */
    std::size_t highFidelityCount() const;

    /**
     * Flip the high-fidelity flag of observation @p index (insertion
     * order). The driver records a whole batch first, runs the
     * update rule on the batch's normalized objectives, then marks
     * the selected samples.
     */
    void setHighFidelity(std::size_t index, bool high_fidelity);

    /**
     * Min-max normalize raw objectives using the running ideal/nadir
     * over *all* observations (so scalars are comparable across MOBO
     * trials).
     */
    moo::Objectives normalize(const moo::Objectives &y) const;

    /**
     * Propose a batch of @p n hardware configurations, deduplicated
     * against each other and against past observations where
     * possible. Falls back to random sampling until the surrogate
     * has enough high-fidelity data.
     */
    std::vector<accel::HwPoint> sampleBatch(std::size_t n);

    /** Seconds of surrogate/acquisition overhead accumulated (for
     *  the EvalClock ledger). */
    double overheadSeconds() const { return overheadSeconds_; }

    /** Proposals that fell back to space-filling sampling because the
     *  GP fit failed (Cholesky jitter exhausted) or produced a
     *  non-finite posterior. Monotone; the driver tracks deltas. */
    std::uint64_t gpFallbacks() const { return gpFallbacks_; }

    /**
     * Serialize the sampler state (observations, RNG, tuned kernel)
     * for checkpointing. restoreState() on a sampler constructed
     * with the same space/objectives/config reproduces the exact
     * sampling stream the saved sampler would have produced.
     */
    common::Json saveState() const;

    /** Restore a snapshot produced by saveState(). */
    void restoreState(const common::Json &state);

  private:
    struct Obs
    {
        accel::HwPoint h;
        std::vector<double> x; ///< normalized design vector
        moo::Objectives y;     ///< raw objectives
        bool highFidelity;
    };

    accel::HwPoint proposeOne(const std::set<std::string> &batch_keys);

    const accel::DesignSpace &space_;
    std::size_t numObjectives_;
    MoboConfig cfg_;
    common::Rng rng_;
    std::vector<Obs> all_;
    std::set<std::string> seenKeys_;
    moo::Objectives ideal_;
    moo::Objectives nadir_;
    surrogate::KernelParams kernelParams_;
    bool kernelTuned_ = false;
    double overheadSeconds_ = 0.0;
    std::uint64_t gpFallbacks_ = 0;
};

} // namespace unico::core

#endif // UNICO_CORE_MOBO_HH
