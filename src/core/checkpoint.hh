/**
 * @file
 * JSON checkpoint/resume of the bi-level driver state.
 *
 * After every MOBO trial the driver can serialize its complete
 * resumable state — MOBO observations and sampler RNG/kernel, the
 * High Fidelity Update Rule state, the Pareto archive, every
 * evaluation record, the convergence trace, fault counters and the
 * EvalClock ledger — to a JSON file. A killed search restarted with
 * the same DriverConfig and --resume replays the remaining trials
 * bit-for-bit: per-trial mapping-run seeds are derived from (config
 * seed, trial, slot), so an interrupted trial simply re-runs from
 * its start.
 *
 * Durability and integrity (version 2 format):
 *  - every checkpoint carries a CRC-64 trailer line
 *    ("#crc64:<16 hex>") over the document bytes; truncation or bit
 *    rot is *detected* at load instead of restoring garbage state;
 *  - the temp file (and its directory) are fsynced before the atomic
 *    rename, so a power loss right after a save cannot leave a
 *    present-but-empty checkpoint;
 *  - saveCheckpointRotated() keeps a window of the last K
 *    generations (path, path.1, ..., path.K-1) and
 *    loadNewestValidCheckpoint() falls back along that window past
 *    any generation that fails validation.
 */

#ifndef UNICO_CORE_CHECKPOINT_HH
#define UNICO_CORE_CHECKPOINT_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/driver.hh"
#include "core/fidelity.hh"

namespace unico::core {

/** Everything needed to resume a co-search mid-run. */
struct SearchCheckpoint
{
    int version = 3;
    /** Fingerprint of the producing DriverConfig; resume refuses a
     *  checkpoint whose fingerprint differs from the live config. */
    std::string configKey;
    /** Identity of the producing evaluation stack (version 3+):
     *  backend registry name, scenario label and workload digest.
     *  Empty in documents written by older versions — compatibility
     *  checks skip empty fields instead of refusing legacy files. */
    std::string backend;
    std::string scenario;
    std::string workloadDigest;
    int completedIterations = 0;
    double clockSeconds = 0.0;
    std::uint64_t clockEvaluations = 0;
    common::Json samplerState;             ///< MoboHwSampler::saveState()
    HighFidelitySelector::State selector{};
    CoSearchResult result;                 ///< records/front/trace/faults
};

/**
 * Stable fingerprint of the configuration fields that determine the
 * search trajectory (seed, batch, budgets, modes, recovery policy).
 */
std::string configFingerprint(const DriverConfig &cfg);

// StackIdentity (the identity triple stamped into checkpoints) now
// lives in core/job_context.hh — it is per-job state shared by the
// checkpoint layer, the stepped driver and the job manager.

/**
 * Typed resume refusal: the checkpoint on disk was produced by a
 * different configuration or evaluation stack (backend / scenario /
 * workload) than the live run. Derives from std::runtime_error so
 * existing catch sites keep working.
 */
class CheckpointMismatchError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};


/** Serialize / deserialize a checkpoint document. */
common::Json toJson(const SearchCheckpoint &ck);
SearchCheckpoint checkpointFromJson(const common::Json &doc);

/**
 * Outcome of a checkpoint I/O operation. ok() is false on failure,
 * with message carrying the reason (open/write/fsync/rename and the
 * affected path) so callers can report *why* instead of a bare bool.
 */
struct CheckpointIoStatus
{
    std::string message; ///< empty on success

    bool ok() const { return message.empty(); }
    explicit operator bool() const { return ok(); }

    static CheckpointIoStatus success() { return {}; }
    static CheckpointIoStatus
    failure(std::string why)
    {
        return CheckpointIoStatus{std::move(why)};
    }
};

/**
 * Compatibility verdict between a loaded checkpoint and the live
 * (config fingerprint, stack identity). Identity fields that are
 * empty on either side are skipped — documents predating version 3
 * carry no stack identity and remain resumable. Returns a failed
 * CheckpointIoStatus naming the first mismatching field.
 */
CheckpointIoStatus
checkpointCompatibility(const SearchCheckpoint &ck,
                        const std::string &liveConfigKey,
                        const StackIdentity &live);

/**
 * Durable atomic write: serialize with a CRC-64 trailer, fsync the
 * temp file and its directory, then rename over @p path.
 */
CheckpointIoStatus saveCheckpointFile(const std::string &path,
                                      const SearchCheckpoint &ck);

/**
 * Like saveCheckpointFile(), but first shifts existing generations
 * down the rotation window (path -> path.1 -> ... -> path.keep-1,
 * dropping the oldest) so the last @p keep checkpoints survive.
 * keep <= 1 disables rotation.
 */
CheckpointIoStatus saveCheckpointRotated(const std::string &path,
                                         const SearchCheckpoint &ck,
                                         int keep);

/** The n-th rotated generation path (n = 0 is @p path itself). */
std::string rotatedCheckpointPath(const std::string &path, int n);

/**
 * Load a checkpoint; std::nullopt when the file does not exist.
 * Throws std::runtime_error on a malformed document, a missing
 * integrity trailer, or a CRC mismatch (truncation / bit flip).
 */
std::optional<SearchCheckpoint>
loadCheckpointFile(const std::string &path);

/** A checkpoint recovered from the rotation window. */
struct RecoveredCheckpoint
{
    SearchCheckpoint checkpoint;
    std::string path;   ///< generation that validated
    int generation = 0; ///< 0 = newest, 1 = one save older, ...
    /** Diagnostics for newer generations that failed validation. */
    std::vector<std::string> rejected;
};

/**
 * Resume entry point: walk the rotation window newest-first and
 * return the first checkpoint that passes CRC + parse validation,
 * with the failures of any newer generations recorded in rejected.
 * Returns std::nullopt when no generation exists on disk; throws
 * std::runtime_error when generations exist but none validates
 * (starting silently from scratch would discard the whole run).
 */
std::optional<RecoveredCheckpoint>
loadNewestValidCheckpoint(const std::string &path, int keep);

} // namespace unico::core

#endif // UNICO_CORE_CHECKPOINT_HH
