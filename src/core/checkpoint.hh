/**
 * @file
 * JSON checkpoint/resume of the bi-level driver state.
 *
 * After every MOBO trial the driver can serialize its complete
 * resumable state — MOBO observations and sampler RNG/kernel, the
 * High Fidelity Update Rule state, the Pareto archive, every
 * evaluation record, the convergence trace, fault counters and the
 * EvalClock ledger — to a JSON file (written atomically via a temp
 * file + rename, so a kill mid-write never corrupts the previous
 * checkpoint). A killed search restarted with the same DriverConfig
 * and --resume replays the remaining trials bit-for-bit: per-trial
 * mapping-run seeds are derived from (config seed, trial, slot), so
 * an interrupted trial simply re-runs from its start.
 */

#ifndef UNICO_CORE_CHECKPOINT_HH
#define UNICO_CORE_CHECKPOINT_HH

#include <optional>
#include <string>

#include "common/json.hh"
#include "core/driver.hh"
#include "core/fidelity.hh"

namespace unico::core {

/** Everything needed to resume a co-search mid-run. */
struct SearchCheckpoint
{
    int version = 1;
    /** Fingerprint of the producing DriverConfig; resume refuses a
     *  checkpoint whose fingerprint differs from the live config. */
    std::string configKey;
    int completedIterations = 0;
    double clockSeconds = 0.0;
    std::uint64_t clockEvaluations = 0;
    common::Json samplerState;             ///< MoboHwSampler::saveState()
    HighFidelitySelector::State selector{};
    CoSearchResult result;                 ///< records/front/trace/faults
};

/**
 * Stable fingerprint of the configuration fields that determine the
 * search trajectory (seed, batch, budgets, modes, recovery policy).
 */
std::string configFingerprint(const DriverConfig &cfg);

/** Serialize / deserialize a checkpoint document. */
common::Json toJson(const SearchCheckpoint &ck);
SearchCheckpoint checkpointFromJson(const common::Json &doc);

/** Atomic write (tmp + rename); returns false on I/O failure. */
bool saveCheckpointFile(const std::string &path,
                        const SearchCheckpoint &ck);

/**
 * Load a checkpoint; std::nullopt when the file does not exist.
 * Throws std::runtime_error on a malformed document.
 */
std::optional<SearchCheckpoint>
loadCheckpointFile(const std::string &path);

} // namespace unico::core

#endif // UNICO_CORE_CHECKPOINT_HH
