#include "core/report.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/table.hh"

namespace unico::core {

SearchSummary
summarize(const CoSearchResult &result)
{
    SearchSummary s;
    s.samples = result.records.size();
    s.frontSize = result.front.size();
    s.totalHours = result.totalHours;
    s.evaluations = result.evaluations;
    s.bestLatencyMs = std::numeric_limits<double>::infinity();
    s.bestPowerMw = std::numeric_limits<double>::infinity();
    s.bestAreaMm2 = std::numeric_limits<double>::infinity();
    double r_acc = 0.0;
    std::size_t r_count = 0;
    for (const auto &rec : result.records) {
        if (rec.ppa.feasible) {
            ++s.feasible;
            r_acc += rec.sensitivity;
            ++r_count;
        }
        if (rec.fullySearched)
            ++s.fullySearched;
        if (rec.constraintOk) {
            ++s.constraintOk;
            s.bestLatencyMs = std::min(s.bestLatencyMs,
                                       rec.ppa.latencyMs);
            s.bestPowerMw = std::min(s.bestPowerMw, rec.ppa.powerMw);
            s.bestAreaMm2 = std::min(s.bestAreaMm2, rec.ppa.areaMm2);
        }
    }
    if (s.constraintOk == 0) {
        s.bestLatencyMs = 0.0;
        s.bestPowerMw = 0.0;
        s.bestAreaMm2 = 0.0;
    }
    if (r_count > 0)
        s.meanSensitivity = r_acc / static_cast<double>(r_count);
    return s;
}

std::string
toString(const SearchSummary &s)
{
    std::ostringstream oss;
    oss << "samples=" << s.samples << " feasible=" << s.feasible
        << " constraint_ok=" << s.constraintOk << " front="
        << s.frontSize << " fully_searched=" << s.fullySearched
        << "\ncost=" << s.totalHours << "h budget=" << s.evaluations
        << " best: L=" << s.bestLatencyMs << "ms P=" << s.bestPowerMw
        << "mW A=" << s.bestAreaMm2 << "mm2 meanR="
        << s.meanSensitivity;
    return oss.str();
}

bool
writeRecordsCsv(const CoSearchResult &result, const CoSearchEnv &env,
                const std::string &path)
{
    common::TableWriter table({"iteration", "hw", "latency_ms",
                               "power_mw", "area_mm2", "sensitivity",
                               "budget", "constraint_ok",
                               "fully_searched", "high_fidelity",
                               "faults", "degraded", "penalized"});
    for (const auto &rec : result.records) {
        table.addRow(
            {std::to_string(rec.iteration), env.describeHw(rec.hw),
             common::TableWriter::num(rec.ppa.latencyMs, 6),
             common::TableWriter::num(rec.ppa.powerMw, 4),
             common::TableWriter::num(rec.ppa.areaMm2, 4),
             common::TableWriter::num(rec.sensitivity, 4),
             std::to_string(rec.budgetSpent),
             rec.constraintOk ? "1" : "0",
             rec.fullySearched ? "1" : "0",
             rec.highFidelity ? "1" : "0",
             std::to_string(rec.faults),
             rec.degraded ? "1" : "0",
             rec.penalized ? "1" : "0"});
    }
    return table.writeCsv(path);
}

bool
writeFrontCsv(const CoSearchResult &result, const CoSearchEnv &env,
              const std::string &path)
{
    common::TableWriter table(
        {"hw", "latency_ms", "power_mw", "area_mm2"});
    for (const auto &entry : result.front.entries()) {
        const auto &rec = result.records[entry.id];
        table.addRow({env.describeHw(rec.hw),
                      common::TableWriter::num(rec.ppa.latencyMs, 6),
                      common::TableWriter::num(rec.ppa.powerMw, 4),
                      common::TableWriter::num(rec.ppa.areaMm2, 4)});
    }
    return table.writeCsv(path);
}

bool
writeTraceCsv(const CoSearchResult &result, const std::string &path)
{
    common::TableWriter table(
        {"hours", "front_size", "best_latency_ms", "best_power_mw"});
    for (const auto &tp : result.trace) {
        double best_lat = 0.0, best_pow = 0.0;
        if (!tp.front.empty()) {
            best_lat = std::numeric_limits<double>::infinity();
            best_pow = std::numeric_limits<double>::infinity();
            for (const auto &y : tp.front) {
                best_lat = std::min(best_lat, y[0]);
                best_pow = std::min(best_pow, y[1]);
            }
        }
        table.addRow({common::TableWriter::num(tp.hours, 4),
                      std::to_string(tp.front.size()),
                      common::TableWriter::num(best_lat, 6),
                      common::TableWriter::num(best_pow, 4)});
    }
    return table.writeCsv(path);
}

bool
writeCacheCsv(const CoSearchResult &result, const std::string &path)
{
    const common::CacheStats &cs = result.cacheStats;
    // shard_evictions is a |-separated per-shard list so the CSV
    // stays one row regardless of the stripe count.
    std::string shard_evictions;
    for (std::size_t i = 0; i < cs.shardEvictions.size(); ++i) {
        if (i > 0)
            shard_evictions += '|';
        shard_evictions += std::to_string(cs.shardEvictions[i]);
    }
    common::TableWriter table(
        {"hits", "misses", "hit_rate", "insertions", "evictions",
         "entries", "bytes", "capacity_bytes", "shards",
         "shard_evictions", "tap_rows", "tap_appends", "tap_duplicates",
         "tap_drops", "tap_snapshots", "tap_stalls"});
    table.addRow({std::to_string(cs.hits), std::to_string(cs.misses),
                  common::TableWriter::num(cs.hitRate(), 4),
                  std::to_string(cs.insertions),
                  std::to_string(cs.evictions),
                  std::to_string(cs.entries), std::to_string(cs.bytes),
                  std::to_string(cs.capacityBytes),
                  std::to_string(cs.shards), shard_evictions,
                  std::to_string(cs.tapRows),
                  std::to_string(cs.tapAppends),
                  std::to_string(cs.tapDuplicates),
                  std::to_string(cs.tapDrops),
                  std::to_string(cs.tapSnapshots),
                  std::to_string(cs.tapStalls)});
    return table.writeCsv(path);
}

bool
writeFaultsCsv(const CoSearchResult &result, const std::string &path)
{
    const FaultStats &f = result.faults;
    const common::TransportStats &t = f.transport;
    common::TableWriter table(
        {"transient", "timeout", "corrupt", "fatal", "retries",
         "degradations", "penalized", "gp_fallbacks", "ckpt_recoveries",
         "worker_crashes", "request_timeouts", "worker_hangs",
         "torn_frames", "corrupt_frames", "worker_respawns",
         "work_steals", "inproc_fallbacks", "request_round_trips",
         "ops_applied", "connections_lost", "connect_failures",
         "stale_frames", "reconnects", "heartbeats"});
    table.addRow({std::to_string(f.transient), std::to_string(f.timeout),
                  std::to_string(f.corrupt), std::to_string(f.fatal),
                  std::to_string(f.retries),
                  std::to_string(f.degradations),
                  std::to_string(f.penalized),
                  std::to_string(f.gpFallbacks),
                  std::to_string(f.checkpointRecoveries),
                  std::to_string(t.workerCrashes),
                  std::to_string(t.requestTimeouts),
                  std::to_string(t.workerHangs),
                  std::to_string(t.tornFrames),
                  std::to_string(t.corruptFrames),
                  std::to_string(t.workerRespawns),
                  std::to_string(t.workSteals),
                  std::to_string(t.inprocFallbacks),
                  std::to_string(t.requestRoundTrips),
                  std::to_string(t.opsApplied),
                  std::to_string(t.connectionsLost),
                  std::to_string(t.connectFailures),
                  std::to_string(t.staleFrames),
                  std::to_string(t.reconnects),
                  std::to_string(t.heartbeats)});
    return table.writeCsv(path);
}

} // namespace unico::core
