/**
 * @file
 * The hardware robustness (sensitivity) metric R of Sec. 3.4:
 *
 *     R = Delta * (1 + F(theta)),
 *     F(theta) = (6/pi^2) theta^2 - (5/pi) theta + 1,
 *
 * where Delta is the 2-norm distance, in relative (latency, power)
 * space, between the *optimal* mapping (the converged best) and a
 * *sub-optimal* mapping (the one whose loss sits at the (1-alpha)
 * right-tail percentile of the search's loss history), and theta in
 * [0, pi] is the angle of that displacement w.r.t. the horizontal
 * (latency) axis. R = 0 means the hardware is insensitive to the SW
 * mapping search; smaller is more robust.
 */

#ifndef UNICO_CORE_ROBUSTNESS_HH
#define UNICO_CORE_ROBUSTNESS_HH

#include <vector>

#include "mapping/engine.hh"

namespace unico::core {

/** The asymmetric angle penalty F(theta) of Fig. 5(c). */
double fTheta(double theta);

/**
 * The angle theta in [0, pi] of the displacement from the
 * sub-optimal point to the optimal point in (latency, power) space,
 * measured against the horizontal axis: theta < pi/2 when power
 * decreases toward the optimum (favorable), theta > pi/2 when it
 * increases.
 */
double displacementAngle(double lat_opt, double pow_opt, double lat_sub,
                         double pow_sub);

/**
 * Compute R from a mapping search's raw sample history.
 *
 * The optimal point is the feasible sample with the smallest loss;
 * the sub-optimal point is the feasible sample whose loss is closest
 * to the alpha-quantile (from the best side) of all feasible losses.
 * Delta uses latency/power *relative* to the optimal point so that R
 * is scale-free across workloads. Returns 0 when fewer than two
 * feasible samples exist (no evidence of sensitivity).
 *
 * @param samples raw mapping evaluations
 * @param alpha   sub-optimal quantile (default 0.05 = the 95%
 *                right-tail percentile of the paper)
 */
double computeSensitivity(const std::vector<mapping::SamplePoint> &samples,
                          double alpha = 0.05);

} // namespace unico::core

#endif // UNICO_CORE_ROBUSTNESS_HH
