#include "core/mobo.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>

#include "moo/scalarize.hh"

namespace unico::core {

MoboHwSampler::MoboHwSampler(const accel::DesignSpace &space,
                             std::size_t num_objectives,
                             std::uint64_t seed, MoboConfig cfg)
    : space_(space),
      numObjectives_(num_objectives),
      cfg_(cfg),
      rng_(seed)
{
    assert(num_objectives > 0);
}

void
MoboHwSampler::observe(const accel::HwPoint &h, const moo::Objectives &y,
                       bool high_fidelity)
{
    assert(y.size() == numObjectives_);
    Obs obs;
    obs.h = h;
    obs.x = space_.normalize(h);
    obs.y = y;
    obs.highFidelity = high_fidelity;
    all_.push_back(std::move(obs));
    seenKeys_.insert(space_.key(h));

    if (ideal_.empty()) {
        ideal_ = y;
        nadir_ = y;
    } else {
        for (std::size_t i = 0; i < y.size(); ++i) {
            ideal_[i] = std::min(ideal_[i], y[i]);
            nadir_[i] = std::max(nadir_[i], y[i]);
        }
    }
}

void
MoboHwSampler::setHighFidelity(std::size_t index, bool high_fidelity)
{
    assert(index < all_.size());
    all_[index].highFidelity = high_fidelity;
}

std::size_t
MoboHwSampler::highFidelityCount() const
{
    std::size_t count = 0;
    for (const auto &obs : all_)
        if (obs.highFidelity)
            ++count;
    return count;
}

moo::Objectives
MoboHwSampler::normalize(const moo::Objectives &y) const
{
    if (ideal_.empty())
        return moo::Objectives(y.size(), 0.0);
    return moo::normalizeObjectives(y, ideal_, nadir_);
}

accel::HwPoint
MoboHwSampler::proposeOne(const std::set<std::string> &batch_keys)
{
    // Gather the high-fidelity training set.
    std::vector<std::vector<double>> x;
    std::vector<const Obs *> hf;
    for (const auto &obs : all_) {
        if (obs.highFidelity) {
            hf.push_back(&obs);
            x.push_back(obs.x);
        }
    }
    if (hf.size() < 4) {
        // Cold start: explore randomly.
        return space_.randomPoint(rng_);
    }

    // ParEGO: scalarize the high-fidelity targets under a fresh
    // random weight vector, then fit a single-output GP.
    const auto w = moo::randomSimplexWeights(numObjectives_, rng_);
    std::vector<double> s;
    s.reserve(hf.size());
    for (const Obs *obs : hf)
        s.push_back(moo::parego(normalize(obs->y), w, cfg_.rho));

    surrogate::GaussianProcess gp(kernelParams_);
    if (!kernelTuned_) {
        if (cfg_.useArd)
            gp.fitArd(x, s, cfg_.maxGpPoints, 2, cfg_.gpThreads);
        else
            gp.fitWithHyperopt(x, s, cfg_.maxGpPoints, cfg_.gpThreads);
        if (gp.trained()) {
            kernelParams_ = gp.params();
            kernelTuned_ = true;
        }
    } else {
        gp.fit(x, s, cfg_.maxGpPoints);
    }
    // Graceful degradation: a failed fit (Cholesky jitter ladder
    // exhausted on an ill-conditioned kernel matrix) or a non-finite
    // posterior (NaN targets) falls back to space-filling proposal
    // for this slot instead of aborting the whole trial.
    if (!gp.trained() ||
        !std::isfinite(gp.logMarginalLikelihood())) {
        ++gpFallbacks_;
        return space_.randomPoint(rng_);
    }
    const double incumbent = *std::min_element(s.begin(), s.end());

    // Candidate pool: uniform random plus mutations of the elite.
    std::vector<accel::HwPoint> pool;
    pool.reserve(cfg_.candidatePool + cfg_.eliteMutants);
    for (std::size_t i = 0; i < cfg_.candidatePool; ++i)
        pool.push_back(space_.randomPoint(rng_));
    const auto order = [&] {
        std::vector<std::size_t> idx(hf.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(),
                  [&](std::size_t a, std::size_t b) { return s[a] < s[b]; });
        return idx;
    }();
    const std::size_t elites = std::min<std::size_t>(8, order.size());
    for (std::size_t i = 0; i < cfg_.eliteMutants; ++i) {
        const Obs *elite = hf[order[i % elites]];
        pool.push_back(space_.neighbor(elite->h, rng_, 2));
    }

    // Expected-improvement maximization over the pool, skipping
    // configurations already evaluated or already in this batch.
    // Duplicate pool entries are scored once: the strict '>' argmax
    // means a repeat could never win anyway, so dropping it saves a
    // GP prediction without changing the proposal.
    std::set<std::string> scored;
    double best_ei = -1.0;
    accel::HwPoint best = pool.front();
    bool found = false;
    for (const auto &cand : pool) {
        const std::string key = space_.key(cand);
        if (batch_keys.count(key) || seenKeys_.count(key))
            continue;
        if (!scored.insert(key).second)
            continue;
        const auto pred = gp.predict(space_.normalize(cand));
        const double ei = surrogate::expectedImprovement(pred, incumbent);
        if (ei > best_ei) {
            best_ei = ei;
            best = cand;
            found = true;
        }
    }
    if (!found)
        return space_.randomPoint(rng_);
    return best;
}

std::vector<accel::HwPoint>
MoboHwSampler::sampleBatch(std::size_t n)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<accel::HwPoint> batch;
    std::set<std::string> batch_keys;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        accel::HwPoint h = rng_.bernoulli(cfg_.randomFraction)
                               ? space_.randomPoint(rng_)
                               : proposeOne(batch_keys);
        // Retry a few times to keep the batch diverse; accept
        // duplicates only as a last resort (tiny spaces).
        for (int attempt = 0;
             attempt < 16 && batch_keys.count(space_.key(h)); ++attempt)
            h = space_.randomPoint(rng_);
        batch_keys.insert(space_.key(h));
        batch.push_back(std::move(h));
    }
    overheadSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return batch;
}

common::Json
MoboHwSampler::saveState() const
{
    common::Json state = common::Json::object();

    common::Json rng = common::Json::array();
    const auto rs = rng_.saveState();
    for (int i = 0; i < 4; ++i)
        rng.push(common::hexU64(rs.s[i]));
    state["rng"] = std::move(rng);
    state["rngHasGaussian"] = rs.hasCachedGaussian;
    state["rngGaussian"] = rs.cachedGaussian;

    state["kernelTuned"] = kernelTuned_;
    common::Json kernel = common::Json::object();
    kernel["kind"] = static_cast<int>(kernelParams_.kind);
    kernel["lengthscale"] = kernelParams_.lengthscale;
    kernel["variance"] = kernelParams_.variance;
    kernel["noise"] = kernelParams_.noise;
    common::Json ard = common::Json::array();
    for (double l : kernelParams_.ardLengthscales)
        ard.push(l);
    kernel["ard"] = std::move(ard);
    state["kernel"] = std::move(kernel);

    common::Json obs = common::Json::array();
    for (const auto &o : all_) {
        common::Json entry = common::Json::object();
        common::Json h = common::Json::array();
        for (std::size_t axis : o.h)
            h.push(axis);
        entry["h"] = std::move(h);
        common::Json y = common::Json::array();
        for (double v : o.y)
            y.push(v);
        entry["y"] = std::move(y);
        entry["hf"] = o.highFidelity;
        obs.push(std::move(entry));
    }
    state["observations"] = std::move(obs);
    return state;
}

void
MoboHwSampler::restoreState(const common::Json &state)
{
    all_.clear();
    seenKeys_.clear();
    ideal_.clear();
    nadir_.clear();

    // Replaying observe() rebuilds every derived field (normalized
    // embeddings, dedup keys, running ideal/nadir) exactly.
    const common::Json &obs = state.at("observations");
    for (std::size_t i = 0; i < obs.size(); ++i) {
        const common::Json &entry = obs.at(i);
        accel::HwPoint h;
        const common::Json &hj = entry.at("h");
        for (std::size_t a = 0; a < hj.size(); ++a)
            h.push_back(static_cast<std::size_t>(hj.at(a).asInt()));
        moo::Objectives y;
        const common::Json &yj = entry.at("y");
        for (std::size_t a = 0; a < yj.size(); ++a)
            y.push_back(yj.at(a).asDouble());
        observe(h, y, entry.at("hf").asBool());
    }

    common::Rng::State rs;
    const common::Json &rng = state.at("rng");
    for (int i = 0; i < 4; ++i)
        rs.s[i] = common::parseHexU64(rng.at(i).asString());
    rs.hasCachedGaussian = state.at("rngHasGaussian").asBool();
    rs.cachedGaussian = state.at("rngGaussian").asDouble();
    rng_.restoreState(rs);

    kernelTuned_ = state.at("kernelTuned").asBool();
    const common::Json &kernel = state.at("kernel");
    kernelParams_.kind = static_cast<surrogate::KernelKind>(
        kernel.at("kind").asInt());
    kernelParams_.lengthscale = kernel.at("lengthscale").asDouble();
    kernelParams_.variance = kernel.at("variance").asDouble();
    kernelParams_.noise = kernel.at("noise").asDouble();
    kernelParams_.ardLengthscales.clear();
    const common::Json &ard = kernel.at("ard");
    for (std::size_t i = 0; i < ard.size(); ++i)
        kernelParams_.ardLengthscales.push_back(ard.at(i).asDouble());
}

} // namespace unico::core
