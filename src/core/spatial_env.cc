#include "core/spatial_env.hh"

#include <cassert>

#include "common/thread_pool.hh"
#include "core/layered_run.hh"

namespace unico::core {

namespace {

/**
 * Spatial backend binding for the shared layered run: per-layer
 * searches come from the FlexTensor/GAMMA-style engines over the
 * analytical model, and every evaluation charges the model's fixed
 * nominal seconds (the shared core applies the charge after each
 * layer step, preserving the historical charging order).
 */
class SpatialRunPolicy final : public LayeredRunPolicy
{
  public:
    SpatialRunPolicy(const std::vector<workload::WeightedOp> &layers,
                     const std::vector<mapping::MappingSpace> &spaces,
                     const costmodel::AnalyticalCostModel &model,
                     accel::SpatialHwConfig hw,
                     mapping::EngineKind engine, accel::EvalCache *cache,
                     surrogate::SurrogateContext *surrogate,
                     common::LazyThreadPool *evalPool)
        : layers_(layers), spaces_(spaces), model_(model), hw_(hw),
          engine_(engine), cache_(cache), surrogate_(surrogate),
          evalPool_(evalPool), screens_(layers.size()),
          preps_(layers.size())
    {
    }

    std::unique_ptr<LayerSearch>
    startLayer(std::size_t layer, std::uint64_t seed) override
    {
        const workload::TensorOp &op = layers_[layer].op;
        // Candidate-invariant query context, built once per layer and
        // amortized over every mapping candidate (and reused when
        // successive halving re-steps this layer).
        if (preps_[layer] == nullptr)
            preps_[layer] =
                std::make_unique<costmodel::PreparedSpatialQuery>(
                    model_.prepare(op, hw_));
        const costmodel::PreparedSpatialQuery &prep = *preps_[layer];
        auto evaluator = [this, &prep](const mapping::Mapping &m) {
            const accel::Ppa ppa = model_.evaluate(prep, m);
            mapping::MappingEval eval;
            eval.ppa = ppa;
            eval.loss = ppa.feasible ? ppa.latencyMs : 1e12;
            return eval;
        };
        // Layering: screening above caching above the model. The
        // cache sits below the fault-injection wrappers (they
        // decorate MappingRun, not the evaluator), so only clean
        // model outputs are ever stored; the screen sits above the
        // cache so screened-out candidates never touch it. One screen
        // per layer, trained only on this run's exact evals (makes
        // fleet and threaded runs byte-identical).
        if (screens_[layer] == nullptr)
            screens_[layer] = surrogate::makeSpatialScreen(
                surrogate_, op, hw_, prep.context);
        const double seconds =
            costmodel::AnalyticalCostModel::nominalEvalSeconds();
        mapping::MappingEvaluator cached = mapping::cachingEvaluator(
            cache_, prep.context, evaluator, seconds);
        // Batched twin of the same stack: misses of one block fan
        // across the shared pool, byte-identical to the serial path.
        // With a screen active the batch serializes (the screen
        // trains on each exact result in order).
        mapping::BatchMappingEvaluator batch;
        if (evalPool_ != nullptr)
            batch = mapping::screeningBatchEvaluator(
                screens_[layer].get(), cached,
                mapping::cachingBatchEvaluator(
                    cache_, prep.context,
                    mapping::parallelBatch(evaluator, &evalPool_->get()),
                    seconds));
        return std::make_unique<LayerSearchAdapter<mapping::SearchRun>>(
            mapping::startSearch(
                engine_, spaces_[layer],
                mapping::screeningEvaluator(screens_[layer].get(),
                                            std::move(cached)),
                seed, std::move(batch)));
    }

    double
    fixedEvalSeconds() const override
    {
        return costmodel::AnalyticalCostModel::nominalEvalSeconds();
    }

    double areaMm2() const override { return model_.areaMm2(hw_); }

  private:
    const std::vector<workload::WeightedOp> &layers_;
    const std::vector<mapping::MappingSpace> &spaces_;
    const costmodel::AnalyticalCostModel &model_;
    accel::SpatialHwConfig hw_;
    mapping::EngineKind engine_;
    accel::EvalCache *cache_;
    surrogate::SurrogateContext *surrogate_;
    common::LazyThreadPool *evalPool_;
    std::vector<std::unique_ptr<mapping::CandidateScreen>> screens_;
    std::vector<std::unique_ptr<costmodel::PreparedSpatialQuery>> preps_;
};

} // namespace

SpatialEnv::SpatialEnv(std::vector<workload::Network> networks,
                       SpatialEnvOptions opt)
    : opt_(opt), space_(opt.scenario), model_(opt.tech),
      layers_(collectDominantLayers(networks, opt.maxShapesPerNetwork))
{
    assert(!networks.empty());
    mapSpaces_.reserve(layers_.size());
    for (const auto &wop : layers_)
        mapSpaces_.emplace_back(wop.op);
}

const accel::DesignSpace &
SpatialEnv::hwSpace() const
{
    return space_.space();
}

std::unique_ptr<MappingRun>
SpatialEnv::createRun(const accel::HwPoint &h, std::uint64_t seed) const
{
    return std::make_unique<LayeredMappingRun>(
        layers_,
        std::make_unique<SpatialRunPolicy>(layers_, mapSpaces_, model_,
                                           space_.decode(h), opt_.engine,
                                           opt_.cache, opt_.surrogate,
                                           opt_.evalPool),
        seed, opt_.cancel);
}

double
SpatialEnv::powerBudgetMw() const
{
    return accel::powerBudgetMw(opt_.scenario);
}

std::string
SpatialEnv::describeHw(const accel::HwPoint &h) const
{
    return space_.decode(h).describe();
}

std::string
SpatialEnv::scenarioName() const
{
    return toString(opt_.scenario);
}

std::uint64_t
SpatialEnv::workloadDigest() const
{
    return layersDigest(layers_);
}

} // namespace unico::core
