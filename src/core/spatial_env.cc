#include "core/spatial_env.hh"

#include <cassert>
#include <cmath>

#include "core/robustness.hh"

namespace unico::core {

namespace {

/** Latency penalty (ms) for a layer with no feasible mapping yet. */
constexpr double kUnmappedLatencyMs = 1e7;

/**
 * Multi-layer mapping run: one budgeted search per unique layer
 * shape, stepped round-robin; the recorded loss is the count-weighted
 * network latency under the current per-layer incumbents.
 */
class SpatialMappingRun : public MappingRun
{
  public:
    SpatialMappingRun(const std::vector<workload::WeightedOp> &layers,
                      const std::vector<mapping::MappingSpace> &spaces,
                      const costmodel::AnalyticalCostModel &model,
                      accel::SpatialHwConfig hw,
                      mapping::EngineKind engine, std::uint64_t seed,
                      accel::EvalCache *cache)
        : layers_(layers), model_(model), hw_(hw)
    {
        common::Rng seeder(seed);
        runs_.reserve(layers_.size());
        for (std::size_t l = 0; l < layers_.size(); ++l) {
            const workload::TensorOp &op = layers_[l].op;
            auto evaluator = [this, &op](const mapping::Mapping &m) {
                const accel::Ppa ppa = model_.evaluate(op, hw_, m);
                mapping::MappingEval eval;
                eval.ppa = ppa;
                eval.loss = ppa.feasible ? ppa.latencyMs : 1e12;
                return eval;
            };
            // The cache sits below the fault-injection wrappers (they
            // decorate MappingRun, not the evaluator), so only clean
            // model outputs are ever stored.
            runs_.push_back(mapping::startSearch(
                engine, spaces[l],
                mapping::cachingEvaluator(
                    cache, model_.queryFingerprint(op, hw_),
                    std::move(evaluator),
                    costmodel::AnalyticalCostModel::nominalEvalSeconds()),
                seeder.next()));
        }
    }

    void
    step(int sweeps) override
    {
        // One budget unit is a *sweep*: one mapping evaluation per
        // unique layer (the paper's budget b counts per-operator
        // search steps).
        for (int i = 0; i < sweeps; ++i) {
            ++cursor_;
            for (auto &run : runs_) {
                run->step(1);
                chargedSeconds_ += costmodel::AnalyticalCostModel::
                    nominalEvalSeconds();
            }
            lossHistory_.push_back(networkLoss());
        }
    }

    int spent() const override { return static_cast<int>(cursor_); }

    accel::Ppa
    bestPpa() const override
    {
        double latency = 0.0;
        double energy = 0.0;
        for (std::size_t l = 0; l < runs_.size(); ++l) {
            const auto &eval = runs_[l]->bestEval();
            if (runs_[l]->spent() == 0 || !eval.ppa.feasible)
                return accel::Ppa::infeasible();
            const double count = static_cast<double>(layers_[l].count);
            latency += count * eval.ppa.latencyMs;
            energy += count * eval.ppa.energyMj;
        }
        accel::Ppa ppa;
        ppa.latencyMs = latency;
        ppa.energyMj = energy;
        // mJ / ms == W; report mW.
        ppa.powerMw = latency > 0.0 ? energy / latency * 1000.0 : 0.0;
        ppa.areaMm2 = model_.areaMm2(hw_);
        ppa.feasible = true;
        return ppa;
    }

    const std::vector<double> &
    bestLossHistory() const override
    {
        return lossHistory_;
    }

    double
    sensitivity(double alpha) const override
    {
        // Count*MACs-weighted mean of per-layer sensitivities: every
        // layer's mapping landscape contributes in proportion to its
        // share of network execution.
        double total_w = 0.0;
        double acc = 0.0;
        for (std::size_t l = 0; l < runs_.size(); ++l) {
            const double w = static_cast<double>(layers_[l].count) *
                             static_cast<double>(layers_[l].op.macs());
            acc += w * computeSensitivity(runs_[l]->samples(), alpha);
            total_w += w;
        }
        return total_w > 0.0 ? acc / total_w : 0.0;
    }

    double chargedSeconds() const override { return chargedSeconds_; }

  private:
    double
    networkLoss() const
    {
        double total = 0.0;
        for (std::size_t l = 0; l < runs_.size(); ++l) {
            const double count = static_cast<double>(layers_[l].count);
            if (runs_[l]->spent() == 0) {
                total += count * kUnmappedLatencyMs;
            } else {
                total += count *
                         std::min(runs_[l]->bestLossHistory().back(),
                                  kUnmappedLatencyMs);
            }
        }
        return total;
    }

    const std::vector<workload::WeightedOp> &layers_;
    const costmodel::AnalyticalCostModel &model_;
    accel::SpatialHwConfig hw_;
    std::vector<std::unique_ptr<mapping::SearchRun>> runs_;
    std::vector<double> lossHistory_;
    std::size_t cursor_ = 0;
    double chargedSeconds_ = 0.0;
};

} // namespace

SpatialEnv::SpatialEnv(std::vector<workload::Network> networks,
                       SpatialEnvOptions opt)
    : opt_(opt), space_(opt.scenario), model_(opt.tech)
{
    assert(!networks.empty());
    for (const auto &net : networks) {
        for (auto &wop : net.dominantOps(opt_.maxShapesPerNetwork))
            layers_.push_back(std::move(wop));
    }
    mapSpaces_.reserve(layers_.size());
    for (const auto &wop : layers_)
        mapSpaces_.emplace_back(wop.op);
}

const accel::DesignSpace &
SpatialEnv::hwSpace() const
{
    return space_.space();
}

std::unique_ptr<MappingRun>
SpatialEnv::createRun(const accel::HwPoint &h, std::uint64_t seed) const
{
    return std::make_unique<SpatialMappingRun>(
        layers_, mapSpaces_, model_, space_.decode(h), opt_.engine, seed,
        opt_.cache);
}

double
SpatialEnv::powerBudgetMw() const
{
    return accel::powerBudgetMw(opt_.scenario);
}

std::string
SpatialEnv::describeHw(const accel::HwPoint &h) const
{
    return space_.decode(h).describe();
}

} // namespace unico::core
