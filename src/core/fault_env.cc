#include "core/fault_env.hh"

#include <cmath>
#include <limits>

#include "common/status.hh"

namespace unico::core {

using common::EvalFault;
using common::EvalStatus;
using common::FaultKind;

/** Per-candidate fault-injecting run wrapper. */
class FaultyRun : public MappingRun
{
  public:
    FaultyRun(std::unique_ptr<MappingRun> inner, const FaultyEnv *env,
              std::uint64_t stream_key)
        : inner_(std::move(inner)), env_(env), streamKey_(stream_key)
    {}

    void
    step(int evals) override
    {
        for (int i = 0; i < evals; ++i) {
            // The degraded rung (analytical model) is reliable: no
            // further injection once the supervisor has degraded us.
            const FaultKind kind =
                degraded_ ? FaultKind::None
                          : env_->plan_.decide(streamKey_, evalIndex_++);
            switch (kind) {
              case FaultKind::Transient:
                ++env_->transient_;
                throw EvalFault(EvalStatus::Transient,
                                "injected transient evaluation crash");
              case FaultKind::Hang:
                // The watchdog kills the job at the deadline; the
                // wasted wall-clock is still real search cost.
                ++env_->hang_;
                extraSeconds_ += env_->plan_.spec().deadlineSeconds;
                throw EvalFault(EvalStatus::Timeout,
                                "injected hang; deadline exceeded");
              case FaultKind::Corrupt:
                ++env_->corrupt_;
                inner_->step(1);
                corrupted_ = true;
                break;
              case FaultKind::None:
                inner_->step(1);
                corrupted_ = false;
                break;
            }
        }
    }

    int spent() const override { return inner_->spent(); }

    accel::Ppa
    bestPpa() const override
    {
        if (corrupted_) {
            // A corrupted evaluation reports garbage: NaN latency
            // with the feasible bit still set, exactly the kind of
            // silent damage the supervisor must detect via
            // Ppa::valid() before trusting an archive entry.
            accel::Ppa bad = inner_->bestPpa();
            bad.latencyMs = std::numeric_limits<double>::quiet_NaN();
            bad.powerMw = -1.0;
            bad.feasible = true;
            return bad;
        }
        return inner_->bestPpa();
    }

    const std::vector<double> &
    bestLossHistory() const override
    {
        return inner_->bestLossHistory();
    }

    double
    sensitivity(double alpha) const override
    {
        return inner_->sensitivity(alpha);
    }

    double
    chargedSeconds() const override
    {
        return inner_->chargedSeconds() + extraSeconds_;
    }

    bool
    degradeToAnalytical() override
    {
        // Degrading also re-runs nothing: incumbents are preserved by
        // the inner run. Injection stops either way — repeated faults
        // on this candidate were the reason to degrade, and the
        // fallback rung is assumed reliable.
        inner_->degradeToAnalytical();
        degraded_ = true;
        corrupted_ = false;
        return true;
    }

  private:
    std::unique_ptr<MappingRun> inner_;
    const FaultyEnv *env_;
    std::uint64_t streamKey_;
    std::uint64_t evalIndex_ = 0;
    double extraSeconds_ = 0.0;
    bool corrupted_ = false;
    bool degraded_ = false;
};

FaultyEnv::FaultyEnv(CoSearchEnv &inner, common::FaultPlan plan)
    : inner_(inner), plan_(plan)
{}

const accel::DesignSpace &
FaultyEnv::hwSpace() const
{
    return inner_.hwSpace();
}

std::unique_ptr<MappingRun>
FaultyEnv::createRun(const accel::HwPoint &h, std::uint64_t seed) const
{
    return std::make_unique<FaultyRun>(inner_.createRun(h, seed), this,
                                       seed);
}

double
FaultyEnv::powerBudgetMw() const
{
    return inner_.powerBudgetMw();
}

double
FaultyEnv::areaBudgetMm2() const
{
    return inner_.areaBudgetMm2();
}

std::string
FaultyEnv::describeHw(const accel::HwPoint &h) const
{
    return inner_.describeHw(h);
}

int
FaultyEnv::minSeedBudget() const
{
    return inner_.minSeedBudget();
}

std::string
FaultyEnv::backendName() const
{
    return inner_.backendName();
}

std::string
FaultyEnv::scenarioName() const
{
    return inner_.scenarioName();
}

std::uint64_t
FaultyEnv::workloadDigest() const
{
    return inner_.workloadDigest();
}

std::optional<accel::HwPoint>
FaultyEnv::expertDefault() const
{
    return inner_.expertDefault();
}

InjectionCounts
FaultyEnv::injected() const
{
    return InjectionCounts{transient_.load(), hang_.load(),
                           corrupt_.load()};
}

} // namespace unico::core
