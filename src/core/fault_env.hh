/**
 * @file
 * Fault-injecting decorator over any co-search environment.
 *
 * FaultyEnv wraps a CoSearchEnv and makes its MappingRuns fail the
 * way real cluster evaluations fail (Sec. 3.5): transient crashes
 * (thrown as EvalFault{Transient}), hangs (the supervisor's deadline
 * fires — virtual seconds are charged and EvalFault{Timeout} is
 * thrown) and silently corrupted PPA results (bestPpa() returns
 * garbage until a healthy re-evaluation repairs the incumbent).
 * All decisions come from a deterministic, seeded common::FaultPlan,
 * so fault patterns reproduce bit-for-bit across runs and thread
 * schedules — every recovery path in the driver is testable.
 */

#ifndef UNICO_CORE_FAULT_ENV_HH
#define UNICO_CORE_FAULT_ENV_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/fault.hh"
#include "core/env.hh"

namespace unico::core {

/** Snapshot of how many faults a FaultyEnv has injected so far. */
struct InjectionCounts
{
    std::uint64_t transient = 0;
    std::uint64_t hang = 0;
    std::uint64_t corrupt = 0;

    std::uint64_t
    total() const
    {
        return transient + hang + corrupt;
    }
};

/** Fault-injecting wrapper around an inner environment. */
class FaultyEnv : public CoSearchEnv
{
  public:
    /**
     * @param inner the real environment; must outlive the wrapper.
     * @param plan  per-evaluation fault oracle. The seed passed to
     *        createRun() is the plan's stream key, so each candidate
     *        owns an independent, reproducible fault stream.
     */
    FaultyEnv(CoSearchEnv &inner, common::FaultPlan plan);

    const accel::DesignSpace &hwSpace() const override;
    std::unique_ptr<MappingRun>
    createRun(const accel::HwPoint &h, std::uint64_t seed) const override;
    double powerBudgetMw() const override;
    double areaBudgetMm2() const override;
    std::string describeHw(const accel::HwPoint &h) const override;
    int minSeedBudget() const override;
    const accel::EvalCache *evalCache() const override
    {
        return inner_.evalCache();
    }
    surrogate::SurrogateStats surrogateStats() const override
    {
        return inner_.surrogateStats();
    }
    common::TransportStats transportStats() const override
    {
        return inner_.transportStats();
    }
    // Stack identity is the wrapped environment's: fault injection
    // does not change what a checkpoint was computed against.
    std::string backendName() const override;
    std::string scenarioName() const override;
    std::uint64_t workloadDigest() const override;
    std::optional<accel::HwPoint> expertDefault() const override;

    /** The fault oracle in use. */
    const common::FaultPlan &plan() const { return plan_; }

    /** Faults injected so far (across all runs of this env). */
    InjectionCounts injected() const;

  private:
    friend class FaultyRun;

    CoSearchEnv &inner_;
    common::FaultPlan plan_;
    mutable std::atomic<std::uint64_t> transient_{0};
    mutable std::atomic<std::uint64_t> hang_{0};
    mutable std::atomic<std::uint64_t> corrupt_{0};
};

} // namespace unico::core

#endif // UNICO_CORE_FAULT_ENV_HH
