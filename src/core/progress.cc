#include "core/progress.hh"

namespace unico::core {

const char *
toString(ProgressKind kind)
{
    switch (kind) {
      case ProgressKind::Started: return "started";
      case ProgressKind::TrialCompleted: return "trial";
      case ProgressKind::IncumbentChanged: return "incumbent";
      case ProgressKind::FrontDelta: return "front";
      case ProgressKind::CheckpointWritten: return "checkpoint";
      case ProgressKind::Finished: return "finished";
    }
    return "?";
}

common::Json
toJson(const ProgressEvent &event)
{
    common::Json doc = common::Json::object();
    doc["event"] = toString(event.kind);
    if (event.job != 0)
        doc["job"] = static_cast<std::int64_t>(event.job);
    doc["iteration"] = event.iteration;
    doc["max_iterations"] = event.maxIterations;
    doc["hours"] = event.hours;
    doc["evaluations"] = static_cast<std::int64_t>(event.evaluations);
    doc["front_size"] = event.frontSize;
    doc["records"] = event.records;
    if (event.kind == ProgressKind::FrontDelta)
        doc["front_delta"] = event.frontDelta;
    if (!event.detail.empty())
        doc["detail"] = event.detail;
    if (event.kind == ProgressKind::IncumbentChanged ||
        (event.kind == ProgressKind::Finished && event.frontSize > 0)) {
        doc["latency_ms"] = event.bestLatencyMs;
        doc["power_mw"] = event.bestPowerMw;
        doc["area_mm2"] = event.bestAreaMm2;
    }
    if (event.kind == ProgressKind::Finished)
        doc["interrupted"] = event.interrupted;
    return doc;
}

} // namespace unico::core
