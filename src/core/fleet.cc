#include "core/fleet.hh"

#if !defined(_WIN32)
#include <signal.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/frame.hh"
#include "common/json.hh"
#include "common/shard_cache.hh"
#include "common/subprocess.hh"
#include "core/fleet_transport.hh"
#include "net/socket.hh"
#include "net/tcp_transport.hh"

namespace unico::core {

namespace {

using common::EvalFault;
using common::EvalStatus;
using common::Json;

/** Wire op kinds. A run's history is the exact sequence of mutating
 *  calls made on it — including calls that threw, since a faulted
 *  step still advances the run's internal evaluation index. */
constexpr int kOpStep = 0;
constexpr int kOpDegrade = 1;

struct WireOp
{
    int kind = kOpStep;
    int arg = 0;

    bool operator==(const WireOp &other) const = default;
};

/** Stable identity of one mapping run: fingerprint of (hw, seed).
 *  Master and worker compute it with the same code, so placement
 *  (rendezvous hashing) and the worker resident cache agree. */
common::Fingerprint
runKey(const accel::HwPoint &h, std::uint64_t seed)
{
    common::FingerprintBuilder b;
    b.add(std::uint64_t{0xf1ee70001ULL}); // domain tag
    b.add(seed);
    b.add(static_cast<std::uint64_t>(h.size()));
    for (const auto v : h)
        b.add(static_cast<std::uint64_t>(v));
    return b.fingerprint();
}

EvalStatus
statusFromString(const std::string &s)
{
    if (s == "ok")
        return EvalStatus::Ok;
    if (s == "transient")
        return EvalStatus::Transient;
    if (s == "timeout")
        return EvalStatus::Timeout;
    if (s == "infeasible")
        return EvalStatus::Infeasible;
    return EvalStatus::Fatal;
}

/** splitmix64: the repo's standard cheap deterministic stream. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Json
opsToJson(const std::vector<WireOp> &ops)
{
    Json arr = Json::array();
    for (const auto &op : ops) {
        Json pair = Json::array();
        pair.push(Json(op.kind));
        pair.push(Json(op.arg));
        arr.push(std::move(pair));
    }
    return arr;
}

std::vector<WireOp>
opsFromJson(const Json &arr)
{
    std::vector<WireOp> ops;
    ops.reserve(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const Json &pair = arr.at(i);
        ops.push_back(WireOp{static_cast<int>(pair.at(0).asInt()),
                             static_cast<int>(pair.at(1).asInt())});
    }
    return ops;
}

/** A request ships the run's full op history plus the master's
 *  `done` watermark: ops [0, done) were already acked (the worker
 *  replays any it is missing, swallowing faults), ops [done, size)
 *  are pending and the worker applies them in order, stopping after
 *  the first non-Ok op. "sync" just applies; "sense" additionally
 *  computes sensitivity once the history is fully applied. The
 *  `req` nonce is echoed in the response so the master can discard
 *  duplicated/reordered replies from an earlier exchange on the
 *  same channel (networks deliver those; socketpairs never did). */
std::string
makeRequest(const char *op, const accel::HwPoint &h, std::uint64_t seed,
            const std::vector<WireOp> &ops, std::size_t done,
            double alpha, std::uint64_t nonce)
{
    Json req = Json::object();
    req["op"] = Json(op);
    Json hw = Json::array();
    for (const auto v : h)
        hw.push(Json(static_cast<double>(v)));
    req["hw"] = std::move(hw);
    req["seed"] = Json(common::hexU64(seed));
    req["ops"] = opsToJson(ops);
    req["done"] = Json(done);
    req["alpha"] = Json(common::hexDouble(alpha));
    req["req"] = Json(common::hexU64(nonce));
    return req.dump();
}

} // namespace

std::uint64_t
rendezvousScore(std::uint64_t hi, std::uint64_t lo, std::size_t slot)
{
    // Highest-random-weight: a pure function of (key, slot), so the
    // per-key ranking of slots is stable across processes and runs,
    // and removing a slot only moves the keys whose argmax it was.
    return mix64(hi ^ mix64(lo ^ (slot + 1)));
}

int
rendezvousHome(std::uint64_t hi, std::uint64_t lo,
               const std::vector<bool> &alive)
{
    int home = -1;
    std::uint64_t best = 0;
    for (std::size_t i = 0; i < alive.size(); ++i) {
        if (!alive[i])
            continue;
        const std::uint64_t score = rendezvousScore(hi, lo, i);
        if (home < 0 || score > best) {
            home = static_cast<int>(i);
            best = score;
        }
    }
    return home;
}

#if !defined(_WIN32)

namespace {

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/** Outcome record of one applied op, kept so a re-request after a
 *  lost/corrupt response can answer with the identical result
 *  without re-applying the op. */
struct DoneOp
{
    WireOp op;
    EvalStatus status = EvalStatus::Ok;
    std::string message;
    bool degraded = false;
};

/** One run resident in a worker, plus the ops already applied. */
struct ResidentRun
{
    std::unique_ptr<MappingRun> run;
    std::vector<DoneOp> done;
    std::uint64_t stamp = 0; ///< LRU clock
};

/** Apply one op, capturing the evaluation outcome instead of letting
 *  it unwind: the master re-raises it from the response, preserving
 *  in-process exception semantics across the process boundary. */
DoneOp
applyOp(MappingRun &run, const WireOp &op)
{
    DoneOp d;
    d.op = op;
    try {
        if (op.kind == kOpStep) {
            run.step(op.arg);
        } else if (op.kind == kOpDegrade) {
            d.degraded = run.degradeToAnalytical();
        } else {
            d.status = EvalStatus::Fatal;
            d.message = "fleet: unknown op kind";
        }
    } catch (const EvalFault &f) {
        d.status = f.status();
        d.message = f.what();
    } catch (const std::exception &e) {
        d.status = EvalStatus::Fatal;
        d.message = e.what();
    }
    return d;
}

/** True if @p done (by op identity) is a prefix of @p ops. */
bool
isPrefix(const std::vector<DoneOp> &done, const std::vector<WireOp> &ops)
{
    if (done.size() > ops.size())
        return false;
    for (std::size_t i = 0; i < done.size(); ++i)
        if (!(done[i].op == ops[i]))
            return false;
    return true;
}

/** How one pass over a request stream ended. */
enum class ServeExit {
    PeerClosed,   ///< clean EOF / dead peer: channel is gone
    StreamBroken, ///< torn or corrupt request stream: unusable
    Bye,          ///< master said goodbye: shut down for good
};

/**
 * Serves framed evaluation requests inside one worker process. The
 * server outlives individual channels: a remote worker that loses
 * its connection keeps this object (resident runs and all) and
 * serves the next channel after reconnecting.
 */
class WorkerServer
{
  public:
    WorkerServer(int fd, const CoSearchEnv &env, FleetConfig cfg)
        : fd_(fd), env_(env), cfg_(cfg)
    {}

    /** Point the server at a (re)connected channel. */
    void setFd(int fd) { fd_ = fd; }

    /** Zygote workers: serve until the stream ends, then die. */
    [[noreturn]] void
    serve()
    {
        switch (serveLoop()) {
          case ServeExit::PeerClosed:
          case ServeExit::Bye:
            ::_exit(0); // master closed our socket: clean drain
          case ServeExit::StreamBroken:
            ::_exit(3); // request stream torn/corrupt: unusable
        }
        ::_exit(3);
    }

    /** Serve requests until the current channel ends. Remote worker
     *  clients call this per connection and reconnect on
     *  PeerClosed/StreamBroken; Bye means shut down. */
    ServeExit
    serveLoop()
    {
        for (;;) {
            std::string payload;
            const auto st = common::readFrame(fd_, payload);
            if (st == common::FrameStatus::Eof)
                return ServeExit::PeerClosed;
            if (st != common::FrameStatus::Ok)
                return ServeExit::StreamBroken;
            bye_ = false;
            const std::string reply = handle(payload);
            if (bye_)
                return ServeExit::Bye; // no reply; master is leaving
            std::string frame = common::encodeFrame(reply);
            ++responses_;
            if (cfg_.chaosCorruptEvery > 0 &&
                responses_ % static_cast<std::uint64_t>(
                                 cfg_.chaosCorruptEvery) ==
                    0) {
                // Flip one payload bit AFTER the CRC was computed, so
                // the master's decoder must catch it.
                frame[common::kFrameHeaderSize] ^= 0x01;
            }
            if (common::writeFull(fd_, frame) != common::IoStatus::Ok)
                return ServeExit::PeerClosed; // master went away
        }
    }

  private:
    std::string
    handle(const std::string &payload)
    {
        Json resp = Json::object();
        try {
            const Json req = Json::parse(payload);
            // Echo the request nonce first so even a failure reply
            // passes the master's duplicate/reorder filter.
            if (req.isObject() && req.has("req"))
                resp["req"] = Json(req.at("req").asString());
            handleParsed(req, resp);
        } catch (const std::exception &e) {
            // Malformed request or createRun failure: report fatal;
            // the master surfaces it as an evaluation fault.
            resp["status"] = Json(toString(EvalStatus::Fatal));
            resp["message"] = Json(std::string(e.what()));
        }
        return resp.dump();
    }

    void
    handleParsed(const Json &req, Json &resp)
    {
        const std::string op = req.at("op").asString();
        if (op == "ping") {
            // Heartbeat: prove the channel and this process are live
            // without touching any run state.
            resp["status"] = Json(toString(EvalStatus::Ok));
            resp["pong"] = Json(true);
            return;
        }
        if (op == "bye") {
            bye_ = true;
            return;
        }
        accel::HwPoint hw;
        const Json &hwArr = req.at("hw");
        hw.reserve(hwArr.size());
        for (std::size_t i = 0; i < hwArr.size(); ++i)
            hw.push_back(static_cast<std::size_t>(hwArr.at(i).asInt()));
        const std::uint64_t seed =
            common::parseHexU64(req.at("seed").asString());
        const std::vector<WireOp> ops = opsFromJson(req.at("ops"));
        const std::size_t done = std::min(
            static_cast<std::size_t>(req.at("done").asInt()), ops.size());

        ResidentRun &res = materialize(hw, seed, ops);

        // Replay any acked history the resident is missing, swallowing
        // faults: each was already raised to the master by whichever
        // worker first applied the op, and purity of the fault
        // streams makes the recurrence bit-identical.
        while (res.done.size() < done)
            res.done.push_back(applyOp(*res.run, ops[res.done.size()]));

        // Apply the pending tail in order, stopping after the first
        // non-Ok op (the master drops everything it queued beyond a
        // fault — the unbatched master would never have issued it).
        // Ops a lost/corrupted response already applied are answered
        // idempotently from the record instead of re-applied.
        EvalStatus status = EvalStatus::Ok;
        std::string message;
        bool degraded = false;
        std::size_t applied = 0;
        for (std::size_t i = done; i < ops.size(); ++i) {
            if (res.done.size() <= i)
                res.done.push_back(applyOp(*res.run, ops[i]));
            const DoneOp &d = res.done[i];
            ++applied;
            status = d.status;
            message = d.message;
            degraded = d.degraded;
            if (status != EvalStatus::Ok)
                break;
        }

        double sense = 0.0;
        if (op == "sense" && status == EvalStatus::Ok) {
            const double alpha =
                common::doubleFromHex(req.at("alpha").asString());
            try {
                sense = res.run->sensitivity(alpha);
            } catch (const EvalFault &f) {
                status = f.status();
                message = f.what();
            } catch (const std::exception &e) {
                status = EvalStatus::Fatal;
                message = e.what();
            }
        }

        resp["status"] = Json(toString(status));
        if (!message.empty())
            resp["message"] = Json(std::move(message));
        resp["applied"] = Json(applied);
        resp["spent"] = Json(res.run->spent());
        resp["seconds"] =
            Json(common::hexDouble(res.run->chargedSeconds()));
        const accel::Ppa ppa = res.run->bestPpa();
        resp["lat"] = Json(common::hexDouble(ppa.latencyMs));
        resp["pow"] = Json(common::hexDouble(ppa.powerMw));
        resp["area"] = Json(common::hexDouble(ppa.areaMm2));
        resp["energy"] = Json(common::hexDouble(ppa.energyMj));
        resp["feasible"] = Json(ppa.feasible);
        Json hist = Json::array();
        for (const double v : res.run->bestLossHistory())
            hist.push(Json(common::hexDouble(v)));
        resp["hist"] = std::move(hist);
        if (op == "sense")
            resp["sense"] = Json(common::hexDouble(sense));
        resp["degraded"] = Json(degraded);
    }

    /** Find or rebuild the resident run for (hw, seed); evict LRU
     *  residents beyond the cap. A resident whose applied ops are not
     *  a prefix of the requested history has diverged (stale steal
     *  target) and is rebuilt from scratch. */
    ResidentRun &
    materialize(const accel::HwPoint &hw, std::uint64_t seed,
                const std::vector<WireOp> &ops)
    {
        const common::Fingerprint key = runKey(hw, seed);
        const auto mapKey = std::make_pair(key.hi, key.lo);
        auto it = runs_.find(mapKey);
        if (it != runs_.end() && !isPrefix(it->second.done, ops)) {
            runs_.erase(it);
            it = runs_.end();
        }
        if (it == runs_.end()) {
            ResidentRun res;
            res.run = env_.createRun(hw, seed);
            it = runs_.emplace(mapKey, std::move(res)).first;
        }
        it->second.stamp = ++clock_;
        while (runs_.size() > std::max<std::size_t>(
                                  1, cfg_.workerResidentRuns)) {
            auto victim = runs_.end();
            for (auto j = runs_.begin(); j != runs_.end(); ++j)
                if (j != it &&
                    (victim == runs_.end() ||
                     j->second.stamp < victim->second.stamp))
                    victim = j;
            if (victim == runs_.end())
                break;
            runs_.erase(victim);
        }
        return it->second;
    }

    int fd_;
    const CoSearchEnv &env_;
    FleetConfig cfg_;
    bool bye_ = false;
    std::uint64_t responses_ = 0;
    std::uint64_t clock_ = 0;
    std::map<std::pair<std::uint64_t, std::uint64_t>, ResidentRun>
        runs_;
};

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

/** PR 6 topology: workers forked on demand by the single-threaded
 *  zygote, one AF_UNIX socketpair each. spawn() is not thread-safe,
 *  so this transport carries its own mutex — the pool deliberately
 *  calls open() outside its lock. */
class ZygoteTransport : public FleetTransport
{
  public:
    ZygoteTransport(const CoSearchEnv &inner, const FleetConfig &cfg)
    {
        factory_ = std::make_unique<common::WorkerFactory>(
            [&inner, cfg](int fd) {
                WorkerServer server(fd, inner, cfg);
                server.serve();
            });
    }

    bool
    ok() const override
    {
        return factory_ && factory_->ok();
    }

    bool
    open(WorkerChannel &out, double /*wait_seconds*/) override
    {
        std::lock_guard<std::mutex> lock(spawnMutex_);
        if (!ok())
            return false;
        common::WorkerHandle h;
        if (!factory_->spawn(h))
            return false;
        // Nonblocking on the master side so request deadlines bind on
        // the write path too (the io helpers poll on EAGAIN).
        common::setNonblocking(h.fd);
        out = WorkerChannel{};
        out.fd = h.fd;
        out.pid = h.pid;
        return true;
    }

    void
    close(WorkerChannel &ch) override
    {
        if (ch.fd >= 0)
            ::close(ch.fd); // worker _exit(0)s on the EOF
        ch.fd = -1;
    }

    bool retryableOpenFailure() const override { return false; }
    const char *name() const override { return "zygote"; }

  private:
    std::mutex spawnMutex_;
    std::unique_ptr<common::WorkerFactory> factory_;
};

/** Multi-host topology: a TCP listener adopts remote workers as they
 *  dial in and handshake. open() waits on the ready queue — a
 *  reconnect after a partition is just the next adoption, carrying
 *  the worker's session id and bumped epoch. */
class TcpTransport : public FleetTransport
{
  public:
    TcpTransport(const CoSearchEnv &inner, const FleetConfig &cfg)
    {
        net::HelloIdentity id;
        id.backend = inner.backendName();
        id.scenario = inner.scenarioName();
        id.workloadDigest = common::hexU64(inner.workloadDigest());
        listener_ = std::make_unique<net::TcpFleetListener>(
            cfg.listenAddr, std::move(id));
        ok_ = listener_->start(&error_);
        if (ok_ && !cfg.listenPortFile.empty()) {
            // Must land before the pool starts waiting for workers:
            // with ":0" the workers learn the port from this file.
            std::ofstream out(cfg.listenPortFile, std::ios::trunc);
            out << listener_->port() << "\n";
        }
    }

    bool ok() const override { return ok_; }

    bool
    open(WorkerChannel &out, double wait_seconds) override
    {
        net::TcpChannel ch;
        if (!listener_->awaitChannel(wait_seconds, ch))
            return false;
        out = WorkerChannel{};
        out.fd = ch.fd;
        out.session = ch.session;
        out.epoch = ch.epoch;
        out.remote = true;
        return true;
    }

    void
    close(WorkerChannel &ch) override
    {
        if (ch.fd >= 0)
            ::close(ch.fd);
        ch.fd = -1;
    }

    bool retryableOpenFailure() const override { return true; }
    const char *name() const override { return "tcp"; }

    int
    listenPort() const override
    {
        return listener_ ? listener_->port() : -1;
    }

    const std::string &error() const { return error_; }

  private:
    std::unique_ptr<net::TcpFleetListener> listener_;
    bool ok_ = false;
    std::string error_;
};

} // namespace

// ---------------------------------------------------------------------------
// Master side: worker pool
// ---------------------------------------------------------------------------

namespace detail {

/**
 * Owns the worker channels and the transport supervisor. All
 * public methods are thread-safe; frame I/O and channel opens happen
 * outside the pool lock so a slow evaluation — or a seconds-long
 * TCP reconnect wait — on one slot never blocks requests to the
 * others.
 */
class WorkerPool
{
  public:
    WorkerPool(const CoSearchEnv &inner, const FleetConfig &cfg)
        : cfg_(cfg)
    {
        // The zygote must fork before the driver goes multithreaded;
        // FleetEnv's constructor contract guarantees we are called
        // single-threaded here. (The TCP listener starts a thread,
        // which is why the transport choice happens first.)
        if (!cfg_.listenAddr.empty())
            transport_ = std::make_unique<TcpTransport>(inner, cfg_);
        else
            transport_ = std::make_unique<ZygoteTransport>(inner, cfg_);
        slots_.resize(std::max<std::size_t>(1, cfg_.workers));
        for (auto &slot : slots_) {
            if (!transport_->ok())
                break;
            WorkerChannel ch;
            if (!transport_->open(ch, cfg_.connectWaitSeconds))
                continue;
            if (ch.remote && !validateRemote(ch)) {
                transport_->close(ch);
                continue;
            }
            slot.ch = ch;
            slot.alive = true;
            if (ch.remote)
                ++stats_.heartbeats;
        }
        if (cfg_.chaosKills > 0) {
            std::uint64_t z = cfg_.chaosSeed;
            std::uint64_t at = 0;
            for (int i = 0; i < cfg_.chaosKills; ++i) {
                z = mix64(z);
                at += 2 + z % 9;
                killAt_.insert(at);
            }
        }
    }

    ~WorkerPool()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &slot : slots_) {
            if (!slot.alive)
                continue;
            if (slot.ch.remote && slot.ch.fd >= 0) {
                // Tell the remote worker to shut down instead of
                // treating our close as a partition to reconnect
                // through.
                Json bye = Json::object();
                bye["op"] = "bye";
                common::writeFrameUntil(slot.ch.fd, bye.dump(),
                                        common::monotonicNow() + 1.0);
            }
            transport_->close(slot.ch);
            slot.alive = false;
        }
        transport_.reset(); // zygote drains / listener stops
    }

    int
    listenPort() const
    {
        return transport_ ? transport_->listenPort() : -1;
    }

    /**
     * One supervised request round-trip: frame the request, send it,
     * and read the matching response under ONE absolute deadline
     * covering the write, the read, and any duplicate/reordered
     * stale replies skipped along the way — a slow-loris peer
     * dribbling bytes cannot stretch a request past
     * requestDeadlineSeconds by keeping individual reads alive.
     * Returns false only when the circuit breaker is open (no live
     * workers, or the retry budget is exhausted); the caller then
     * evaluates in-process. On true, @p resp holds the parsed,
     * nonce-matched response document.
     */
    bool
    call(const common::Fingerprint &key, const char *op,
         const accel::HwPoint &hw, std::uint64_t seed,
         const std::vector<WireOp> &ops, std::size_t done, double alpha,
         Json &resp)
    {
        const int attempts = std::max(1, cfg_.maxRequestRetries);
        for (int attempt = 0; attempt < attempts; ++attempt) {
            std::int64_t pid = -1;
            int fd = -1;
            bool chaosKill = false;
            bool remote = false;
            const int idx = acquire(key, pid, fd, chaosKill, remote);
            if (idx < 0)
                return false; // fleet fully degraded
            if (chaosKill && pid > 0) {
                // Chaos harness: murder the worker we are about to
                // talk to. The conversation must recover and the
                // search must not notice.
                ::kill(static_cast<pid_t>(pid), SIGKILL);
            }

            const std::uint64_t nonce =
                nonce_.fetch_add(1, std::memory_order_relaxed) + 1;
            const std::string request =
                makeRequest(op, hw, seed, ops, done, alpha, nonce);
            const double deadline =
                cfg_.requestDeadlineSeconds > 0.0
                    ? common::monotonicNow() + cfg_.requestDeadlineSeconds
                    : 0.0;

            const auto lost = remote
                                  ? common::TransportFault::ConnectionLost
                                  : common::TransportFault::WorkerCrash;
            const auto wst =
                common::writeFrameUntil(fd, request, deadline);
            if (wst != common::IoStatus::Ok) {
                if (wst == common::IoStatus::Timeout) {
                    // Same hang test as a read timeout: a local worker
                    // that is alive but not draining its socket is
                    // wedged, not dead.
                    const bool stillAlive =
                        !remote && pid > 0 &&
                        ::kill(static_cast<pid_t>(pid), 0) == 0;
                    fault(idx, common::TransportFault::RequestTimeout,
                          stillAlive);
                } else {
                    fault(idx, lost, false);
                }
                continue;
            }

            if (readMatched(idx, pid, fd, remote, nonce, deadline,
                            lost, resp))
                return true;
        }
        return false; // retry budget exhausted: degrade this request
    }

    void
    noteInprocFallback()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.inprocFallbacks;
    }

    void
    noteOpsApplied(std::uint64_t n)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.opsApplied += n;
    }

    common::TransportStats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

    std::size_t
    liveWorkers() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::size_t n = 0;
        for (const auto &slot : slots_)
            n += slot.alive ? 1 : 0;
        return n;
    }

    std::vector<std::int64_t>
    pids() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<std::int64_t> out;
        for (const auto &slot : slots_)
            if (slot.alive && slot.ch.pid > 0)
                out.push_back(slot.ch.pid);
        return out;
    }

  private:
    struct Slot
    {
        WorkerChannel ch;
        bool alive = false;
        bool busy = false;
        /** A reopen is in flight outside the lock; the slot may come
         *  back, so acquire() must wait rather than declare the
         *  fleet dead. */
        bool opening = false;
        int respawns = 0; ///< reopen budget consumed
    };

    /** Bound on duplicate/reordered replies skipped per request; a
     *  babbling channel is a fault, not an infinite read loop. */
    static constexpr int kMaxStaleSkips = 8;

    /**
     * Read frames until one parses and carries the request nonce,
     * skipping a bounded number of stale replies (duplicated or
     * reordered deliveries of earlier exchanges on this channel).
     * Classifies every failure into a transport fault. True on a
     * matched response (slot released); false after fault(idx,...).
     */
    bool
    readMatched(int idx, std::int64_t pid, int fd, bool remote,
                std::uint64_t nonce, double deadline,
                common::TransportFault lost, Json &resp)
    {
        for (int skips = 0; skips <= kMaxStaleSkips; ++skips) {
            std::string payload;
            const auto st =
                common::readFrameUntil(fd, payload, deadline);
            switch (st) {
              case common::FrameStatus::Ok:
                break;
              case common::FrameStatus::Eof:
              case common::FrameStatus::Error:
                fault(idx, lost, false);
                return false;
              case common::FrameStatus::Torn:
                fault(idx, common::TransportFault::TornFrame, false);
                return false;
              case common::FrameStatus::Corrupt:
                fault(idx, common::TransportFault::CorruptFrame, false);
                return false;
              case common::FrameStatus::Timeout: {
                // Deadline expired. If the process is local and still
                // there it is hung (vs. a death the deadline
                // surfaced); remote liveness is unknowable here.
                const bool stillAlive =
                    !remote && pid > 0 &&
                    ::kill(static_cast<pid_t>(pid), 0) == 0;
                fault(idx, common::TransportFault::RequestTimeout,
                      stillAlive);
                return false;
              }
            }
            Json r;
            try {
                r = Json::parse(payload);
            } catch (const std::exception &) {
                // CRC-clean but unparsable: a worker bug. The request
                // is replayable, so retry it elsewhere.
                fault(idx, common::TransportFault::CorruptFrame, false);
                return false;
            }
            if (r.isObject() && r.has("req") &&
                r.at("req").isString() &&
                r.at("req").asString() != common::hexU64(nonce)) {
                // A CRC-valid reply to an EARLIER request: the network
                // duplicated or reordered it. Discard and keep
                // reading — the real reply is still in flight.
                noteStaleFrame();
                continue;
            }
            release(idx);
            resp = std::move(r);
            return true;
        }
        // More stale frames than any plausible reorder produces: the
        // channel is babbling. Treat as a lost conversation.
        fault(idx, lost, false);
        return false;
    }

    /**
     * Heartbeat a freshly adopted remote channel: one ping/pong
     * round-trip under a short deadline proves the worker end is
     * live and speaking the protocol before the slot trusts it with
     * a real (potentially expensive) request. Called OUTSIDE the
     * pool lock.
     */
    bool
    validateRemote(const WorkerChannel &ch)
    {
        const double wait =
            cfg_.requestDeadlineSeconds > 0.0
                ? std::min(5.0,
                           std::max(0.5, cfg_.requestDeadlineSeconds))
                : 5.0;
        const double deadline = common::monotonicNow() + wait;
        const std::uint64_t nonce =
            nonce_.fetch_add(1, std::memory_order_relaxed) + 1;
        Json ping = Json::object();
        ping["op"] = "ping";
        ping["req"] = Json(common::hexU64(nonce));
        if (common::writeFrameUntil(ch.fd, ping.dump(), deadline) !=
            common::IoStatus::Ok)
            return false;
        for (int skips = 0; skips <= kMaxStaleSkips; ++skips) {
            std::string payload;
            if (common::readFrameUntil(ch.fd, payload, deadline) !=
                common::FrameStatus::Ok)
                return false;
            try {
                const Json r = Json::parse(payload);
                if (r.isObject() && r.has("req") &&
                    r.at("req").isString() &&
                    r.at("req").asString() != common::hexU64(nonce)) {
                    noteStaleFrame();
                    continue;
                }
                return r.isObject() && r.has("pong") &&
                       r.at("pong").asBool();
            } catch (const std::exception &) {
                return false;
            }
        }
        return false;
    }

    /**
     * Pick a worker for @p key: its rendezvous-hash home when idle,
     * otherwise steal any idle worker; block while all live workers
     * are busy or any slot is mid-reopen. Returns the slot index
     * (marked busy) or -1 when the fleet has no live workers left
     * and none can come back.
     */
    int
    acquire(const common::Fingerprint &key, std::int64_t &pid,
            int &fd, bool &chaosKill, bool &remote)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            int home = -1;
            std::uint64_t best = 0;
            bool anyAlive = false;
            bool anyOpening = false;
            int idle = -1;
            for (std::size_t i = 0; i < slots_.size(); ++i) {
                anyOpening |= slots_[i].opening;
                if (!slots_[i].alive)
                    continue;
                anyAlive = true;
                // Highest-random-weight: stable per-key order that
                // only reshuffles the dead worker's keys.
                const std::uint64_t score =
                    rendezvousScore(key.hi, key.lo, i);
                if (home < 0 || score > best) {
                    home = static_cast<int>(i);
                    best = score;
                }
                if (idle < 0 && !slots_[i].busy)
                    idle = static_cast<int>(i);
            }
            if (!anyAlive) {
                if (!anyOpening)
                    return -1;
                // A reopen may yet repopulate the fleet; wait for it
                // to resolve rather than opening the breaker early.
                available_.wait(lock);
                continue;
            }
            int pick = -1;
            if (!slots_[static_cast<std::size_t>(home)].busy) {
                pick = home;
            } else if (idle >= 0) {
                pick = idle;
                ++stats_.workSteals;
            }
            if (pick >= 0) {
                Slot &slot = slots_[static_cast<std::size_t>(pick)];
                slot.busy = true;
                pid = slot.ch.pid;
                fd = slot.ch.fd;
                remote = slot.ch.remote;
                const std::uint64_t req = ++requestIndex_;
                chaosKill = killAt_.count(req) > 0;
                return pick;
            }
            available_.wait(lock);
        }
    }

    /** Mark a successful round-trip done and free the slot. */
    void
    release(int idx)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.requestRoundTrips;
        slots_[static_cast<std::size_t>(idx)].busy = false;
        available_.notify_all();
    }

    void
    noteStaleFrame()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.count(common::TransportFault::StaleFrame);
    }

    /**
     * Transport supervision for a failed conversation: count the
     * fault, tear the channel down (killing the process when it is
     * a local fork), and reopen a replacement — a zygote respawn, or
     * an adoption of the remote worker dialing back in. Each reopen
     * attempt consumes one unit of the slot's budget; when the
     * budget is gone the slot is retired for good, and when every
     * slot is retired the fleet degrades to in-process replay.
     */
    void
    fault(int idx, common::TransportFault f, bool hang)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stats_.count(f);
        if (hang)
            stats_.count(common::TransportFault::WorkerHang);
        Slot &slot = slots_[static_cast<std::size_t>(idx)];
        if (!slot.ch.remote && slot.ch.pid > 0)
            ::kill(static_cast<pid_t>(slot.ch.pid), SIGKILL);
        if (slot.ch.fd >= 0)
            ::close(slot.ch.fd);
        slot.ch = WorkerChannel{};
        slot.alive = false;
        slot.busy = false;

        // Reopen OUTSIDE the lock: a zygote spawn is quick, but a TCP
        // reconnect legitimately waits seconds for the worker to dial
        // back — other slots must keep serving meanwhile. The
        // `opening` flag keeps acquire() from declaring the fleet
        // dead while this is in flight.
        while (slot.respawns < cfg_.maxRespawnsPerWorker &&
               transport_ && transport_->ok()) {
            ++slot.respawns;
            slot.opening = true;
            lock.unlock();
            WorkerChannel ch;
            bool opened =
                transport_->open(ch, cfg_.reconnectWaitSeconds);
            bool beat = false;
            if (opened && ch.remote) {
                beat = validateRemote(ch);
                if (!beat) {
                    transport_->close(ch);
                    opened = false;
                }
            }
            lock.lock();
            slot.opening = false;
            if (opened) {
                slot.ch = ch;
                slot.alive = true;
                if (ch.remote) {
                    ++stats_.heartbeats;
                    if (ch.epoch > 0)
                        ++stats_.reconnects; // same worker, back again
                    else
                        ++stats_.workerRespawns; // a fresh process
                } else {
                    ++stats_.workerRespawns;
                }
                break;
            }
            if (!transport_->retryableOpenFailure())
                break; // the zygote cannot fork: retire the slot now
            stats_.count(common::TransportFault::ConnectFailure);
        }
        available_.notify_all();
    }

    FleetConfig cfg_;
    std::unique_ptr<FleetTransport> transport_;

    mutable std::mutex mutex_;
    std::condition_variable available_;
    std::vector<Slot> slots_;
    common::TransportStats stats_;
    std::uint64_t requestIndex_ = 0;
    std::atomic<std::uint64_t> nonce_{0};
    std::set<std::uint64_t> killAt_;
};

} // namespace detail

// ---------------------------------------------------------------------------
// Master side: run proxy
// ---------------------------------------------------------------------------

/**
 * Master-side proxy for a mapping run evaluated by the fleet. Keeps
 * the full mutating-op history so any worker can reconstruct the
 * run's exact state, and mirrors the last-known state (spent,
 * charged seconds, best PPA, loss history) so read accessors never
 * touch the transport. When the pool's circuit breaker opens, the
 * proxy rebuilds the run in-process from the same history and
 * continues locally — byte-identical either way.
 *
 * Op coalescing (cfg.coalesceOps): step() only queues the op and
 * advances an optimistic eval count; the queued batch ships in ONE
 * framed request when a state read (bestPpa / bestLossHistory /
 * chargedSeconds / sensitivity / degradeToAnalytical) needs ground
 * truth. The supervisor's chunked stepping loop thereby pays one
 * round-trip per supervised attempt instead of one per chunk. A
 * fault inside the batch truncates the queued tail (ops_.resize):
 * the unbatched master would have seen the fault at that op and
 * never issued the tail, so trajectories stay byte-identical.
 */
class RemoteRun : public MappingRun
{
  public:
    RemoteRun(const FleetEnv &env, detail::WorkerPool *pool,
              accel::HwPoint h, std::uint64_t seed)
        : env_(env), pool_(pool), hw_(std::move(h)), seed_(seed),
          key_(runKey(hw_, seed)), ppa_(accel::Ppa::infeasible())
    {}

    void
    step(int evals) override
    {
        if (local_) {
            local_->step(evals);
            return;
        }
        ops_.push_back(WireOp{kOpStep, evals});
        pendingEvals_ += evals;
        if (!env_.cfg_.coalesceOps)
            flush();
    }

    int
    spent() const override
    {
        // Optimistic while ops are queued: a healthy step advances
        // spent by exactly its arg, and a faulting batch resets the
        // mirror to worker truth before the fault surfaces.
        return local_ ? local_->spent() : spent_ + pendingEvals_;
    }

    accel::Ppa
    bestPpa() const override
    {
        if (local_)
            return local_->bestPpa();
        const_cast<RemoteRun *>(this)->flush();
        return local_ ? local_->bestPpa() : ppa_;
    }

    const std::vector<double> &
    bestLossHistory() const override
    {
        if (local_)
            return local_->bestLossHistory();
        const_cast<RemoteRun *>(this)->flush();
        return local_ ? local_->bestLossHistory() : hist_;
    }

    double
    sensitivity(double alpha) const override
    {
        if (local_)
            return local_->sensitivity(alpha);
        const_cast<RemoteRun *>(this)->flush();
        if (local_)
            return local_->sensitivity(alpha);
        Json resp;
        if (roundTrip("sense", alpha, resp)) {
            const_cast<RemoteRun *>(this)->applyState(resp);
            throwIfFault(resp);
            return common::doubleFromHex(resp.at("sense").asString());
        }
        goLocal(ops_.size());
        return local_->sensitivity(alpha);
    }

    double
    chargedSeconds() const override
    {
        if (local_)
            return local_->chargedSeconds();
        const_cast<RemoteRun *>(this)->flush();
        return local_ ? local_->chargedSeconds() : seconds_;
    }

    bool
    degradeToAnalytical() override
    {
        if (local_)
            return local_->degradeToAnalytical();
        flush();
        if (local_)
            return local_->degradeToAnalytical();
        ops_.push_back(WireOp{kOpDegrade, 0});
        Json resp;
        if (roundTrip("sync", 0.0, resp)) {
            done_ = ops_.size();
            if (pool_ != nullptr)
                pool_->noteOpsApplied(1);
            applyState(resp);
            throwIfFault(resp);
            return resp.at("degraded").asBool();
        }
        goLocal(ops_.size() - 1);
        done_ = ops_.size() - 1;
        return local_->degradeToAnalytical();
    }

  private:
    /**
     * Resolve every queued op against a worker. On a healthy reply
     * the whole tail is acked; on an evaluation fault the worker
     * stopped at the faulting op, we keep exactly the applied prefix
     * and re-raise the fault here — the first state read after the
     * queued steps, which in the supervisor is still inside the same
     * try block that would have caught the unbatched throw. On
     * transport exhaustion the run goes local and replays the queue
     * with normal fault propagation.
     */
    void
    flush()
    {
        if (local_ || done_ == ops_.size())
            return;
        Json resp;
        if (roundTrip("sync", 0.0, resp)) {
            const std::size_t applied = std::min(
                static_cast<std::size_t>(resp.at("applied").asInt()),
                ops_.size() - done_);
            done_ += applied;
            if (pool_ != nullptr)
                pool_->noteOpsApplied(applied);
            applyState(resp);
            const EvalStatus st =
                statusFromString(resp.at("status").asString());
            if (st != EvalStatus::Ok) {
                ops_.resize(done_);
                pendingEvals_ = 0;
                throwIfFault(resp);
            }
            pendingEvals_ = 0;
            return;
        }
        // Circuit breaker: replay the acked prefix swallowing faults,
        // then apply the queued tail with in-process propagation.
        goLocal(done_);
        while (done_ < ops_.size()) {
            const WireOp op = ops_[done_];
            ++done_; // a faulted op still joins the applied history
            try {
                if (op.kind == kOpStep)
                    local_->step(op.arg);
                else if (op.kind == kOpDegrade)
                    local_->degradeToAnalytical();
            } catch (...) {
                ops_.resize(done_);
                pendingEvals_ = 0;
                throw;
            }
        }
        pendingEvals_ = 0;
    }

    bool
    roundTrip(const char *op, double alpha, Json &resp) const
    {
        if (pool_ == nullptr)
            return false;
        // "sense" is non-mutating and is NOT part of the history; the
        // request ships the history so the worker can materialize.
        // The pool parses and nonce-matches the reply (unparsable
        // replies retry as CorruptFrame inside call()); here we only
        // check it is a complete state document before trusting it.
        if (!pool_->call(key_, op, hw_, seed_, ops_, done_, alpha, resp))
            return false;
        return resp.has("status") && resp.has("spent") &&
               resp.has("applied");
    }

    void
    applyState(const Json &r)
    {
        spent_ = static_cast<int>(r.at("spent").asInt());
        seconds_ = common::doubleFromHex(r.at("seconds").asString());
        ppa_.latencyMs = common::doubleFromHex(r.at("lat").asString());
        ppa_.powerMw = common::doubleFromHex(r.at("pow").asString());
        ppa_.areaMm2 = common::doubleFromHex(r.at("area").asString());
        ppa_.energyMj =
            common::doubleFromHex(r.at("energy").asString());
        ppa_.feasible = r.at("feasible").asBool();
        const Json &hist = r.at("hist");
        hist_.clear();
        hist_.reserve(hist.size());
        for (std::size_t i = 0; i < hist.size(); ++i)
            hist_.push_back(common::doubleFromHex(hist.at(i).asString()));
    }

    void
    throwIfFault(const Json &r) const
    {
        const EvalStatus st = statusFromString(r.at("status").asString());
        if (st == EvalStatus::Ok)
            return;
        throw EvalFault(st, r.has("message")
                                ? r.at("message").asString()
                                : std::string(toString(st)));
    }

    /**
     * Circuit breaker fell back to in-process evaluation: rebuild
     * the run locally by replaying the first @p replay ops of the
     * history, swallowing replayed faults (each was already raised
     * once; the deterministic fault streams make the recurrence
     * identical). Mutating callers pass ops_.size() - 1 — the tail
     * is the pending op they then apply with normal propagation —
     * while sensitivity() replays the whole history. Permanent: once
     * local, the run never talks to the fleet again.
     */
    void
    goLocal(std::size_t replay) const
    {
        auto run = env_.inner_.createRun(hw_, seed_);
        for (std::size_t i = 0; i < replay; ++i) {
            try {
                if (ops_[i].kind == kOpStep)
                    run->step(ops_[i].arg);
                else if (ops_[i].kind == kOpDegrade)
                    run->degradeToAnalytical();
            } catch (const std::exception &) {
                // Already reported when first applied; recurrence is
                // part of the deterministic replay.
            }
        }
        local_ = std::move(run);
        if (pool_ != nullptr)
            pool_->noteInprocFallback();
    }

    const FleetEnv &env_;
    detail::WorkerPool *pool_;
    accel::HwPoint hw_;
    std::uint64_t seed_;
    common::Fingerprint key_;
    std::vector<WireOp> ops_;
    std::size_t done_ = 0; ///< acked prefix of ops_; the rest is queued
    int pendingEvals_ = 0; ///< optimistic spent delta of the queue

    // Mirrored state from the last successful response.
    int spent_ = 0;
    double seconds_ = 0.0;
    accel::Ppa ppa_;
    std::vector<double> hist_;

    mutable std::unique_ptr<MappingRun> local_;
};

// ---------------------------------------------------------------------------
// Remote worker client
// ---------------------------------------------------------------------------

namespace {

/** Uniform draw in [0, 1) from a mixed state — for backoff jitter. */
double
unitJitter(std::uint64_t z)
{
    return static_cast<double>(mix64(z) >> 11) *
           (1.0 / 9007199254740992.0);
}

} // namespace

int
runFleetWorkerClient(const CoSearchEnv &env, const FleetWorkerOptions &opts)
{
    net::HelloIdentity identity;
    identity.backend = env.backendName();
    identity.scenario = env.scenarioName();
    identity.workloadDigest = common::hexU64(env.workloadDigest());

    // Session id: stable for the life of this process so the master
    // can tell "the partitioned worker came back" (epoch > 0, resident
    // runs warm) from "a fresh worker joined" (epoch 0). Seeded from
    // pid + clock; uniqueness, not unpredictability, is what matters.
    double nowSplit = common::monotonicNow();
    std::uint64_t nowBits = 0;
    static_assert(sizeof nowBits == sizeof nowSplit, "u64 time bits");
    std::memcpy(&nowBits, &nowSplit, sizeof nowBits);
    const std::uint64_t session =
        mix64(static_cast<std::uint64_t>(::getpid()) ^ mix64(nowBits));

    // The server outlives channels: resident runs survive reconnects,
    // which is what makes a post-partition resumption warm.
    WorkerServer server(-1, env, opts.cfg);

    std::uint64_t epoch = 0;
    int consecutiveFailures = 0;
    bool everConnected = false;
    for (;;) {
        std::string error;
        bool rejected = false;
        const int fd = net::connectWorker(
            opts.connectAddr, identity, session, epoch,
            opts.connectDeadlineSeconds, &error, &rejected);
        if (fd < 0) {
            if (rejected)
                return 2; // wrong stack identity: retrying is useless
            if (++consecutiveFailures > opts.maxReconnectAttempts)
                return everConnected ? 0 : 1;
            // Jittered exponential backoff: desynchronizes a fleet of
            // workers all reconnecting after the same partition heals,
            // so the master is not hit by a thundering herd.
            const int k = std::min(consecutiveFailures - 1, 6);
            const double cap = std::min(
                opts.reconnectBaseSeconds * static_cast<double>(1 << k),
                opts.reconnectMaxSeconds);
            const double sleepFor =
                cap * (0.5 + 0.5 * unitJitter(
                                       session ^ static_cast<std::uint64_t>(
                                                     consecutiveFailures)));
            std::this_thread::sleep_for(std::chrono::duration<double>(
                std::max(0.001, sleepFor)));
            continue;
        }
        everConnected = true;
        consecutiveFailures = 0;
        server.setFd(fd);
        const ServeExit exit = server.serveLoop();
        ::close(fd);
        if (exit == ServeExit::Bye)
            return 0; // master shut the fleet down cleanly
        // PeerClosed / StreamBroken: the channel died under us —
        // network fault, chaos-proxy sever, or master-side SIGKILL of
        // the conversation. Dial back in under the next epoch; the
        // master replays whatever the wire lost.
        ++epoch;
    }
}

#else // _WIN32

int
runFleetWorkerClient(const CoSearchEnv &, const FleetWorkerOptions &)
{
    return 1; // no fleet transport on this platform
}

#endif // !_WIN32

// ---------------------------------------------------------------------------
// FleetEnv
// ---------------------------------------------------------------------------

FleetEnv::FleetEnv(CoSearchEnv &inner, FleetConfig cfg)
    : inner_(inner), cfg_(cfg)
{
#if !defined(_WIN32)
    pool_ = std::make_unique<detail::WorkerPool>(inner_, cfg_);
#endif
}

FleetEnv::~FleetEnv() = default;

const accel::DesignSpace &
FleetEnv::hwSpace() const
{
    return inner_.hwSpace();
}

std::unique_ptr<MappingRun>
FleetEnv::createRun(const accel::HwPoint &h, std::uint64_t seed) const
{
#if !defined(_WIN32)
    if (pool_)
        return std::make_unique<RemoteRun>(*this, pool_.get(), h, seed);
#endif
    return inner_.createRun(h, seed);
}

double
FleetEnv::powerBudgetMw() const
{
    return inner_.powerBudgetMw();
}

double
FleetEnv::areaBudgetMm2() const
{
    return inner_.areaBudgetMm2();
}

std::string
FleetEnv::describeHw(const accel::HwPoint &h) const
{
    return inner_.describeHw(h);
}

int
FleetEnv::minSeedBudget() const
{
    return inner_.minSeedBudget();
}

const accel::EvalCache *
FleetEnv::evalCache() const
{
    return inner_.evalCache();
}

std::string
FleetEnv::backendName() const
{
    return inner_.backendName();
}

std::string
FleetEnv::scenarioName() const
{
    return inner_.scenarioName();
}

std::uint64_t
FleetEnv::workloadDigest() const
{
    return inner_.workloadDigest();
}

std::optional<accel::HwPoint>
FleetEnv::expertDefault() const
{
    return inner_.expertDefault();
}

surrogate::SurrogateStats
FleetEnv::surrogateStats() const
{
    // Screens are per-run and train wherever the run executes; the
    // master-side context only sees runs the circuit breaker pulled
    // in-process, so this is the inner env's view (worker-process
    // counters die with the workers — diagnostics, not search state).
    return inner_.surrogateStats();
}

common::TransportStats
FleetEnv::transportStats() const
{
    common::TransportStats stats = inner_.transportStats();
#if !defined(_WIN32)
    if (pool_)
        stats.merge(pool_->stats());
#endif
    return stats;
}

std::size_t
FleetEnv::liveWorkers() const
{
#if !defined(_WIN32)
    if (pool_)
        return pool_->liveWorkers();
#endif
    return 0;
}

std::vector<std::int64_t>
FleetEnv::workerPids() const
{
#if !defined(_WIN32)
    if (pool_)
        return pool_->pids();
#endif
    return {};
}

int
FleetEnv::listenPort() const
{
#if !defined(_WIN32)
    if (pool_)
        return pool_->listenPort();
#endif
    return -1;
}

} // namespace unico::core
