/**
 * @file
 * Abstract co-search environment.
 *
 * UNICO (Sec. 3.5) is an algorithm framework, portable across
 * platforms: it needs only (1) a discrete HW design space, (2) a
 * budgeted, resumable SW mapping search per hardware sample, and
 * (3) a PPA estimation engine with a known evaluation cost. This
 * interface captures exactly that contract; concrete environments
 * bind the spatial template + analytical model (open-source
 * platform) or the Ascend-like core + cycle-level simulator.
 */

#ifndef UNICO_CORE_ENV_HH
#define UNICO_CORE_ENV_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "accel/design_space.hh"
#include "accel/ppa.hh"
#include "common/status.hh"
#include "mapping/engine.hh"
#include "surrogate/learned_model.hh"

namespace unico::core {

/**
 * One in-progress SW mapping search for a fixed hardware sample.
 *
 * Contract: bestLossHistory() gains one (monotone non-increasing)
 * entry per evaluation; chargedSeconds() accumulates the nominal
 * virtual cost of the PPA queries issued so far.
 */
class MappingRun
{
  public:
    virtual ~MappingRun() = default;

    /** Spend @p evals more mapping evaluations. */
    virtual void step(int evals) = 0;

    /** Total evaluations spent. */
    virtual int spent() const = 0;

    /** PPA of the best mapping found so far (aggregated over the
     *  workload's layers). */
    virtual accel::Ppa bestPpa() const = 0;

    /** Best-so-far mapping loss after each evaluation. */
    virtual const std::vector<double> &bestLossHistory() const = 0;

    /**
     * Robustness / sensitivity metric R of Eq. (2) computed from the
     * mapping-search landscape seen so far.
     * @param alpha right-tail fraction defining the sub-optimal
     *        mapping (paper uses alpha = 0.05, i.e. the 95% point).
     */
    virtual double sensitivity(double alpha) const = 0;

    /** Virtual seconds of PPA-evaluation cost charged so far. */
    virtual double chargedSeconds() const = 0;

    /**
     * Graceful-degradation hook: ask the run to switch its PPA
     * engine to a cheaper, more reliable fidelity rung (e.g. from
     * the cycle-level simulator to the analytical cost model) after
     * repeated evaluation faults. Returns true if the run degraded;
     * false when it is already at the lowest rung. Incumbents and
     * history are preserved across the switch.
     */
    virtual bool degradeToAnalytical() { return false; }
};

/** A co-search environment: HW space + SW search + PPA engine. */
class CoSearchEnv
{
  public:
    virtual ~CoSearchEnv() = default;

    /** The hardware design space. */
    virtual const accel::DesignSpace &hwSpace() const = 0;

    /** Begin a SW mapping search for hardware @p h. */
    virtual std::unique_ptr<MappingRun>
    createRun(const accel::HwPoint &h, std::uint64_t seed) const = 0;

    /** Power envelope (mW); infinity when unconstrained. */
    virtual double
    powerBudgetMw() const
    {
        return std::numeric_limits<double>::infinity();
    }

    /** Area envelope (mm^2); infinity when unconstrained. */
    virtual double
    areaBudgetMm2() const
    {
        return std::numeric_limits<double>::infinity();
    }

    /** Human-readable hardware description. */
    virtual std::string describeHw(const accel::HwPoint &h) const = 0;

    /**
     * The shared evaluation cache the environment's runs memoize
     * through, or nullptr when caching is disabled. Decorator
     * environments (fault injection) forward to the wrapped env so
     * the driver can report cache statistics from any stack.
     */
    virtual const accel::EvalCache *evalCache() const { return nullptr; }

    /**
     * Transport-layer fault counters of the evaluation fleet this
     * environment evaluates through (all zero for in-process
     * environments). Like evalCache(): diagnostics the driver
     * snapshots into the result; decorator environments forward to
     * the wrapped env.
     */
    virtual common::TransportStats
    transportStats() const
    {
        return {};
    }

    /**
     * Surrogate-screening counters of the learned fast-path this
     * environment evaluates through (all zero / disabled when no
     * screen is attached). Like evalCache(): diagnostics the driver
     * snapshots into the result; decorator environments forward to
     * the wrapped env.
     */
    virtual surrogate::SurrogateStats
    surrogateStats() const
    {
        return {};
    }

    /**
     * Smallest useful SW search budget for one hardware sample —
     * typically the number of distinct layers, so that even the
     * first successive-halving round seeds every layer once.
     */
    virtual int minSeedBudget() const { return 1; }

    /**
     * Registry name of the backend this environment binds
     * ("spatial", "ascend"); "custom" for ad-hoc environments.
     * Stamped into checkpoints so --resume refuses a mismatched
     * stack. Decorators forward to the wrapped environment.
     */
    virtual std::string backendName() const { return "custom"; }

    /**
     * Constraint-scenario label ("edge", "cloud", "area200", ...);
     * empty when the backend has no scenario notion. Part of the
     * checkpoint stack identity alongside backendName().
     */
    virtual std::string scenarioName() const { return ""; }

    /**
     * Digest of the count-weighted layer set being co-optimized
     * (0 = unknown). Completes the checkpoint stack identity: a
     * resume against different workloads is refused.
     */
    virtual std::uint64_t workloadDigest() const { return 0; }

    /**
     * Hand-designed reference configuration, when the platform ships
     * one (e.g. the Ascend expert default of Fig. 11); std::nullopt
     * otherwise.
     */
    virtual std::optional<accel::HwPoint>
    expertDefault() const
    {
        return std::nullopt;
    }

    /**
     * Convenience: run one budgeted mapping search for configuration
     * @p h and return the aggregated best PPA (used to score fixed
     * reference designs in benches).
     */
    accel::Ppa
    evaluateConfig(const accel::HwPoint &h, int budget,
                   std::uint64_t seed) const
    {
        auto run = createRun(h, seed);
        run->step(budget);
        return run->bestPpa();
    }
};

} // namespace unico::core

#endif // UNICO_CORE_ENV_HH
