/**
 * @file
 * Multi-tenant co-search job manager.
 *
 * Turns the one-run-per-process driver stack into schedulable jobs:
 * submit() enqueues a declarative JobSpec (the same vocabulary as
 * the co_search_cli flags), a fixed pool of scheduler threads runs
 * up to maxConcurrent jobs at once through the stepped CoSearch
 * driver, and cancel/pause/resume/status act on individual jobs
 * without perturbing their neighbours.
 *
 * Isolation model: each job owns a JobContext (seeded trajectory,
 * EvalClock, CancelToken, checkpoint prefix) plus its own
 * environment, fault injector and surrogate context, all built on
 * the job's scheduler thread. Jobs share exactly one mutable
 * resource — the optional read-mostly sharded evaluation cache —
 * whose use is byte-neutral by contract, so a job's records, front,
 * trace and checkpoints are bit-identical whether it ran alone, next
 * to other jobs, or through co_search_cli.
 *
 * Life cycle: Queued -> Running <-> Paused -> Completed | Cancelled
 * | Failed. The submit queue is bounded; submits beyond the bound
 * are rejected with a typed error instead of blocking the caller.
 * Every job's CancelToken is registered with the scoped shutdown
 * fan-out, so one SIGINT drains every live job to a valid
 * checkpoint.
 */

#ifndef UNICO_CORE_JOB_MANAGER_HH
#define UNICO_CORE_JOB_MANAGER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hh"
#include "common/json.hh"
#include "core/driver.hh"
#include "core/job_context.hh"
#include "core/progress.hh"

namespace unico::core {

/**
 * Declarative description of one co-search job — the JSON-mappable
 * mirror of the co_search_cli flag vocabulary. A spec run through
 * the manager produces byte-identical records/front/trace CSVs and
 * checkpoints to the same flags run through the CLI.
 */
struct JobSpec
{
    std::string name;                   ///< display label (optional)
    std::vector<std::string> models;    ///< zoo model names
    std::vector<std::string> workloads; ///< workload file paths
    std::string backend = "spatial";
    std::string scenario;  ///< --scenario (empty = backend default)
    std::string engine;    ///< --engine (empty = backend default)
    double areaBudgetMm2 = 0.0; ///< --area-budget (<= 0 = default)
    std::int64_t maxShapes = 0; ///< --max-shapes (<= 0 = default)
    std::string algo = "unico"; ///< unico|hasco|mobohb|sh|msh
    int batch = 20;
    int iters = 8;
    int bmax = 200;
    std::uint64_t seed = 1;
    std::size_t threads = 1; ///< per-job round-dispatch threads
    std::string checkpoint;  ///< checkpoint path (empty = disabled)
    bool resume = false;
    int checkpointEvery = 1;
    int checkpointKeep = 3;
    std::string csvPrefix; ///< CSV export prefix (empty = disabled)
    double faultRate = 0.0;
    double hangRate = 0.0;
    double corruptRate = 0.0;
    std::uint64_t faultSeed = 7;
    /** > 0 enables learned surrogate screening with this keep
     *  fraction (byte-neutral by contract). */
    double surrogateKeep = 0.0;
};

/** Parse a spec from a JSON job document; throws std::runtime_error
 *  with a field-naming message on malformed input. */
JobSpec jobSpecFromJson(const common::Json &doc);
common::Json toJson(const JobSpec &spec);

/** Job life-cycle states. */
enum class JobState {
    Queued,
    Running,
    Paused,
    Completed,
    Cancelled,
    Failed,
};
const char *toString(JobState state);
/** Completed, Cancelled or Failed. */
bool isTerminal(JobState state);

/** Why a submit was rejected. */
enum class SubmitError {
    None = 0,
    BadSpec,      ///< validation failed (message names the field)
    QueueFull,    ///< bounded queue at capacity; retry later
    ShuttingDown, ///< manager is draining; no new work accepted
};
const char *toString(SubmitError error);

/** Outcome of submit(). */
struct SubmitResult
{
    std::uint64_t id = 0; ///< valid when ok()
    SubmitError error = SubmitError::None;
    std::string message; ///< human-readable rejection reason

    bool ok() const { return error == SubmitError::None; }
};

/** Point-in-time snapshot of one job. */
struct JobStatus
{
    std::uint64_t id = 0;
    std::string name;
    JobState state = JobState::Queued;
    int iteration = 0;
    int maxIterations = 0;
    double hours = 0.0;
    std::uint64_t evaluations = 0;
    std::size_t frontSize = 0;
    std::size_t records = 0;
    std::size_t events = 0; ///< progress events emitted so far
    bool interrupted = false;
    std::string error; ///< failure / interrupt reason
};
common::Json toJson(const JobStatus &status);

/** Manager construction options. */
struct JobManagerConfig
{
    /** Jobs running concurrently (scheduler thread-pool size). */
    std::size_t maxConcurrent = 2;
    /** Queued-but-not-running bound; excess submits are rejected
     *  with SubmitError::QueueFull. */
    std::size_t maxQueued = 16;
    /** Optional evaluation cache shared by every job (read-mostly;
     *  byte-neutral). nullptr = each job runs uncached. */
    accel::EvalCache *sharedCache = nullptr;
    /** Register each job's CancelToken with the process shutdown
     *  fan-out so SIGINT/SIGTERM drains all jobs. */
    bool shutdownFanout = true;
};

/**
 * Schedulable multi-job front-end over the stepped CoSearch driver.
 * All methods are thread-safe.
 */
class JobManager
{
  public:
    explicit JobManager(JobManagerConfig cfg = JobManagerConfig{});
    /** Cancels every live job, drains the schedulers and joins. */
    ~JobManager();

    JobManager(const JobManager &) = delete;
    JobManager &operator=(const JobManager &) = delete;

    /** Validate and enqueue a job. Typed rejection, never blocks. */
    SubmitResult submit(JobSpec spec);

    /** Cancel a job (queued or running). A running job drains at the
     *  next cooperative boundary and writes its final checkpoint.
     *  @return false for an unknown or already-terminal job. */
    bool cancel(std::uint64_t id,
                common::CancelReason reason =
                    common::CancelReason::JobCancel);

    /** Pause a job at its next trial boundary (no-op on terminal /
     *  cancelled jobs). @return false for an unknown/terminal job. */
    bool pause(std::uint64_t id);

    /** Resume a paused job. @return false for unknown/terminal. */
    bool resume(std::uint64_t id);

    /** Snapshot a job; std::nullopt for an unknown id. */
    std::optional<JobStatus> status(std::uint64_t id) const;

    /** Snapshots of every job, ordered by id. */
    std::vector<JobStatus> list() const;

    /** Block until the job is terminal; its final status.
     *  std::nullopt for an unknown id. */
    std::optional<JobStatus> wait(std::uint64_t id);

    /** The job's progress events from index @p from on. Blocks until
     *  at least one new event exists or the job is terminal; an
     *  empty vector means the stream is exhausted (job terminal).
     *  Replayable: any subscriber can start from 0 at any time. */
    std::vector<ProgressEvent> eventsSince(std::uint64_t id,
                                           std::size_t from);

    /** The job's final search result (records, front, trace, ...).
     *  std::nullopt while not Completed/Cancelled (Failed jobs have
     *  no result). */
    std::optional<CoSearchResult> result(std::uint64_t id) const;

    /** Cancel every non-terminal job (shutdown drain). */
    void cancelAll(common::CancelReason reason);

    /** Stop accepting submits and cancel everything; idempotent.
     *  The destructor joins the schedulers. */
    void shutdown();

    /** Live scheduler capacity (for status endpoints). */
    const JobManagerConfig &config() const { return cfg_; }

  private:
    struct Job;

    void schedulerLoop();
    void runJob(Job &job);
    JobStatus statusLocked(const Job &job) const;

    JobManagerConfig cfg_;
    mutable std::mutex mu_;
    std::condition_variable workCv_;
    std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
    std::deque<std::uint64_t> queue_;
    std::vector<std::thread> schedulers_;
    std::uint64_t nextId_ = 1;
    std::size_t queuedCount_ = 0;
    bool stopping_ = false;
};

} // namespace unico::core

#endif // UNICO_CORE_JOB_MANAGER_HH
