#include "net/chaos_proxy.hh"

#include <chrono>
#include <cstdlib>

#if !defined(_WIN32)
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/frame.hh"
#include "net/socket.hh"

namespace unico::net {

namespace {

/** splitmix64 — the repo's standard cheap bijective mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Deterministic uniform [0,1) draw for one (frame, fault) decision. */
double
unitDraw(std::uint64_t seed, std::uint64_t conn, std::uint64_t dir,
         std::uint64_t frame, std::uint64_t salt)
{
    const std::uint64_t h =
        mix64(seed ^ mix64(conn * 0x9e3779b97f4a7c15ULL + dir) ^
              mix64(frame + 1) ^ salt * 0xda942042e4dd58b5ULL);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint32_t
le32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

void
closeFd(int fd)
{
#if !defined(_WIN32)
    if (fd >= 0)
        ::close(fd);
#else
    (void)fd;
#endif
}

void
shutdownFd(int fd)
{
#if !defined(_WIN32)
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
#else
    (void)fd;
#endif
}

/** Outcome of pulling one whole raw frame off a stream. */
enum class PumpRead { Ok, Closed, Timeout };

/**
 * Read one complete frame (header + payload, no CRC validation — the
 * endpoints do that) into @p out. @p boundary_wait bounds only the
 * wait for the *first* byte; once a header starts arriving the read
 * runs to completion so the proxy never strands partial bytes.
 */
PumpRead
readRawFrame(int fd, std::string &out, double boundary_wait)
{
    if (boundary_wait > 0.0) {
        const common::IoStatus ready =
            common::waitReadable(fd, boundary_wait);
        if (ready == common::IoStatus::Timeout)
            return PumpRead::Timeout;
        if (ready != common::IoStatus::Ok)
            return PumpRead::Closed;
    }
    unsigned char hdr[common::kFrameHeaderSize];
    if (common::readFullUntil(fd, hdr, sizeof(hdr), 0.0) !=
        common::IoStatus::Ok)
        return PumpRead::Closed;
    const std::uint32_t magic = le32(hdr);
    const std::uint32_t length = le32(hdr + 4);
    if (magic != common::kFrameMagic ||
        length > common::kFrameMaxPayload)
        return PumpRead::Closed; // desynchronized stream; sever it
    out.assign(reinterpret_cast<const char *>(hdr), sizeof(hdr));
    out.resize(sizeof(hdr) + length);
    if (length > 0 &&
        common::readFullUntil(fd, &out[sizeof(hdr)], length, 0.0) !=
            common::IoStatus::Ok)
        return PumpRead::Closed;
    return PumpRead::Ok;
}

bool
parseProb(const std::string &v, double &out)
{
    char *end = nullptr;
    out = std::strtod(v.c_str(), &end);
    return end && *end == '\0' && out >= 0.0 && out <= 1.0;
}

} // namespace

bool
ChaosProfile::parse(const std::string &spec, ChaosProfile &out,
                    std::string *error)
{
    ChaosProfile p;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            if (error)
                *error = "chaos spec item '" + item + "' has no '='";
            return false;
        }
        const std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        std::string extra;
        const std::size_t colon = value.find(':');
        if (colon != std::string::npos) {
            extra = value.substr(colon + 1);
            value = value.substr(0, colon);
        }
        bool ok = true;
        if (key == "seed") {
            char *end = nullptr;
            p.seed = std::strtoull(value.c_str(), &end, 10);
            ok = end && *end == '\0';
        } else if (key == "drop") {
            ok = parseProb(value, p.dropProbability);
        } else if (key == "tear") {
            ok = parseProb(value, p.tearProbability);
        } else if (key == "flip") {
            ok = parseProb(value, p.flipProbability);
        } else if (key == "dup") {
            ok = parseProb(value, p.duplicateProbability);
        } else if (key == "reorder") {
            ok = parseProb(value, p.reorderProbability);
        } else if (key == "delay") {
            ok = parseProb(value, p.delayProbability);
            if (ok && !extra.empty()) {
                char *end = nullptr;
                p.delaySeconds = std::strtod(extra.c_str(), &end);
                ok = end && *end == '\0' && p.delaySeconds >= 0.0;
            }
            extra.clear();
        } else if (key == "partition") {
            char *end = nullptr;
            p.partitionEveryFrames =
                std::strtoull(value.c_str(), &end, 10);
            ok = end && *end == '\0';
            if (ok && !extra.empty()) {
                p.partitionSeconds = std::strtod(extra.c_str(), &end);
                ok = end && *end == '\0' && p.partitionSeconds >= 0.0;
            }
            extra.clear();
        } else {
            if (error)
                *error = "unknown chaos spec key '" + key + "'";
            return false;
        }
        if (!ok || !extra.empty()) {
            if (error)
                *error = "malformed chaos spec value in '" + item + "'";
            return false;
        }
    }
    out = p;
    return true;
}

/** One proxied connection: the client (master) side fd, the upstream
 *  (worker) side fd, and the shared sever latch both pumps honor. */
struct ChaosProxy::Conn
{
    int clientFd = -1;
    int upstreamFd = -1;
    std::uint64_t id = 0;
    std::atomic<bool> severed{false};

    void
    sever()
    {
        if (!severed.exchange(true)) {
            shutdownFd(clientFd);
            shutdownFd(upstreamFd);
        }
    }

    ~Conn()
    {
        closeFd(clientFd);
        closeFd(upstreamFd);
    }
};

ChaosProxy::ChaosProxy(std::string listen_addr,
                       std::string upstream_addr, ChaosProfile profile)
    : listenAddr_(std::move(listen_addr)),
      upstreamAddr_(std::move(upstream_addr)), profile_(profile)
{}

ChaosProxy::~ChaosProxy()
{
    stop();
}

bool
ChaosProxy::start(std::string *error)
{
    listenFd_ = tcpListen(listenAddr_, error);
    if (listenFd_ < 0)
        return false;
    port_ = boundPort(listenFd_);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
ChaosProxy::stop()
{
    if (listenFd_ < 0)
        return;
    stop_.store(true, std::memory_order_release);
    if (acceptThread_.joinable())
        acceptThread_.join();
    severAll();
    std::vector<std::thread> pumps;
    {
        std::lock_guard<std::mutex> lock(mu_);
        pumps.swap(pumpThreads_);
    }
    for (std::thread &t : pumps)
        if (t.joinable())
            t.join();
    {
        std::lock_guard<std::mutex> lock(mu_);
        conns_.clear();
    }
    closeFd(listenFd_);
    listenFd_ = -1;
}

bool
ChaosProxy::inPartition() const
{
    return common::monotonicNow() <
           partitionUntil_.load(std::memory_order_acquire);
}

void
ChaosProxy::triggerPartition()
{
    partitions_.fetch_add(1, std::memory_order_relaxed);
    partitionUntil_.store(common::monotonicNow() +
                              profile_.partitionSeconds,
                          std::memory_order_release);
    severAll();
}

void
ChaosProxy::severAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &conn : conns_)
        conn->sever();
}

void
ChaosProxy::acceptLoop()
{
    while (!stop_.load(std::memory_order_acquire)) {
        common::IoStatus status = common::IoStatus::Ok;
        const int cfd = tcpAccept(listenFd_, 0.2, &status);
        if (cfd < 0) {
            if (status == common::IoStatus::Timeout)
                continue;
            break;
        }
        if (inPartition()) {
            refused_.fetch_add(1, std::memory_order_relaxed);
            closeFd(cfd);
            continue;
        }
        std::string err;
        const int ufd = tcpConnect(upstreamAddr_, 5.0, &err);
        if (ufd < 0) {
            closeFd(cfd);
            continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->clientFd = cfd;
        conn->upstreamFd = ufd;
        connections_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        conn->id = nextConnId_++;
        conns_.push_back(conn);
        pumpThreads_.emplace_back(
            [this, conn] { pump(conn, /*toUpstream=*/true); });
        pumpThreads_.emplace_back(
            [this, conn] { pump(conn, /*toUpstream=*/false); });
    }
}

void
ChaosProxy::pump(std::shared_ptr<Conn> conn, bool toUpstream)
{
    const int src = toUpstream ? conn->clientFd : conn->upstreamFd;
    const int dst = toUpstream ? conn->upstreamFd : conn->clientFd;
    const std::uint64_t dir = toUpstream ? 0 : 1;
    std::uint64_t frame_idx = 0;
    std::string frame;
    std::string next;

    const auto forward = [&](const std::string &bytes) {
        if (common::writeFullUntil(dst, bytes, 0.0) !=
            common::IoStatus::Ok)
            return false;
        framesForwarded_.fetch_add(1, std::memory_order_relaxed);
        return true;
    };

    while (!conn->severed.load(std::memory_order_acquire)) {
        if (readRawFrame(src, frame, 0.0) != PumpRead::Ok)
            break;
        const std::uint64_t idx = frame_idx++;

        // Global partition schedule: the frame that crosses the
        // threshold is lost with the links, like a real partition.
        const std::uint64_t seen =
            framesSeen_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (profile_.partitionEveryFrames > 0 &&
            seen % profile_.partitionEveryFrames == 0) {
            triggerPartition();
            break;
        }

        const auto draw = [&](std::uint64_t salt) {
            return unitDraw(profile_.seed, conn->id, dir, idx, salt);
        };

        if (draw(1) < profile_.dropProbability) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        if (draw(2) < profile_.tearProbability) {
            // Forward header + half the payload, then cut the link.
            const std::size_t keep =
                common::kFrameHeaderSize +
                (frame.size() - common::kFrameHeaderSize) / 2;
            common::writeFullUntil(dst, frame.data(), keep, 0.0);
            torn_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        if (draw(3) < profile_.flipProbability) {
            // Damage one payload bit (or the CRC field of an empty
            // frame) so the receiver's CRC-64 check must catch it.
            const std::size_t len =
                frame.size() - common::kFrameHeaderSize;
            const std::size_t at =
                len > 0 ? common::kFrameHeaderSize + (idx % len) : 8;
            frame[at] = static_cast<char>(frame[at] ^ 0x01);
            flipped_.fetch_add(1, std::memory_order_relaxed);
            if (!forward(frame))
                break;
            continue;
        }
        if (draw(4) < profile_.duplicateProbability) {
            duplicated_.fetch_add(1, std::memory_order_relaxed);
            if (!forward(frame) || !forward(frame))
                break;
            continue;
        }
        if (draw(5) < profile_.reorderProbability) {
            // Swap with the next frame if one shows up quickly;
            // request/response protocols often have none in flight,
            // in which case the frame just goes through.
            const PumpRead peek = readRawFrame(src, next, 0.15);
            if (peek == PumpRead::Ok) {
                ++frame_idx; // the peeked frame consumed an index
                framesSeen_.fetch_add(1, std::memory_order_relaxed);
                reordered_.fetch_add(1, std::memory_order_relaxed);
                if (!forward(next) || !forward(frame))
                    break;
                continue;
            }
            if (peek == PumpRead::Closed) {
                forward(frame);
                break;
            }
        }
        if (draw(6) < profile_.delayProbability) {
            delayed_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::duration<double>(
                profile_.delaySeconds));
        }
        if (!forward(frame))
            break;
    }
    conn->sever();
}

ChaosProxy::Counters
ChaosProxy::counters() const
{
    Counters c;
    c.connections = connections_.load(std::memory_order_relaxed);
    c.framesForwarded =
        framesForwarded_.load(std::memory_order_relaxed);
    c.delayed = delayed_.load(std::memory_order_relaxed);
    c.dropped = dropped_.load(std::memory_order_relaxed);
    c.duplicated = duplicated_.load(std::memory_order_relaxed);
    c.reordered = reordered_.load(std::memory_order_relaxed);
    c.torn = torn_.load(std::memory_order_relaxed);
    c.flipped = flipped_.load(std::memory_order_relaxed);
    c.partitions = partitions_.load(std::memory_order_relaxed);
    c.refusedDuringPartition =
        refused_.load(std::memory_order_relaxed);
    return c;
}

} // namespace unico::net
