/**
 * @file
 * TCP channel establishment for the evaluation fleet.
 *
 * The master side binds a `TcpFleetListener`; remote worker processes
 * dial in with `connectWorker`. Before a connection becomes a fleet
 * channel the two ends run a one-frame handshake:
 *
 *   worker → master  {"op":"hello", "proto", "backend", "scenario",
 *                     "digest", "session", "epoch"}
 *   master → worker  {"op":"welcome", "proto"}   — or —
 *                    {"op":"reject", "message"}  + close
 *
 * The hello carries the worker's *stack identity* (backend, scenario,
 * workload digest — the same triple checkpoints are stamped with), so
 * a worker started against the wrong workload is refused before it
 * can serve a single evaluation and silently diverge the search. It
 * also carries a session id (stable across reconnects of the same
 * worker process) and an epoch (bumped on every reconnect), which is
 * how the master distinguishes a fresh worker from a partitioned one
 * coming back — the latter counts as a reconnect, not a respawn, and
 * keeps its resident-run cache warm.
 *
 * Channels hand over raw fds; the fleet protocol on top (core/fleet)
 * is transport-agnostic and byte-identical to the socketpair path.
 */

#ifndef UNICO_NET_TCP_TRANSPORT_HH
#define UNICO_NET_TCP_TRANSPORT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

namespace unico::net {

/** Handshake protocol revision. */
inline constexpr std::uint64_t kFleetProtocol = 1;

/** Stack identity a connecting worker must present. Empty fields are
 *  wildcards (either side not stamped), mirroring checkpoint
 *  StackIdentity semantics. */
struct HelloIdentity
{
    std::string backend;
    std::string scenario;
    std::string workloadDigest;
};

/** One handshaken worker connection, ready for fleet requests. */
struct TcpChannel
{
    int fd = -1;
    std::uint64_t session = 0; ///< stable across reconnects
    std::uint64_t epoch = 0;   ///< 0 = first connect, else reconnect #
};

/**
 * Master-side acceptor: binds, accepts, handshakes, and queues ready
 * worker channels for the fleet to adopt. One background thread; all
 * public methods are thread-safe.
 */
class TcpFleetListener
{
  public:
    TcpFleetListener(std::string listen_addr, HelloIdentity identity);
    ~TcpFleetListener();

    TcpFleetListener(const TcpFleetListener &) = delete;
    TcpFleetListener &operator=(const TcpFleetListener &) = delete;

    /** Bind + start accepting. False (with @p error) on bind failure. */
    bool start(std::string *error = nullptr);

    /** Actual bound port (resolves ":0"), or -1 before start(). */
    int port() const { return port_; }

    /**
     * Wait up to @p deadline_seconds (<= 0: one non-blocking poll)
     * for a handshaken channel. True and fills @p out on success.
     * Ownership of out.fd transfers to the caller.
     */
    bool awaitChannel(double deadline_seconds, TcpChannel &out);

    /** Stop accepting and close every queued (unadopted) channel. */
    void stop();

    /** Hellos refused for identity/protocol mismatch. */
    std::uint64_t rejectedHandshakes() const
    {
        return rejected_.load(std::memory_order_relaxed);
    }

    /** Channels successfully handshaken (adopted or still queued). */
    std::uint64_t acceptedChannels() const
    {
        return accepted_.load(std::memory_order_relaxed);
    }

  private:
    void acceptLoop();
    bool handshake(int fd, TcpChannel &out);

    std::string addr_;
    HelloIdentity identity_;
    int listenFd_ = -1;
    int port_ = -1;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> accepted_{0};
    std::thread thread_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<TcpChannel> ready_;
};

/**
 * Worker-side dial + hello. Connects to @p addr, presents
 * @p identity / @p session / @p epoch, and waits for the welcome.
 * Returns the connected fd, or -1 with a diagnostic in @p error
 * (identity rejection included — the caller must NOT retry those).
 * @p rejected, when non-null, is set true iff the master refused the
 * handshake (vs a transport-level failure, which is retryable).
 */
int connectWorker(const std::string &addr, const HelloIdentity &identity,
                  std::uint64_t session, std::uint64_t epoch,
                  double deadline_seconds, std::string *error = nullptr,
                  bool *rejected = nullptr);

} // namespace unico::net

#endif // UNICO_NET_TCP_TRANSPORT_HH
