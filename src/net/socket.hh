/**
 * @file
 * TCP primitives for the multi-host evaluation fleet.
 *
 * Thin, deadline-aware wrappers over BSD sockets: parse "host:port"
 * endpoints, bind a listener, accept with a timeout, and connect with
 * a timeout. Every connected socket comes back tuned the same way —
 * TCP_NODELAY (the fleet protocol is strict request/response, Nagle
 * only adds latency), SO_KEEPALIVE (detect silently dead hosts),
 * close-on-exec, and non-blocking (so the common/io absolute-deadline
 * transfer helpers can bound every read and write). IPv4 only: the
 * fleet runs on lab clusters, and one address family keeps the
 * deterministic test matrix small.
 */

#ifndef UNICO_NET_SOCKET_HH
#define UNICO_NET_SOCKET_HH

#include <cstdint>
#include <string>

#include "common/io.hh"

namespace unico::net {

/** A parsed "host:port" endpoint. */
struct Endpoint
{
    std::string host; ///< dotted quad or name; empty means wildcard
    std::uint16_t port = 0;
};

/**
 * Parse "host:port" (":0" and "0.0.0.0:7700" both valid). Returns
 * false with a diagnostic in @p error on malformed input.
 */
bool parseEndpoint(const std::string &addr, Endpoint &out,
                   std::string *error = nullptr);

/**
 * Bind + listen on @p addr ("host:port"; port 0 picks a free port).
 * Returns the listening fd (blocking, close-on-exec, SO_REUSEADDR)
 * or -1 with a diagnostic in @p error.
 */
int tcpListen(const std::string &addr, std::string *error = nullptr);

/** Actual bound port of a listening fd (resolves ":0"), or -1. */
int boundPort(int listen_fd);

/**
 * Accept one connection, waiting up to @p deadline_seconds
 * (<= 0 waits forever). Returns a tuned connected fd, or -1 with
 * the wait outcome in @p status (Timeout vs Error/Eof).
 */
int tcpAccept(int listen_fd, double deadline_seconds,
              common::IoStatus *status = nullptr);

/**
 * Connect to @p addr within @p deadline_seconds (<= 0 waits forever,
 * bounded in practice by the kernel SYN timeout). Returns a tuned
 * connected fd or -1 with a diagnostic in @p error.
 */
int tcpConnect(const std::string &addr, double deadline_seconds,
               std::string *error = nullptr);

/**
 * Apply the fleet socket discipline to a connected fd: TCP_NODELAY,
 * SO_KEEPALIVE, close-on-exec, non-blocking. Returns false if any
 * step failed (the fd is still usable, just untuned).
 */
bool tuneTcpSocket(int fd);

} // namespace unico::net

#endif // UNICO_NET_SOCKET_HH
