/**
 * @file
 * Deterministic network-fault chaos proxy.
 *
 * Sits between the fleet master and its TCP workers and injects the
 * failure modes real networks produce — added latency, dropped and
 * duplicated messages, reordering, torn frames (connection cut
 * mid-message), payload bit damage, and hard partitions that sever
 * every connection and refuse new ones for a window. The proxy is
 * frame-aware (it forwards whole UFR1 frames, never splits except to
 * tear on purpose) so each fault lands on exactly one protocol
 * message and the downstream classification is predictable: a flip
 * becomes CorruptFrame, a tear becomes TornFrame/ConnectionLost, a
 * drop becomes RequestTimeout, a dup/reorder becomes StaleFrame.
 *
 * Fault decisions come from a seeded splitmix schedule keyed by
 * (seed, connection index, direction, frame index), so a given
 * profile replays the same fault pattern run after run — chaos tests
 * stay debuggable. The robustness claim under test: whatever this
 * proxy does, fleet results stay byte-identical to in-process runs.
 */

#ifndef UNICO_NET_CHAOS_PROXY_HH
#define UNICO_NET_CHAOS_PROXY_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace unico::net {

/** Seeded fault schedule for the proxy. Probabilities are per frame
 *  and independent; at most one fault fires per frame, chosen in
 *  precedence order drop > tear > flip > dup > reorder > delay. */
struct ChaosProfile
{
    std::uint64_t seed = 1;
    double dropProbability = 0.0;      ///< swallow the frame
    double tearProbability = 0.0;      ///< forward a prefix, cut conn
    double flipProbability = 0.0;      ///< damage one payload bit
    double duplicateProbability = 0.0; ///< forward the frame twice
    double reorderProbability = 0.0;   ///< swap with the next frame
    double delayProbability = 0.0;     ///< hold before forwarding
    double delaySeconds = 0.05;
    /** Every Nth forwarded frame (globally) triggers a hard
     *  partition: all connections cut, new ones refused for
     *  partitionSeconds. 0 disables. */
    std::uint64_t partitionEveryFrames = 0;
    double partitionSeconds = 0.5;

    /**
     * Parse a compact spec: comma-separated `key=value` with keys
     * seed, drop, tear, flip, dup, reorder, delay (`prob` or
     * `prob:seconds`), partition (`every` or `every:seconds`).
     * Example: "seed=7,drop=0.05,delay=0.2:0.02,partition=40:0.5".
     */
    static bool parse(const std::string &spec, ChaosProfile &out,
                      std::string *error = nullptr);
};

/**
 * The proxy itself: listens on one address, forwards each accepted
 * connection to the upstream address, and applies the profile to
 * every frame in both directions. Thread-safe; one accept thread
 * plus two pump threads per connection.
 */
class ChaosProxy
{
  public:
    ChaosProxy(std::string listen_addr, std::string upstream_addr,
               ChaosProfile profile);
    ~ChaosProxy();

    ChaosProxy(const ChaosProxy &) = delete;
    ChaosProxy &operator=(const ChaosProxy &) = delete;

    /** Bind + start proxying. False (with @p error) on bind failure. */
    bool start(std::string *error = nullptr);

    /** Actual bound port (resolves ":0"), or -1 before start(). */
    int port() const { return port_; }

    /** Sever everything and stop. Idempotent. */
    void stop();

    /** Injection ledger (what the schedule actually fired). */
    struct Counters
    {
        std::uint64_t connections = 0;
        std::uint64_t framesForwarded = 0;
        std::uint64_t delayed = 0;
        std::uint64_t dropped = 0;
        std::uint64_t duplicated = 0;
        std::uint64_t reordered = 0;
        std::uint64_t torn = 0;
        std::uint64_t flipped = 0;
        std::uint64_t partitions = 0;
        std::uint64_t refusedDuringPartition = 0;

        /** Faults actually injected (excludes delays). */
        std::uint64_t
        faults() const
        {
            return dropped + duplicated + reordered + torn + flipped +
                   partitions;
        }
    };
    Counters counters() const;

  private:
    struct Conn;

    void acceptLoop();
    void pump(std::shared_ptr<Conn> conn, bool toUpstream);
    void triggerPartition();
    void severAll();
    bool inPartition() const;

    std::string listenAddr_;
    std::string upstreamAddr_;
    ChaosProfile profile_;
    int listenFd_ = -1;
    int port_ = -1;
    std::atomic<bool> stop_{false};
    std::thread acceptThread_;

    mutable std::mutex mu_; // guards conns_ + pumpThreads_
    std::vector<std::shared_ptr<Conn>> conns_;
    std::vector<std::thread> pumpThreads_;
    std::uint64_t nextConnId_ = 0;

    std::atomic<std::uint64_t> framesSeen_{0};
    /** monotonicNow() timestamp the current partition ends at. */
    std::atomic<double> partitionUntil_{0.0};

    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> framesForwarded_{0};
    std::atomic<std::uint64_t> delayed_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> duplicated_{0};
    std::atomic<std::uint64_t> reordered_{0};
    std::atomic<std::uint64_t> torn_{0};
    std::atomic<std::uint64_t> flipped_{0};
    std::atomic<std::uint64_t> partitions_{0};
    std::atomic<std::uint64_t> refused_{0};
};

} // namespace unico::net

#endif // UNICO_NET_CHAOS_PROXY_HH
