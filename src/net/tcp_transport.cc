#include "net/tcp_transport.hh"

#include <chrono>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/frame.hh"
#include "common/json.hh"
#include "net/socket.hh"

namespace unico::net {

namespace {

/** Handshake frames must complete quickly; a peer that dials in and
 *  then stalls must not wedge the accept loop. */
constexpr double kHandshakeDeadlineSeconds = 5.0;

void
closeFd(int fd)
{
#if !defined(_WIN32)
    if (fd >= 0)
        ::close(fd);
#else
    (void)fd;
#endif
}

/** True when the two identity strings are compatible (empty = wildcard,
 *  mirroring checkpoint StackIdentity). */
bool
identityFieldOk(const std::string &want, const std::string &got)
{
    return want.empty() || got.empty() || want == got;
}

} // namespace

TcpFleetListener::TcpFleetListener(std::string listen_addr,
                                   HelloIdentity identity)
    : addr_(std::move(listen_addr)), identity_(std::move(identity))
{}

TcpFleetListener::~TcpFleetListener()
{
    stop();
}

bool
TcpFleetListener::start(std::string *error)
{
    listenFd_ = tcpListen(addr_, error);
    if (listenFd_ < 0)
        return false;
    port_ = boundPort(listenFd_);
    thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
TcpFleetListener::stop()
{
    if (listenFd_ < 0)
        return;
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    closeFd(listenFd_);
    listenFd_ = -1;
    std::lock_guard<std::mutex> lock(mu_);
    for (const TcpChannel &ch : ready_)
        closeFd(ch.fd);
    ready_.clear();
}

void
TcpFleetListener::acceptLoop()
{
    while (!stop_.load(std::memory_order_acquire)) {
        // Short accept timeout so the stop flag is noticed promptly.
        common::IoStatus status = common::IoStatus::Ok;
        const int fd = tcpAccept(listenFd_, 0.2, &status);
        if (fd < 0) {
            if (status == common::IoStatus::Timeout)
                continue;
            break; // listener fd is broken; nothing more to accept
        }
        TcpChannel ch;
        if (!handshake(fd, ch)) {
            closeFd(fd);
            continue;
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mu_);
            ready_.push_back(ch);
        }
        cv_.notify_one();
    }
}

bool
TcpFleetListener::handshake(int fd, TcpChannel &out)
{
    const double deadline =
        common::monotonicNow() + kHandshakeDeadlineSeconds;
    std::string payload;
    if (common::readFrameUntil(fd, payload, deadline) !=
        common::FrameStatus::Ok)
        return false;

    std::string reject;
    common::Json hello;
    try {
        hello = common::Json::parse(payload);
        if (!hello.isObject() || !hello.has("op") ||
            hello.at("op").asString() != "hello") {
            reject = "expected hello";
        } else if (!hello.has("proto") ||
                   static_cast<std::uint64_t>(
                       hello.at("proto").asInt()) != kFleetProtocol) {
            reject = "protocol mismatch";
        } else {
            const std::string backend =
                hello.has("backend") ? hello.at("backend").asString()
                                     : std::string();
            const std::string scenario =
                hello.has("scenario") ? hello.at("scenario").asString()
                                      : std::string();
            const std::string digest =
                hello.has("digest") ? hello.at("digest").asString()
                                    : std::string();
            if (!identityFieldOk(identity_.backend, backend))
                reject = "backend mismatch: master=" +
                         identity_.backend + " worker=" + backend;
            else if (!identityFieldOk(identity_.scenario, scenario))
                reject = "scenario mismatch: master=" +
                         identity_.scenario + " worker=" + scenario;
            else if (!identityFieldOk(identity_.workloadDigest, digest))
                reject = "workload digest mismatch";
        }
    } catch (const std::exception &e) {
        reject = std::string("malformed hello: ") + e.what();
    }

    if (!reject.empty()) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        common::Json msg = common::Json::object();
        msg["op"] = "reject";
        msg["message"] = reject;
        common::writeFrameUntil(fd, msg.dump(), deadline);
        return false;
    }

    out.fd = fd;
    out.session = hello.has("session")
                      ? common::parseHexU64(hello.at("session").asString())
                      : 0;
    out.epoch = hello.has("epoch")
                    ? static_cast<std::uint64_t>(
                          hello.at("epoch").asInt())
                    : 0;

    common::Json welcome = common::Json::object();
    welcome["op"] = "welcome";
    welcome["proto"] = static_cast<std::int64_t>(kFleetProtocol);
    return common::writeFrameUntil(fd, welcome.dump(), deadline) ==
           common::IoStatus::Ok;
}

bool
TcpFleetListener::awaitChannel(double deadline_seconds, TcpChannel &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    const auto ready = [this] { return !ready_.empty(); };
    if (deadline_seconds > 0.0) {
        cv_.wait_for(lock,
                     std::chrono::duration<double>(deadline_seconds),
                     ready);
    }
    if (ready_.empty())
        return false;
    out = ready_.front();
    ready_.pop_front();
    return true;
}

int
connectWorker(const std::string &addr, const HelloIdentity &identity,
              std::uint64_t session, std::uint64_t epoch,
              double deadline_seconds, std::string *error, bool *rejected)
{
    if (rejected)
        *rejected = false;
    const int fd = tcpConnect(addr, deadline_seconds, error);
    if (fd < 0)
        return -1;

    const double deadline =
        common::monotonicNow() +
        (deadline_seconds > 0.0 ? deadline_seconds
                                : kHandshakeDeadlineSeconds);
    common::Json hello = common::Json::object();
    hello["op"] = "hello";
    hello["proto"] = static_cast<std::int64_t>(kFleetProtocol);
    hello["backend"] = identity.backend;
    hello["scenario"] = identity.scenario;
    hello["digest"] = identity.workloadDigest;
    hello["session"] = common::hexU64(session);
    hello["epoch"] = static_cast<std::int64_t>(epoch);
    if (common::writeFrameUntil(fd, hello.dump(), deadline) !=
        common::IoStatus::Ok) {
        if (error)
            *error = "handshake write failed";
        closeFd(fd);
        return -1;
    }

    std::string payload;
    if (common::readFrameUntil(fd, payload, deadline) !=
        common::FrameStatus::Ok) {
        if (error)
            *error = "handshake read failed";
        closeFd(fd);
        return -1;
    }
    try {
        const common::Json reply = common::Json::parse(payload);
        const std::string op =
            reply.has("op") ? reply.at("op").asString() : std::string();
        if (op == "welcome")
            return fd;
        if (rejected)
            *rejected = true;
        if (error)
            *error = reply.has("message")
                         ? reply.at("message").asString()
                         : "handshake rejected";
    } catch (const std::exception &e) {
        if (error)
            *error = std::string("malformed welcome: ") + e.what();
    }
    closeFd(fd);
    return -1;
}

} // namespace unico::net
