#include "net/socket.hh"

#include <cerrno>
#include <cstring>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace unico::net {

bool
parseEndpoint(const std::string &addr, Endpoint &out, std::string *error)
{
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
        if (error)
            *error = "address '" + addr + "' has no ':port'";
        return false;
    }
    const std::string port_str = addr.substr(colon + 1);
    if (port_str.empty() ||
        port_str.find_first_not_of("0123456789") != std::string::npos) {
        if (error)
            *error = "address '" + addr + "' has a malformed port";
        return false;
    }
    unsigned long port = 0;
    try {
        port = std::stoul(port_str);
    } catch (const std::exception &) {
        port = 65536; // force the range error below
    }
    if (port > 65535) {
        if (error)
            *error = "address '" + addr + "' port out of range";
        return false;
    }
    out.host = addr.substr(0, colon);
    out.port = static_cast<std::uint16_t>(port);
    return true;
}

#if defined(_WIN32)

// The fleet is POSIX-only; stubs keep common code linking.
int
tcpListen(const std::string &, std::string *error)
{
    if (error)
        *error = "tcp transport unavailable on this platform";
    return -1;
}

int
boundPort(int)
{
    return -1;
}

int
tcpAccept(int, double, common::IoStatus *status)
{
    if (status)
        *status = common::IoStatus::Error;
    return -1;
}

int
tcpConnect(const std::string &, double, std::string *error)
{
    if (error)
        *error = "tcp transport unavailable on this platform";
    return -1;
}

bool
tuneTcpSocket(int)
{
    return false;
}

#else

namespace {

/** Resolve host (IPv4) into @p out; empty/wildcard maps per @p passive. */
bool
resolveHost(const std::string &host, bool passive, struct in_addr &out,
            std::string *error)
{
    std::string name = host;
    if (name.empty() || name == "*")
        name = passive ? "0.0.0.0" : "127.0.0.1";
    if (::inet_pton(AF_INET, name.c_str(), &out) == 1)
        return true;
    struct addrinfo hints = {};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    if (passive)
        hints.ai_flags = AI_PASSIVE;
    struct addrinfo *res = nullptr;
    const int rc = ::getaddrinfo(name.c_str(), nullptr, &hints, &res);
    if (rc != 0 || res == nullptr) {
        if (error)
            *error = "cannot resolve host '" + name +
                     "': " + ::gai_strerror(rc);
        if (res)
            ::freeaddrinfo(res);
        return false;
    }
    out = reinterpret_cast<struct sockaddr_in *>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
    return true;
}

std::string
errnoMessage(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

} // namespace

bool
tuneTcpSocket(int fd)
{
    bool ok = true;
    int one = 1;
    ok &= ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one)) == 0;
    ok &= ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one,
                       sizeof(one)) == 0;
    ok &= common::setCloexec(fd);
    ok &= common::setNonblocking(fd);
    return ok;
}

int
tcpListen(const std::string &addr, std::string *error)
{
    Endpoint ep;
    if (!parseEndpoint(addr, ep, error))
        return -1;
    struct sockaddr_in sin = {};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(ep.port);
    if (!resolveHost(ep.host, /*passive=*/true, sin.sin_addr, error))
        return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = errnoMessage("socket");
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    common::setCloexec(fd);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&sin),
               sizeof(sin)) != 0 ||
        ::listen(fd, 64) != 0) {
        if (error)
            *error = errnoMessage("bind/listen");
        ::close(fd);
        return -1;
    }
    return fd;
}

int
boundPort(int listen_fd)
{
    struct sockaddr_in sin = {};
    socklen_t len = sizeof(sin);
    if (::getsockname(listen_fd,
                      reinterpret_cast<struct sockaddr *>(&sin),
                      &len) != 0)
        return -1;
    return static_cast<int>(ntohs(sin.sin_port));
}

int
tcpAccept(int listen_fd, double deadline_seconds,
          common::IoStatus *status)
{
    for (;;) {
        const common::IoStatus ready =
            common::waitReadable(listen_fd, deadline_seconds);
        if (ready != common::IoStatus::Ok) {
            if (status)
                *status = ready;
            return -1;
        }
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
            tuneTcpSocket(fd);
            if (status)
                *status = common::IoStatus::Ok;
            return fd;
        }
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED)
            continue; // raced a dying connection; keep waiting
        if (status)
            *status = common::IoStatus::Error;
        return -1;
    }
}

int
tcpConnect(const std::string &addr, double deadline_seconds,
           std::string *error)
{
    Endpoint ep;
    if (!parseEndpoint(addr, ep, error))
        return -1;
    struct sockaddr_in sin = {};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(ep.port);
    if (!resolveHost(ep.host, /*passive=*/false, sin.sin_addr, error))
        return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = errnoMessage("socket");
        return -1;
    }
    common::setCloexec(fd);
    common::setNonblocking(fd);
    int rc = ::connect(fd, reinterpret_cast<struct sockaddr *>(&sin),
                       sizeof(sin));
    while (rc != 0 && errno == EINTR)
        rc = ::connect(fd, reinterpret_cast<struct sockaddr *>(&sin),
                       sizeof(sin));
    if (rc != 0 && errno != EINPROGRESS && errno != EALREADY &&
        errno != EISCONN) {
        if (error)
            *error = errnoMessage("connect");
        ::close(fd);
        return -1;
    }
    if (rc != 0) {
        // Non-blocking connect in flight: wait for writability, then
        // read the final outcome from SO_ERROR.
        const common::IoStatus ready =
            common::waitWritable(fd, deadline_seconds);
        if (ready != common::IoStatus::Ok) {
            if (error)
                *error = ready == common::IoStatus::Timeout
                             ? "connect timed out"
                             : errnoMessage("connect wait");
            ::close(fd);
            return -1;
        }
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) !=
                0 ||
            so_error != 0) {
            if (error) {
                errno = so_error != 0 ? so_error : errno;
                *error = errnoMessage("connect");
            }
            ::close(fd);
            return -1;
        }
    }
    tuneTcpSocket(fd);
    return fd;
}

#endif // !_WIN32

} // namespace unico::net
