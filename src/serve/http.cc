#include "serve/http.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/io.hh"

namespace unico::serve {

std::vector<std::string>
HttpRequest::pathSegments() const
{
    std::vector<std::string> segments;
    // Strip any query string; the control plane doesn't use one.
    const std::string path = target.substr(0, target.find('?'));
    std::string current;
    for (const char c : path) {
        if (c == '/') {
            if (!current.empty())
                segments.push_back(std::move(current));
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        segments.push_back(std::move(current));
    return segments;
}

const char *
toString(HttpParseStatus status)
{
    switch (status) {
      case HttpParseStatus::Ok: return "ok";
      case HttpParseStatus::Closed: return "closed";
      case HttpParseStatus::Timeout: return "timeout";
      case HttpParseStatus::TooLarge: return "too-large";
      case HttpParseStatus::Malformed: return "malformed";
    }
    return "?";
}

namespace {

std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trimmed(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

HttpParseStatus
readHttpRequest(int fd, HttpRequest &out, double deadline_monotonic,
                const HttpLimits &limits)
{
    // Byte-at-a-time header read: requests are tiny (a few hundred
    // bytes) and one-shot, so simplicity beats buffering — and it
    // cannot over-read into a body we then have to stitch back.
    std::string head;
    for (;;) {
        char c = 0;
        std::size_t got = 0;
        const common::IoStatus st =
            common::readFullUntil(fd, &c, 1, deadline_monotonic, &got);
        if (st == common::IoStatus::Timeout)
            return HttpParseStatus::Timeout;
        if (st != common::IoStatus::Ok)
            return HttpParseStatus::Closed;
        head.push_back(c);
        if (head.size() > limits.maxHeaderBytes)
            return HttpParseStatus::TooLarge;
        if (head.size() >= 4 &&
            head.compare(head.size() - 4, 4, "\r\n\r\n") == 0)
            break;
        // Tolerate bare-LF clients (curl never sends them, netcat
        // users do).
        if (head.size() >= 2 &&
            head.compare(head.size() - 2, 2, "\n\n") == 0 &&
            (head.size() < 3 || head[head.size() - 3] != '\r'))
            break;
    }

    std::istringstream lines(head);
    std::string line;
    if (!std::getline(lines, line))
        return HttpParseStatus::Malformed;
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    {
        std::istringstream req(line);
        if (!(req >> out.method >> out.target >> out.version))
            return HttpParseStatus::Malformed;
        if (out.version.rfind("HTTP/", 0) != 0)
            return HttpParseStatus::Malformed;
    }
    while (std::getline(lines, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            break;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            return HttpParseStatus::Malformed;
        out.headers[lowered(trimmed(line.substr(0, colon)))] =
            trimmed(line.substr(colon + 1));
    }

    const auto it = out.headers.find("content-length");
    if (it != out.headers.end()) {
        char *end = nullptr;
        const unsigned long long len =
            std::strtoull(it->second.c_str(), &end, 10);
        if (end == nullptr || *end != '\0')
            return HttpParseStatus::Malformed;
        if (len > limits.maxBodyBytes)
            return HttpParseStatus::TooLarge;
        out.body.resize(static_cast<std::size_t>(len));
        if (len > 0) {
            const common::IoStatus st = common::readFullUntil(
                fd, out.body.data(), out.body.size(),
                deadline_monotonic);
            if (st == common::IoStatus::Timeout)
                return HttpParseStatus::Timeout;
            if (st != common::IoStatus::Ok)
                return HttpParseStatus::Closed;
        }
    }
    return HttpParseStatus::Ok;
}

const char *
reasonPhrase(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default: return "Unknown";
    }
}

std::string
makeHttpResponse(int status, const std::string &contentType,
                 const std::string &body)
{
    std::ostringstream oss;
    oss << "HTTP/1.1 " << status << ' ' << reasonPhrase(status)
        << "\r\nContent-Type: " << contentType
        << "\r\nContent-Length: " << body.size()
        << "\r\nConnection: close\r\n\r\n"
        << body;
    return oss.str();
}

std::string
makeStreamingResponseHead(int status, const std::string &contentType)
{
    std::ostringstream oss;
    oss << "HTTP/1.1 " << status << ' ' << reasonPhrase(status)
        << "\r\nContent-Type: " << contentType
        << "\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n";
    return oss.str();
}

} // namespace unico::serve
