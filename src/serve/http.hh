/**
 * @file
 * Minimal HTTP/1.1 plumbing for the job-serving front-end.
 *
 * Just enough of the protocol for a localhost control plane: parse
 * one request (request line, headers, Content-Length body) off a
 * connected socket with an absolute deadline, and serialize simple
 * responses. Connections are one-shot ("Connection: close"), which
 * keeps the server loop trivially correct and suits both the
 * JSON control requests and the newline-delimited event streams
 * (a stream is one long response body written incrementally).
 *
 * Deliberately not supported: chunked transfer encoding, keep-alive,
 * multipart, TLS, URL query strings beyond the raw target. Callers
 * that need structure in the target split its path segments.
 */

#ifndef UNICO_SERVE_HTTP_HH
#define UNICO_SERVE_HTTP_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace unico::serve {

/** One parsed HTTP request. */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ...
    std::string target;  ///< raw request target, e.g. "/jobs/3"
    std::string version; ///< "HTTP/1.1"
    /** Header fields, names lower-cased. */
    std::map<std::string, std::string> headers;
    std::string body; ///< Content-Length bytes (possibly empty)

    /** "/jobs/3/events" -> {"jobs", "3", "events"}. */
    std::vector<std::string> pathSegments() const;
};

/** Outcome of readHttpRequest(). */
enum class HttpParseStatus {
    Ok,       ///< request fully parsed
    Closed,   ///< peer closed before a complete request
    Timeout,  ///< deadline expired mid-request
    TooLarge, ///< headers or body exceed the configured bounds
    Malformed ///< not parseable as HTTP/1.1
};

/** Human-readable status name. */
const char *toString(HttpParseStatus status);

/** Parse bounds of readHttpRequest(). */
struct HttpLimits
{
    std::size_t maxHeaderBytes = 16 * 1024;
    std::size_t maxBodyBytes = 1024 * 1024;
};

/**
 * Read and parse one request from connected fd @p fd, bounded by the
 * absolute monotonicNow()-based deadline @p deadline_monotonic
 * (<= 0 waits forever).
 */
HttpParseStatus readHttpRequest(int fd, HttpRequest &out,
                                double deadline_monotonic,
                                const HttpLimits &limits = HttpLimits{});

/** Standard reason phrase of a status code ("OK", "Not Found", ...). */
const char *reasonPhrase(int status);

/**
 * Serialize a complete response with Content-Length and
 * "Connection: close".
 */
std::string makeHttpResponse(int status, const std::string &contentType,
                             const std::string &body);

/**
 * Serialize the head of a streamed response: status line + headers,
 * no Content-Length (the connection close delimits the body). The
 * caller writes body chunks directly afterwards.
 */
std::string makeStreamingResponseHead(int status,
                                      const std::string &contentType);

} // namespace unico::serve

#endif // UNICO_SERVE_HTTP_HH
