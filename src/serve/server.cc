#include "serve/server.hh"

#include <cstdlib>
#include <unistd.h>

#include "common/io.hh"
#include "net/socket.hh"
#include "serve/http.hh"

namespace unico::serve {

namespace {

/** Value of ?key= in a raw request target, or empty. */
std::string
queryParam(const std::string &target, const std::string &key)
{
    const std::size_t qmark = target.find('?');
    if (qmark == std::string::npos)
        return {};
    std::string query = target.substr(qmark + 1);
    std::size_t pos = 0;
    while (pos < query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        const std::string pair = query.substr(pos, amp - pos);
        const std::size_t eq = pair.find('=');
        if (eq != std::string::npos && pair.substr(0, eq) == key)
            return pair.substr(eq + 1);
        pos = amp + 1;
    }
    return {};
}

/** Parse a decimal job id; false on anything else. */
bool
parseId(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

common::Json
errorBody(const std::string &message)
{
    common::Json doc = common::Json::object();
    doc["error"] = message;
    return doc;
}

} // namespace

JobServer::JobServer(core::JobManager &manager, JobServerConfig cfg)
    : manager_(manager), cfg_(std::move(cfg))
{
}

JobServer::~JobServer()
{
    stop();
}

bool
JobServer::start(std::string *error)
{
    if (listenFd_ >= 0)
        return true;
    listenFd_ = net::tcpListen(cfg_.addr, error);
    if (listenFd_ < 0)
        return false;
    port_ = net::boundPort(listenFd_);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
JobServer::stop()
{
    if (stopping_.exchange(true))
        return;
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    // Streams end once their job is terminal; callers that want a
    // fast stop cancel jobs (manager().shutdown()) before stop().
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lk(connMu_);
        conns.swap(connThreads_);
    }
    for (auto &t : conns)
        t.join();
}

void
JobServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        // Short accept timeout so stop() is honored promptly.
        common::IoStatus status = common::IoStatus::Ok;
        const int fd = net::tcpAccept(listenFd_, 0.25, &status);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lk(connMu_);
        connThreads_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
}

void
JobServer::handleConnection(int fd)
{
    const double write_deadline =
        common::monotonicNow() + cfg_.writeTimeoutSeconds;
    auto respond = [&](int status, const common::Json &body) {
        common::writeFullUntil(
            fd, makeHttpResponse(status, "application/json",
                                 body.dump() + "\n"),
            write_deadline);
    };

    HttpRequest req;
    const HttpParseStatus parsed = readHttpRequest(
        fd, req, common::monotonicNow() + cfg_.requestTimeoutSeconds);
    if (parsed != HttpParseStatus::Ok) {
        if (parsed == HttpParseStatus::Timeout)
            respond(408, errorBody("request read timed out"));
        else if (parsed == HttpParseStatus::TooLarge)
            respond(413, errorBody("request too large"));
        else if (parsed == HttpParseStatus::Malformed)
            respond(400, errorBody("malformed HTTP request"));
        ::close(fd);
        return;
    }

    const std::vector<std::string> path = req.pathSegments();

    if (req.method == "GET" && path.size() == 1 &&
        path[0] == "healthz") {
        common::Json doc = common::Json::object();
        doc["status"] = "ok";
        doc["max_concurrent"] = manager_.config().maxConcurrent;
        doc["max_queued"] = manager_.config().maxQueued;
        doc["jobs"] = manager_.list().size();
        respond(200, doc);
        ::close(fd);
        return;
    }

    if (path.empty() || path[0] != "jobs") {
        respond(404, errorBody("no such resource"));
        ::close(fd);
        return;
    }

    // POST /jobs — submit.
    if (req.method == "POST" && path.size() == 1) {
        core::JobSpec spec;
        try {
            spec = core::jobSpecFromJson(
                common::Json::parse(req.body));
        } catch (const std::exception &e) {
            respond(400, errorBody(e.what()));
            ::close(fd);
            return;
        }
        const core::SubmitResult sub = manager_.submit(std::move(spec));
        if (!sub.ok()) {
            const int status =
                sub.error == core::SubmitError::QueueFull ? 429
                : sub.error == core::SubmitError::ShuttingDown ? 503
                                                               : 400;
            common::Json doc = errorBody(sub.message);
            doc["code"] = core::toString(sub.error);
            respond(status, doc);
            ::close(fd);
            return;
        }
        common::Json doc = common::Json::object();
        doc["id"] = static_cast<std::int64_t>(sub.id);
        respond(202, doc);
        ::close(fd);
        return;
    }

    // GET /jobs — list.
    if (req.method == "GET" && path.size() == 1) {
        common::Json doc = common::Json::array();
        for (const auto &st : manager_.list())
            doc.push(core::toJson(st));
        respond(200, doc);
        ::close(fd);
        return;
    }

    std::uint64_t id = 0;
    if (path.size() < 2 || !parseId(path[1], id)) {
        respond(404, errorBody("bad job id"));
        ::close(fd);
        return;
    }

    // GET /jobs/N — status.
    if (req.method == "GET" && path.size() == 2) {
        const auto st = manager_.status(id);
        if (!st) {
            respond(404, errorBody("no such job"));
            ::close(fd);
            return;
        }
        respond(200, core::toJson(*st));
        ::close(fd);
        return;
    }

    // GET /jobs/N/events — replayable NDJSON stream.
    if (req.method == "GET" && path.size() == 3 &&
        path[2] == "events") {
        if (!manager_.status(id)) {
            respond(404, errorBody("no such job"));
            ::close(fd);
            return;
        }
        std::size_t from = 0;
        {
            const std::string raw = queryParam(req.target, "from");
            std::uint64_t v = 0;
            if (parseId(raw, v))
                from = static_cast<std::size_t>(v);
        }
        if (common::writeFullUntil(
                fd,
                makeStreamingResponseHead(200, "application/x-ndjson"),
                common::monotonicNow() + cfg_.writeTimeoutSeconds) !=
            common::IoStatus::Ok) {
            ::close(fd);
            return;
        }
        for (;;) {
            // Blocks until new events exist or the job is terminal;
            // empty means the log is exhausted and the job is done.
            const std::vector<core::ProgressEvent> events =
                manager_.eventsSince(id, from);
            if (events.empty())
                break;
            std::string lines;
            for (const auto &ev : events)
                lines += core::toJson(ev).dump() + "\n";
            from += events.size();
            if (common::writeFullUntil(
                    fd, lines,
                    common::monotonicNow() +
                        cfg_.writeTimeoutSeconds) !=
                common::IoStatus::Ok)
                break; // client went away; the job is unaffected
        }
        ::close(fd);
        return;
    }

    // POST /jobs/N/{cancel,pause,resume}.
    if (req.method == "POST" && path.size() == 3) {
        bool ok = false;
        if (path[2] == "cancel")
            ok = manager_.cancel(id);
        else if (path[2] == "pause")
            ok = manager_.pause(id);
        else if (path[2] == "resume")
            ok = manager_.resume(id);
        else {
            respond(404, errorBody("no such action"));
            ::close(fd);
            return;
        }
        if (!ok) {
            respond(409, errorBody("job unknown or already terminal"));
            ::close(fd);
            return;
        }
        common::Json doc = common::Json::object();
        doc["ok"] = true;
        respond(200, doc);
        ::close(fd);
        return;
    }

    respond(405, errorBody("unsupported method for resource"));
    ::close(fd);
}

} // namespace unico::serve
