/**
 * @file
 * HTTP/JSON front-end over the multi-tenant job manager.
 *
 * A JobServer binds one TCP listener and serves a small control
 * plane for core::JobManager:
 *
 *   GET  /healthz           liveness + scheduler capacity
 *   POST /jobs              submit a JSON JobSpec -> {"id": N}
 *   GET  /jobs              status snapshots of every job
 *   GET  /jobs/N            status snapshot of one job
 *   GET  /jobs/N/events     newline-delimited JSON progress stream
 *                           (replayable; "?from=K" resumes mid-log)
 *   POST /jobs/N/cancel     drain the job at its next boundary
 *   POST /jobs/N/pause      park the job at its next trial boundary
 *   POST /jobs/N/resume     wake a paused job
 *
 * Submit rejections map the manager's typed errors onto status codes:
 * BadSpec -> 400, QueueFull -> 429, ShuttingDown -> 503. Connections
 * are one-shot; the event stream is one long response body that ends
 * when the job reaches a terminal state.
 *
 * The server owns only connection plumbing — job semantics (isolation,
 * byte-identity with the CLI, shutdown drain) live in the manager.
 * Determinism note: serving adds no search-visible state, so a job
 * submitted over HTTP writes byte-identical records/front/trace CSVs
 * and checkpoints to the same spec run through co_search_cli.
 */

#ifndef UNICO_SERVE_SERVER_HH
#define UNICO_SERVE_SERVER_HH

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/job_manager.hh"

namespace unico::serve {

/** Server construction options. */
struct JobServerConfig
{
    /** Bind address; port 0 picks a free port (see port()). */
    std::string addr = "127.0.0.1:0";
    /** Budget for reading one request (header + body). */
    double requestTimeoutSeconds = 10.0;
    /** Budget for writing one response / one stream chunk. */
    double writeTimeoutSeconds = 30.0;
};

/**
 * Minimal HTTP front-end serving one JobManager. start() binds and
 * spawns the accept loop; stop() drains connections and joins.
 */
class JobServer
{
  public:
    explicit JobServer(core::JobManager &manager,
                       JobServerConfig cfg = JobServerConfig{});
    ~JobServer();

    JobServer(const JobServer &) = delete;
    JobServer &operator=(const JobServer &) = delete;

    /** Bind + listen + spawn the accept thread. False on bind
     *  failure with a diagnostic in @p error. */
    bool start(std::string *error = nullptr);

    /** Actual bound port (resolves ":0"), or -1 before start(). */
    int port() const { return port_; }

    /** Stop accepting, wake streams, join every connection thread.
     *  Idempotent. Does NOT cancel jobs — callers that want a full
     *  drain call manager().shutdown() as well. */
    void stop();

    core::JobManager &manager() { return manager_; }

  private:
    void acceptLoop();
    void handleConnection(int fd);

    core::JobManager &manager_;
    JobServerConfig cfg_;
    int listenFd_ = -1;
    int port_ = -1;
    std::atomic<bool> stopping_{false};
    std::thread acceptThread_;
    std::mutex connMu_;
    std::vector<std::thread> connThreads_;
};

} // namespace unico::serve

#endif // UNICO_SERVE_SERVER_HH
