#include "mapping/engine.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/thread_pool.hh"

namespace unico::mapping {

const char *
toString(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Random: return "random";
      case EngineKind::Annealing: return "annealing";
      case EngineKind::Genetic: return "genetic";
    }
    return "?";
}

namespace {

/** Uniform random sampling baseline. */
class RandomRun : public SearchRun
{
  public:
    RandomRun(const MappingSpace &space, MappingEvaluator evaluator,
              std::uint64_t seed, BatchMappingEvaluator batch)
        : space_(space), evaluator_(std::move(evaluator)),
          batch_(std::move(batch)), rng_(seed)
    {}

    void
    step(int evals) override
    {
        if (batch_ && evals > 1) {
            // Candidate generation consumes only the RNG — never an
            // evaluation result — so the whole step's block can be
            // drawn up front and evaluated as a batch; index-ordered
            // record() keeps the trajectory byte-identical to serial.
            std::vector<Mapping> block;
            block.reserve(static_cast<std::size_t>(evals));
            for (int i = 0; i < evals; ++i)
                block.push_back(spent() == 0 && i == 0 ? space_.minimal()
                                                       : space_.random(rng_));
            const std::vector<MappingEval> evs = batch_(block);
            for (std::size_t i = 0; i < block.size(); ++i)
                record(block[i], evs[i]);
            return;
        }
        for (int i = 0; i < evals; ++i) {
            // First sample is the always-feasible minimal mapping so
            // every run owns at least one valid candidate.
            const Mapping m = spent() == 0 ? space_.minimal()
                                           : space_.random(rng_);
            record(m, evaluator_(m));
        }
    }

  private:
    const MappingSpace &space_;
    MappingEvaluator evaluator_;
    BatchMappingEvaluator batch_;
    common::Rng rng_;
};

/**
 * FlexTensor-style annealing with an exploration prologue: the first
 * sample is the always-feasible minimal mapping, the next few are
 * uniform random probes (covering large-tile candidates the ladder
 * walk would take long to reach), after which the annealer descends
 * from the best probe with temperature-controlled acceptance and
 * occasional restarts.
 */
class AnnealingRun : public SearchRun
{
  public:
    AnnealingRun(const MappingSpace &space, MappingEvaluator evaluator,
                 std::uint64_t seed, BatchMappingEvaluator batch)
        : space_(space), evaluator_(std::move(evaluator)),
          batch_(std::move(batch)), rng_(seed)
    {}

    void
    step(int evals) override
    {
        int i = 0;
        // The exploration prologue (minimal anchor + random probes)
        // generates candidates independently of evaluation results,
        // so it can batch; the annealing descent below is inherently
        // sequential (each move depends on the previous acceptance).
        while (batch_ && i < evals && spent() < kExplore) {
            const int room = std::min(evals - i, kExplore - spent());
            if (room <= 1)
                break;
            std::vector<Mapping> block;
            block.reserve(static_cast<std::size_t>(room));
            for (int j = 0; j < room; ++j)
                block.push_back(spent() + j == 0 ? space_.minimal()
                                                 : space_.random(rng_));
            const std::vector<MappingEval> evs = batch_(block);
            for (std::size_t j = 0; j < block.size(); ++j) {
                record(block[j], evs[j]);
                if (spent() == kExplore) {
                    current_ = best();
                    currentEval_ = bestEval();
                }
            }
            i += room;
        }
        for (; i < evals; ++i) {
            if (spent() == 0) {
                // Guaranteed-feasible anchor.
                const Mapping m = space_.minimal();
                record(m, evaluator_(m));
                continue;
            }
            if (spent() < kExplore) {
                const Mapping m = space_.random(rng_);
                record(m, evaluator_(m));
                if (spent() == kExplore) {
                    current_ = best();
                    currentEval_ = bestEval();
                }
                continue;
            }
            Mapping cand;
            if (rng_.bernoulli(restartProb_)) {
                cand = space_.random(rng_);
            } else {
                cand = space_.mutate(current_, rng_);
                // A second mutation half the time widens the move set.
                if (rng_.bernoulli(0.5))
                    cand = space_.mutate(cand, rng_);
            }
            const MappingEval eval = evaluator_(cand);
            record(cand, eval);
            const double denom =
                std::max(std::abs(currentEval_.loss), 1e-12);
            const double delta = (eval.loss - currentEval_.loss) / denom;
            if (delta <= 0.0 ||
                rng_.bernoulli(std::exp(-delta / temperature_))) {
                current_ = cand;
                currentEval_ = eval;
            }
            temperature_ = std::max(temperature_ * cooling_, minTemp_);
        }
    }

  private:
    static constexpr int kExplore = 13;

    const MappingSpace &space_;
    MappingEvaluator evaluator_;
    BatchMappingEvaluator batch_;
    common::Rng rng_;
    Mapping current_;
    MappingEval currentEval_;
    double temperature_ = 0.5;
    static constexpr double cooling_ = 0.985;
    static constexpr double minTemp_ = 0.01;
    static constexpr double restartProb_ = 0.03;
};

/**
 * GAMMA-style steady-state genetic search: maintain a small
 * population; each evaluation produces one child by tournament
 * selection + crossover + mutation, replacing the current worst.
 */
class GeneticRun : public SearchRun
{
  public:
    GeneticRun(const MappingSpace &space, MappingEvaluator evaluator,
               std::uint64_t seed, BatchMappingEvaluator batch)
        : space_(space), evaluator_(std::move(evaluator)),
          batch_(std::move(batch)), rng_(seed)
    {}

    void
    step(int evals) override
    {
        int i = 0;
        // Population seeding (minimal + random diversity) generates
        // candidates independently of evaluation results, so it can
        // batch; steady-state evolution below is sequential (parents
        // come from the evaluated population).
        while (batch_ && i < evals && population_.size() < kPopulation) {
            const int room = std::min(
                evals - i,
                static_cast<int>(kPopulation - population_.size()));
            if (room <= 1)
                break;
            std::vector<Mapping> block;
            block.reserve(static_cast<std::size_t>(room));
            for (int j = 0; j < room; ++j)
                block.push_back(population_.empty() && j == 0
                                    ? space_.minimal()
                                    : space_.random(rng_));
            const std::vector<MappingEval> evs = batch_(block);
            for (std::size_t j = 0; j < block.size(); ++j) {
                record(block[j], evs[j]);
                population_.push_back({block[j], evs[j].loss});
            }
            i += room;
        }
        for (; i < evals; ++i) {
            if (population_.size() < kPopulation) {
                // Seed the population with the minimal mapping first
                // (always feasible), then random diversity.
                const Mapping m = population_.empty()
                                      ? space_.minimal()
                                      : space_.random(rng_);
                const MappingEval eval = evaluator_(m);
                record(m, eval);
                population_.push_back({m, eval.loss});
                continue;
            }
            const Member &pa = tournament();
            const Member &pb = tournament();
            Mapping child = space_.crossover(pa.mapping, pb.mapping, rng_);
            if (rng_.bernoulli(kMutationProb))
                child = space_.mutate(child, rng_);
            const MappingEval eval = evaluator_(child);
            record(child, eval);
            auto worst = std::max_element(
                population_.begin(), population_.end(),
                [](const Member &a, const Member &b) {
                    return a.loss < b.loss;
                });
            if (eval.loss < worst->loss)
                *worst = {child, eval.loss};
        }
    }

  private:
    struct Member
    {
        Mapping mapping;
        double loss;
    };

    const Member &
    tournament()
    {
        const Member &a = population_[rng_.uniformInt(population_.size())];
        const Member &b = population_[rng_.uniformInt(population_.size())];
        return a.loss <= b.loss ? a : b;
    }

    static constexpr std::size_t kPopulation = 16;
    static constexpr double kMutationProb = 0.7;

    const MappingSpace &space_;
    MappingEvaluator evaluator_;
    BatchMappingEvaluator batch_;
    common::Rng rng_;
    std::vector<Member> population_;
};

} // namespace

MappingEvaluator
screeningEvaluator(CandidateScreen *screen, MappingEvaluator inner)
{
    if (screen == nullptr)
        return inner;
    return [screen, inner = std::move(inner)](const Mapping &m) {
        if (auto predicted = screen->screen(m)) {
            assert(predicted->fidelity == Fidelity::Surrogate);
            return *predicted;
        }
        const MappingEval eval = inner(m);
        screen->observeExact(m, eval);
        return eval;
    };
}

MappingEvaluator
cachingEvaluator(accel::EvalCache *cache, common::Fingerprint context,
                 MappingEvaluator inner, double seconds)
{
    if (cache == nullptr)
        return inner;
    return [cache, context, inner = std::move(inner),
            seconds](const Mapping &m) {
        const common::Fingerprint key =
            accel::evalCacheKey(context, m.fingerprint());
        if (const auto hit = cache->get(key))
            return MappingEval{hit->ppa, hit->loss};
        const MappingEval eval = inner(m);
        cache->put(key, accel::CachedEval{eval.ppa, eval.loss, seconds});
        return eval;
    };
}

BatchMappingEvaluator
serialBatch(MappingEvaluator inner)
{
    return [inner = std::move(inner)](const std::vector<Mapping> &ms) {
        std::vector<MappingEval> out;
        out.reserve(ms.size());
        for (const Mapping &m : ms)
            out.push_back(inner(m));
        return out;
    };
}

BatchMappingEvaluator
parallelBatch(MappingEvaluator inner, common::ThreadPool *pool)
{
    if (pool == nullptr)
        return serialBatch(std::move(inner));
    return [inner = std::move(inner), pool](const std::vector<Mapping> &ms) {
        std::vector<MappingEval> out(ms.size());
        if (ms.size() <= 1) {
            for (std::size_t i = 0; i < ms.size(); ++i)
                out[i] = inner(ms[i]);
            return out;
        }
        common::ThreadPool::Batch batch(*pool);
        for (std::size_t i = 0; i < ms.size(); ++i)
            batch.submit([&inner, &ms, &out, i] { out[i] = inner(ms[i]); });
        batch.wait();
        const auto failures = batch.drainFailures();
        if (!failures.empty())
            std::rethrow_exception(failures.front());
        return out;
    };
}

BatchMappingEvaluator
cachingBatchEvaluator(accel::EvalCache *cache, common::Fingerprint context,
                      BatchMappingEvaluator inner, double seconds)
{
    if (cache == nullptr)
        return inner;
    return [cache, context, inner = std::move(inner),
            seconds](const std::vector<Mapping> &ms) {
        std::vector<MappingEval> out(ms.size());
        std::vector<common::Fingerprint> keys(ms.size());
        std::vector<std::size_t> miss;
        std::vector<Mapping> cold;
        for (std::size_t i = 0; i < ms.size(); ++i) {
            keys[i] = accel::evalCacheKey(context, ms[i].fingerprint());
            if (const auto hit = cache->get(keys[i])) {
                out[i] = MappingEval{hit->ppa, hit->loss};
            } else {
                miss.push_back(i);
                cold.push_back(ms[i]);
            }
        }
        if (!cold.empty()) {
            const std::vector<MappingEval> evs = inner(cold);
            for (std::size_t j = 0; j < miss.size(); ++j) {
                out[miss[j]] = evs[j];
                cache->put(keys[miss[j]],
                           accel::CachedEval{evs[j].ppa, evs[j].loss,
                                             seconds});
            }
        }
        return out;
    };
}

BatchMappingEvaluator
screeningBatchEvaluator(CandidateScreen *screen, MappingEvaluator one,
                        BatchMappingEvaluator batch)
{
    if (screen == nullptr)
        return batch;
    // The screen trains on each exact result before judging the next
    // candidate; parallel evaluation would reorder that feedback.
    // Process the block strictly serially through the single-candidate
    // screening stack — byte-identical to the unbatched decorators.
    return serialBatch(screeningEvaluator(screen, std::move(one)));
}

std::unique_ptr<SearchRun>
startSearch(EngineKind kind, const MappingSpace &space,
            MappingEvaluator evaluator, std::uint64_t seed,
            BatchMappingEvaluator batch)
{
    switch (kind) {
      case EngineKind::Random:
        return std::make_unique<RandomRun>(space, std::move(evaluator),
                                           seed, std::move(batch));
      case EngineKind::Annealing:
        return std::make_unique<AnnealingRun>(space, std::move(evaluator),
                                              seed, std::move(batch));
      case EngineKind::Genetic:
        return std::make_unique<GeneticRun>(space, std::move(evaluator),
                                            seed, std::move(batch));
    }
    return nullptr;
}

} // namespace unico::mapping
