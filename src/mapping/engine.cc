#include "mapping/engine.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace unico::mapping {

const char *
toString(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Random: return "random";
      case EngineKind::Annealing: return "annealing";
      case EngineKind::Genetic: return "genetic";
    }
    return "?";
}

namespace {

/** Uniform random sampling baseline. */
class RandomRun : public SearchRun
{
  public:
    RandomRun(const MappingSpace &space, MappingEvaluator evaluator,
              std::uint64_t seed)
        : space_(space), evaluator_(std::move(evaluator)), rng_(seed)
    {}

    void
    step(int evals) override
    {
        for (int i = 0; i < evals; ++i) {
            // First sample is the always-feasible minimal mapping so
            // every run owns at least one valid candidate.
            const Mapping m = spent() == 0 ? space_.minimal()
                                           : space_.random(rng_);
            record(m, evaluator_(m));
        }
    }

  private:
    const MappingSpace &space_;
    MappingEvaluator evaluator_;
    common::Rng rng_;
};

/**
 * FlexTensor-style annealing with an exploration prologue: the first
 * sample is the always-feasible minimal mapping, the next few are
 * uniform random probes (covering large-tile candidates the ladder
 * walk would take long to reach), after which the annealer descends
 * from the best probe with temperature-controlled acceptance and
 * occasional restarts.
 */
class AnnealingRun : public SearchRun
{
  public:
    AnnealingRun(const MappingSpace &space, MappingEvaluator evaluator,
                 std::uint64_t seed)
        : space_(space), evaluator_(std::move(evaluator)), rng_(seed)
    {}

    void
    step(int evals) override
    {
        for (int i = 0; i < evals; ++i) {
            if (spent() == 0) {
                // Guaranteed-feasible anchor.
                const Mapping m = space_.minimal();
                record(m, evaluator_(m));
                continue;
            }
            if (spent() < kExplore) {
                const Mapping m = space_.random(rng_);
                record(m, evaluator_(m));
                if (spent() == kExplore) {
                    current_ = best();
                    currentEval_ = bestEval();
                }
                continue;
            }
            Mapping cand;
            if (rng_.bernoulli(restartProb_)) {
                cand = space_.random(rng_);
            } else {
                cand = space_.mutate(current_, rng_);
                // A second mutation half the time widens the move set.
                if (rng_.bernoulli(0.5))
                    cand = space_.mutate(cand, rng_);
            }
            const MappingEval eval = evaluator_(cand);
            record(cand, eval);
            const double denom =
                std::max(std::abs(currentEval_.loss), 1e-12);
            const double delta = (eval.loss - currentEval_.loss) / denom;
            if (delta <= 0.0 ||
                rng_.bernoulli(std::exp(-delta / temperature_))) {
                current_ = cand;
                currentEval_ = eval;
            }
            temperature_ = std::max(temperature_ * cooling_, minTemp_);
        }
    }

  private:
    static constexpr int kExplore = 13;

    const MappingSpace &space_;
    MappingEvaluator evaluator_;
    common::Rng rng_;
    Mapping current_;
    MappingEval currentEval_;
    double temperature_ = 0.5;
    static constexpr double cooling_ = 0.985;
    static constexpr double minTemp_ = 0.01;
    static constexpr double restartProb_ = 0.03;
};

/**
 * GAMMA-style steady-state genetic search: maintain a small
 * population; each evaluation produces one child by tournament
 * selection + crossover + mutation, replacing the current worst.
 */
class GeneticRun : public SearchRun
{
  public:
    GeneticRun(const MappingSpace &space, MappingEvaluator evaluator,
               std::uint64_t seed)
        : space_(space), evaluator_(std::move(evaluator)), rng_(seed)
    {}

    void
    step(int evals) override
    {
        for (int i = 0; i < evals; ++i) {
            if (population_.size() < kPopulation) {
                // Seed the population with the minimal mapping first
                // (always feasible), then random diversity.
                const Mapping m = population_.empty()
                                      ? space_.minimal()
                                      : space_.random(rng_);
                const MappingEval eval = evaluator_(m);
                record(m, eval);
                population_.push_back({m, eval.loss});
                continue;
            }
            const Member &pa = tournament();
            const Member &pb = tournament();
            Mapping child = space_.crossover(pa.mapping, pb.mapping, rng_);
            if (rng_.bernoulli(kMutationProb))
                child = space_.mutate(child, rng_);
            const MappingEval eval = evaluator_(child);
            record(child, eval);
            auto worst = std::max_element(
                population_.begin(), population_.end(),
                [](const Member &a, const Member &b) {
                    return a.loss < b.loss;
                });
            if (eval.loss < worst->loss)
                *worst = {child, eval.loss};
        }
    }

  private:
    struct Member
    {
        Mapping mapping;
        double loss;
    };

    const Member &
    tournament()
    {
        const Member &a = population_[rng_.uniformInt(population_.size())];
        const Member &b = population_[rng_.uniformInt(population_.size())];
        return a.loss <= b.loss ? a : b;
    }

    static constexpr std::size_t kPopulation = 16;
    static constexpr double kMutationProb = 0.7;

    const MappingSpace &space_;
    MappingEvaluator evaluator_;
    common::Rng rng_;
    std::vector<Member> population_;
};

} // namespace

MappingEvaluator
screeningEvaluator(CandidateScreen *screen, MappingEvaluator inner)
{
    if (screen == nullptr)
        return inner;
    return [screen, inner = std::move(inner)](const Mapping &m) {
        if (auto predicted = screen->screen(m)) {
            assert(predicted->fidelity == Fidelity::Surrogate);
            return *predicted;
        }
        const MappingEval eval = inner(m);
        screen->observeExact(m, eval);
        return eval;
    };
}

MappingEvaluator
cachingEvaluator(accel::EvalCache *cache, common::Fingerprint context,
                 MappingEvaluator inner, double seconds)
{
    if (cache == nullptr)
        return inner;
    return [cache, context, inner = std::move(inner),
            seconds](const Mapping &m) {
        const common::Fingerprint key =
            common::combine(context, m.fingerprint());
        if (const auto hit = cache->get(key))
            return MappingEval{hit->ppa, hit->loss};
        const MappingEval eval = inner(m);
        cache->put(key, accel::CachedEval{eval.ppa, eval.loss, seconds});
        return eval;
    };
}

std::unique_ptr<SearchRun>
startSearch(EngineKind kind, const MappingSpace &space,
            MappingEvaluator evaluator, std::uint64_t seed)
{
    switch (kind) {
      case EngineKind::Random:
        return std::make_unique<RandomRun>(space, std::move(evaluator),
                                           seed);
      case EngineKind::Annealing:
        return std::make_unique<AnnealingRun>(space, std::move(evaluator),
                                              seed);
      case EngineKind::Genetic:
        return std::make_unique<GeneticRun>(space, std::move(evaluator),
                                            seed);
    }
    return nullptr;
}

} // namespace unico::mapping
