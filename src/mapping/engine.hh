/**
 * @file
 * Software-mapping search engine interface.
 *
 * A mature mapping optimizer (Sec. 2.1) exposes a budgeted,
 * resumable, monotonically-improving search. SearchRun models one
 * in-progress search for a fixed (workload, hardware) pair:
 * successive halving grants additional budget to surviving runs by
 * calling step() again, and the recorded histories feed both the
 * AUC promotion criterion of the modified successive halving and the
 * robustness metric R.
 */

#ifndef UNICO_MAPPING_ENGINE_HH
#define UNICO_MAPPING_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "accel/ppa.hh"
#include "common/rng.hh"
#include "mapping/mapping.hh"

namespace unico::common {
class ThreadPool;
} // namespace unico::common

namespace unico::mapping {

/**
 * Provenance of a MappingEval. Exact evaluations are the sole source
 * of truth: surrogate-fidelity evals may steer an engine's internal
 * state but never become the incumbent, enter samples(), improve the
 * best-loss history, or reach checkpoints / Pareto fronts / CSVs.
 */
enum class Fidelity : std::uint8_t {
    Exact,     ///< produced by the real cost model (cached or not)
    Surrogate, ///< predicted by the learned screen; advisory only
};

/** Result of evaluating one mapping candidate. */
struct MappingEval
{
    accel::Ppa ppa;     ///< PPA estimate (may be infeasible)
    double loss = 1e18; ///< scalar mapping-search objective
    Fidelity fidelity = Fidelity::Exact; ///< provenance tag
};

/** PPA estimation callback: mapping -> evaluation. */
using MappingEvaluator = std::function<MappingEval(const Mapping &)>;

/**
 * Batched PPA estimation: one candidate block in, index-aligned
 * evaluations out. The determinism contract every implementation must
 * honor: the returned vector is byte-identical to calling the
 * equivalent single-candidate evaluator on each element in index
 * order, regardless of how the work is scheduled internally.
 */
using BatchMappingEvaluator =
    std::function<std::vector<MappingEval>(const std::vector<Mapping> &)>;

/**
 * Candidate pre-screen backed by a learned cost model.
 *
 * Declared here as an abstract interface so the mapping library needs
 * no dependency on the surrogate library that implements it (the
 * surrogate depends on mapping, not vice versa).
 */
class CandidateScreen
{
  public:
    virtual ~CandidateScreen() = default;

    /**
     * Decide whether @p m should skip exact evaluation. Returns a
     * surrogate-fidelity prediction to screen the candidate out, or
     * std::nullopt to admit it to the exact evaluator.
     */
    virtual std::optional<MappingEval> screen(const Mapping &m) = 0;

    /** Feed one exact evaluation back as training signal. */
    virtual void observeExact(const Mapping &m,
                              const MappingEval &eval) = 0;
};

/**
 * Wrap @p inner with learned-model pre-screening.
 *
 * Sits *above* cachingEvaluator: a screened-out candidate never
 * touches the cache or the exact model, and costs (near) zero virtual
 * seconds. Admitted candidates flow through unchanged and their exact
 * results train the screen. @p screen == nullptr returns @p inner
 * unchanged (the byte-identical default-off path).
 */
MappingEvaluator screeningEvaluator(CandidateScreen *screen,
                                    MappingEvaluator inner);

/**
 * Wrap @p inner with evaluation-cache memoization.
 *
 * @param cache shared cache, or nullptr to return @p inner unchanged.
 * @param context query-context fingerprint (model + tech + op + hw);
 *        the cache key is combine(context, mapping fingerprint).
 * @param inner the uncached evaluator.
 * @param seconds nominal EvalClock seconds of one inner evaluation,
 *        stored so a hit can re-charge the identical virtual cost.
 *
 * The wrapper is transparent: hit or miss, the returned MappingEval
 * is bit-identical to what @p inner would produce, so search
 * trajectories do not depend on cache state.
 */
MappingEvaluator cachingEvaluator(accel::EvalCache *cache,
                                  common::Fingerprint context,
                                  MappingEvaluator inner,
                                  double seconds = 0.0);

/** Trivial batch adapter: @p inner called per element in index order. */
BatchMappingEvaluator serialBatch(MappingEvaluator inner);

/**
 * Fan one candidate block across @p pool (nullptr degrades to
 * serialBatch). @p inner must be a pure function of the mapping —
 * the raw cost-model evaluator, not a stateful decorator — so the
 * index-aligned result vector is byte-identical to serial execution
 * for any schedule.
 */
BatchMappingEvaluator parallelBatch(MappingEvaluator inner,
                                    common::ThreadPool *pool);

/**
 * Batched counterpart of cachingEvaluator: probes the whole block
 * first, forwards only the misses to @p inner as one (smaller) block,
 * then stores and merges index-aligned. Entries are shared with the
 * single-candidate decorator. nullptr @p cache returns @p inner
 * unchanged.
 */
BatchMappingEvaluator cachingBatchEvaluator(accel::EvalCache *cache,
                                            common::Fingerprint context,
                                            BatchMappingEvaluator inner,
                                            double seconds = 0.0);

/**
 * Batched counterpart of screeningEvaluator. An active screen is
 * stateful (each exact result trains it before the next candidate is
 * screened), so with @p screen non-null the block is processed
 * strictly serially through @p one — the evaluator sitting *below*
 * the screen, i.e. the cached exact path — preserving byte-identity
 * with the unbatched decorator stack. With @p screen == nullptr the
 * pass-through @p batch is returned and candidates may fan out.
 */
BatchMappingEvaluator screeningBatchEvaluator(CandidateScreen *screen,
                                              MappingEvaluator one,
                                              BatchMappingEvaluator batch);

/** One raw evaluated sample, retained for the robustness metric. */
struct SamplePoint
{
    double loss;
    double latencyMs;
    double powerMw;
    bool feasible;
};

/**
 * A resumable mapping search in progress.
 *
 * Invariants: bestLossHistory() has one entry per spent evaluation
 * and is monotonically non-increasing; best() corresponds to
 * bestLossHistory().back().
 */
class SearchRun
{
  public:
    virtual ~SearchRun() = default;

    /** Spend @p evals more evaluations of search budget. */
    virtual void step(int evals) = 0;

    /** Total evaluations spent so far. */
    int spent() const { return static_cast<int>(bestLoss_.size()); }

    /** Best mapping found so far. */
    const Mapping &best() const { return bestMapping_; }

    /** Evaluation of the best mapping. */
    const MappingEval &bestEval() const { return bestEval_; }

    /** Best-so-far loss after each evaluation (monotone). */
    const std::vector<double> &bestLossHistory() const { return bestLoss_; }

    /** Every raw sample seen (for the R metric's percentile point). */
    const std::vector<SamplePoint> &samples() const { return samples_; }

  protected:
    /** Record an evaluation and update the incumbent. */
    void
    record(const Mapping &m, const MappingEval &eval)
    {
        if (eval.fidelity == Fidelity::Surrogate) {
            // A screened-out candidate spends budget and may steer
            // the engine's internal state via the returned eval, but
            // its predicted numbers are advisory: no sample, no
            // incumbent update, best-so-far carried forward.
            bestLoss_.push_back(bestLoss_.empty() ? 1e18
                                                  : bestLoss_.back());
            return;
        }
        samples_.push_back(SamplePoint{eval.loss, eval.ppa.latencyMs,
                                       eval.ppa.powerMw,
                                       eval.ppa.feasible});
        if (bestLoss_.empty() || eval.loss < bestEval_.loss) {
            bestEval_ = eval;
            bestMapping_ = m;
        }
        bestLoss_.push_back(bestEval_.loss);
    }

  private:
    Mapping bestMapping_;
    MappingEval bestEval_;
    std::vector<double> bestLoss_;
    std::vector<SamplePoint> samples_;
};

/** Available search-engine families. */
enum class EngineKind {
    Random,    ///< uniform random sampling
    Annealing, ///< FlexTensor-style simulated annealing
    Genetic,   ///< GAMMA-style steady-state genetic search
};

/** Human-readable engine name. */
const char *toString(EngineKind kind);

/**
 * Start a resumable mapping search of the given family.
 *
 * @param kind engine family
 * @param space mapping space of the target operator
 * @param evaluator PPA estimation callback
 * @param seed deterministic seed for this run
 * @param batch optional batched evaluator. When set, the phases whose
 *        candidate generation does not depend on evaluation results —
 *        the Random engine's sampling, the Annealing engine's
 *        exploration prologue and the Genetic engine's population
 *        seeding — generate their candidate block up front and
 *        evaluate it through @p batch; results are recorded in index
 *        order, so the trajectory is byte-identical to the serial
 *        path. Sequentially dependent phases ignore it.
 */
std::unique_ptr<SearchRun> startSearch(EngineKind kind,
                                       const MappingSpace &space,
                                       MappingEvaluator evaluator,
                                       std::uint64_t seed,
                                       BatchMappingEvaluator batch = nullptr);

} // namespace unico::mapping

#endif // UNICO_MAPPING_ENGINE_HH
