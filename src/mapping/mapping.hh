/**
 * @file
 * Software mapping representation for the spatial template.
 *
 * A mapping fixes, for the canonical 7-D loop nest of a TensorOp
 * (Fig. 1, right): the per-PE L1 tile, the L2 tile staged in the
 * global buffer, which two loop dimensions are unrolled spatially
 * across the PE array, and the temporal loop order at the L2/DRAM
 * boundary. This is the loop split / reorder / spatial-bind subset
 * of the FlexTensor primitive space that the cost models consume.
 */

#ifndef UNICO_MAPPING_MAPPING_HH
#define UNICO_MAPPING_MAPPING_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/shard_cache.hh"
#include "workload/tensor_op.hh"

namespace unico::mapping {

/** Canonical loop-dimension indices of the 7-D nest. */
enum LoopDim : int {
    DimN = 0,
    DimK = 1,
    DimC = 2,
    DimY = 3,
    DimX = 4,
    DimR = 5,
    DimS = 6,
    kNumDims = 7,
};

/** Loop dimension short name ("N", "K", ...). */
const char *dimName(int dim);

/** A complete software mapping of one operator. */
struct Mapping
{
    /** Per-PE tile resident in the private L1 scratchpad. */
    std::array<std::int64_t, kNumDims> l1Tile{1, 1, 1, 1, 1, 1, 1};

    /** Tile staged in the shared L2 buffer (>= l1Tile per dim). */
    std::array<std::int64_t, kNumDims> l2Tile{1, 1, 1, 1, 1, 1, 1};

    /** Loop dim unrolled across the PE array's x axis. */
    int spatialX = DimK;

    /** Loop dim unrolled across the PE array's y axis. */
    int spatialY = DimX;

    /** Temporal loop order at the DRAM/L2 boundary (outermost
     *  first); a permutation of 0..6. */
    std::array<int, kNumDims> order{0, 1, 2, 3, 4, 5, 6};

    /** Human-readable summary. */
    std::string describe() const;

    /** Structural equality. */
    bool operator==(const Mapping &other) const;

    /** Canonical fingerprint over every facet (tiles, spatial dims,
     *  loop order) for the evaluation cache; equal mappings have
     *  equal fingerprints. */
    common::Fingerprint fingerprint() const;
};

/**
 * The mapping search space for a specific operator: the tile ladders,
 * validity repair, and the random/mutate/crossover operators used by
 * every search engine.
 */
class MappingSpace
{
  public:
    explicit MappingSpace(const workload::TensorOp &op);

    /** The operator this space maps. */
    const workload::TensorOp &op() const { return op_; }

    /** Loop extent of dimension @p dim. */
    std::int64_t extent(int dim) const { return extents_[dim]; }

    /** Candidate tile sizes for @p dim (ascending, ends at extent). */
    const std::vector<std::int64_t> &
    tileLadder(int dim) const
    {
        return ladders_[dim];
    }

    /** Approximate cardinality of the mapping space (log10). */
    double log10Size() const;

    /**
     * The minimal mapping: all tiles 1, identity loop order, default
     * spatial dims. It has no data reuse but fits any buffer, so
     * search engines use it as an always-feasible starting point.
     */
    Mapping minimal() const;

    /** Uniform random valid mapping. */
    Mapping random(common::Rng &rng) const;

    /** Local mutation of one mapping facet; always returns valid. */
    Mapping mutate(const Mapping &m, common::Rng &rng) const;

    /** Crossover of two mappings; always returns valid. */
    Mapping crossover(const Mapping &a, const Mapping &b,
                      common::Rng &rng) const;

    /** Clamp tiles to extents and restore l1 <= l2 and the order
     *  permutation; returns true if anything changed. */
    bool repair(Mapping &m) const;

    /** True if the mapping satisfies all structural invariants. */
    bool isValid(const Mapping &m) const;

  private:
    std::int64_t snapToLadder(int dim, std::int64_t v) const;

    workload::TensorOp op_;
    std::array<std::int64_t, kNumDims> extents_;
    std::array<std::vector<std::int64_t>, kNumDims> ladders_;
    std::vector<int> spatialChoices_;
};

} // namespace unico::mapping

#endif // UNICO_MAPPING_MAPPING_HH
