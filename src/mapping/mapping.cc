#include "mapping/mapping.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace unico::mapping {

const char *
dimName(int dim)
{
    static const char *names[kNumDims] = {"N", "K", "C", "Y", "X", "R", "S"};
    assert(dim >= 0 && dim < kNumDims);
    return names[dim];
}

std::string
Mapping::describe() const
{
    std::ostringstream oss;
    oss << "l1=[";
    for (int d = 0; d < kNumDims; ++d)
        oss << (d ? "," : "") << l1Tile[d];
    oss << "] l2=[";
    for (int d = 0; d < kNumDims; ++d)
        oss << (d ? "," : "") << l2Tile[d];
    oss << "] spatial=" << dimName(spatialX) << "x" << dimName(spatialY)
        << " order=";
    for (int d = 0; d < kNumDims; ++d)
        oss << dimName(order[d]);
    return oss.str();
}

bool
Mapping::operator==(const Mapping &other) const
{
    return l1Tile == other.l1Tile && l2Tile == other.l2Tile &&
           spatialX == other.spatialX && spatialY == other.spatialY &&
           order == other.order;
}

namespace {

/** wyhash-style folded multiply: the full 128-bit product of two
 *  keyed words, XOR-folded to 64 bits. */
inline std::uint64_t
foldMul(std::uint64_t x, std::uint64_t y)
{
    const unsigned __int128 p = static_cast<unsigned __int128>(x) * y;
    return static_cast<std::uint64_t>(p) ^
           static_cast<std::uint64_t>(p >> 64);
}

} // namespace

common::Fingerprint
Mapping::fingerprint() const
{
    // The fingerprint is hashed once per evaluation — cold (cache
    // key + model query) and warm (cache key + probe) alike — so
    // hashing cost is hot-path cost. Tile extents fit 16 bits for
    // every template the space generates, so the whole mapping packs
    // into four words (14 tile lanes, both spatial dims, the loop
    // order — a permutation of 0..6, 3 bits each — and a scheme-tag
    // bit), hashed with six folded multiplies instead of a 23-step
    // builder stream. Fingerprints never leave the process, so the
    // scheme can change; the wide FingerprintBuilder fallback keeps
    // correctness for any future template whose tiles exceed the
    // lane width, with the tag (tail bit 63 here, a leading tag word
    // there) separating the two streams' domains.
    bool narrow = true;
    for (int d = 0; d < kNumDims; ++d)
        narrow = narrow && l1Tile[d] < (std::int64_t{1} << 16) &&
                 l2Tile[d] < (std::int64_t{1} << 16);
    if (narrow) {
        // Lanes 0..6 are l1Tile, 7..13 are l2Tile.
        auto lane = [this](int i) {
            return static_cast<std::uint64_t>(
                i < kNumDims ? l1Tile[i] : l2Tile[i - kNumDims]);
        };
        auto word = [&lane](int base) {
            return (lane(base) << 48) | (lane(base + 1) << 32) |
                   (lane(base + 2) << 16) | lane(base + 3);
        };
        std::uint64_t ord = 0;
        for (int d = 0; d < kNumDims; ++d)
            ord = (ord << 3) | static_cast<std::uint64_t>(order[d]);
        const std::uint64_t tail =
            (std::uint64_t{1} << 63) | // scheme tag
            (lane(12) << 43) | (lane(13) << 27) |
            (static_cast<std::uint64_t>(spatialX) << 24) |
            (static_cast<std::uint64_t>(spatialY) << 21) | ord;
        // Chained 2:1 compression: h1 absorbs every input word, so a
        // pairwise collision needs a 64-bit fold collision (~2^-64 —
        // ample for the <=1e7 in-process keys a run ever makes).
        const std::uint64_t h0 = foldMul(word(0) ^ 0xa0761d6478bd642fULL,
                                         word(4) ^ 0xe7037ed1a0b428dbULL);
        const std::uint64_t h1 = foldMul(word(8) ^ h0,
                                         tail ^ 0x8ebc6af09c88c6e3ULL);
        return common::Fingerprint{
            foldMul(h0 ^ 0x589965cc75374cc3ULL,
                    h1 ^ 0x1d8e4e27c47d124fULL),
            foldMul(h0 + 0xeb44accab455d165ULL,
                    h1 + 0x9e3779b97f4a7c15ULL)};
    }
    common::FingerprintBuilder fb;
    fb.add(std::uint64_t{2}); // scheme: one field per mix step
    for (int d = 0; d < kNumDims; ++d)
        fb.add(l1Tile[d]);
    for (int d = 0; d < kNumDims; ++d)
        fb.add(l2Tile[d]);
    fb.add(spatialX).add(spatialY);
    for (int d = 0; d < kNumDims; ++d)
        fb.add(order[d]);
    return fb.fingerprint();
}

namespace {

/** Tile ladder: 1, 2, 3, 4, 6, 8, 12, ... capped by extent, plus the
 *  extent itself (so a "no tiling" choice always exists). */
std::vector<std::int64_t>
makeLadder(std::int64_t extent)
{
    std::vector<std::int64_t> out;
    std::int64_t p2 = 1;
    while (p2 <= extent) {
        out.push_back(p2);
        if (3 * p2 / 2 <= extent && 3 * p2 / 2 > p2)
            out.push_back(3 * p2 / 2);
        p2 *= 2;
    }
    out.push_back(extent);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace

MappingSpace::MappingSpace(const workload::TensorOp &op) : op_(op)
{
    extents_ = {op.n, op.k, op.c, op.y, op.x, op.r, op.s};
    for (int d = 0; d < kNumDims; ++d)
        ladders_[d] = makeLadder(extents_[d]);
    // Spatial unrolling candidates: the output/reduction dims with
    // extent > 1 (R/S are too small to fill a PE axis profitably, N
    // is usually 1); fall back to K and X.
    for (int d : {DimK, DimC, DimY, DimX})
        if (extents_[d] > 1)
            spatialChoices_.push_back(d);
    if (spatialChoices_.size() < 2)
        spatialChoices_ = {DimK, DimX};
}

double
MappingSpace::log10Size() const
{
    double log_size = 0.0;
    for (int d = 0; d < kNumDims; ++d) {
        // l1 and l2 tile choices per dim.
        log_size += 2.0 * std::log10(
            static_cast<double>(ladders_[d].size()));
    }
    // Spatial dim pair and loop-order permutations (7! = 5040).
    log_size += std::log10(static_cast<double>(
        spatialChoices_.size() * spatialChoices_.size()));
    log_size += std::log10(5040.0);
    return log_size;
}

std::int64_t
MappingSpace::snapToLadder(int dim, std::int64_t v) const
{
    const auto &ladder = ladders_[dim];
    auto it = std::lower_bound(ladder.begin(), ladder.end(), v);
    if (it == ladder.end())
        return ladder.back();
    if (it != ladder.begin() && (*it - v) > (v - *(it - 1)))
        --it;
    return *it;
}

Mapping
MappingSpace::minimal() const
{
    Mapping m;
    m.l1Tile.fill(1);
    m.l2Tile.fill(1);
    m.spatialX = spatialChoices_[0];
    m.spatialY = spatialChoices_.size() > 1 ? spatialChoices_[1]
                                            : spatialChoices_[0];
    repair(m);
    assert(isValid(m));
    return m;
}

Mapping
MappingSpace::random(common::Rng &rng) const
{
    Mapping m;
    for (int d = 0; d < kNumDims; ++d) {
        m.l1Tile[d] = rng.pick(ladders_[d]);
        m.l2Tile[d] = rng.pick(ladders_[d]);
        if (m.l2Tile[d] < m.l1Tile[d])
            std::swap(m.l1Tile[d], m.l2Tile[d]);
    }
    m.spatialX = rng.pick(spatialChoices_);
    do {
        m.spatialY = rng.pick(spatialChoices_);
    } while (m.spatialY == m.spatialX && spatialChoices_.size() > 1);
    std::iota(m.order.begin(), m.order.end(), 0);
    for (std::size_t i = kNumDims - 1; i > 0; --i) {
        const std::size_t j = rng.uniformInt(i + 1);
        std::swap(m.order[i], m.order[j]);
    }
    assert(isValid(m));
    return m;
}

Mapping
MappingSpace::mutate(const Mapping &m, common::Rng &rng) const
{
    Mapping out = m;
    switch (rng.uniformInt(std::uint64_t{5})) {
      case 0: { // L1 tile step
        const int d = static_cast<int>(rng.uniformInt(
            std::uint64_t{kNumDims}));
        const auto &ladder = ladders_[d];
        auto it = std::lower_bound(ladder.begin(), ladder.end(),
                                   out.l1Tile[d]);
        std::size_t idx = static_cast<std::size_t>(it - ladder.begin());
        if (rng.bernoulli(0.5) && idx + 1 < ladder.size())
            ++idx;
        else if (idx > 0)
            --idx;
        out.l1Tile[d] = ladder[idx];
        break;
      }
      case 1: { // L2 tile step
        const int d = static_cast<int>(rng.uniformInt(
            std::uint64_t{kNumDims}));
        const auto &ladder = ladders_[d];
        auto it = std::lower_bound(ladder.begin(), ladder.end(),
                                   out.l2Tile[d]);
        std::size_t idx = static_cast<std::size_t>(it - ladder.begin());
        if (rng.bernoulli(0.5) && idx + 1 < ladder.size())
            ++idx;
        else if (idx > 0)
            --idx;
        out.l2Tile[d] = ladder[idx];
        break;
      }
      case 2: { // reassign a spatial dim
        if (rng.bernoulli(0.5))
            out.spatialX = rng.pick(spatialChoices_);
        else
            out.spatialY = rng.pick(spatialChoices_);
        break;
      }
      case 3: { // swap two loop-order slots
        const std::size_t i = rng.uniformInt(std::uint64_t{kNumDims});
        const std::size_t j = rng.uniformInt(std::uint64_t{kNumDims});
        std::swap(out.order[i], out.order[j]);
        break;
      }
      default: { // random jump on one tile dim (both levels)
        const int d = static_cast<int>(rng.uniformInt(
            std::uint64_t{kNumDims}));
        out.l1Tile[d] = rng.pick(ladders_[d]);
        out.l2Tile[d] = rng.pick(ladders_[d]);
        break;
      }
    }
    repair(out);
    assert(isValid(out));
    return out;
}

Mapping
MappingSpace::crossover(const Mapping &a, const Mapping &b,
                        common::Rng &rng) const
{
    Mapping child;
    for (int d = 0; d < kNumDims; ++d) {
        const Mapping &src = rng.bernoulli(0.5) ? a : b;
        child.l1Tile[d] = src.l1Tile[d];
        child.l2Tile[d] = src.l2Tile[d];
    }
    child.spatialX = rng.bernoulli(0.5) ? a.spatialX : b.spatialX;
    child.spatialY = rng.bernoulli(0.5) ? a.spatialY : b.spatialY;
    child.order = rng.bernoulli(0.5) ? a.order : b.order;
    repair(child);
    assert(isValid(child));
    return child;
}

bool
MappingSpace::repair(Mapping &m) const
{
    bool changed = false;
    for (int d = 0; d < kNumDims; ++d) {
        const std::int64_t l1 = snapToLadder(d, std::clamp<std::int64_t>(
            m.l1Tile[d], 1, extents_[d]));
        const std::int64_t l2 = snapToLadder(d, std::clamp<std::int64_t>(
            m.l2Tile[d], 1, extents_[d]));
        if (l1 != m.l1Tile[d] || l2 != m.l2Tile[d])
            changed = true;
        m.l1Tile[d] = std::min(l1, l2);
        m.l2Tile[d] = std::max(l1, l2);
    }
    if (m.spatialX == m.spatialY && spatialChoices_.size() > 1) {
        for (int d : spatialChoices_) {
            if (d != m.spatialX) {
                m.spatialY = d;
                changed = true;
                break;
            }
        }
    }
    // Restore a valid permutation if duplicated entries crept in.
    std::array<bool, kNumDims> seen{};
    bool perm_ok = true;
    for (int d = 0; d < kNumDims; ++d) {
        if (m.order[d] < 0 || m.order[d] >= kNumDims ||
            seen[m.order[d]]) {
            perm_ok = false;
            break;
        }
        seen[m.order[d]] = true;
    }
    if (!perm_ok) {
        std::iota(m.order.begin(), m.order.end(), 0);
        changed = true;
    }
    return changed;
}

bool
MappingSpace::isValid(const Mapping &m) const
{
    for (int d = 0; d < kNumDims; ++d) {
        if (m.l1Tile[d] < 1 || m.l1Tile[d] > m.l2Tile[d] ||
            m.l2Tile[d] > extents_[d])
            return false;
    }
    if (m.spatialX < 0 || m.spatialX >= kNumDims || m.spatialY < 0 ||
        m.spatialY >= kNumDims)
        return false;
    std::array<bool, kNumDims> seen{};
    for (int d = 0; d < kNumDims; ++d) {
        if (m.order[d] < 0 || m.order[d] >= kNumDims || seen[m.order[d]])
            return false;
        seen[m.order[d]] = true;
    }
    return true;
}

} // namespace unico::mapping
