/**
 * @file
 * Dense row-major matrix/vector types used by the Gaussian-process
 * surrogate. Sized for the small systems that appear in MOBO
 * (hundreds of rows), so clarity is preferred over blocking tricks.
 */

#ifndef UNICO_LINALG_MATRIX_HH
#define UNICO_LINALG_MATRIX_HH

#include <cassert>
#include <cstddef>
#include <vector>

namespace unico::linalg {

using Vector = std::vector<double>;

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix filled with @p fill. */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &
    operator()(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    double
    operator()(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /** Raw storage (row-major). */
    const std::vector<double> &data() const { return data_; }

    /** Matrix-vector product. */
    Vector mul(const Vector &v) const;

    /** Matrix-matrix product. */
    Matrix mul(const Matrix &other) const;

    /** Transpose. */
    Matrix transposed() const;

    /** Add c to every diagonal entry (jitter). */
    void addDiagonal(double c);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** Dot product of two equally sized vectors. */
double dot(const Vector &a, const Vector &b);

/**
 * Solve the ridge normal equations (G + ridge I) x = r for an
 * accumulated Gram matrix G = XᵀX and right-hand side r = Xᵀy.
 *
 * This is the refit primitive of the online surrogate cost model: the
 * caller accumulates G and r incrementally (one rank-1 update per
 * observed sample) and periodically asks for fresh weights. The ridge
 * term keeps the system well posed for rank-deficient corpora
 * (duplicated or constant feature columns) and for fewer samples than
 * features — including the single-sample case. If the jittered
 * Cholesky still fails, a zero vector is returned so the caller
 * degrades to predicting the bias alone, deterministically.
 */
Vector solveNormalEquations(const Matrix &gram, const Vector &rhs,
                            double ridge);

/**
 * Cholesky factorization of a symmetric positive-definite matrix.
 *
 * Stores the lower-triangular factor L with A = L Lᵀ and solves
 * linear systems by forward/back substitution. Used for GP posterior
 * computation and log-marginal-likelihood evaluation.
 */
class Cholesky
{
  public:
    /**
     * Factorize @p a. If the matrix is not positive definite, jitter
     * is added to the diagonal in increasing amounts until the
     * factorization succeeds (up to a bound); ok() reports success.
     */
    explicit Cholesky(Matrix a);

    /** True if a factorization was obtained. */
    bool ok() const { return ok_; }

    /** Solve A x = b. */
    Vector solve(const Vector &b) const;

    /** Solve L y = b (forward substitution). */
    Vector solveLower(const Vector &b) const;

    /** Sum of log of diagonal entries of L (0.5 * log det A). */
    double halfLogDet() const;

    /** Access the lower factor. */
    const Matrix &lower() const { return l_; }

  private:
    bool factorize(double jitter);

    Matrix a_;
    Matrix l_;
    bool ok_ = false;
};

} // namespace unico::linalg

#endif // UNICO_LINALG_MATRIX_HH
