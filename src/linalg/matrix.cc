#include "linalg/matrix.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace unico::linalg {

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Vector
Matrix::mul(const Vector &v) const
{
    assert(v.size() == cols_);
    Vector out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            acc += data_[r * cols_ + c] * v[c];
        out[r] = acc;
    }
    return out;
}

Matrix
Matrix::mul(const Matrix &other) const
{
    assert(cols_ == other.rows_);
    const std::size_t n = rows_;
    const std::size_t depth = cols_;
    const std::size_t m = other.cols_;
    Matrix out(n, m, 0.0);
    // Transpose B once so every dot product walks two contiguous
    // rows, and block the (r, c) loops so a tile of B-transpose stays
    // resident in cache across the whole row block.
    std::vector<double> bt(m * depth);
    for (std::size_t k = 0; k < depth; ++k)
        for (std::size_t c = 0; c < m; ++c)
            bt[c * depth + k] = other(k, c);
    constexpr std::size_t kBlock = 64;
    for (std::size_t rb = 0; rb < n; rb += kBlock) {
        const std::size_t r_end = std::min(n, rb + kBlock);
        for (std::size_t cb = 0; cb < m; cb += kBlock) {
            const std::size_t c_end = std::min(m, cb + kBlock);
            for (std::size_t r = rb; r < r_end; ++r) {
                const double *a_row = &data_[r * depth];
                for (std::size_t c = cb; c < c_end; ++c) {
                    const double *b_row = &bt[c * depth];
                    // Single k-ascending accumulator with the same
                    // zero-skip as the naive triple loop: the exact
                    // floating-point addition order is preserved, so
                    // results are bit-identical.
                    double acc = 0.0;
                    for (std::size_t k = 0; k < depth; ++k) {
                        const double a = a_row[k];
                        if (a == 0.0)
                            continue;
                        acc += a * b_row[k];
                    }
                    out(r, c) = acc;
                }
            }
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

void
Matrix::addDiagonal(double c)
{
    const std::size_t n = std::min(rows_, cols_);
    for (std::size_t i = 0; i < n; ++i)
        data_[i * cols_ + i] += c;
}

double
dot(const Vector &a, const Vector &b)
{
    assert(a.size() == b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

Vector
solveNormalEquations(const Matrix &gram, const Vector &rhs, double ridge)
{
    assert(gram.rows() == gram.cols());
    assert(rhs.size() == gram.rows());
    assert(ridge >= 0.0);
    Matrix a = gram;
    a.addDiagonal(ridge);
    const Cholesky chol(std::move(a));
    if (!chol.ok())
        return Vector(rhs.size(), 0.0);
    return chol.solve(rhs);
}

Cholesky::Cholesky(Matrix a) : a_(std::move(a))
{
    assert(a_.rows() == a_.cols());
    double jitter = 0.0;
    for (int attempt = 0; attempt < 8; ++attempt) {
        if (factorize(jitter)) {
            ok_ = true;
            return;
        }
        jitter = (jitter == 0.0) ? 1e-10 : jitter * 100.0;
        if (jitter > 1e2)
            break;
    }
}

bool
Cholesky::factorize(double jitter)
{
    const std::size_t n = a_.rows();
    l_ = Matrix(n, n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a_(j, j) + jitter;
        for (std::size_t k = 0; k < j; ++k)
            diag -= l_(j, k) * l_(j, k);
        if (!(diag > 0.0) || !std::isfinite(diag))
            return false;
        const double ljj = std::sqrt(diag);
        l_(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double acc = a_(i, j);
            for (std::size_t k = 0; k < j; ++k)
                acc -= l_(i, k) * l_(j, k);
            l_(i, j) = acc / ljj;
        }
    }
    return true;
}

Vector
Cholesky::solveLower(const Vector &b) const
{
    assert(ok_);
    const std::size_t n = l_.rows();
    assert(b.size() == n);
    Vector y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k)
            acc -= l_(i, k) * y[k];
        y[i] = acc / l_(i, i);
    }
    return y;
}

Vector
Cholesky::solve(const Vector &b) const
{
    assert(ok_);
    const std::size_t n = l_.rows();
    Vector y = solveLower(b);
    // Back substitution with Lᵀ.
    Vector x(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            acc -= l_(k, ii) * x[k];
        x[ii] = acc / l_(ii, ii);
    }
    return x;
}

double
Cholesky::halfLogDet() const
{
    assert(ok_);
    double acc = 0.0;
    for (std::size_t i = 0; i < l_.rows(); ++i)
        acc += std::log(l_(i, i));
    return acc;
}

} // namespace unico::linalg
