#include "costmodel/analytical.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "common/math.hh"
#include "common/thread_pool.hh"

namespace unico::costmodel {

using accel::Dataflow;
using accel::Ppa;
using accel::SpatialHwConfig;
using mapping::DimC;
using mapping::DimK;
using mapping::DimN;
using mapping::DimR;
using mapping::DimS;
using mapping::DimX;
using mapping::DimY;
using mapping::kNumDims;
using mapping::Mapping;
using workload::OpKind;
using workload::TensorOp;

namespace {

using Tile = std::array<std::int64_t, kNumDims>;

/** Which loop dims index each operand tensor. */
struct OperandDims
{
    std::array<bool, kNumDims> input{};
    std::array<bool, kNumDims> weight{};
    std::array<bool, kNumDims> output{};
};

OperandDims
operandDims(const TensorOp &op)
{
    OperandDims d;
    const bool depthwise = op.kind == OpKind::DepthwiseConv2D;
    // Input[n, c (or k for depthwise), y+r, x+s]
    d.input[DimN] = true;
    d.input[depthwise ? DimK : DimC] = true;
    d.input[DimY] = d.input[DimX] = true;
    d.input[DimR] = d.input[DimS] = true;
    // Weight[k, c, r, s]
    d.weight[DimK] = d.weight[DimC] = true;
    d.weight[DimR] = d.weight[DimS] = true;
    // Output[n, k, y, x]
    d.output[DimN] = d.output[DimK] = true;
    d.output[DimY] = d.output[DimX] = true;
    return d;
}

/** Bytes of the input-activation tile for given tile extents. */
double
inputTileBytes(const PreparedSpatialQuery &q, const Tile &t)
{
    const double channels = q.depthwise ? static_cast<double>(t[DimK])
                                        : static_cast<double>(t[DimC]);
    const double ih = static_cast<double>((t[DimY] - 1) * q.strideY +
                                          t[DimR]);
    const double iw = static_cast<double>((t[DimX] - 1) * q.strideX +
                                          t[DimS]);
    return 2.0 * static_cast<double>(t[DimN]) * channels * ih * iw;
}

/** Bytes of the weight tile. */
double
weightTileBytes(const Tile &t)
{
    return 2.0 * static_cast<double>(t[DimK]) *
           static_cast<double>(t[DimC]) * static_cast<double>(t[DimR]) *
           static_cast<double>(t[DimS]);
}

/** Bytes of the output tile. */
double
outputTileBytes(const Tile &t)
{
    return 2.0 * static_cast<double>(t[DimN]) *
           static_cast<double>(t[DimK]) * static_cast<double>(t[DimY]) *
           static_cast<double>(t[DimX]);
}

using common::ceilDiv;

/** SRAM access energy (pJ per 16-bit access) as a function of size. */
double
sramAccessPj(double base_pj, double slope_pj, double size_kb)
{
    return base_pj + slope_pj * std::sqrt(std::max(size_kb, 0.03125));
}

} // namespace

double
AnalyticalCostModel::areaMm2(const SpatialHwConfig &hw) const
{
    const double pes = static_cast<double>(hw.pes());
    const double pe_area = tech_.peAreaMm2 * pes;
    const double l1_area = tech_.sramMm2PerKb *
                           (static_cast<double>(hw.l1Bytes) / 1024.0) * pes;
    const double l2_area =
        tech_.sramMm2PerKb * (static_cast<double>(hw.l2Bytes) / 1024.0);
    const double noc_area = tech_.nocAreaMm2PerPeBw * pes *
                            static_cast<double>(hw.nocBandwidth);
    return pe_area + l1_area + l2_area + noc_area;
}

Ppa
AnalyticalCostModel::evaluate(const PreparedSpatialQuery &prep,
                              const Mapping &m) const
{
    const Tile &extents = prep.extents;

    // --- Structural validity -------------------------------------------
    for (int d = 0; d < kNumDims; ++d) {
        if (m.l1Tile[d] < 1 || m.l1Tile[d] > m.l2Tile[d] ||
            m.l2Tile[d] > extents[d])
            return Ppa::infeasible();
    }
    if (m.spatialX == m.spatialY)
        return Ppa::infeasible();

    const bool ws = prep.weightStationary;

    // --- L1 capacity -----------------------------------------------------
    // The stationary operand is single-buffered; streamed operands are
    // double-buffered to overlap NoC transfers with compute.
    const double in1 = inputTileBytes(prep, m.l1Tile);
    const double w1 = weightTileBytes(m.l1Tile);
    const double out1 = outputTileBytes(m.l1Tile);
    const double l1_need = ws ? (w1 + 2.0 * (in1 + out1))
                              : (out1 + 2.0 * (in1 + w1));
    if (l1_need > prep.l1Limit)
        return Ppa::infeasible();

    // --- L2 capacity -----------------------------------------------------
    const double in2 = inputTileBytes(prep, m.l2Tile);
    const double w2 = weightTileBytes(m.l2Tile);
    const double out2 = outputTileBytes(m.l2Tile);
    const double l2_need = out2 + 1.5 * (in2 + w2); // partial dbl-buffer
    if (l2_need > prep.l2Limit)
        return Ppa::infeasible();

    // --- Wave structure inside one L2 tile -------------------------------
    // The PE array consumes the L2 tile in "waves"; along the two
    // spatially unrolled dims each wave covers l1Tile * peN elements.
    Tile cov = m.l1Tile;
    cov[m.spatialX] = std::min<std::int64_t>(
        cov[m.spatialX] * prep.peX, m.l2Tile[m.spatialX]);
    cov[m.spatialY] = std::min<std::int64_t>(
        cov[m.spatialY] * prep.peY, m.l2Tile[m.spatialY]);

    // Wave and tile counts are consumed as doubles only, so divide
    // in double (common::ceilDivDouble, exact for these magnitudes):
    // FP division pipelines where 64-bit integer division does not,
    // and this loop runs once per cold evaluation.
    double waves = 1.0;
    std::array<double, kNumDims> wave_count{};
    for (int d = 0; d < kNumDims; ++d) {
        wave_count[d] = common::ceilDivDouble(m.l2Tile[d], cov[d]);
        waves *= wave_count[d];
    }

    // Average spatial utilization of the PE array.
    const double cap_x = wave_count[m.spatialX] *
                         static_cast<double>(m.l1Tile[m.spatialX]) *
                         static_cast<double>(prep.peX);
    const double cap_y = wave_count[m.spatialY] *
                         static_cast<double>(m.l1Tile[m.spatialY]) *
                         static_cast<double>(prep.peY);
    // Note: under-utilization (cov not dividing the tile) is already
    // penalized through ceil() in wave_count — partially filled waves
    // still cost a full wave of latency.
    [[maybe_unused]] const double util_x =
        static_cast<double>(m.l2Tile[m.spatialX]) / cap_x;
    [[maybe_unused]] const double util_y =
        static_cast<double>(m.l2Tile[m.spatialY]) / cap_y;
    assert(util_x <= 1.0 + 1e-9 && util_y <= 1.0 + 1e-9);

    // Compute cycles of one wave: each PE executes its L1 tile at one
    // MAC per cycle.
    double pe_tile_macs = 1.0;
    for (int d = 0; d < kNumDims; ++d)
        pe_tile_macs *= static_cast<double>(m.l1Tile[d]);

    // --- NoC traffic per wave --------------------------------------------
    // An operand is multicast along a PE axis unless the dim unrolled
    // on that axis indexes it, in which case each PE needs a distinct
    // slice.
    auto wave_bytes = [&](const std::array<bool, kNumDims> &dims,
                          double tile_bytes) {
        double copies = 1.0;
        if (dims[m.spatialX])
            copies *= static_cast<double>(prep.peX);
        if (dims[m.spatialY])
            copies *= static_cast<double>(prep.peY);
        return tile_bytes * copies;
    };
    double noc_in = wave_bytes(prep.inputDims, in1);
    double noc_w = wave_bytes(prep.weightDims, w1);
    double noc_out = wave_bytes(prep.outputDims, out1);

    // Stationarity: the stationary operand is refreshed only when a
    // wave changes its indices; amortize by the number of consecutive
    // waves that reuse it.
    double stationary_reuse = 1.0;
    for (int d = 0; d < kNumDims; ++d) {
        const auto &dims = ws ? prep.weightDims : prep.outputDims;
        if (!dims[d])
            stationary_reuse *= wave_count[d];
    }
    if (ws)
        noc_w /= std::max(stationary_reuse, 1.0);
    else
        noc_out /= std::max(stationary_reuse, 1.0);

    const double noc_bytes_per_wave = noc_in + noc_w + noc_out;
    const double noc_cycles = noc_bytes_per_wave / prep.nocBandwidth;

    // Double buffering overlaps NoC with compute; a wave costs the
    // max of the two plus a small issue overhead.
    const double wave_cycles =
        std::max(pe_tile_macs, noc_cycles) + 4.0;
    const double inner_cycles = waves * wave_cycles +
                                noc_cycles; // initial fill

    // --- DRAM traffic across L2 tiles --------------------------------
    std::array<double, kNumDims> t_count{};
    double l2_tiles = 1.0;
    for (int d = 0; d < kNumDims; ++d) {
        t_count[d] = common::ceilDivDouble(extents[d], m.l2Tile[d]);
        l2_tiles *= t_count[d];
    }

    // Loop-order reuse model: an operand tile is refetched once per
    // iteration of every loop at or outside the innermost loop that
    // indexes it.
    auto fetches = [&](const std::array<bool, kNumDims> &dims) {
        int innermost = -1;
        for (int pos = 0; pos < kNumDims; ++pos)
            if (dims[m.order[pos]])
                innermost = pos;
        double f = 1.0;
        for (int pos = 0; pos <= innermost; ++pos)
            f *= static_cast<double>(t_count[m.order[pos]]);
        return f;
    };
    const double in_fetch = fetches(prep.inputDims);
    const double w_fetch = fetches(prep.weightDims);
    const double out_fetch = fetches(prep.outputDims);

    // Reduction splits force output spill + reload (read and write).
    double reduction_tiles = 1.0;
    for (int d : {DimC, DimR, DimS})
        reduction_tiles *= static_cast<double>(t_count[d]);
    const double out_traffic_factor = reduction_tiles > 1.0 ? 2.0 : 1.0;

    const double dram_bytes = in_fetch * in2 + w_fetch * w2 +
                              out_fetch * out2 * out_traffic_factor;
    const double dram_cycles = dram_bytes / prep.dramBytesPerCycle;

    // --- Latency -------------------------------------------------------
    const double total_inner = l2_tiles * inner_cycles;
    const double cycles = std::max(total_inner, dram_cycles) +
                          dram_cycles * 0.02 + 100.0;
    const double latency_ms = cycles / (prep.clockGhz * 1e6);

    // --- Energy ----------------------------------------------------------
    // The MAC and register-miss L1 terms are mapping-independent and
    // arrive precomputed; the traffic-driven terms are per-candidate.
    const double noc_bytes_total = l2_tiles * waves * noc_bytes_per_wave;
    const double e_noc =
        noc_bytes_total * prep.nocPjPerByteHop * prep.avgHops;
    const double l2_accesses = (noc_bytes_total + dram_bytes) / 2.0;
    const double e_l2 = l2_accesses * prep.l2AccessPj;
    const double e_dram = (dram_bytes / 2.0) * prep.dramPj;
    const double energy_pj = prep.eMac + prep.eL1 + e_noc + e_l2 + e_dram;

    // --- Power and area -------------------------------------------------
    const double latency_ns = cycles / prep.clockGhz;
    // pJ / ns == mW.
    const double dynamic_mw = energy_pj / std::max(latency_ns, 1.0);

    Ppa ppa;
    ppa.latencyMs = latency_ms;
    ppa.powerMw = dynamic_mw + prep.staticMw;
    ppa.areaMm2 = prep.areaMm2;
    ppa.energyMj = energy_pj * 1e-9; // 1 mJ == 1e9 pJ
    ppa.feasible = true;
    return ppa;
}

PreparedSpatialQuery
AnalyticalCostModel::makeContext(const TensorOp &op,
                                 const SpatialHwConfig &hw) const
{
    PreparedSpatialQuery q;
    q.extents = Tile{op.n, op.k, op.c, op.y, op.x, op.r, op.s};
    const OperandDims od = operandDims(op);
    q.inputDims = od.input;
    q.weightDims = od.weight;
    q.outputDims = od.output;
    q.depthwise = op.kind == OpKind::DepthwiseConv2D;
    q.strideX = op.strideX;
    q.strideY = op.strideY;
    q.weightStationary = hw.dataflow == Dataflow::WeightStationary;
    q.peX = hw.peX;
    q.peY = hw.peY;
    q.l1Limit = static_cast<double>(hw.l1Bytes);
    q.l2Limit = static_cast<double>(hw.l2Bytes);
    q.nocBandwidth = static_cast<double>(hw.nocBandwidth);
    q.dramBytesPerCycle = tech_.dramBytesPerCycle;
    q.clockGhz = tech_.clockGhz;
    q.nocPjPerByteHop = tech_.nocPjPerByteHop;
    q.dramPj = tech_.dramPj;
    q.macs = static_cast<double>(op.macs());
    // Expression trees below replicate the historical evaluate() body
    // exactly so the hoisted terms are bit-identical to the seed.
    const double l1_kb = static_cast<double>(hw.l1Bytes) / 1024.0;
    const double l2_kb = static_cast<double>(hw.l2Bytes) / 1024.0;
    q.eMac = q.macs * tech_.macPj;
    const double l1_accesses = 3.0 * q.macs * (1.0 - tech_.registerReuse);
    q.eL1 = l1_accesses *
            sramAccessPj(tech_.l1BasePj, tech_.l1SlopePj, l1_kb);
    q.l2AccessPj = sramAccessPj(tech_.l2BasePj, tech_.l2SlopePj, l2_kb);
    q.avgHops = 0.25 * static_cast<double>(hw.peX + hw.peY) + 1.0;
    q.areaMm2 = areaMm2(hw);
    q.staticMw = tech_.staticMwPerMm2 * q.areaMm2;
    return q;
}

PreparedSpatialQuery
AnalyticalCostModel::prepare(const TensorOp &op,
                             const SpatialHwConfig &hw) const
{
    PreparedSpatialQuery q = makeContext(op, hw);
    q.context = queryFingerprint(op, hw);
    return q;
}

Ppa
AnalyticalCostModel::evaluate(const TensorOp &op, const SpatialHwConfig &hw,
                              const Mapping &m) const
{
    return evaluate(makeContext(op, hw), m);
}

Ppa
AnalyticalCostModel::evaluateCached(const PreparedSpatialQuery &prep,
                                    const mapping::Mapping &m,
                                    accel::EvalCache &cache) const
{
    const common::Fingerprint key = prep.cacheKey(m);
    if (const auto hit = cache.get(key))
        return hit->ppa;
    const Ppa ppa = evaluate(prep, m);
    accel::CachedEval entry;
    entry.ppa = ppa;
    entry.loss = ppa.feasible ? ppa.latencyMs : 1e12;
    entry.seconds = nominalEvalSeconds();
    cache.put(key, entry);
    return ppa;
}

std::vector<Ppa>
AnalyticalCostModel::evaluateBatch(const PreparedSpatialQuery &prep,
                                   const std::vector<mapping::Mapping> &ms,
                                   common::ThreadPool *pool) const
{
    std::vector<Ppa> out(ms.size());
    if (pool == nullptr || ms.size() <= 1) {
        for (std::size_t i = 0; i < ms.size(); ++i)
            out[i] = evaluate(prep, ms[i]);
        return out;
    }
    common::ThreadPool::Batch batch(*pool);
    for (std::size_t i = 0; i < ms.size(); ++i)
        batch.submit([this, &prep, &ms, &out, i] {
            out[i] = evaluate(prep, ms[i]);
        });
    batch.wait();
    return out;
}

common::Fingerprint
AnalyticalCostModel::techFingerprint(const TechParams &tech)
{
    common::FingerprintBuilder fb;
    // Model-kind salt: an analytical and a cycle-level query must
    // never share a cache entry even if other fields collide.
    fb.add(std::string_view{"A"});
    fb.add(tech.clockGhz)
        .add(tech.macPj)
        .add(tech.l1BasePj)
        .add(tech.l1SlopePj)
        .add(tech.l2BasePj)
        .add(tech.l2SlopePj)
        .add(tech.dramPj)
        .add(tech.nocPjPerByteHop)
        .add(tech.dramBytesPerCycle)
        .add(tech.peAreaMm2)
        .add(tech.sramMm2PerKb)
        .add(tech.nocAreaMm2PerPeBw)
        .add(tech.staticMwPerMm2)
        .add(tech.registerReuse);
    return fb.fingerprint();
}

common::Fingerprint
AnalyticalCostModel::queryFingerprint(const workload::TensorOp &op,
                                      const SpatialHwConfig &hw) const
{
    common::FingerprintBuilder fb;
    fb.add(techFp_).add(hw.fingerprint()).add(op.fingerprint());
    return fb.fingerprint();
}

Ppa
AnalyticalCostModel::evaluateCached(const workload::TensorOp &op,
                                    const SpatialHwConfig &hw,
                                    const mapping::Mapping &m,
                                    accel::EvalCache &cache) const
{
    const common::Fingerprint key =
        accel::evalCacheKey(queryFingerprint(op, hw), m.fingerprint());
    if (const auto hit = cache.get(key))
        return hit->ppa;
    const Ppa ppa = evaluate(op, hw, m);
    accel::CachedEval entry;
    entry.ppa = ppa;
    entry.loss = ppa.feasible ? ppa.latencyMs : 1e12;
    entry.seconds = nominalEvalSeconds();
    cache.put(key, entry);
    return ppa;
}

} // namespace unico::costmodel
