/**
 * @file
 * MAESTRO-style analytical PPA model for the 2-D spatial template.
 *
 * Given (operator, hardware configuration, software mapping) the
 * model performs a data-centric reuse analysis of the three-level
 * memory hierarchy (PE-private L1, shared L2, DRAM) connected by a
 * bandwidth-limited NoC, and returns latency, power and area.
 * Feasibility (tiles fitting buffers) is checked exactly; an
 * infeasible mapping yields Ppa::infeasible().
 *
 * The model is intentionally analytical (closed form, microsecond
 * evaluation) — it plays the role MAESTRO plays in the paper's
 * open-source platform experiments. Absolute numbers are calibrated
 * to a 28nm-class 1 GHz design but only *relative* ordering matters
 * for the co-optimization results.
 */

#ifndef UNICO_COSTMODEL_ANALYTICAL_HH
#define UNICO_COSTMODEL_ANALYTICAL_HH

#include "accel/ppa.hh"
#include "accel/spatial.hh"
#include "mapping/mapping.hh"
#include "workload/tensor_op.hh"

namespace unico::costmodel {

/** Technology constants of the analytical model. */
struct TechParams
{
    double clockGhz = 1.0;       ///< core clock
    double macPj = 0.6;          ///< energy per 16-bit MAC
    double l1BasePj = 0.25;      ///< L1 access energy at 1 KiB
    double l1SlopePj = 0.06;     ///< L1 energy growth per sqrt(KiB)
    double l2BasePj = 1.2;       ///< L2 access energy at 32 KiB
    double l2SlopePj = 0.25;     ///< L2 energy growth per sqrt(KiB)
    double dramPj = 80.0;        ///< DRAM energy per 16-bit element
    double nocPjPerByteHop = 0.04; ///< NoC energy per byte per hop
    double dramBytesPerCycle = 32.0; ///< off-chip bandwidth
    double peAreaMm2 = 0.0048;   ///< one MAC PE incl. register file
    double sramMm2PerKb = 0.0011; ///< buffer area per KiB
    double nocAreaMm2PerPeBw = 0.00002; ///< NoC area per PE per B/cyc
    double staticMwPerMm2 = 6.0; ///< leakage per mm^2
    double registerReuse = 0.45; ///< fraction of MAC operand reads
                                 ///< that hit the PE register file
};

/** Analytical PPA estimation engine for the spatial template. */
class AnalyticalCostModel
{
  public:
    explicit AnalyticalCostModel(TechParams tech = TechParams{})
        : tech_(tech), techFp_(techFingerprint(tech))
    {}

    /** Technology constants in use. */
    const TechParams &tech() const { return tech_; }

    /**
     * Estimate PPA for one operator under one mapping.
     * Returns Ppa::infeasible() when a tile violates a buffer
     * capacity or the mapping is structurally invalid for @p op.
     */
    accel::Ppa evaluate(const workload::TensorOp &op,
                        const accel::SpatialHwConfig &hw,
                        const mapping::Mapping &m) const;

    /**
     * evaluate() memoized through @p cache. The stored entry carries
     * the nominal evaluation seconds, so callers can re-charge the
     * EvalClock identically on a hit; results are bit-identical to
     * the uncached path.
     */
    accel::Ppa evaluateCached(const workload::TensorOp &op,
                              const accel::SpatialHwConfig &hw,
                              const mapping::Mapping &m,
                              accel::EvalCache &cache) const;

    /**
     * Stable fingerprint of one (model kind, tech constants, op, hw)
     * query context; combined with a mapping fingerprint it forms the
     * evaluation-cache key.
     */
    common::Fingerprint
    queryFingerprint(const workload::TensorOp &op,
                     const accel::SpatialHwConfig &hw) const;

    /** Mapping-independent area of a hardware configuration. */
    double areaMm2(const accel::SpatialHwConfig &hw) const;

    /**
     * Nominal wall-clock cost of one evaluation, charged to the
     * EvalClock ledger ("MAESTRO ... takes seconds to output PPAs").
     */
    static double nominalEvalSeconds() { return 2.0; }

  private:
    static common::Fingerprint techFingerprint(const TechParams &tech);

    TechParams tech_;
    common::Fingerprint techFp_;
};

} // namespace unico::costmodel

#endif // UNICO_COSTMODEL_ANALYTICAL_HH
