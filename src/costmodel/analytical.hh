/**
 * @file
 * MAESTRO-style analytical PPA model for the 2-D spatial template.
 *
 * Given (operator, hardware configuration, software mapping) the
 * model performs a data-centric reuse analysis of the three-level
 * memory hierarchy (PE-private L1, shared L2, DRAM) connected by a
 * bandwidth-limited NoC, and returns latency, power and area.
 * Feasibility (tiles fitting buffers) is checked exactly; an
 * infeasible mapping yields Ppa::infeasible().
 *
 * The model is intentionally analytical (closed form, microsecond
 * evaluation) — it plays the role MAESTRO plays in the paper's
 * open-source platform experiments. Absolute numbers are calibrated
 * to a 28nm-class 1 GHz design but only *relative* ordering matters
 * for the co-optimization results.
 */

#ifndef UNICO_COSTMODEL_ANALYTICAL_HH
#define UNICO_COSTMODEL_ANALYTICAL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "accel/ppa.hh"
#include "accel/spatial.hh"
#include "mapping/mapping.hh"
#include "workload/tensor_op.hh"

namespace unico::common {
class ThreadPool;
} // namespace unico::common

namespace unico::costmodel {

/** Technology constants of the analytical model. */
struct TechParams
{
    double clockGhz = 1.0;       ///< core clock
    double macPj = 0.6;          ///< energy per 16-bit MAC
    double l1BasePj = 0.25;      ///< L1 access energy at 1 KiB
    double l1SlopePj = 0.06;     ///< L1 energy growth per sqrt(KiB)
    double l2BasePj = 1.2;       ///< L2 access energy at 32 KiB
    double l2SlopePj = 0.25;     ///< L2 energy growth per sqrt(KiB)
    double dramPj = 80.0;        ///< DRAM energy per 16-bit element
    double nocPjPerByteHop = 0.04; ///< NoC energy per byte per hop
    double dramBytesPerCycle = 32.0; ///< off-chip bandwidth
    double peAreaMm2 = 0.0048;   ///< one MAC PE incl. register file
    double sramMm2PerKb = 0.0011; ///< buffer area per KiB
    double nocAreaMm2PerPeBw = 0.00002; ///< NoC area per PE per B/cyc
    double staticMwPerMm2 = 6.0; ///< leakage per mm^2
    double registerReuse = 0.45; ///< fraction of MAC operand reads
                                 ///< that hit the PE register file
};

/**
 * Candidate-invariant context of one (tech, operator, hardware)
 * query, built once per layer-run by AnalyticalCostModel::prepare()
 * and then amortized over thousands of mapping evaluations. It
 * precomputes everything evaluate() needs that does not depend on
 * the mapping: operand-dim masks, byte capacity limits, the
 * sqrt-bearing SRAM access energies, fully invariant energy terms,
 * hardware area/static power, and the query fingerprint prefix that
 * evaluateCached() previously re-hashed on every call.
 *
 * The struct is self-contained by value — it holds no references to
 * the TensorOp/SpatialHwConfig it was built from, so it may outlive
 * both. Fields are filled by the model; treat them as read-only.
 */
struct PreparedSpatialQuery
{
    std::array<std::int64_t, mapping::kNumDims> extents{};
    std::array<bool, mapping::kNumDims> inputDims{};
    std::array<bool, mapping::kNumDims> weightDims{};
    std::array<bool, mapping::kNumDims> outputDims{};
    bool depthwise = false;
    std::int64_t strideX = 1;
    std::int64_t strideY = 1;
    bool weightStationary = false;
    std::int64_t peX = 1;
    std::int64_t peY = 1;
    double l1Limit = 0.0;        ///< hw.l1Bytes as double
    double l2Limit = 0.0;        ///< hw.l2Bytes as double
    double nocBandwidth = 1.0;   ///< bytes per cycle
    double dramBytesPerCycle = 1.0;
    double clockGhz = 1.0;
    double nocPjPerByteHop = 0.0;
    double dramPj = 0.0;
    double macs = 0.0;           ///< op.macs()
    double eMac = 0.0;           ///< macs * macPj
    double eL1 = 0.0;            ///< register-miss L1 energy (invariant)
    double l2AccessPj = 0.0;     ///< sramAccessPj at the L2 size
    double avgHops = 0.0;        ///< average NoC hop count
    double areaMm2 = 0.0;        ///< mapping-independent area
    double staticMw = 0.0;       ///< leakage at that area
    /** (model kind, tech, op, hw) fingerprint prefix. */
    common::Fingerprint context{};

    /** Evaluation-cache key for one mapping under this context. */
    common::Fingerprint
    cacheKey(const mapping::Mapping &m) const
    {
        return accel::evalCacheKey(context, m.fingerprint());
    }
};

/** Analytical PPA estimation engine for the spatial template. */
class AnalyticalCostModel
{
  public:
    explicit AnalyticalCostModel(TechParams tech = TechParams{})
        : tech_(tech), techFp_(techFingerprint(tech))
    {}

    /** Technology constants in use. */
    const TechParams &tech() const { return tech_; }

    /**
     * Estimate PPA for one operator under one mapping.
     * Returns Ppa::infeasible() when a tile violates a buffer
     * capacity or the mapping is structurally invalid for @p op.
     */
    accel::Ppa evaluate(const workload::TensorOp &op,
                        const accel::SpatialHwConfig &hw,
                        const mapping::Mapping &m) const;

    /**
     * evaluate() memoized through @p cache. The stored entry carries
     * the nominal evaluation seconds, so callers can re-charge the
     * EvalClock identically on a hit; results are bit-identical to
     * the uncached path.
     */
    accel::Ppa evaluateCached(const workload::TensorOp &op,
                              const accel::SpatialHwConfig &hw,
                              const mapping::Mapping &m,
                              accel::EvalCache &cache) const;

    /**
     * Build the candidate-invariant query context for (op, hw),
     * including the cache-key fingerprint prefix. Build once per
     * layer-run, then evaluate every candidate through it.
     */
    PreparedSpatialQuery prepare(const workload::TensorOp &op,
                                 const accel::SpatialHwConfig &hw) const;

    /**
     * evaluate() through a prepared context. Bit-identical to
     * evaluate(op, hw, m) for the (op, hw) the context was built
     * from — pinned by tests — just without the per-call setup.
     */
    accel::Ppa evaluate(const PreparedSpatialQuery &prep,
                        const mapping::Mapping &m) const;

    /** evaluateCached() through a prepared context (no re-hashing of
     *  the query prefix; the stored entries are shared with the
     *  unprepared path). */
    accel::Ppa evaluateCached(const PreparedSpatialQuery &prep,
                              const mapping::Mapping &m,
                              accel::EvalCache &cache) const;

    /**
     * Evaluate a block of candidates under one prepared context.
     * Results are index-aligned with @p ms. With a non-null @p pool
     * the evaluations fan out across its workers; each evaluation is
     * a pure function of (context, mapping), so the result vector is
     * byte-identical to the serial path regardless of schedule.
     */
    std::vector<accel::Ppa>
    evaluateBatch(const PreparedSpatialQuery &prep,
                  const std::vector<mapping::Mapping> &ms,
                  common::ThreadPool *pool = nullptr) const;

    /**
     * Stable fingerprint of one (model kind, tech constants, op, hw)
     * query context; combined with a mapping fingerprint it forms the
     * evaluation-cache key.
     */
    common::Fingerprint
    queryFingerprint(const workload::TensorOp &op,
                     const accel::SpatialHwConfig &hw) const;

    /** Mapping-independent area of a hardware configuration. */
    double areaMm2(const accel::SpatialHwConfig &hw) const;

    /**
     * Nominal wall-clock cost of one evaluation, charged to the
     * EvalClock ledger ("MAESTRO ... takes seconds to output PPAs").
     */
    static double nominalEvalSeconds() { return 2.0; }

  private:
    static common::Fingerprint techFingerprint(const TechParams &tech);

    /** prepare() without the fingerprint prefix (used by the
     *  unprepared evaluate() wrapper, which never touches the cache). */
    PreparedSpatialQuery makeContext(const workload::TensorOp &op,
                                     const accel::SpatialHwConfig &hw) const;

    TechParams tech_;
    common::Fingerprint techFp_;
};

} // namespace unico::costmodel

#endif // UNICO_COSTMODEL_ANALYTICAL_HH
