#include "baselines/nsga2.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/eval_clock.hh"
#include "common/rng.hh"
#include "moo/pareto.hh"

namespace unico::baselines {

using core::CoSearchResult;
using core::HwEvalRecord;

namespace {

struct Individual
{
    accel::HwPoint hw;
    moo::Objectives y;      ///< (lat, pow, area), penalized
    std::size_t recordIdx;  ///< index into result.records
    int rank = 0;
    double crowding = 0.0;
};

moo::Objectives
penaltyObjectives()
{
    return {1e6, 1e5, 1e3};
}

/** Evaluate one individual: full-budget SW search + constraints. */
Individual
evaluate(core::CoSearchEnv &env, const accel::HwPoint &hw, int budget,
         std::uint64_t seed, int iteration, CoSearchResult &result,
         double &task_seconds)
{
    auto run = env.createRun(hw, seed);
    run->step(budget);
    task_seconds = run->chargedSeconds();

    HwEvalRecord rec;
    rec.hw = hw;
    rec.ppa = run->bestPpa();
    rec.budgetSpent = run->spent();
    rec.iteration = iteration;
    rec.constraintOk = rec.ppa.feasible &&
                       rec.ppa.powerMw <= env.powerBudgetMw() &&
                       rec.ppa.areaMm2 <= env.areaBudgetMm2();

    Individual ind;
    ind.hw = hw;
    if (rec.ppa.feasible) {
        ind.y = {rec.ppa.latencyMs, rec.ppa.powerMw, rec.ppa.areaMm2};
        // Constraint violation: heavily penalize but keep gradient.
        if (!rec.constraintOk)
            for (auto &v : ind.y)
                v *= 10.0;
    } else {
        ind.y = penaltyObjectives();
    }
    ind.recordIdx = result.records.size();
    result.records.push_back(rec);
    if (rec.constraintOk) {
        result.front.insert(
            {rec.ppa.latencyMs, rec.ppa.powerMw, rec.ppa.areaMm2},
            ind.recordIdx);
    }
    return ind;
}

/** Assign ranks and crowding to a population in place. */
void
rankPopulation(std::vector<Individual> &pop)
{
    std::vector<moo::Objectives> points;
    points.reserve(pop.size());
    for (const auto &ind : pop)
        points.push_back(ind.y);
    const auto fronts = moo::nonDominatedSort(points);
    for (std::size_t r = 0; r < fronts.size(); ++r) {
        const auto crowd = moo::crowdingDistance(points, fronts[r]);
        for (std::size_t i = 0; i < fronts[r].size(); ++i) {
            pop[fronts[r][i]].rank = static_cast<int>(r);
            pop[fronts[r][i]].crowding = crowd[i];
        }
    }
}

/** Binary tournament by (rank, crowding). */
const Individual &
tournament(const std::vector<Individual> &pop, common::Rng &rng)
{
    const Individual &a = pop[rng.uniformInt(pop.size())];
    const Individual &b = pop[rng.uniformInt(pop.size())];
    if (a.rank != b.rank)
        return a.rank < b.rank ? a : b;
    return a.crowding >= b.crowding ? a : b;
}

} // namespace

CoSearchResult
runNsga2(core::CoSearchEnv &env, const Nsga2Config &cfg)
{
    assert(cfg.population >= 2);
    Nsga2Config cfg_local = cfg;
    cfg_local.swBudget = std::max(cfg.swBudget, env.minSeedBudget());
    common::Rng rng(cfg.seed);
    common::EvalClock clock(cfg.workers);
    CoSearchResult result;
    const accel::DesignSpace &space = env.hwSpace();

    // Initial population.
    std::vector<Individual> pop;
    {
        std::vector<double> tasks;
        for (int i = 0; i < cfg.population; ++i) {
            double seconds = 0.0;
            pop.push_back(evaluate(env, space.randomPoint(rng),
                                   cfg_local.swBudget, rng.next(), 0, result,
                                   seconds));
            tasks.push_back(seconds);
        }
        clock.chargeParallel(tasks);
    }
    rankPopulation(pop);
    result.trace.push_back(
        core::TracePoint{clock.hours(), result.front.points()});

    for (int gen = 1; gen <= cfg.generations; ++gen) {
        // Offspring generation.
        std::vector<Individual> offspring;
        std::vector<double> tasks;
        for (int i = 0; i < cfg.population; ++i) {
            const Individual &pa = tournament(pop, rng);
            const Individual &pb = tournament(pop, rng);
            accel::HwPoint child =
                rng.bernoulli(cfg.crossoverProb)
                    ? space.crossover(pa.hw, pb.hw, rng)
                    : pa.hw;
            if (rng.bernoulli(cfg.mutationProb))
                child = space.neighbor(child, rng, 2);
            double seconds = 0.0;
            offspring.push_back(evaluate(env, child, cfg_local.swBudget,
                                         rng.next(), gen, result,
                                         seconds));
            tasks.push_back(seconds);
        }
        clock.chargeParallel(tasks);

        // (mu + lambda) environmental selection.
        std::vector<Individual> merged = std::move(pop);
        merged.insert(merged.end(), offspring.begin(), offspring.end());
        rankPopulation(merged);
        std::sort(merged.begin(), merged.end(),
                  [](const Individual &a, const Individual &b) {
                      if (a.rank != b.rank)
                          return a.rank < b.rank;
                      return a.crowding > b.crowding;
                  });
        merged.resize(static_cast<std::size_t>(cfg.population));
        pop = std::move(merged);

        result.trace.push_back(
            core::TracePoint{clock.hours(), result.front.points()});
    }

    result.totalHours = clock.hours();
    result.evaluations = 0;
    for (const auto &rec : result.records)
        result.evaluations += static_cast<std::uint64_t>(rec.budgetSpent);
    return result;
}

} // namespace unico::baselines
