/**
 * @file
 * NSGA-II co-search baseline (Deb et al., 2002) as used in the
 * paper's Tables 1-2 and Fig. 7: a multi-objective genetic algorithm
 * directly over hardware configurations, with a fixed full SW
 * mapping-search budget per individual.
 */

#ifndef UNICO_BASELINES_NSGA2_HH
#define UNICO_BASELINES_NSGA2_HH

#include <cstdint>
#include <string>

#include "core/driver.hh"
#include "core/env.hh"

namespace unico::baselines {

/** NSGA-II configuration. */
struct Nsga2Config
{
    std::string name = "NSGAII";
    int population = 20;     ///< mu (and lambda) population size
    int generations = 10;    ///< evolution steps after the init gen
    int swBudget = 300;      ///< SW search budget per individual
    double crossoverProb = 0.9;
    double mutationProb = 0.4;
    std::size_t workers = 8; ///< virtual worker pool for the clock
    std::uint64_t seed = 1;
};

/** Run NSGA-II co-search on @p env; result format matches the
 *  CoOptimizer driver so benches can compare traces directly. */
core::CoSearchResult runNsga2(core::CoSearchEnv &env,
                              const Nsga2Config &cfg);

} // namespace unico::baselines

#endif // UNICO_BASELINES_NSGA2_HH
