/**
 * @file
 * Pareto-dominance utilities for minimization problems:
 * incremental Pareto-front maintenance, fast non-dominated sorting
 * and crowding distance (the NSGA-II machinery).
 */

#ifndef UNICO_MOO_PARETO_HH
#define UNICO_MOO_PARETO_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace unico::moo {

/** Objective vector (all objectives minimized). */
using Objectives = std::vector<double>;

/** True if @p a Pareto-dominates @p b (<= everywhere, < somewhere). */
bool dominates(const Objectives &a, const Objectives &b);

/** A Pareto-front archive carrying an opaque payload id per point. */
class ParetoFront
{
  public:
    /** One archived non-dominated point. */
    struct Entry
    {
        Objectives objectives;
        std::uint64_t id;
    };

    /**
     * Try to insert a point. Returns true if it is non-dominated
     * w.r.t. the archive (dominated incumbents are evicted); returns
     * false and leaves the archive unchanged if it is dominated.
     * Duplicate objective vectors are kept only once.
     */
    bool insert(const Objectives &objectives, std::uint64_t id);

    /** Archived entries (unspecified order). */
    const std::vector<Entry> &entries() const { return entries_; }

    /** Number of archived points. */
    std::size_t size() const { return entries_.size(); }

    bool empty() const { return entries_.empty(); }

    /** Objective vectors only. */
    std::vector<Objectives> points() const;

    /**
     * The entry minimizing the Euclidean distance to the origin of
     * the (optionally normalized) objective space — the paper's
     * min-Euclidean-distance representative design (Sec. 4.2).
     * @param scale per-objective divisor (empty = no scaling).
     */
    const Entry &minDistanceEntry(const Objectives &scale = {}) const;

    /**
     * Replace the archive with @p entries verbatim (checkpoint
     * resume). The caller asserts they are mutually non-dominated —
     * entries saved from a valid archive always are.
     */
    void restore(std::vector<Entry> entries);

  private:
    std::vector<Entry> entries_;
};

/**
 * Fast non-dominated sort; returns fronts of indices into @p points,
 * best (rank-0) front first.
 */
std::vector<std::vector<std::size_t>>
nonDominatedSort(const std::vector<Objectives> &points);

/**
 * NSGA-II crowding distance of each member of @p front (indices into
 * @p points). Boundary points get +infinity.
 */
std::vector<double>
crowdingDistance(const std::vector<Objectives> &points,
                 const std::vector<std::size_t> &front);

} // namespace unico::moo

#endif // UNICO_MOO_PARETO_HH
