#include "moo/scalarize.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace unico::moo {

double
parego(const Objectives &y, const std::vector<double> &w, double rho)
{
    assert(y.size() == w.size());
    assert(!y.empty());
    double max_term = -std::numeric_limits<double>::infinity();
    double sum_term = 0.0;
    for (std::size_t j = 0; j < y.size(); ++j) {
        const double wy = w[j] * y[j];
        max_term = std::max(max_term, wy);
        sum_term += wy;
    }
    return max_term + rho * sum_term;
}

std::vector<double>
randomSimplexWeights(std::size_t dims, common::Rng &rng)
{
    assert(dims > 0);
    // Exponential spacings normalized to 1 give a uniform Dirichlet(1)
    // draw on the simplex.
    std::vector<double> w(dims, 0.0);
    double total = 0.0;
    for (auto &x : w) {
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        x = -std::log(u);
        total += x;
    }
    for (auto &x : w)
        x /= total;
    return w;
}

Objectives
idealPoint(const std::vector<Objectives> &points)
{
    assert(!points.empty());
    Objectives ideal = points.front();
    for (const auto &p : points)
        for (std::size_t i = 0; i < ideal.size(); ++i)
            ideal[i] = std::min(ideal[i], p[i]);
    return ideal;
}

Objectives
nadirPoint(const std::vector<Objectives> &points)
{
    assert(!points.empty());
    Objectives nadir = points.front();
    for (const auto &p : points)
        for (std::size_t i = 0; i < nadir.size(); ++i)
            nadir[i] = std::max(nadir[i], p[i]);
    return nadir;
}

Objectives
normalizeObjectives(const Objectives &y, const Objectives &ideal,
                    const Objectives &nadir)
{
    assert(y.size() == ideal.size() && y.size() == nadir.size());
    Objectives out(y.size(), 0.0);
    for (std::size_t i = 0; i < y.size(); ++i) {
        const double span = nadir[i] - ideal[i];
        out[i] = span > 0.0 ? (y[i] - ideal[i]) / span : 0.0;
    }
    return out;
}

} // namespace unico::moo
