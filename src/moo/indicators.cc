#include "moo/indicators.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace unico::moo {

namespace {

double
euclidean(const Objectives &a, const Objectives &b)
{
    assert(a.size() == b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(acc);
}

} // namespace

double
igd(const std::vector<Objectives> &approximation,
    const std::vector<Objectives> &reference)
{
    if (reference.empty())
        return 0.0;
    if (approximation.empty())
        return std::numeric_limits<double>::infinity();
    double total = 0.0;
    for (const auto &ref : reference) {
        double best = std::numeric_limits<double>::infinity();
        for (const auto &a : approximation)
            best = std::min(best, euclidean(ref, a));
        total += best;
    }
    return total / static_cast<double>(reference.size());
}

double
additiveEpsilon(const std::vector<Objectives> &approximation,
                const std::vector<Objectives> &reference)
{
    if (reference.empty())
        return 0.0;
    if (approximation.empty())
        return std::numeric_limits<double>::infinity();
    double eps = -std::numeric_limits<double>::infinity();
    for (const auto &ref : reference) {
        // Best approximation point for this reference point.
        double best = std::numeric_limits<double>::infinity();
        for (const auto &a : approximation) {
            double worst_dim = -std::numeric_limits<double>::infinity();
            for (std::size_t i = 0; i < ref.size(); ++i)
                worst_dim = std::max(worst_dim, a[i] - ref[i]);
            best = std::min(best, worst_dim);
        }
        eps = std::max(eps, best);
    }
    return eps;
}

double
spread2d(std::vector<Objectives> front)
{
    if (front.size() < 3)
        return 0.0;
    assert(front.front().size() == 2);
    std::sort(front.begin(), front.end(),
              [](const Objectives &a, const Objectives &b) {
                  return a[0] < b[0];
              });
    std::vector<double> gaps;
    gaps.reserve(front.size() - 1);
    double mean = 0.0;
    for (std::size_t i = 1; i < front.size(); ++i) {
        gaps.push_back(euclidean(front[i - 1], front[i]));
        mean += gaps.back();
    }
    mean /= static_cast<double>(gaps.size());
    if (mean <= 0.0)
        return 0.0;
    double dev = 0.0;
    for (double g : gaps)
        dev += std::abs(g - mean);
    return dev / (static_cast<double>(gaps.size()) * mean);
}

} // namespace unico::moo
