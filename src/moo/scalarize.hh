/**
 * @file
 * Scalarization helpers: objective normalization, random simplex
 * weights and the augmented-Tchebycheff ParEGO scalar of Eq. (1),
 *
 *     v_ParEGO = max_j (w_j y_j) + rho * Y^T W,    rho = 0.2,
 *
 * used both by the High Fidelity Update Rule (Sec. 3.2) and by the
 * acquisition optimization.
 */

#ifndef UNICO_MOO_SCALARIZE_HH
#define UNICO_MOO_SCALARIZE_HH

#include <vector>

#include "common/rng.hh"
#include "moo/pareto.hh"

namespace unico::moo {

/** Default augmentation coefficient of Eq. (1). */
inline constexpr double kParegoRho = 0.2;

/**
 * The ParEGO scalar of Eq. (1). @p y and @p w must have equal size
 * and @p w should lie on the probability simplex.
 */
double parego(const Objectives &y, const std::vector<double> &w,
              double rho = kParegoRho);

/** Uniform random weight vector on the @p dims-simplex. */
std::vector<double> randomSimplexWeights(std::size_t dims,
                                         common::Rng &rng);

/** Per-dimension minimum over a set of objective vectors. */
Objectives idealPoint(const std::vector<Objectives> &points);

/** Per-dimension maximum over a set of objective vectors. */
Objectives nadirPoint(const std::vector<Objectives> &points);

/**
 * Min-max normalize @p y into [0,1]^d given ideal/nadir bounds
 * (degenerate dimensions map to 0).
 */
Objectives normalizeObjectives(const Objectives &y, const Objectives &ideal,
                               const Objectives &nadir);

} // namespace unico::moo

#endif // UNICO_MOO_SCALARIZE_HH
