/**
 * @file
 * Additional multi-objective quality indicators: inverted
 * generational distance (IGD), additive epsilon indicator and front
 * spread. Complements hypervolume for quantitative comparisons in
 * the ablation benches.
 */

#ifndef UNICO_MOO_INDICATORS_HH
#define UNICO_MOO_INDICATORS_HH

#include <vector>

#include "moo/pareto.hh"

namespace unico::moo {

/**
 * Inverted generational distance: mean Euclidean distance from each
 * reference-front point to its nearest approximation point (lower is
 * better). Returns +inf if the approximation is empty.
 */
double igd(const std::vector<Objectives> &approximation,
           const std::vector<Objectives> &reference);

/**
 * Additive epsilon indicator: the smallest epsilon such that every
 * reference point is weakly dominated by some approximation point
 * shifted by epsilon (lower is better; <= 0 means the approximation
 * covers the reference). Returns +inf for an empty approximation.
 */
double additiveEpsilon(const std::vector<Objectives> &approximation,
                       const std::vector<Objectives> &reference);

/**
 * Front spread: mean pairwise-neighbor gap deviation (the NSGA-II
 * Delta metric); 0 for a perfectly even 2-objective front. Fronts
 * with fewer than 3 points return 0.
 */
double spread2d(std::vector<Objectives> front);

} // namespace unico::moo

#endif // UNICO_MOO_INDICATORS_HH
