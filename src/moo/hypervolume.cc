#include "moo/hypervolume.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace unico::moo {

namespace {

/** Keep only mutually non-dominated points that improve on ref. */
std::vector<Objectives>
filterPoints(const std::vector<Objectives> &points, const Objectives &ref)
{
    std::vector<Objectives> kept;
    for (const auto &p : points) {
        bool inside = true;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            if (p[i] >= ref[i]) {
                inside = false;
                break;
            }
        }
        if (!inside)
            continue;
        bool dominated = false;
        for (const auto &q : kept) {
            if (dominates(q, p) || q == p) {
                dominated = true;
                break;
            }
        }
        if (dominated)
            continue;
        kept.erase(std::remove_if(kept.begin(), kept.end(),
                                  [&](const Objectives &q) {
                                      return dominates(p, q);
                                  }),
                   kept.end());
        kept.push_back(p);
    }
    return kept;
}

double hvRecursive(std::vector<Objectives> points, const Objectives &ref);

/** Exact sweep for two objectives. */
double
hv2d(std::vector<Objectives> points, const Objectives &ref)
{
    std::sort(points.begin(), points.end(),
              [](const Objectives &a, const Objectives &b) {
                  return a[0] < b[0];
              });
    double volume = 0.0;
    double prev_y = ref[1];
    for (const auto &p : points) {
        if (p[1] < prev_y) {
            volume += (ref[0] - p[0]) * (prev_y - p[1]);
            prev_y = p[1];
        }
    }
    return volume;
}

/**
 * Slicing on the last objective: integrate slabs bottom-up; the slab
 * [z_i, z_{i+1}) is covered by the projection of every point whose
 * last coordinate is <= z_i.
 */
double
hvSlicing(std::vector<Objectives> points, const Objectives &ref)
{
    const std::size_t d = ref.size();
    Objectives sub_ref(ref.begin(), ref.end() - 1);
    std::sort(points.begin(), points.end(),
              [d](const Objectives &a, const Objectives &b) {
                  return a[d - 1] < b[d - 1];
              });
    double volume = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double z_lo = points[i][d - 1];
        const double z_hi =
            i + 1 < points.size() ? points[i + 1][d - 1] : ref[d - 1];
        if (z_hi <= z_lo)
            continue;
        // All points with last coordinate <= z_lo cover this slab.
        std::vector<Objectives> proj;
        for (std::size_t j = 0; j <= i; ++j)
            proj.emplace_back(points[j].begin(), points[j].end() - 1);
        volume += (z_hi - z_lo) * hvRecursive(std::move(proj), sub_ref);
    }
    return volume;
}

double
hvRecursive(std::vector<Objectives> points, const Objectives &ref)
{
    points = filterPoints(points, ref);
    if (points.empty())
        return 0.0;
    if (ref.size() == 1) {
        double best = ref[0];
        for (const auto &p : points)
            best = std::min(best, p[0]);
        return ref[0] - best;
    }
    if (ref.size() == 2)
        return hv2d(std::move(points), ref);
    return hvSlicing(std::move(points), ref);
}

} // namespace

double
hypervolume(const std::vector<Objectives> &points, const Objectives &ref)
{
    for ([[maybe_unused]] const auto &p : points)
        assert(p.size() == ref.size());
    return hvRecursive(points, ref);
}

double
hypervolumeDifference(const std::vector<Objectives> &points,
                      const Objectives &ref, const Objectives &ideal)
{
    assert(ref.size() == ideal.size());
    double box = 1.0;
    for (std::size_t i = 0; i < ref.size(); ++i)
        box *= std::max(ref[i] - ideal[i], 0.0);
    return box - hypervolume(points, ref);
}

} // namespace unico::moo
