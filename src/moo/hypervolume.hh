/**
 * @file
 * Hypervolume indicator for minimization problems.
 *
 * Hypervolume (and the hypervolume *difference* to a reference ideal)
 * is the convergence metric of Figs. 7 and 10. The implementation is
 * a WFG-style recursive slicing algorithm, exact for the 2-4
 * objective fronts that appear in the co-optimization.
 */

#ifndef UNICO_MOO_HYPERVOLUME_HH
#define UNICO_MOO_HYPERVOLUME_HH

#include <vector>

#include "moo/pareto.hh"

namespace unico::moo {

/**
 * Hypervolume dominated by @p points w.r.t. reference point @p ref
 * (minimization; points must be <= ref in every coordinate to
 * contribute; others are clipped out).
 */
double hypervolume(const std::vector<Objectives> &points,
                   const Objectives &ref);

/**
 * Hypervolume difference: HV of the box [ideal, ref] minus the HV of
 * @p points — smaller is better, reaching 0 when the front collapses
 * onto the ideal point. This is the y-axis of Fig. 7.
 */
double hypervolumeDifference(const std::vector<Objectives> &points,
                             const Objectives &ref,
                             const Objectives &ideal);

} // namespace unico::moo

#endif // UNICO_MOO_HYPERVOLUME_HH
