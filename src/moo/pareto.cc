#include "moo/pareto.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace unico::moo {

bool
dominates(const Objectives &a, const Objectives &b)
{
    assert(a.size() == b.size());
    bool strictly = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i])
            return false;
        if (a[i] < b[i])
            strictly = true;
    }
    return strictly;
}

bool
ParetoFront::insert(const Objectives &objectives, std::uint64_t id)
{
    for (const auto &e : entries_) {
        if (dominates(e.objectives, objectives) ||
            e.objectives == objectives)
            return false;
    }
    entries_.erase(
        std::remove_if(entries_.begin(), entries_.end(),
                       [&](const Entry &e) {
                           return dominates(objectives, e.objectives);
                       }),
        entries_.end());
    entries_.push_back(Entry{objectives, id});
    return true;
}

void
ParetoFront::restore(std::vector<Entry> entries)
{
    entries_ = std::move(entries);
}

std::vector<Objectives>
ParetoFront::points() const
{
    std::vector<Objectives> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.objectives);
    return out;
}

const ParetoFront::Entry &
ParetoFront::minDistanceEntry(const Objectives &scale) const
{
    assert(!entries_.empty());
    const Entry *best = &entries_.front();
    double best_dist = std::numeric_limits<double>::infinity();
    for (const auto &e : entries_) {
        double acc = 0.0;
        for (std::size_t i = 0; i < e.objectives.size(); ++i) {
            const double s =
                (i < scale.size() && scale[i] > 0.0) ? scale[i] : 1.0;
            const double v = e.objectives[i] / s;
            acc += v * v;
        }
        if (acc < best_dist) {
            best_dist = acc;
            best = &e;
        }
    }
    return *best;
}

std::vector<std::vector<std::size_t>>
nonDominatedSort(const std::vector<Objectives> &points)
{
    const std::size_t n = points.size();
    std::vector<std::vector<std::size_t>> dominated(n);
    std::vector<int> dom_count(n, 0);
    std::vector<std::vector<std::size_t>> fronts;

    std::vector<std::size_t> current;
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < n; ++q) {
            if (p == q)
                continue;
            if (dominates(points[p], points[q]))
                dominated[p].push_back(q);
            else if (dominates(points[q], points[p]))
                ++dom_count[p];
        }
        if (dom_count[p] == 0)
            current.push_back(p);
    }
    while (!current.empty()) {
        fronts.push_back(current);
        std::vector<std::size_t> next;
        for (std::size_t p : current) {
            for (std::size_t q : dominated[p]) {
                if (--dom_count[q] == 0)
                    next.push_back(q);
            }
        }
        current = std::move(next);
    }
    return fronts;
}

std::vector<double>
crowdingDistance(const std::vector<Objectives> &points,
                 const std::vector<std::size_t> &front)
{
    const std::size_t n = front.size();
    std::vector<double> dist(n, 0.0);
    if (n == 0)
        return dist;
    const std::size_t dims = points[front[0]].size();
    std::vector<std::size_t> order(n);
    for (std::size_t d = 0; d < dims; ++d) {
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return points[front[a]][d] < points[front[b]][d];
                  });
        const double lo = points[front[order.front()]][d];
        const double hi = points[front[order.back()]][d];
        dist[order.front()] = std::numeric_limits<double>::infinity();
        dist[order.back()] = std::numeric_limits<double>::infinity();
        if (hi <= lo)
            continue;
        for (std::size_t i = 1; i + 1 < n; ++i) {
            dist[order[i]] += (points[front[order[i + 1]]][d] -
                               points[front[order[i - 1]]][d]) /
                              (hi - lo);
        }
    }
    return dist;
}

} // namespace unico::moo
