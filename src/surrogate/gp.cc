#include "surrogate/gp.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <thread>
#include <utility>

#include "common/statistics.hh"
#include "common/thread_pool.hh"

namespace unico::surrogate {

namespace {

/** Worker count for a batch of independent candidate fits. */
std::size_t
resolveThreads(std::size_t threads, std::size_t jobs)
{
    if (threads == 0) {
        const unsigned hc = std::thread::hardware_concurrency();
        threads = hc > 0 ? hc : 1;
    }
    return std::min(threads, jobs);
}

} // namespace

GaussianProcess::GaussianProcess(KernelParams params) : params_(params)
{
}

void
GaussianProcess::fit(const std::vector<std::vector<double>> &x,
                     const std::vector<double> &y, std::size_t max_points)
{
    assert(x.size() == y.size());
    trained_ = false;
    if (x.empty())
        return;

    const std::size_t n = x.size();
    const std::size_t start = n > max_points ? n - max_points : 0;
    x_.assign(x.begin() + static_cast<std::ptrdiff_t>(start), x.end());
    std::vector<double> y_kept(y.begin() + static_cast<std::ptrdiff_t>(start),
                               y.end());

    yMean_ = common::mean(y_kept);
    yScale_ = common::stddev(y_kept);
    if (yScale_ <= 1e-12)
        yScale_ = 1.0;
    yStd_.resize(y_kept.size());
    for (std::size_t i = 0; i < y_kept.size(); ++i)
        yStd_[i] = (y_kept[i] - yMean_) / yScale_;

    rebuild();
}

GaussianProcess::FitResult
GaussianProcess::computeFit(const KernelParams &params) const
{
    FitResult out;
    const std::size_t n = x_.size();
    linalg::Matrix k(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            const double v = kernelValue(params, x_[i], x_[j]);
            k(i, j) = v;
            k(j, i) = v;
        }
        k(i, i) += params.noise;
    }
    out.chol = std::make_unique<linalg::Cholesky>(std::move(k));
    if (!out.chol->ok())
        return out;
    out.alpha = out.chol->solve(yStd_);
    // log p(y) = -0.5 yᵀ α - Σ log L_ii - n/2 log 2π
    double fit_term = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        fit_term += yStd_[i] * out.alpha[i];
    out.lml = -0.5 * fit_term - out.chol->halfLogDet() -
              0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
    out.ok = true;
    return out;
}

void
GaussianProcess::install(FitResult fit)
{
    chol_ = std::move(fit.chol);
    alpha_ = std::move(fit.alpha);
    lml_ = fit.lml;
    trained_ = fit.ok;
}

void
GaussianProcess::rebuild()
{
    install(computeFit(params_));
}

void
GaussianProcess::fitWithHyperopt(const std::vector<std::vector<double>> &x,
                                 const std::vector<double> &y,
                                 std::size_t max_points,
                                 std::size_t threads)
{
    params_.ardLengthscales.clear(); // isotropic grid search
    fit(x, y, max_points);
    if (!trained_ || x_.size() < 4)
        return;

    static const double lengthscales[] = {0.1, 0.2, 0.35, 0.6, 1.0};
    static const double noises[] = {1e-4, 1e-2};
    std::vector<KernelParams> grid;
    for (double l : lengthscales) {
        for (double nz : noises) {
            KernelParams p = params_;
            p.lengthscale = l;
            p.noise = nz;
            grid.push_back(p);
        }
    }
    // Candidate fits are independent; compute them concurrently and
    // then select the winner serially in grid order with a strict
    // comparison — bit-identical to the sequential loop for any
    // thread count.
    std::vector<FitResult> fits(grid.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        jobs.push_back([this, &grid, &fits, i] {
            fits[i] = computeFit(grid[i]);
        });
    common::runParallel(jobs, resolveThreads(threads, jobs.size()));

    double best_lml = lml_;
    std::size_t best_i = grid.size();
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (fits[i].ok && fits[i].lml > best_lml) {
            best_lml = fits[i].lml;
            best_i = i;
        }
    }
    // When nothing beats the initial fit, the current posterior is
    // already that fit — no rebuild needed.
    if (best_i < grid.size()) {
        params_ = grid[best_i];
        install(std::move(fits[best_i]));
    }
}

void
GaussianProcess::fitArd(const std::vector<std::vector<double>> &x,
                        const std::vector<double> &y,
                        std::size_t max_points, int passes,
                        std::size_t threads)
{
    fitWithHyperopt(x, y, max_points, threads);
    if (!trained_ || x_.empty() || x_[0].size() < 2)
        return;

    const std::size_t dims = x_[0].size();
    params_.ardLengthscales.assign(dims, params_.lengthscale);
    rebuild();
    if (!trained_)
        return;

    // Coordinate-wise LML ascent over a multiplicative ladder; each
    // dimension's candidate fits run concurrently, the winner is
    // picked serially in ladder order (strict '>').
    static const double scales[] = {0.35, 0.6, 1.0, 1.8, 3.2};
    for (int pass = 0; pass < passes; ++pass) {
        for (std::size_t d = 0; d < dims; ++d) {
            const double base = params_.ardLengthscales[d];
            std::vector<KernelParams> grid;
            for (double scale : scales) {
                if (scale == 1.0)
                    continue;
                KernelParams p = params_;
                p.ardLengthscales[d] = base * scale;
                grid.push_back(p);
            }
            std::vector<FitResult> fits(grid.size());
            std::vector<std::function<void()>> jobs;
            jobs.reserve(grid.size());
            for (std::size_t i = 0; i < grid.size(); ++i)
                jobs.push_back([this, &grid, &fits, i] {
                    fits[i] = computeFit(grid[i]);
                });
            common::runParallel(jobs, resolveThreads(threads, jobs.size()));

            double best_lml = lml_;
            std::size_t best_i = grid.size();
            for (std::size_t i = 0; i < grid.size(); ++i) {
                if (fits[i].ok && fits[i].lml > best_lml) {
                    best_lml = fits[i].lml;
                    best_i = i;
                }
            }
            if (best_i < grid.size()) {
                params_ = grid[best_i];
                install(std::move(fits[best_i]));
            }
        }
    }
}

Prediction
GaussianProcess::predict(const std::vector<double> &x) const
{
    Prediction out;
    if (!trained_) {
        out.mean = yMean_;
        out.variance = params_.variance * yScale_ * yScale_;
        if (out.variance <= 0.0)
            out.variance = 1.0;
        return out;
    }
    const std::size_t n = x_.size();
    std::vector<double> kstar(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        kstar[i] = kernelValue(params_, x, x_[i]);

    double mean_std = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        mean_std += kstar[i] * alpha_[i];

    const std::vector<double> v = chol_->solveLower(kstar);
    double explained = 0.0;
    for (double vi : v)
        explained += vi * vi;
    const double var_std = std::max(
        kernelValue(params_, x, x) - explained, 1e-12);

    out.mean = mean_std * yScale_ + yMean_;
    out.variance = var_std * yScale_ * yScale_;
    return out;
}

double
GaussianProcess::logMarginalLikelihood() const
{
    return trained_ ? lml_ : -std::numeric_limits<double>::infinity();
}

double
expectedImprovement(const Prediction &pred, double best)
{
    const double sigma = std::sqrt(std::max(pred.variance, 1e-18));
    const double z = (best - pred.mean) / sigma;
    // Standard normal pdf/cdf.
    const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
    const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
    const double ei = (best - pred.mean) * cdf + sigma * pdf;
    return std::max(ei, 0.0);
}

double
lowerConfidenceBound(const Prediction &pred, double beta)
{
    return pred.mean - beta * std::sqrt(std::max(pred.variance, 0.0));
}

} // namespace unico::surrogate
