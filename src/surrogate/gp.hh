/**
 * @file
 * Exact Gaussian-process regression — the MOBO surrogate model.
 *
 * One GP is trained per co-optimization objective (latency, power,
 * area, sensitivity); inputs are normalized hardware configurations.
 * Targets are standardized internally, observation noise is jittered
 * and hyperparameters are selected by log-marginal-likelihood grid
 * search (robust at the small sample counts of HW search).
 */

#ifndef UNICO_SURROGATE_GP_HH
#define UNICO_SURROGATE_GP_HH

#include <memory>
#include <optional>
#include <vector>

#include "linalg/matrix.hh"
#include "surrogate/kernel.hh"

namespace unico::surrogate {

/** Posterior mean/variance at a query point. */
struct Prediction
{
    double mean = 0.0;
    double variance = 1.0;
};

/** Exact GP regressor with internal target standardization. */
class GaussianProcess
{
  public:
    explicit GaussianProcess(KernelParams params = KernelParams{});

    /**
     * Fit the GP to (X, y). When @p max_points is exceeded the most
     * recent observations are kept (subset-of-data approximation),
     * bounding the O(n^3) cost.
     */
    void fit(const std::vector<std::vector<double>> &x,
             const std::vector<double> &y, std::size_t max_points = 512);

    /**
     * Fit with hyperparameter selection: grid search over
     * lengthscales/noise maximizing log marginal likelihood, then a
     * final fit at the best setting.
     *
     * Candidate fits are independent, so they run on @p threads
     * workers (0 = one per hardware thread, capped at the grid size;
     * 1 = serial). The winner is selected serially in grid order
     * with a strict comparison, so the chosen hyperparameters — and
     * the resulting posterior — are bit-identical for every thread
     * count.
     */
    void fitWithHyperopt(const std::vector<std::vector<double>> &x,
                         const std::vector<double> &y,
                         std::size_t max_points = 512,
                         std::size_t threads = 0);

    /**
     * Fit with per-dimension ARD lengthscales: starts from the
     * isotropic hyperopt optimum and runs @p passes rounds of
     * coordinate-wise log-marginal-likelihood ascent over each
     * dimension's lengthscale. Irrelevant inputs end up with long
     * lengthscales and stop influencing the posterior. Ladder
     * candidates are fitted on @p threads workers with the same
     * determinism guarantee as fitWithHyperopt().
     */
    void fitArd(const std::vector<std::vector<double>> &x,
                const std::vector<double> &y,
                std::size_t max_points = 512, int passes = 2,
                std::size_t threads = 0);

    /** True once fit() succeeded with at least one sample. */
    bool trained() const { return trained_; }

    /** Number of retained training points. */
    std::size_t size() const { return x_.size(); }

    /** Posterior prediction at @p x (prior if untrained). */
    Prediction predict(const std::vector<double> &x) const;

    /** Log marginal likelihood of the current fit. */
    double logMarginalLikelihood() const;

    /** Current kernel hyperparameters. */
    const KernelParams &params() const { return params_; }

  private:
    /** Everything a fit at one hyperparameter setting produces. */
    struct FitResult
    {
        std::unique_ptr<linalg::Cholesky> chol;
        std::vector<double> alpha;
        double lml = 0.0;
        bool ok = false;
    };

    /** Fit at @p params from the retained (x_, yStd_) data. Pure:
     *  touches no member state, safe to run concurrently. */
    FitResult computeFit(const KernelParams &params) const;

    /** Adopt a fit as the current posterior. */
    void install(FitResult fit);

    void rebuild();

    KernelParams params_;
    std::vector<std::vector<double>> x_;
    std::vector<double> yStd_;  ///< standardized targets
    double yMean_ = 0.0;
    double yScale_ = 1.0;
    std::vector<double> alpha_; ///< K^{-1} y
    std::unique_ptr<linalg::Cholesky> chol_;
    bool trained_ = false;
    double lml_ = 0.0;
};

/**
 * Expected improvement for minimization: EI(x) = E[max(best - f, 0)].
 * @param best incumbent (smallest observed value, standardized to the
 *        same scale as @p pred).
 */
double expectedImprovement(const Prediction &pred, double best);

/** Lower confidence bound mean - beta * stddev (minimization). */
double lowerConfidenceBound(const Prediction &pred, double beta);

} // namespace unico::surrogate

#endif // UNICO_SURROGATE_GP_HH
