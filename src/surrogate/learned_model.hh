/**
 * @file
 * Learned surrogate fast-path: an online ridge-regression cost model
 * that pre-screens mapping candidates so exact (analytical or
 * cycle-level) evaluations are reserved for the most promising
 * fraction.
 *
 * Grounded in Shi et al., "Learned Hardware/Software Co-Design of
 * Neural Accelerators" and DOSA's differentiable one-loop search:
 * mapping quality is largely predictable from cheap structural
 * features (tile sizes, loop orders, buffer/PE dimensions, derived
 * MACs/bytes ratios), so a model refit on the exact evaluations a run
 * has already paid for can filter out most losers before they reach
 * the expensive model.
 *
 * Determinism contract: every component here is a pure function of
 * the observation sequence — features are deterministic, the Gram
 * accumulation and Cholesky refit are bit-stable, and the admission
 * policy uses no RNG. Each per-layer screen trains only on its own
 * run-local exact evaluations, so fleet workers and threaded runs
 * make identical decisions; with screening disabled (or keep = 1.0)
 * trajectories are byte-identical to a build without this module.
 * Exact evaluations remain the sole source of truth: screened-out
 * candidates return surrogate-fidelity evals that never become
 * incumbents, samples, checkpoint state, Pareto entries or CSV rows.
 */

#ifndef UNICO_SURROGATE_LEARNED_MODEL_HH
#define UNICO_SURROGATE_LEARNED_MODEL_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "accel/ascend.hh"
#include "accel/spatial.hh"
#include "camodel/cube_mapping.hh"
#include "camodel/search.hh"
#include "common/shard_cache.hh"
#include "linalg/matrix.hh"
#include "mapping/engine.hh"
#include "mapping/mapping.hh"
#include "workload/tensor_op.hh"

namespace unico::surrogate {

/** Tuning knobs of the surrogate screening stage. */
struct SurrogateOptions
{
    /** Master switch; false is the byte-identical legacy path. */
    bool enabled = false;

    /** Fraction of candidates admitted to exact evaluation once the
     *  screen is trained; the rest are answered by the model. */
    double keep = 0.25;

    /** Exact evaluations each per-layer screen observes before it
     *  starts screening (clamped >= 1 so the always-feasible first
     *  candidate of every engine is evaluated exactly). */
    int warmup = 12;

    /** Refit cadence: weights are recomputed from the accumulated
     *  normal equations every this many observations. */
    int refitEvery = 8;

    /** Ridge regularizer of the refit solve. */
    double ridge = 1e-3;

    /** Screened-out candidates admitted unconditionally after this
     *  many consecutive rejections, so the training signal never
     *  starves even at tiny keep fractions. */
    int forceAdmitAfter = 32;

    /** Sliding window of recent predicted scores that defines the
     *  keep-quantile admission threshold. */
    int scoreWindow = 64;
};

/** Aggregated screening counters (plain snapshot, safe to copy). */
struct SurrogateStats
{
    bool enabled = false;
    double keep = 1.0;
    std::uint64_t screens = 0;      ///< per-layer screens constructed
    std::uint64_t candidates = 0;   ///< screening decisions taken
    std::uint64_t screenedOut = 0;  ///< answered by the model
    std::uint64_t admitted = 0;     ///< sent to exact evaluation
    std::uint64_t forcedAdmits = 0; ///< admits forced by starvation
    std::uint64_t observations = 0; ///< exact evals trained on
    std::uint64_t refits = 0;       ///< normal-equation refits

    /** Fraction of screening decisions answered by the model. */
    double
    screenRate() const
    {
        return candidates > 0 ? static_cast<double>(screenedOut) /
                                    static_cast<double>(candidates)
                              : 0.0;
    }
};

/** One-line digest ("surrogate: screened=... admitted=... ..."). */
std::string toString(const SurrogateStats &stats);

/** Thread-safe counter sink shared by every screen of a run. */
class SurrogateSink
{
  public:
    void noteScreen() { screens_.fetch_add(1, std::memory_order_relaxed); }
    void
    noteDecision(bool admitted, bool forced)
    {
        candidates_.fetch_add(1, std::memory_order_relaxed);
        if (admitted)
            admitted_.fetch_add(1, std::memory_order_relaxed);
        else
            screenedOut_.fetch_add(1, std::memory_order_relaxed);
        if (forced)
            forcedAdmits_.fetch_add(1, std::memory_order_relaxed);
    }
    void
    noteObservation()
    {
        observations_.fetch_add(1, std::memory_order_relaxed);
    }
    void noteRefit() { refits_.fetch_add(1, std::memory_order_relaxed); }

    /** Momentary counter snapshot (stats fields only). */
    SurrogateStats snapshot() const;

  private:
    std::atomic<std::uint64_t> screens_{0};
    std::atomic<std::uint64_t> candidates_{0};
    std::atomic<std::uint64_t> screenedOut_{0};
    std::atomic<std::uint64_t> admitted_{0};
    std::atomic<std::uint64_t> forcedAdmits_{0};
    std::atomic<std::uint64_t> observations_{0};
    std::atomic<std::uint64_t> refits_{0};
};

/**
 * Shared surrogate state of one run, owned by the caller (CLI, bench
 * or test) and passed to the backend environments like the eval
 * cache. The optional corpus tap receives every exact observation as
 * a (fingerprint, features, targets) row for offline corpus dumps.
 */
struct SurrogateContext
{
    SurrogateOptions options;
    SurrogateSink sink;
    common::CorpusTap *tap = nullptr;

    /** Options + counters folded into one reportable snapshot. */
    SurrogateStats snapshot() const;
};

/** Prediction heads of the online cost model. */
enum SurrogateHead : int {
    kHeadLogLoss = 0,
    kHeadLogLatency = 1,
    kHeadLogEnergy = 2,
    kHeadArea = 3,
    kNumHeads = 4,
};

/**
 * Incrementally refit ridge regression over kNumHeads targets.
 *
 * observe() performs a rank-1 update of the shared Gram matrix XᵀX
 * and the per-head right-hand sides Xᵀy; every refitEvery
 * observations the weights are recomputed via the jittered-Cholesky
 * normal-equation solve. All state is a pure function of the
 * observation sequence, so identical corpora yield bit-identical
 * weights regardless of wall-clock or thread schedule.
 */
class OnlineCostModel
{
  public:
    OnlineCostModel(std::size_t dim, double ridge, int refit_every);

    /** Fold one exact observation into the normal equations. */
    void observe(const linalg::Vector &features,
                 const std::array<double, kNumHeads> &targets);

    /** True once at least one refit has produced weights. */
    bool ready() const { return fitted_; }

    /** Linear prediction of @p head at @p features (0 until ready). */
    double predict(int head, const linalg::Vector &features) const;

    /** Current weights of @p head (for determinism tests). */
    const linalg::Vector &weights(int head) const { return w_[head]; }

    std::uint64_t observations() const { return observations_; }
    std::uint64_t refits() const { return refits_; }

  private:
    void refit();

    std::size_t dim_;
    double ridge_;
    int refitEvery_;
    linalg::Matrix gram_;
    std::array<linalg::Vector, kNumHeads> rhs_;
    std::array<linalg::Vector, kNumHeads> w_;
    std::uint64_t observations_ = 0;
    std::uint64_t refits_ = 0;
    bool fitted_ = false;
};

/** Exact-eval targets in head order (log-compressed PPA + loss). */
std::array<double, kNumHeads> extractTargets(const mapping::MappingEval &eval);

/**
 * Deterministic feature vector of a spatial-template candidate:
 * log2 tile sizes, one-hot spatial unroll dims, loop-order positions,
 * log2 PE/buffer/NoC dimensions and derived footprint/intensity
 * ratios, with a leading bias term.
 */
linalg::Vector extractSpatialFeatures(const workload::TensorOp &op,
                                      const accel::SpatialHwConfig &hw,
                                      const mapping::Mapping &m);

/** Feature-vector length of extractSpatialFeatures. */
std::size_t spatialFeatureDim();

/**
 * Deterministic feature vector of a cube-core candidate: log2 L1/L0
 * tiles, buffering switches, log2 buffer/cube dimensions, the lowered
 * GEMM shape and derived tile-ratio/footprint features.
 */
linalg::Vector extractCubeFeatures(const workload::TensorOp &op,
                                   const accel::CubeHwConfig &hw,
                                   const camodel::CubeMapping &m);

/** Feature-vector length of extractCubeFeatures. */
std::size_t cubeFeatureDim();

/**
 * Per-layer screen for the spatial backend, or nullptr when @p ctx is
 * null or screening is disabled (the byte-identical default). The
 * screen trains run-locally on the exact evaluations that flow
 * through it; @p context is the query-context fingerprint used to key
 * corpus-tap rows consistently with the evaluation cache.
 */
std::unique_ptr<mapping::CandidateScreen>
makeSpatialScreen(SurrogateContext *ctx, const workload::TensorOp &op,
                  const accel::SpatialHwConfig &hw,
                  common::Fingerprint context);

/** Cube-core twin of makeSpatialScreen. */
std::unique_ptr<camodel::CubeCandidateScreen>
makeCubeScreen(SurrogateContext *ctx, const workload::TensorOp &op,
               const accel::CubeHwConfig &hw, common::Fingerprint context);

} // namespace unico::surrogate

#endif // UNICO_SURROGATE_LEARNED_MODEL_HH
