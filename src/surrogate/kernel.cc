#include "surrogate/kernel.hh"

#include <cassert>
#include <cmath>

namespace unico::surrogate {

double
kernelValue(const KernelParams &params, const std::vector<double> &x,
            const std::vector<double> &z)
{
    assert(x.size() == z.size());
    // Squared scaled distance r^2 = sum ((x_i - z_i) / l_i)^2.
    const bool ard = !params.ardLengthscales.empty();
    assert(!ard || params.ardLengthscales.size() == x.size());
    double r2 = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double l = ard ? params.ardLengthscales[i]
                             : params.lengthscale;
        const double d = (x[i] - z[i]) / l;
        r2 += d * d;
    }
    switch (params.kind) {
      case KernelKind::SquaredExponential:
        return params.variance * std::exp(-0.5 * r2);
      case KernelKind::Matern52: {
        const double a = std::sqrt(5.0 * r2);
        return params.variance * (1.0 + a + 5.0 * r2 / 3.0) *
               std::exp(-a);
      }
    }
    return 0.0;
}

} // namespace unico::surrogate
