#include "surrogate/learned_model.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <sstream>
#include <utility>

namespace unico::surrogate {

namespace {

/** log2 of a positive count (0 for values <= 0). */
double
log2Count(std::int64_t v)
{
    return v > 0 ? std::log2(static_cast<double>(v)) : 0.0;
}

/** Natural log clamped away from -inf. */
double
logClamped(double v)
{
    return std::log(std::max(v, 1e-12));
}

/** log2 of a strictly positive ratio (clamped). */
double
log2Ratio(double num, double den)
{
    return std::log2(std::max(num, 1e-12) / std::max(den, 1e-12));
}

} // namespace

std::string
toString(const SurrogateStats &stats)
{
    std::ostringstream oss;
    oss << "surrogate: enabled=" << (stats.enabled ? 1 : 0)
        << " keep=" << stats.keep << " screens=" << stats.screens
        << " candidates=" << stats.candidates
        << " screened_out=" << stats.screenedOut
        << " admitted=" << stats.admitted
        << " forced_admits=" << stats.forcedAdmits
        << " observations=" << stats.observations
        << " refits=" << stats.refits
        << " screen_rate=" << stats.screenRate();
    return oss.str();
}

SurrogateStats
SurrogateSink::snapshot() const
{
    SurrogateStats s;
    s.screens = screens_.load(std::memory_order_relaxed);
    s.candidates = candidates_.load(std::memory_order_relaxed);
    s.screenedOut = screenedOut_.load(std::memory_order_relaxed);
    s.admitted = admitted_.load(std::memory_order_relaxed);
    s.forcedAdmits = forcedAdmits_.load(std::memory_order_relaxed);
    s.observations = observations_.load(std::memory_order_relaxed);
    s.refits = refits_.load(std::memory_order_relaxed);
    return s;
}

SurrogateStats
SurrogateContext::snapshot() const
{
    SurrogateStats s = sink.snapshot();
    s.enabled = options.enabled;
    s.keep = options.enabled ? options.keep : 1.0;
    return s;
}

// --- Online ridge model -------------------------------------------------

OnlineCostModel::OnlineCostModel(std::size_t dim, double ridge,
                                 int refit_every)
    : dim_(dim), ridge_(ridge), refitEvery_(std::max(refit_every, 1)),
      gram_(dim, dim, 0.0)
{
    for (int h = 0; h < kNumHeads; ++h) {
        rhs_[h] = linalg::Vector(dim_, 0.0);
        w_[h] = linalg::Vector(dim_, 0.0);
    }
}

void
OnlineCostModel::observe(const linalg::Vector &features,
                         const std::array<double, kNumHeads> &targets)
{
    assert(features.size() == dim_);
    for (std::size_t i = 0; i < dim_; ++i) {
        const double xi = features[i];
        if (xi == 0.0)
            continue;
        for (std::size_t j = 0; j < dim_; ++j)
            gram_(i, j) += xi * features[j];
        for (int h = 0; h < kNumHeads; ++h)
            rhs_[h][i] += xi * targets[h];
    }
    ++observations_;
    if (observations_ % static_cast<std::uint64_t>(refitEvery_) == 0)
        refit();
}

void
OnlineCostModel::refit()
{
    for (int h = 0; h < kNumHeads; ++h)
        w_[h] = linalg::solveNormalEquations(gram_, rhs_[h], ridge_);
    ++refits_;
    fitted_ = true;
}

double
OnlineCostModel::predict(int head, const linalg::Vector &features) const
{
    assert(head >= 0 && head < kNumHeads);
    if (!fitted_)
        return 0.0;
    return linalg::dot(w_[head], features);
}

// --- Feature extraction -------------------------------------------------

std::array<double, kNumHeads>
extractTargets(const mapping::MappingEval &eval)
{
    return {logClamped(eval.loss), logClamped(eval.ppa.latencyMs),
            logClamped(eval.ppa.energyMj), eval.ppa.areaMm2};
}

linalg::Vector
extractSpatialFeatures(const workload::TensorOp &op,
                       const accel::SpatialHwConfig &hw,
                       const mapping::Mapping &m)
{
    linalg::Vector f;
    f.reserve(spatialFeatureDim());
    f.push_back(1.0); // bias
    double l1_vol = 1.0, l2_vol = 1.0;
    for (int d = 0; d < mapping::kNumDims; ++d) {
        f.push_back(log2Count(m.l1Tile[d]));
        l1_vol *= static_cast<double>(m.l1Tile[d]);
    }
    for (int d = 0; d < mapping::kNumDims; ++d) {
        f.push_back(log2Count(m.l2Tile[d]));
        l2_vol *= static_cast<double>(m.l2Tile[d]);
    }
    for (int d = 0; d < mapping::kNumDims; ++d)
        f.push_back(m.spatialX == d ? 1.0 : 0.0);
    for (int d = 0; d < mapping::kNumDims; ++d)
        f.push_back(m.spatialY == d ? 1.0 : 0.0);
    // Loop order as normalized positions: feature d = where dim d
    // sits in the temporal order (0 = outermost).
    std::array<double, mapping::kNumDims> pos{};
    for (int i = 0; i < mapping::kNumDims; ++i)
        pos[m.order[i]] =
            static_cast<double>(i) / (mapping::kNumDims - 1);
    for (int d = 0; d < mapping::kNumDims; ++d)
        f.push_back(pos[d]);
    // Hardware dimensions.
    f.push_back(log2Count(hw.peX));
    f.push_back(log2Count(hw.peY));
    f.push_back(log2Count(hw.l1Bytes));
    f.push_back(log2Count(hw.l2Bytes));
    f.push_back(log2Count(hw.nocBandwidth));
    f.push_back(hw.dataflow == accel::Dataflow::WeightStationary ? 1.0
                                                                 : 0.0);
    // Derived reuse/footprint ratios (2-byte elements).
    f.push_back(std::log2(std::max(l1_vol, 1.0)));
    f.push_back(std::log2(std::max(l2_vol, 1.0)));
    f.push_back(log2Ratio(l2_vol, l1_vol));
    f.push_back(log2Count(m.l2Tile[m.spatialX]));
    f.push_back(log2Count(m.l2Tile[m.spatialY]));
    f.push_back(std::log2(std::max(
        static_cast<double>(op.macs()), 1.0)));
    f.push_back(logClamped(op.arithmeticIntensity()));
    f.push_back(log2Ratio(2.0 * l1_vol, static_cast<double>(hw.l1Bytes)));
    f.push_back(log2Ratio(2.0 * l2_vol, static_cast<double>(hw.l2Bytes)));
    assert(f.size() == spatialFeatureDim());
    return f;
}

std::size_t
spatialFeatureDim()
{
    return 1 + 5 * mapping::kNumDims + 6 + 9;
}

linalg::Vector
extractCubeFeatures(const workload::TensorOp &op,
                    const accel::CubeHwConfig &hw,
                    const camodel::CubeMapping &m)
{
    const camodel::GemmShape shape = camodel::GemmShape::fromOp(op);
    linalg::Vector f;
    f.reserve(cubeFeatureDim());
    f.push_back(1.0); // bias
    f.push_back(log2Count(m.m1));
    f.push_back(log2Count(m.n1));
    f.push_back(log2Count(m.k1));
    f.push_back(log2Count(m.m0));
    f.push_back(log2Count(m.n0));
    f.push_back(log2Count(m.k0));
    f.push_back(m.doubleBufferA ? 1.0 : 0.0);
    f.push_back(m.doubleBufferB ? 1.0 : 0.0);
    f.push_back(m.fuseVector ? 1.0 : 0.0);
    f.push_back(log2Count(hw.l0aBytes));
    f.push_back(log2Count(hw.l0bBytes));
    f.push_back(log2Count(hw.l0cBytes));
    f.push_back(log2Count(hw.l1Bytes));
    f.push_back(log2Count(hw.ubBytes));
    f.push_back(log2Count(hw.cubeM));
    f.push_back(log2Count(hw.cubeN));
    f.push_back(log2Count(hw.cubeK));
    f.push_back(log2Count(shape.m));
    f.push_back(log2Count(shape.n));
    f.push_back(log2Count(shape.k));
    // Derived tile hierarchy and footprint ratios (2-byte inputs,
    // 4-byte accumulators).
    f.push_back(log2Ratio(static_cast<double>(m.m1),
                          static_cast<double>(m.m0)));
    f.push_back(log2Ratio(static_cast<double>(m.n1),
                          static_cast<double>(m.n0)));
    f.push_back(log2Ratio(static_cast<double>(m.k1),
                          static_cast<double>(m.k0)));
    const double db_a = m.doubleBufferA ? 2.0 : 1.0;
    const double db_b = m.doubleBufferB ? 2.0 : 1.0;
    f.push_back(log2Ratio(2.0 * db_a * static_cast<double>(m.m0 * m.k0),
                          static_cast<double>(hw.l0aBytes)));
    f.push_back(log2Ratio(2.0 * db_b * static_cast<double>(m.k0 * m.n0),
                          static_cast<double>(hw.l0bBytes)));
    f.push_back(log2Ratio(4.0 * static_cast<double>(m.m0 * m.n0),
                          static_cast<double>(hw.l0cBytes)));
    f.push_back(log2Ratio(
        2.0 * static_cast<double>(m.m1 * m.k1 + m.k1 * m.n1),
        static_cast<double>(hw.l1Bytes)));
    f.push_back(std::log2(std::max(
        static_cast<double>(shape.m) * static_cast<double>(shape.n) *
            static_cast<double>(shape.k),
        1.0)));
    assert(f.size() == cubeFeatureDim());
    return f;
}

std::size_t
cubeFeatureDim()
{
    return 1 + 6 + 3 + 8 + 3 + 3 + 3 + 1 + 1;
}

// --- Admission policy + screens -----------------------------------------

namespace {

/**
 * Deterministic keep-quantile admission over a sliding window of
 * recent predicted scores. No RNG: the decision for candidate i is a
 * pure function of the screen's observation/decision history.
 */
class ScreenCore
{
  public:
    ScreenCore(std::size_t dim, const SurrogateOptions &opt,
               SurrogateSink *sink)
        : opt_(opt), sink_(sink),
          model_(dim, opt.ridge, opt.refitEvery),
          warmup_(std::max(opt.warmup, 1))
    {
        if (sink_ != nullptr)
            sink_->noteScreen();
    }

    /**
     * Decide whether a candidate with feature vector @p f skips the
     * exact evaluator. Returns the predicted eval when screened out.
     */
    std::optional<mapping::MappingEval>
    screen(const linalg::Vector &f)
    {
        if (!opt_.enabled)
            return std::nullopt;
        // Warmup and an untrained model always admit; so does
        // keep >= 1 (the byte-identical screening-on/no-op mode).
        if (model_.observations() <
                static_cast<std::uint64_t>(warmup_) ||
            !model_.ready() || opt_.keep >= 1.0) {
            note(true, false);
            return std::nullopt;
        }
        const double predicted_log_loss = model_.predict(kHeadLogLoss, f);
        const bool admit = admitByQuantile(predicted_log_loss);
        const bool forced = !admit && sinceAdmit_ >= opt_.forceAdmitAfter;
        pushScore(predicted_log_loss);
        if (admit || forced) {
            note(true, forced);
            return std::nullopt;
        }
        note(false, false);
        return predictedEval(f, predicted_log_loss);
    }

    /** Train on one exact evaluation. */
    void
    observe(const linalg::Vector &f, const mapping::MappingEval &eval)
    {
        if (!opt_.enabled)
            return;
        const std::uint64_t refits_before = model_.refits();
        model_.observe(f, extractTargets(eval));
        if (sink_ != nullptr) {
            sink_->noteObservation();
            if (model_.refits() != refits_before)
                sink_->noteRefit();
        }
    }

  private:
    void
    note(bool admitted, bool forced)
    {
        if (admitted)
            sinceAdmit_ = 0;
        else
            ++sinceAdmit_;
        if (sink_ != nullptr)
            sink_->noteDecision(admitted, forced);
    }

    /** True when @p score ranks inside the keep fraction of the
     *  recent-score window (always true while the window is small). */
    bool
    admitByQuantile(double score) const
    {
        if (window_.size() < 8)
            return true;
        std::size_t rank = 0;
        for (const double s : window_) {
            if (s < score)
                ++rank;
        }
        const double threshold =
            opt_.keep * static_cast<double>(window_.size());
        return static_cast<double>(rank) < threshold;
    }

    void
    pushScore(double score)
    {
        window_.push_back(score);
        while (window_.size() >
               static_cast<std::size_t>(std::max(opt_.scoreWindow, 8)))
            window_.pop_front();
    }

    mapping::MappingEval
    predictedEval(const linalg::Vector &f, double predicted_log_loss) const
    {
        mapping::MappingEval eval;
        eval.fidelity = mapping::Fidelity::Surrogate;
        eval.loss = std::exp(predicted_log_loss);
        eval.ppa.latencyMs = std::exp(model_.predict(kHeadLogLatency, f));
        eval.ppa.energyMj = std::exp(model_.predict(kHeadLogEnergy, f));
        eval.ppa.areaMm2 = model_.predict(kHeadArea, f);
        eval.ppa.powerMw = eval.ppa.latencyMs > 0.0
                               ? eval.ppa.energyMj / eval.ppa.latencyMs *
                                     1e3
                               : 0.0;
        eval.ppa.feasible = eval.loss < 1e11;
        return eval;
    }

    SurrogateOptions opt_;
    SurrogateSink *sink_;
    OnlineCostModel model_;
    int warmup_;
    int sinceAdmit_ = 0;
    std::deque<double> window_;
};

/** Spatial-backend per-layer screen. */
class SpatialLayerScreen final : public mapping::CandidateScreen
{
  public:
    SpatialLayerScreen(SurrogateContext *ctx, const workload::TensorOp &op,
                       const accel::SpatialHwConfig &hw,
                       common::Fingerprint context)
        : ctx_(ctx), op_(op), hw_(hw), context_(context),
          core_(spatialFeatureDim(), ctx->options, &ctx->sink)
    {
    }

    std::optional<mapping::MappingEval>
    screen(const mapping::Mapping &m) override
    {
        return core_.screen(extractSpatialFeatures(op_, hw_, m));
    }

    void
    observeExact(const mapping::Mapping &m,
                 const mapping::MappingEval &eval) override
    {
        const linalg::Vector f = extractSpatialFeatures(op_, hw_, m);
        core_.observe(f, eval);
        if (ctx_->tap != nullptr) {
            const auto targets = extractTargets(eval);
            ctx_->tap->append(
                {common::combine(context_, m.fingerprint()), f,
                 {targets.begin(), targets.end()}});
        }
    }

  private:
    SurrogateContext *ctx_;
    workload::TensorOp op_;
    accel::SpatialHwConfig hw_;
    common::Fingerprint context_;
    ScreenCore core_;
};

/** Cube-core per-layer screen. */
class CubeLayerScreen final : public camodel::CubeCandidateScreen
{
  public:
    CubeLayerScreen(SurrogateContext *ctx, const workload::TensorOp &op,
                    const accel::CubeHwConfig &hw,
                    common::Fingerprint context)
        : ctx_(ctx), op_(op), hw_(hw), context_(context),
          core_(cubeFeatureDim(), ctx->options, &ctx->sink)
    {
    }

    std::optional<mapping::MappingEval>
    screen(const camodel::CubeMapping &m) override
    {
        return core_.screen(extractCubeFeatures(op_, hw_, m));
    }

    void
    observeExact(const camodel::CubeMapping &m,
                 const mapping::MappingEval &eval) override
    {
        const linalg::Vector f = extractCubeFeatures(op_, hw_, m);
        core_.observe(f, eval);
        if (ctx_->tap != nullptr) {
            const auto targets = extractTargets(eval);
            ctx_->tap->append(
                {common::combine(context_, m.fingerprint()), f,
                 {targets.begin(), targets.end()}});
        }
    }

  private:
    SurrogateContext *ctx_;
    workload::TensorOp op_;
    accel::CubeHwConfig hw_;
    common::Fingerprint context_;
    ScreenCore core_;
};

} // namespace

std::unique_ptr<mapping::CandidateScreen>
makeSpatialScreen(SurrogateContext *ctx, const workload::TensorOp &op,
                  const accel::SpatialHwConfig &hw,
                  common::Fingerprint context)
{
    if (ctx == nullptr || !ctx->options.enabled)
        return nullptr;
    return std::make_unique<SpatialLayerScreen>(ctx, op, hw, context);
}

std::unique_ptr<camodel::CubeCandidateScreen>
makeCubeScreen(SurrogateContext *ctx, const workload::TensorOp &op,
               const accel::CubeHwConfig &hw, common::Fingerprint context)
{
    if (ctx == nullptr || !ctx->options.enabled)
        return nullptr;
    return std::make_unique<CubeLayerScreen>(ctx, op, hw, context);
}

} // namespace unico::surrogate
