/**
 * @file
 * Covariance kernels for the Gaussian-process surrogate.
 */

#ifndef UNICO_SURROGATE_KERNEL_HH
#define UNICO_SURROGATE_KERNEL_HH

#include <vector>

namespace unico::surrogate {

/** Kernel families supported by the GP. */
enum class KernelKind {
    SquaredExponential,
    Matern52,
};

/** Kernel hyperparameters over normalized inputs. */
struct KernelParams
{
    KernelKind kind = KernelKind::Matern52;
    double lengthscale = 0.3; ///< shared lengthscale in [0,1]^d space
    double variance = 1.0;    ///< signal variance
    double noise = 1e-4;      ///< observation noise variance
    /** Per-dimension ARD lengthscales; when non-empty they override
     *  the shared lengthscale (automatic relevance determination:
     *  large lengthscale = irrelevant input). */
    std::vector<double> ardLengthscales;
};

/** k(x, z) for the given parameters. */
double kernelValue(const KernelParams &params, const std::vector<double> &x,
                   const std::vector<double> &z);

} // namespace unico::surrogate

#endif // UNICO_SURROGATE_KERNEL_HH
