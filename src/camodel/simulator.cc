#include "camodel/simulator.hh"

#include <algorithm>
#include <cmath>

#include "common/math.hh"
#include "common/thread_pool.hh"

namespace unico::camodel {

using accel::CubeHwConfig;
using accel::Ppa;

const char *
toString(SimEvent::Kind kind)
{
    switch (kind) {
      case SimEvent::Kind::L1Fill: return "l1-fill";
      case SimEvent::Kind::L0Load: return "l0-load";
      case SimEvent::Kind::CubeExec: return "cube";
      case SimEvent::Kind::Epilogue: return "epilogue";
    }
    return "?";
}

namespace {

using common::ceilDiv;

/** Cycles to move @p bytes through an L0 bank group port array; fewer
 *  bank groups serialize accesses and add conflict stalls. */
double
l0MoveCycles(double bytes, std::int64_t banks, double port_bytes)
{
    const double bw = port_bytes * static_cast<double>(banks);
    const double base = bytes / bw;
    // Single-banked buffers suffer read/write turnaround conflicts.
    const double conflict = banks <= 1 ? 1.25 : (banks == 2 ? 1.08 : 1.0);
    return base * conflict;
}

} // namespace

double
CycleAccurateModel::areaMm2(const CubeHwConfig &hw) const
{
    const double macs = static_cast<double>(hw.cubeMacs());
    const double buffer_kb =
        static_cast<double>(hw.l0aBytes + hw.l0bBytes + hw.l0cBytes +
                            hw.l1Bytes + hw.ubBytes + hw.pbBytes +
                            hw.icacheBytes) /
        1024.0;
    return tech_.fixedAreaMm2 + macs * tech_.macAreaMm2 +
           buffer_kb * tech_.sramMm2PerKb;
}

Ppa
CycleAccurateModel::evaluate(const PreparedCubeQuery &prep,
                             const CubeMapping &m,
                             SimStats *stats_out) const
{
    const GemmShape &g = prep.g;
    SimStats st;

    // ---- Buffer feasibility ----------------------------------------
    const double a0_bytes = 2.0 * static_cast<double>(m.m0 * m.k0);
    const double b0_bytes = 2.0 * static_cast<double>(m.k0 * m.n0);
    const double c0_bytes = 4.0 * static_cast<double>(m.m0 * m.n0);
    if (a0_bytes * (m.doubleBufferA ? 2.0 : 1.0) > prep.l0aLimit)
        return Ppa::infeasible();
    if (b0_bytes * (m.doubleBufferB ? 2.0 : 1.0) > prep.l0bLimit)
        return Ppa::infeasible();
    if (c0_bytes > prep.l0cLimit)
        return Ppa::infeasible();

    const double a1_bytes = 2.0 * static_cast<double>(m.m1 * m.k1);
    const double b1_bytes = 2.0 * static_cast<double>(m.k1 * m.n1);
    const double out1_bytes = 2.0 * static_cast<double>(m.m1 * m.n1);
    // L1 always ping-pongs input tiles; unfused output also stages
    // through L1 on its way out.
    const double l1_need = 2.0 * (a1_bytes + b1_bytes) +
                           (m.fuseVector ? 0.0 : out1_bytes);
    if (l1_need > prep.l1Limit)
        return Ppa::infeasible();

    // Vector epilogue works on (m0 x n1) slabs in UB.
    const double ub_slab = 2.0 * static_cast<double>(m.m0 * m.n1);
    if (ub_slab * 2.0 > prep.ubLimit)
        return Ppa::infeasible();

    // ---- Static per-tile costs ----------------------------------------
    const double cube_issues =
        static_cast<double>(ceilDiv(m.m0, prep.cubeM)) *
        static_cast<double>(ceilDiv(m.n0, prep.cubeN)) *
        static_cast<double>(ceilDiv(m.k0, prep.cubeK));
    const double cube_cycles = cube_issues + tech_.cubePipelineDepth;
    const double load_a0 =
        l0MoveCycles(a0_bytes, prep.l0aBanks, tech_.l0PortBytesPerCycle);
    const double load_b0 =
        l0MoveCycles(b0_bytes, prep.l0bBanks, tech_.l0PortBytesPerCycle);
    const double drain_c0 =
        l0MoveCycles(c0_bytes, prep.l0cBanks, tech_.l0PortBytesPerCycle);

    // Instruction-cache model: the fused pipeline's loop body spills
    // out of a small I-cache and pays a refill per L1 tile.
    const double prog_bytes = 12.0 * 1024.0 + (m.fuseVector ? 9216.0 : 0.0)
                              + (m.doubleBufferA ? 2048.0 : 0.0)
                              + (m.doubleBufferB ? 2048.0 : 0.0);
    const double icache_miss_bytes =
        std::max(0.0, prog_bytes - prep.icacheLimit);
    const double icache_stall = icache_miss_bytes / 32.0;

    // Parameter-buffer stall: fully candidate-invariant, precomputed.
    const double pb_stall = prep.pbStall;

    // ---- Tile loop ------------------------------------------------------
    const std::int64_t tm1 = ceilDiv(g.m, m.m1);
    const std::int64_t tn1 = ceilDiv(g.n, m.n1);
    const std::int64_t tk1 = ceilDiv(g.k, m.k1);
    const std::int64_t tm0 = ceilDiv(m.m1, m.m0);
    const std::int64_t tn0 = ceilDiv(m.n1, m.n0);
    const std::int64_t tk0 = ceilDiv(m.k1, m.k0);

    const std::int64_t l1_tiles = tm1 * tn1 * tk1;
    const std::int64_t l0_per_l1 = tm0 * tn0 * tk0;

    // Steady-state extrapolation for very deep loop nests keeps the
    // simulator bounded while remaining deterministic.
    std::int64_t sim_l1_tiles = l1_tiles;
    if (l1_tiles * l0_per_l1 > tech_.maxSimulatedTiles) {
        sim_l1_tiles = std::max<std::int64_t>(
            1, tech_.maxSimulatedTiles / std::max<std::int64_t>(
                   l0_per_l1, 1));
        st.extrapolated = true;
    }

    double cycles = 0.0;
    std::int64_t simulated_l1 = 0;
    const bool tracing = tech_.traceLimit > 0;
    if (tracing) {
        // Trace mode keeps the historical per-tile double loop
        // verbatim: events carry per-tile timestamps that the hoisted
        // path below does not materialize.
        auto emit = [&](SimEvent::Kind kind, double start, double end,
                        std::int64_t tile) {
            if (st.trace.size() < tech_.traceLimit)
                st.trace.push_back(SimEvent{kind, start, end, tile});
        };
        for (std::int64_t t1 = 0; t1 < sim_l1_tiles; ++t1) {
            ++simulated_l1;
            // DRAM -> L1 fill of the A and B tiles (double buffered at
            // L1: overlapped with the previous tile's compute, so only
            // the non-overlapped residue shows up).
            const double fill_cycles =
                (a1_bytes + b1_bytes) / tech_.dramBytesPerCycle;
            emit(SimEvent::Kind::L1Fill, cycles, cycles + fill_cycles, t1);

            // Inner L0 pipeline.
            double inner = 0.0;
            double pending_load = load_a0 + load_b0; // first tile preload
            for (std::int64_t i0 = 0; i0 < l0_per_l1; ++i0) {
                const double load =
                    (m.doubleBufferA ? 0.0 : load_a0) +
                    (m.doubleBufferB ? 0.0 : load_b0);
                const double overlapped =
                    (m.doubleBufferA ? load_a0 : 0.0) +
                    (m.doubleBufferB ? load_b0 : 0.0);
                const double t0 = cycles + inner;
                emit(SimEvent::Kind::L0Load, t0,
                     t0 + load_a0 + load_b0, t1);
                emit(SimEvent::Kind::CubeExec, t0 + load,
                     t0 + load + cube_cycles, t1);
                // Ping-pong lets the next load run under the cube; the
                // tile costs max(cube, overlapped load) plus any
                // serialized (single-buffered) load.
                inner += load + std::max(cube_cycles, overlapped);
                st.cubeBusyCycles += cube_cycles;
                st.dmaBusyCycles += load_a0 + load_b0;
                ++st.l0Tiles;
            }
            inner += pending_load;

            // Accumulator drain + vector epilogue for the (m1 x n1)
            // block once the K loop completes (modeled at L1-tile
            // granularity).
            const bool last_k =
                ((t1 + 1) % std::max<std::int64_t>(tk1, 1)) == 0;
            double epilogue = 0.0;
            if (last_k) {
                const double drains = static_cast<double>(tm0 * tn0);
                const double vec_cycles =
                    static_cast<double>(m.m1) * static_cast<double>(m.n1) /
                    tech_.vecElemsPerCycle;
                const double writeback =
                    out1_bytes / tech_.dramBytesPerCycle;
                if (m.fuseVector) {
                    // Vector work overlaps the drain stream.
                    epilogue = drains * drain_c0 +
                               std::max(vec_cycles, writeback);
                } else {
                    epilogue = drains * drain_c0 + vec_cycles + writeback;
                }
                st.vecBusyCycles += vec_cycles;
            }

            const double overhead = icache_stall + pb_stall;
            // L1 double buffering: DRAM fill overlaps inner compute.
            if (epilogue > 0.0) {
                const double epi_start =
                    cycles + std::max(inner, fill_cycles);
                emit(SimEvent::Kind::Epilogue, epi_start,
                     epi_start + epilogue, t1);
            }
            cycles += std::max(inner, fill_cycles) + epilogue + overhead;
            st.dramBytes +=
                a1_bytes + b1_bytes + (last_k ? out1_bytes : 0.0);
        }
    } else {
        // Fast path: every quantity inside the historical t1 loop is
        // loop-invariant, so the inner L0 pipeline runs once instead
        // of once per L1 tile — O(l1_tiles * l0_per_l1) becomes
        // O(l1_tiles + l0_per_l1). Expression trees and accumulation
        // order are preserved so the result is bit-identical:
        //  - `inner` repeats the exact i0 add sequence the old loop
        //    recomputed (identically) for every t1;
        //  - the per-step cycle/dram addends were already evaluated
        //    independently of the accumulators, so precomputing them
        //    rounds identically;
        //  - cubeBusyCycles is integer-valued (ceilDiv products plus
        //    the pipeline depth), so block-summing is exact;
        //  - dmaBusyCycles may differ in ulps from the historical
        //    running sum; it feeds no PPA term (diagnostics only).
        const double fill_cycles =
            (a1_bytes + b1_bytes) / tech_.dramBytesPerCycle;
        const double load = (m.doubleBufferA ? 0.0 : load_a0) +
                            (m.doubleBufferB ? 0.0 : load_b0);
        const double overlapped = (m.doubleBufferA ? load_a0 : 0.0) +
                                  (m.doubleBufferB ? load_b0 : 0.0);
        double inner = 0.0;
        double block_cube = 0.0;
        double block_dma = 0.0;
        for (std::int64_t i0 = 0; i0 < l0_per_l1; ++i0) {
            inner += load + std::max(cube_cycles, overlapped);
            block_cube += cube_cycles;
            block_dma += load_a0 + load_b0;
        }
        inner += load_a0 + load_b0; // first tile preload

        const double drains = static_cast<double>(tm0 * tn0);
        const double vec_cycles = static_cast<double>(m.m1) *
                                  static_cast<double>(m.n1) /
                                  tech_.vecElemsPerCycle;
        const double writeback = out1_bytes / tech_.dramBytesPerCycle;
        const double epilogue =
            m.fuseVector
                ? drains * drain_c0 + std::max(vec_cycles, writeback)
                : drains * drain_c0 + vec_cycles + writeback;
        const double overhead = icache_stall + pb_stall;
        const double step_cycles =
            std::max(inner, fill_cycles) + 0.0 + overhead;
        const double step_cycles_k =
            std::max(inner, fill_cycles) + epilogue + overhead;
        const double step_dram = a1_bytes + b1_bytes + 0.0;
        const double step_dram_k = a1_bytes + b1_bytes + out1_bytes;
        const std::int64_t k_mod = std::max<std::int64_t>(tk1, 1);
        for (std::int64_t t1 = 0; t1 < sim_l1_tiles; ++t1) {
            ++simulated_l1;
            const bool last_k = ((t1 + 1) % k_mod) == 0;
            st.cubeBusyCycles += block_cube;
            st.dmaBusyCycles += block_dma;
            st.l0Tiles += l0_per_l1;
            if (last_k)
                st.vecBusyCycles += vec_cycles;
            cycles += last_k ? step_cycles_k : step_cycles;
            st.dramBytes += last_k ? step_dram_k : step_dram;
        }
    }
    st.l1Tiles = simulated_l1;

    if (st.extrapolated && simulated_l1 > 0) {
        const double scale = static_cast<double>(l1_tiles) /
                             static_cast<double>(simulated_l1);
        cycles *= scale;
        st.dramBytes *= scale;
        st.cubeBusyCycles *= scale;
        st.dmaBusyCycles *= scale;
        st.vecBusyCycles *= scale;
    }
    cycles += 500.0; // kernel launch / barrier overhead
    st.cycles = cycles;

    // ---- Energy ----------------------------------------------------------
    // Padding waste: cube issues operate on full cube blocks.
    const double issued_macs =
        st.cubeBusyCycles > 0.0
            ? (st.cubeBusyCycles - tech_.cubePipelineDepth *
                   static_cast<double>(st.l0Tiles)) *
                  prep.cubeMacs
            : prep.useful;
    const double work_macs = std::max(issued_macs, prep.macs);
    const double e_mac = work_macs * tech_.macPj;

    // The sqrt-scaled SRAM access energies arrive precomputed in the
    // prepared context (they depend only on buffer capacities).
    // Per cube issue: M*K reads from L0A, K*N reads from L0B and
    // M*N fp32 (double-width) accumulator read+writes on L0C.
    const double e_l0a = work_macs / static_cast<double>(prep.cubeN) *
                         prep.pjL0a;
    const double e_l0b = work_macs / static_cast<double>(prep.cubeM) *
                         prep.pjL0b;
    const double e_l0c = work_macs / static_cast<double>(prep.cubeK) *
                         4.0 * prep.pjL0c;
    const double l1_accesses = st.dramBytes; // fill + drain, 16-bit
    const double e_l1 = l1_accesses * prep.pjL1;
    const double e_ub = st.vecBusyCycles * tech_.vecElemsPerCycle * 2.0 *
                        prep.pjUb;
    const double e_dram = (st.dramBytes / 2.0) * tech_.dramPj;
    // Clock-tree / periphery burn: every cycle costs a fraction of
    // the cube's peak dynamic energy whether or not useful work
    // retires. Oversized cubes idling on DMA stalls pay for it.
    const double e_idle = prep.idlePjPerCycle * cycles;
    const double energy_pj =
        e_mac + e_l0a + e_l0b + e_l0c + e_l1 + e_ub + e_dram + e_idle;

    const double latency_ns = cycles / tech_.clockGhz;
    const double dynamic_mw = energy_pj / std::max(latency_ns, 1.0);

    Ppa ppa;
    ppa.latencyMs = cycles / (tech_.clockGhz * 1e6);
    ppa.powerMw = dynamic_mw + prep.staticMw;
    ppa.areaMm2 = prep.areaMm2;
    ppa.energyMj = energy_pj * 1e-9;
    ppa.feasible = true;
    if (stats_out)
        *stats_out = st;
    return ppa;
}

PreparedCubeQuery
CycleAccurateModel::makeContext(const workload::TensorOp &op,
                                const CubeHwConfig &hw) const
{
    PreparedCubeQuery q;
    q.g = GemmShape::fromOp(op);
    q.l0aLimit = static_cast<double>(hw.l0aBytes);
    q.l0bLimit = static_cast<double>(hw.l0bBytes);
    q.l0cLimit = static_cast<double>(hw.l0cBytes);
    q.l1Limit = static_cast<double>(hw.l1Bytes);
    q.ubLimit = static_cast<double>(hw.ubBytes);
    q.cubeM = hw.cubeM;
    q.cubeN = hw.cubeN;
    q.cubeK = hw.cubeK;
    q.l0aBanks = hw.l0aBanks;
    q.l0bBanks = hw.l0bBanks;
    q.l0cBanks = hw.l0cBanks;
    q.icacheLimit = static_cast<double>(hw.icacheBytes);
    // Expression trees below replicate the historical evaluate() body
    // exactly so the hoisted terms are bit-identical to the seed.
    const double param_bytes = 4.0 * static_cast<double>(q.g.m);
    const double pb_miss_bytes =
        std::max(0.0, param_bytes - static_cast<double>(hw.pbBytes));
    q.pbStall = pb_miss_bytes / tech_.dramBytesPerCycle;
    q.cubeMacs = static_cast<double>(hw.cubeMacs());
    q.macs = static_cast<double>(op.macs());
    q.useful = static_cast<double>(q.g.m) * static_cast<double>(q.g.n) *
               static_cast<double>(q.g.k);
    // SRAM access energy scales with sqrt(capacity); the 64 KiB
    // (L0) / 1 MiB (L1) / 256 KiB (UB) reference sizes anchor the
    // per-access constants.
    auto sram_pj = [](double base_pj, double bytes, double ref_bytes) {
        return base_pj * std::sqrt(std::max(bytes, 1024.0) / ref_bytes);
    };
    q.pjL0a = sram_pj(tech_.l0Pj, static_cast<double>(hw.l0aBytes), 65536.0);
    q.pjL0b = sram_pj(tech_.l0Pj, static_cast<double>(hw.l0bBytes), 65536.0);
    q.pjL0c = sram_pj(tech_.l0Pj, static_cast<double>(hw.l0cBytes), 65536.0);
    q.pjL1 =
        sram_pj(tech_.l1Pj, static_cast<double>(hw.l1Bytes), 1048576.0);
    q.pjUb = sram_pj(tech_.ubPj, static_cast<double>(hw.ubBytes), 262144.0);
    q.idlePjPerCycle =
        tech_.idleFraction * q.cubeMacs * tech_.macPj;
    q.areaMm2 = areaMm2(hw);
    q.staticMw = tech_.staticMwPerMm2 * q.areaMm2;
    return q;
}

PreparedCubeQuery
CycleAccurateModel::prepare(const workload::TensorOp &op,
                            const CubeHwConfig &hw) const
{
    PreparedCubeQuery q = makeContext(op, hw);
    q.context = queryFingerprint(op, hw);
    return q;
}

Ppa
CycleAccurateModel::evaluate(const workload::TensorOp &op,
                             const CubeHwConfig &hw, const CubeMapping &m,
                             SimStats *stats_out) const
{
    return evaluate(makeContext(op, hw), m, stats_out);
}

double
CycleAccurateModel::nominalEvalSeconds(const SimStats &stats) const
{
    // 2 minutes floor, growing with simulated detail up to 10 minutes
    // (matches the paper's reported 2-10 min CAModel wall-clock).
    const double detail =
        static_cast<double>(stats.l0Tiles) / 1000.0;
    return std::min(600.0, 120.0 + detail);
}

common::Fingerprint
CycleAccurateModel::techFingerprint(const CubeTech &tech)
{
    common::FingerprintBuilder fb;
    // Model-kind salt: cycle-level entries never collide with
    // analytical ones. traceLimit is deliberately excluded — it only
    // affects the (uncached) trace, not PPA or charged seconds.
    fb.add(std::string_view{"C"});
    fb.add(tech.clockGhz)
        .add(tech.dramBytesPerCycle)
        .add(tech.l1BytesPerCycle)
        .add(tech.l0PortBytesPerCycle)
        .add(tech.vecElemsPerCycle)
        .add(tech.cubePipelineDepth)
        .add(tech.macPj)
        .add(tech.l0Pj)
        .add(tech.l1Pj)
        .add(tech.ubPj)
        .add(tech.dramPj)
        .add(tech.idleFraction)
        .add(tech.macAreaMm2)
        .add(tech.sramMm2PerKb)
        .add(tech.fixedAreaMm2)
        .add(tech.staticMwPerMm2)
        .add(tech.maxSimulatedTiles);
    return fb.fingerprint();
}

common::Fingerprint
CycleAccurateModel::queryFingerprint(const workload::TensorOp &op,
                                     const accel::CubeHwConfig &hw) const
{
    common::FingerprintBuilder fb;
    fb.add(techFp_).add(hw.fingerprint()).add(op.fingerprint());
    return fb.fingerprint();
}

accel::Ppa
CycleAccurateModel::evaluateCached(const workload::TensorOp &op,
                                   const accel::CubeHwConfig &hw,
                                   const CubeMapping &m,
                                   accel::EvalCache &cache,
                                   double *seconds_out,
                                   double fixed_seconds) const
{
    const common::Fingerprint key =
        accel::evalCacheKey(queryFingerprint(op, hw), m.fingerprint());
    if (const auto hit = cache.get(key)) {
        if (seconds_out)
            *seconds_out = hit->seconds;
        return hit->ppa;
    }
    SimStats stats;
    const accel::Ppa ppa = evaluate(op, hw, m, &stats);
    const double seconds =
        fixed_seconds >= 0.0 ? fixed_seconds : nominalEvalSeconds(stats);
    accel::CachedEval entry;
    entry.ppa = ppa;
    entry.loss = ppa.feasible ? ppa.latencyMs : 1e12;
    entry.seconds = seconds;
    cache.put(key, entry);
    if (seconds_out)
        *seconds_out = seconds;
    return ppa;
}

accel::Ppa
CycleAccurateModel::evaluateCached(const PreparedCubeQuery &prep,
                                   const CubeMapping &m,
                                   accel::EvalCache &cache,
                                   double *seconds_out,
                                   double fixed_seconds) const
{
    const common::Fingerprint key = prep.cacheKey(m);
    if (const auto hit = cache.get(key)) {
        if (seconds_out)
            *seconds_out = hit->seconds;
        return hit->ppa;
    }
    SimStats stats;
    const accel::Ppa ppa = evaluate(prep, m, &stats);
    const double seconds =
        fixed_seconds >= 0.0 ? fixed_seconds : nominalEvalSeconds(stats);
    accel::CachedEval entry;
    entry.ppa = ppa;
    entry.loss = ppa.feasible ? ppa.latencyMs : 1e12;
    entry.seconds = seconds;
    cache.put(key, entry);
    if (seconds_out)
        *seconds_out = seconds;
    return ppa;
}

std::vector<accel::Ppa>
CycleAccurateModel::evaluateBatch(const PreparedCubeQuery &prep,
                                  const std::vector<CubeMapping> &ms,
                                  common::ThreadPool *pool) const
{
    std::vector<accel::Ppa> out(ms.size());
    if (pool == nullptr || ms.size() <= 1) {
        for (std::size_t i = 0; i < ms.size(); ++i)
            out[i] = evaluate(prep, ms[i]);
        return out;
    }
    common::ThreadPool::Batch batch(*pool);
    for (std::size_t i = 0; i < ms.size(); ++i)
        batch.submit([this, &prep, &ms, &out, i] {
            out[i] = evaluate(prep, ms[i]);
        });
    batch.wait();
    return out;
}

CycleAccurateModel
CycleAccurateModel::degraded() const
{
    CubeTech coarse = tech_;
    coarse.maxSimulatedTiles = 512;
    coarse.traceLimit = 0;
    return CycleAccurateModel(coarse);
}

} // namespace unico::camodel
