/**
 * @file
 * Budgeted depth-first buffer-fusion mapping search for the
 * Ascend-like core (the role played by the in-house mapping tool of
 * Sec. 4.1). The run is resumable with the same semantics as
 * mapping::SearchRun so successive halving can grow its budget.
 */

#ifndef UNICO_CAMODEL_SEARCH_HH
#define UNICO_CAMODEL_SEARCH_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "accel/ppa.hh"
#include "camodel/cube_mapping.hh"
#include "common/rng.hh"
#include "mapping/engine.hh"

namespace unico::camodel {

/** Evaluation callback: cube mapping -> (ppa, loss). */
using CubeEvaluator =
    std::function<mapping::MappingEval(const CubeMapping &)>;

/**
 * Cube-side candidate pre-screen (see mapping::CandidateScreen for
 * the contract; this is the CubeMapping-typed twin, declared here so
 * camodel needs no dependency on the surrogate library).
 */
class CubeCandidateScreen
{
  public:
    virtual ~CubeCandidateScreen() = default;

    /** Surrogate prediction to skip exact evaluation, or nullopt. */
    virtual std::optional<mapping::MappingEval>
    screen(const CubeMapping &m) = 0;

    /** Feed one exact evaluation back as training signal. */
    virtual void observeExact(const CubeMapping &m,
                              const mapping::MappingEval &eval) = 0;
};

/**
 * Wrap @p inner with learned-model pre-screening; nullptr @p screen
 * returns @p inner unchanged. Same layering contract as the spatial
 * mapping::screeningEvaluator: above the cache, exact evals train
 * the screen, screened-out candidates are surrogate-fidelity.
 */
CubeEvaluator screeningEvaluator(CubeCandidateScreen *screen,
                                 CubeEvaluator inner);

/**
 * Batched cube evaluation: one candidate block in, index-aligned
 * evaluations out, byte-identical to calling the single-candidate
 * evaluator per element in index order (the same determinism contract
 * as mapping::BatchMappingEvaluator).
 */
using CubeBatchEvaluator = std::function<std::vector<mapping::MappingEval>(
    const std::vector<CubeMapping> &)>;

/** Trivial batch adapter: @p inner called per element in index order. */
CubeBatchEvaluator serialBatch(CubeEvaluator inner);

/**
 * Batched counterpart of the cube screeningEvaluator. An active
 * screen is stateful, so with @p screen non-null the block runs
 * strictly serially through @p one (the evaluator below the screen);
 * with @p screen == nullptr the pass-through @p batch is returned.
 */
CubeBatchEvaluator screeningBatchEvaluator(CubeCandidateScreen *screen,
                                           CubeEvaluator one,
                                           CubeBatchEvaluator batch);

/**
 * Resumable cube-mapping search.
 *
 * The strategy mirrors a depth-first fusion search: it starts from a
 * fusion-friendly seed, then refines tile sizes greedily depth-first
 * (L1 tiles before L0 tiles), falling back to stochastic restarts
 * when a branch is exhausted.
 *
 * Every candidate after the seed is generated from the incumbent's
 * evaluation (greedy descent with backtrack), so — unlike the spatial
 * engines' sampling/seeding phases — there is no evaluation-
 * independent block to fan out: the run takes no CubeBatchEvaluator
 * and always evaluates serially.
 */
class CubeSearchRun
{
  public:
    CubeSearchRun(const CubeMappingSpace &space, CubeEvaluator evaluator,
                  std::uint64_t seed);

    /** Spend @p evals more evaluations. */
    void step(int evals);

    /** Total evaluations spent. */
    int spent() const { return static_cast<int>(bestLoss_.size()); }

    /** Best mapping found so far. */
    const CubeMapping &best() const { return bestMapping_; }

    /** Evaluation of the best mapping. */
    const mapping::MappingEval &bestEval() const { return bestEval_; }

    /** Best-so-far loss after each evaluation (monotone). */
    const std::vector<double> &
    bestLossHistory() const
    {
        return bestLoss_;
    }

    /** Every raw sample (for the robustness metric). */
    const std::vector<mapping::SamplePoint> &
    samples() const
    {
        return samples_;
    }

  private:
    void record(const CubeMapping &m, const mapping::MappingEval &eval);

    const CubeMappingSpace &space_;
    CubeEvaluator evaluator_;
    common::Rng rng_;
    CubeMapping current_;
    mapping::MappingEval currentEval_;
    bool initialized_ = false;
    int sinceImprove_ = 0;

    CubeMapping bestMapping_;
    mapping::MappingEval bestEval_;
    std::vector<double> bestLoss_;
    std::vector<mapping::SamplePoint> samples_;
};

} // namespace unico::camodel

#endif // UNICO_CAMODEL_SEARCH_HH
