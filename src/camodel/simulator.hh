/**
 * @file
 * Cycle-level simulator of the Ascend-like (DaVinci-style) cube core.
 *
 * This is the reproduction's stand-in for the proprietary
 * cycle-accurate model (CAModel) of Sec. 4.1: a tile-by-tile pipeline
 * simulation of DMA engines, the L0A/L0B/L0C staging buffers with
 * bank groups, the MxNxK cube unit and the vector epilogue through
 * the unified buffer. It is orders of magnitude slower than the
 * analytical model — per the paper, each query also charges minutes
 * of virtual search time to the EvalClock ledger.
 */

#ifndef UNICO_CAMODEL_SIMULATOR_HH
#define UNICO_CAMODEL_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "accel/ascend.hh"
#include "accel/ppa.hh"
#include "camodel/cube_mapping.hh"
#include "workload/tensor_op.hh"

namespace unico::common {
class ThreadPool;
} // namespace unico::common

namespace unico::camodel {

/** One timeline event of the tile pipeline (trace mode). */
struct SimEvent
{
    enum class Kind {
        L1Fill,       ///< DRAM -> L1 DMA of the A/B tiles
        L0Load,       ///< L1 -> L0A/L0B staging
        CubeExec,     ///< cube compute burst for one L0 tile
        Epilogue,     ///< L0C drain + vector + writeback
    };
    Kind kind;
    double startCycle;
    double endCycle;
    std::int64_t l1Tile; ///< owning L1-tile index
};

/** Human-readable event-kind name. */
const char *toString(SimEvent::Kind kind);

/** Per-run counters exposed for tests and analysis. */
struct SimStats
{
    double cycles = 0.0;         ///< total simulated cycles
    double cubeBusyCycles = 0.0; ///< cycles the cube had work
    double dmaBusyCycles = 0.0;  ///< cycles DMA engines were busy
    double vecBusyCycles = 0.0;  ///< cycles of vector epilogue
    double dramBytes = 0.0;      ///< off-chip traffic
    std::int64_t l0Tiles = 0;    ///< inner-tile iterations simulated
    std::int64_t l1Tiles = 0;    ///< L1-tile iterations simulated
    bool extrapolated = false;   ///< steady-state extrapolation used
    /** Timeline events; populated only when the model's traceLimit
     *  is non-zero, and capped at that many events. */
    std::vector<SimEvent> trace;
};

/** Technology constants of the cycle-level model. */
struct CubeTech
{
    double clockGhz = 1.0;
    double dramBytesPerCycle = 64.0;
    double l1BytesPerCycle = 128.0;       ///< L1 -> L0 move bandwidth
    double l0PortBytesPerCycle = 32.0;    ///< per L0 bank group
    double vecElemsPerCycle = 128.0;      ///< vector unit throughput
    double cubePipelineDepth = 6.0;       ///< issue-to-writeback
    double macPj = 0.8;                   ///< int16 MAC + fp32 accum
    /** Per 16-bit L0 access at the 64 KiB reference size; actual
     *  access energy scales with sqrt(capacity / 64 KiB), which is
     *  what makes the L0A/L0B/L0C capacity split a first-order
     *  power knob (Sec. 4.6). */
    double l0Pj = 1.2;
    double l1Pj = 2.4;                    ///< per 16-bit L1 access @1MiB
    double ubPj = 1.2;                    ///< per 16-bit UB access @256K
    double dramPj = 60.0;                 ///< per 16-bit DRAM access
    /** Clock-tree / periphery burn per cycle, as a fraction of the
     *  cube's peak dynamic energy (imperfect clock gating): stalled
     *  cycles still cost energy, so removing stalls saves power —
     *  the effect behind Fig. 11's joint latency+power wins. */
    double idleFraction = 0.3;
    double macAreaMm2 = 0.0026;           ///< per cube MAC
    double sramMm2PerKb = 0.00036;        ///< buffer area
    double fixedAreaMm2 = 6.0;            ///< scalar/vector/ctrl area
    double staticMwPerMm2 = 5.0;
    /** Iteration cap before steady-state extrapolation kicks in. */
    std::int64_t maxSimulatedTiles = 250000;
    /** Maximum timeline events recorded into SimStats::trace
     *  (0 disables tracing; tracing is for debugging/analysis). */
    std::size_t traceLimit = 0;
};

/**
 * Candidate-invariant context of one (tech, operator, hardware)
 * query, built once per layer-run by CycleAccurateModel::prepare()
 * and amortized over every mapping candidate of that layer. It
 * precomputes the GemmShape, buffer byte limits, the parameter-buffer
 * stall (fully mapping-independent), the five sqrt-bearing SRAM
 * access energies, idle/area/static-power constants, and the query
 * fingerprint prefix that evaluateCached() previously re-hashed per
 * call.
 *
 * Self-contained by value (no references into the TensorOp or
 * CubeHwConfig it came from), but only meaningful with the model
 * whose prepare() built it: the model's remaining tech constants are
 * read at evaluation time, and the fingerprint prefix encodes that
 * tech. Fields are filled by the model; treat them as read-only.
 */
struct PreparedCubeQuery
{
    GemmShape g{};
    double l0aLimit = 0.0;
    double l0bLimit = 0.0;
    double l0cLimit = 0.0;
    double l1Limit = 0.0;
    double ubLimit = 0.0;
    std::int64_t cubeM = 1;
    std::int64_t cubeN = 1;
    std::int64_t cubeK = 1;
    std::int64_t l0aBanks = 1;
    std::int64_t l0bBanks = 1;
    std::int64_t l0cBanks = 1;
    double icacheLimit = 0.0;    ///< hw.icacheBytes as double
    double pbStall = 0.0;        ///< parameter-buffer stall (invariant)
    double cubeMacs = 1.0;       ///< hw.cubeMacs() as double
    double macs = 0.0;           ///< op.macs()
    double useful = 0.0;         ///< g.m * g.n * g.k
    double pjL0a = 0.0;          ///< sqrt-scaled L0A access energy
    double pjL0b = 0.0;
    double pjL0c = 0.0;
    double pjL1 = 0.0;
    double pjUb = 0.0;
    double idlePjPerCycle = 0.0; ///< idleFraction * cubeMacs * macPj
    double areaMm2 = 0.0;        ///< mapping-independent core area
    double staticMw = 0.0;       ///< leakage at that area
    /** (model kind, tech, op, hw) fingerprint prefix. */
    common::Fingerprint context{};

    /** Evaluation-cache key for one mapping under this context. */
    common::Fingerprint
    cacheKey(const CubeMapping &m) const
    {
        return accel::evalCacheKey(context, m.fingerprint());
    }
};

/** Cycle-level PPA estimation engine for the Ascend-like core. */
class CycleAccurateModel
{
  public:
    explicit CycleAccurateModel(CubeTech tech = CubeTech{})
        : tech_(tech), techFp_(techFingerprint(tech))
    {}

    /** Technology constants in use. */
    const CubeTech &tech() const { return tech_; }

    /**
     * Simulate one operator under one mapping; returns
     * Ppa::infeasible() when any tile exceeds its buffer.
     * @param stats optional output of internal counters.
     */
    accel::Ppa evaluate(const workload::TensorOp &op,
                        const accel::CubeHwConfig &hw,
                        const CubeMapping &m,
                        SimStats *stats = nullptr) const;

    /**
     * evaluate() memoized through @p cache. On a miss the simulation
     * runs and the entry stores the nominal EvalClock seconds of that
     * query; on a hit the stored seconds are replayed, so the virtual
     * ledger is bit-identical with the cache on or off. Trace events
     * are not cached (use evaluate() when tracing).
     *
     * @param seconds_out nominal seconds to charge for this query.
     * @param fixed_seconds when >= 0, charge this constant instead of
     *        nominalEvalSeconds(stats) (the degraded rung's flat
     *        analytical-scale cost).
     */
    accel::Ppa evaluateCached(const workload::TensorOp &op,
                              const accel::CubeHwConfig &hw,
                              const CubeMapping &m,
                              accel::EvalCache &cache,
                              double *seconds_out,
                              double fixed_seconds = -1.0) const;

    /**
     * Build the candidate-invariant query context for (op, hw),
     * including the cache-key fingerprint prefix. Build once per
     * layer-run; use only with this model (the context embeds this
     * model's tech constants and fingerprint).
     */
    PreparedCubeQuery prepare(const workload::TensorOp &op,
                              const accel::CubeHwConfig &hw) const;

    /**
     * evaluate() through a prepared context — bit-identical PPA and
     * counters to evaluate(op, hw, m) for the (op, hw) the context
     * was built from, without the per-call setup (fingerprints,
     * sqrt energy constants, area).
     */
    accel::Ppa evaluate(const PreparedCubeQuery &prep, const CubeMapping &m,
                        SimStats *stats = nullptr) const;

    /** evaluateCached() through a prepared context; entries are
     *  shared with the unprepared path. */
    accel::Ppa evaluateCached(const PreparedCubeQuery &prep,
                              const CubeMapping &m, accel::EvalCache &cache,
                              double *seconds_out,
                              double fixed_seconds = -1.0) const;

    /**
     * Evaluate a block of candidates under one prepared context,
     * index-aligned with @p ms. Each evaluation is a pure function of
     * (context, mapping), so with a non-null @p pool the results are
     * byte-identical to the serial path regardless of schedule.
     * Per-candidate SimStats are not exposed; use evaluate() when the
     * counters (or trace) matter.
     */
    std::vector<accel::Ppa>
    evaluateBatch(const PreparedCubeQuery &prep,
                  const std::vector<CubeMapping> &ms,
                  common::ThreadPool *pool = nullptr) const;

    /**
     * Stable fingerprint of one (model kind, tech constants, op, hw)
     * query context; combined with a mapping fingerprint it forms the
     * evaluation-cache key. Distinct tech constants (e.g. the
     * degraded rung's coarser extrapolation cap) yield distinct
     * fingerprints, so rungs never share entries.
     */
    common::Fingerprint
    queryFingerprint(const workload::TensorOp &op,
                     const accel::CubeHwConfig &hw) const;

    /** Mapping-independent core area. */
    double areaMm2(const accel::CubeHwConfig &hw) const;

    /**
     * Nominal wall-clock cost of one CAModel query (2-10 minutes per
     * the paper), charged to the EvalClock ledger; grows with the
     * simulated tile count.
     */
    double nominalEvalSeconds(const SimStats &stats) const;

    /**
     * Coarse copy of this model for graceful degradation: aggressive
     * steady-state extrapolation (a few hundred simulated tiles)
     * gives analytical-fidelity estimates at analytical cost. The
     * fault-tolerant driver drops a repeatedly failing candidate onto
     * this rung instead of aborting the search.
     */
    CycleAccurateModel degraded() const;

    /** Nominal cost of one degraded (analytical-fidelity) query,
     *  matching costmodel::AnalyticalCostModel's charge. */
    static double nominalDegradedEvalSeconds() { return 2.0; }

  private:
    static common::Fingerprint techFingerprint(const CubeTech &tech);

    /** prepare() without the fingerprint prefix (used by the
     *  unprepared evaluate() wrapper, which never touches the cache). */
    PreparedCubeQuery makeContext(const workload::TensorOp &op,
                                  const accel::CubeHwConfig &hw) const;

    CubeTech tech_;
    common::Fingerprint techFp_;
};

} // namespace unico::camodel

#endif // UNICO_CAMODEL_SIMULATOR_HH
