#include "camodel/search.hh"

#include <cassert>

namespace unico::camodel {

CubeEvaluator
screeningEvaluator(CubeCandidateScreen *screen, CubeEvaluator inner)
{
    if (screen == nullptr)
        return inner;
    return [screen, inner = std::move(inner)](const CubeMapping &m) {
        if (auto predicted = screen->screen(m)) {
            assert(predicted->fidelity == mapping::Fidelity::Surrogate);
            return *predicted;
        }
        const mapping::MappingEval eval = inner(m);
        screen->observeExact(m, eval);
        return eval;
    };
}

CubeBatchEvaluator
serialBatch(CubeEvaluator inner)
{
    return [inner = std::move(inner)](const std::vector<CubeMapping> &ms) {
        std::vector<mapping::MappingEval> out;
        out.reserve(ms.size());
        for (const CubeMapping &m : ms)
            out.push_back(inner(m));
        return out;
    };
}

CubeBatchEvaluator
screeningBatchEvaluator(CubeCandidateScreen *screen, CubeEvaluator one,
                        CubeBatchEvaluator batch)
{
    if (screen == nullptr)
        return batch;
    // An active screen trains on each exact result before judging the
    // next candidate; serialize the block through the screened
    // single-candidate path to keep that feedback order byte-identical
    // to the unbatched stack.
    return serialBatch(screeningEvaluator(screen, std::move(one)));
}

CubeSearchRun::CubeSearchRun(const CubeMappingSpace &space,
                             CubeEvaluator evaluator, std::uint64_t seed)
    : space_(space), evaluator_(std::move(evaluator)), rng_(seed)
{
}

void
CubeSearchRun::record(const CubeMapping &m,
                      const mapping::MappingEval &eval)
{
    if (eval.fidelity == mapping::Fidelity::Surrogate) {
        // Advisory prediction: spend the budget slot, keep the
        // incumbent and sample set untouched. The restart counter
        // still advances so a screened-heavy stretch can trigger the
        // depth-first backtrack just like a fruitless exact stretch.
        ++sinceImprove_;
        bestLoss_.push_back(bestLoss_.empty() ? 1e18 : bestLoss_.back());
        return;
    }
    samples_.push_back(mapping::SamplePoint{
        eval.loss, eval.ppa.latencyMs, eval.ppa.powerMw,
        eval.ppa.feasible});
    if (bestLoss_.empty() || eval.loss < bestEval_.loss) {
        bestEval_ = eval;
        bestMapping_ = m;
        sinceImprove_ = 0;
    } else {
        ++sinceImprove_;
    }
    bestLoss_.push_back(bestEval_.loss);
}

void
CubeSearchRun::step(int evals)
{
    for (int i = 0; i < evals; ++i) {
        if (!initialized_) {
            // Conservative fusion-friendly seed: modest tiles that fit
            // any reasonable buffer configuration, ping-pong on. The
            // depth-first refinement grows tiles from here.
            current_ = CubeMapping{};
            current_.m1 = 64;
            current_.n1 = 128;
            current_.k1 = 64;
            current_.m0 = 16;
            current_.n0 = 32;
            current_.k0 = 16;
            current_.doubleBufferA = true;
            current_.doubleBufferB = true;
            current_.fuseVector = true;
            space_.repair(current_);
            currentEval_ = evaluator_(current_);
            record(current_, currentEval_);
            initialized_ = true;
            continue;
        }
        CubeMapping cand;
        if (sinceImprove_ >= 24) {
            // Branch exhausted: depth-first backtrack via restart.
            cand = space_.random(rng_);
            sinceImprove_ = 0;
        } else {
            cand = space_.mutate(current_, rng_);
        }
        const mapping::MappingEval eval = evaluator_(cand);
        record(cand, eval);
        // Greedy descent with mild tolerance for sideways moves.
        if (eval.loss <= currentEval_.loss * 1.02) {
            current_ = cand;
            currentEval_ = eval;
        }
    }
}

} // namespace unico::camodel
