/**
 * @file
 * Software mapping for the Ascend-like cube core.
 *
 * Operators are lowered to GEMM (im2col view): M = output channels,
 * K = c*r*s reduction, N = n*y*x output pixels. A mapping selects the
 * L1 tile (M1, N1, K1), the L0 tile (M0, N0, K0) staged into the
 * L0A/L0B/L0C buffers, double-buffering switches and whether the
 * vector epilogue is fused in UB — the knobs the paper's depth-first
 * buffer-fusion mapping search explores.
 */

#ifndef UNICO_CAMODEL_CUBE_MAPPING_HH
#define UNICO_CAMODEL_CUBE_MAPPING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/shard_cache.hh"
#include "workload/tensor_op.hh"

namespace unico::camodel {

/** GEMM view of a tensor operator on the cube core. */
struct GemmShape
{
    std::int64_t m = 1; ///< output channels
    std::int64_t n = 1; ///< output pixels (n*y*x)
    std::int64_t k = 1; ///< reduction (c*r*s)

    /** Lower a tensor op to its GEMM shape. */
    static GemmShape fromOp(const workload::TensorOp &op);
};

/** A complete cube-core mapping. */
struct CubeMapping
{
    std::int64_t m1 = 64, n1 = 64, k1 = 64;    ///< L1 tile
    std::int64_t m0 = 16, n0 = 16, k0 = 16;    ///< L0 tile
    bool doubleBufferA = true;  ///< ping-pong L0A
    bool doubleBufferB = true;  ///< ping-pong L0B
    bool fuseVector = true;     ///< fuse vector epilogue in UB

    /** Human-readable summary. */
    std::string describe() const;

    bool operator==(const CubeMapping &other) const = default;

    /** Canonical fingerprint for the evaluation cache. */
    common::Fingerprint fingerprint() const;
};

/** Mapping space (tile ladders + random/mutate) for one operator. */
class CubeMappingSpace
{
  public:
    explicit CubeMappingSpace(const workload::TensorOp &op);

    /** The lowered GEMM shape. */
    const GemmShape &shape() const { return shape_; }

    /** Uniform random valid mapping. */
    CubeMapping random(common::Rng &rng) const;

    /** Local mutation; always returns a valid mapping. */
    CubeMapping mutate(const CubeMapping &m, common::Rng &rng) const;

    /** Clamp tiles into range and restore l0 <= l1 ordering. */
    void repair(CubeMapping &m) const;

    /** Structural validity (tile ordering and bounds). */
    bool isValid(const CubeMapping &m) const;

  private:
    GemmShape shape_;
    std::vector<std::int64_t> mLadder_;
    std::vector<std::int64_t> nLadder_;
    std::vector<std::int64_t> kLadder_;
};

} // namespace unico::camodel

#endif // UNICO_CAMODEL_CUBE_MAPPING_HH
