#include "camodel/cube_mapping.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace unico::camodel {

GemmShape
GemmShape::fromOp(const workload::TensorOp &op)
{
    GemmShape g;
    if (op.kind == workload::OpKind::DepthwiseConv2D) {
        // Depthwise runs channel-sequential on the cube: per channel a
        // small (1 x rs) x (rs x yx) product; model as M=k, K=r*s.
        g.m = op.k;
        g.k = op.r * op.s;
        g.n = op.n * op.y * op.x;
    } else {
        g.m = op.k;
        g.k = op.c * op.r * op.s;
        g.n = op.n * op.y * op.x;
    }
    return g;
}

std::string
CubeMapping::describe() const
{
    std::ostringstream oss;
    oss << "L1[" << m1 << "x" << n1 << "x" << k1 << "] L0[" << m0 << "x"
        << n0 << "x" << k0 << "]"
        << (doubleBufferA ? " dbA" : "") << (doubleBufferB ? " dbB" : "")
        << (fuseVector ? " fused" : "");
    return oss.str();
}

common::Fingerprint
CubeMapping::fingerprint() const
{
    common::FingerprintBuilder fb;
    fb.add(m1).add(n1).add(k1).add(m0).add(n0).add(k0)
        .add(doubleBufferA).add(doubleBufferB).add(fuseVector);
    return fb.fingerprint();
}

namespace {

std::vector<std::int64_t>
powerLadder(std::int64_t extent, std::int64_t lo)
{
    std::vector<std::int64_t> out;
    for (std::int64_t v = lo; v < extent; v *= 2)
        out.push_back(v);
    out.push_back(extent);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::int64_t
snap(const std::vector<std::int64_t> &ladder, std::int64_t v)
{
    auto it = std::lower_bound(ladder.begin(), ladder.end(), v);
    if (it == ladder.end())
        return ladder.back();
    if (it != ladder.begin() && (*it - v) > (v - *(it - 1)))
        --it;
    return *it;
}

} // namespace

CubeMappingSpace::CubeMappingSpace(const workload::TensorOp &op)
    : shape_(GemmShape::fromOp(op)),
      mLadder_(powerLadder(shape_.m, 8)),
      nLadder_(powerLadder(shape_.n, 8)),
      kLadder_(powerLadder(shape_.k, 8))
{
}

CubeMapping
CubeMappingSpace::random(common::Rng &rng) const
{
    CubeMapping m;
    m.m1 = rng.pick(mLadder_);
    m.n1 = rng.pick(nLadder_);
    m.k1 = rng.pick(kLadder_);
    m.m0 = snap(mLadder_, std::max<std::int64_t>(m.m1 / 4, 8));
    m.n0 = snap(nLadder_, std::max<std::int64_t>(m.n1 / 4, 8));
    m.k0 = snap(kLadder_, std::max<std::int64_t>(m.k1 / 4, 8));
    m.doubleBufferA = rng.bernoulli(0.5);
    m.doubleBufferB = rng.bernoulli(0.5);
    m.fuseVector = rng.bernoulli(0.5);
    repair(m);
    return m;
}

CubeMapping
CubeMappingSpace::mutate(const CubeMapping &m, common::Rng &rng) const
{
    CubeMapping out = m;
    auto step = [&](std::int64_t v, const std::vector<std::int64_t> &lad) {
        auto it = std::lower_bound(lad.begin(), lad.end(), v);
        std::size_t idx = static_cast<std::size_t>(it - lad.begin());
        if (idx >= lad.size())
            idx = lad.size() - 1;
        if (rng.bernoulli(0.5) && idx + 1 < lad.size())
            ++idx;
        else if (idx > 0)
            --idx;
        return lad[idx];
    };
    switch (rng.uniformInt(std::uint64_t{8})) {
      case 0: out.m1 = step(out.m1, mLadder_); break;
      case 1: out.n1 = step(out.n1, nLadder_); break;
      case 2: out.k1 = step(out.k1, kLadder_); break;
      case 3: out.m0 = step(out.m0, mLadder_); break;
      case 4: out.n0 = step(out.n0, nLadder_); break;
      case 5: out.k0 = step(out.k0, kLadder_); break;
      case 6: out.doubleBufferA = !out.doubleBufferA; break;
      default:
        if (rng.bernoulli(0.5))
            out.doubleBufferB = !out.doubleBufferB;
        else
            out.fuseVector = !out.fuseVector;
        break;
    }
    repair(out);
    return out;
}

void
CubeMappingSpace::repair(CubeMapping &m) const
{
    m.m1 = snap(mLadder_, std::clamp<std::int64_t>(m.m1, 1, shape_.m));
    m.n1 = snap(nLadder_, std::clamp<std::int64_t>(m.n1, 1, shape_.n));
    m.k1 = snap(kLadder_, std::clamp<std::int64_t>(m.k1, 1, shape_.k));
    m.m0 = snap(mLadder_, std::clamp<std::int64_t>(m.m0, 1, m.m1));
    m.n0 = snap(nLadder_, std::clamp<std::int64_t>(m.n0, 1, m.n1));
    m.k0 = snap(kLadder_, std::clamp<std::int64_t>(m.k0, 1, m.k1));
    m.m0 = std::min(m.m0, m.m1);
    m.n0 = std::min(m.n0, m.n1);
    m.k0 = std::min(m.k0, m.k1);
    assert(isValid(m));
}

bool
CubeMappingSpace::isValid(const CubeMapping &m) const
{
    return m.m0 >= 1 && m.n0 >= 1 && m.k0 >= 1 && m.m0 <= m.m1 &&
           m.n0 <= m.n1 && m.k0 <= m.k1 && m.m1 <= shape_.m &&
           m.n1 <= shape_.n && m.k1 <= shape_.k;
}

} // namespace unico::camodel
