#include "accel/spatial.hh"

#include <cassert>
#include <sstream>

namespace unico::accel {

const char *
toString(Dataflow df)
{
    switch (df) {
      case Dataflow::WeightStationary: return "WS";
      case Dataflow::OutputStationary: return "OS";
    }
    return "?";
}

const char *
toString(Scenario sc)
{
    switch (sc) {
      case Scenario::Edge: return "edge";
      case Scenario::Cloud: return "cloud";
    }
    return "?";
}

double
powerBudgetMw(Scenario sc)
{
    return sc == Scenario::Edge ? 2000.0 : 20000.0;
}

std::string
SpatialHwConfig::describe() const
{
    std::ostringstream oss;
    oss << "pe=" << peX << "x" << peY << " l1=" << l1Bytes << "B l2="
        << l2Bytes / 1024 << "KB noc=" << nocBandwidth << " df="
        << toString(dataflow);
    return oss.str();
}

common::Fingerprint
SpatialHwConfig::fingerprint() const
{
    common::FingerprintBuilder fb;
    fb.add(peX).add(peY).add(l1Bytes).add(l2Bytes).add(nocBandwidth)
        .add(static_cast<int>(dataflow));
    return fb.fingerprint();
}

namespace {

std::vector<double>
peRange(std::int64_t max_pe)
{
    std::vector<double> v;
    for (std::int64_t i = 1; i <= max_pe; ++i)
        v.push_back(static_cast<double>(i));
    return v;
}

} // namespace

SpatialDesignSpace::SpatialDesignSpace(Scenario scenario)
    : scenario_(scenario)
{
    if (scenario == Scenario::Edge) {
        // ~1e5 configurations: 16*16 * 12 * 8 * 2 * 2 = 98,304.
        space_.addAxis("pe_x", peRange(16));
        space_.addAxis("pe_y", peRange(16));
        // L1 grid pruned to 12 values in [512 B, 48 KiB].
        auto l1 = smoothGrid(512.0, 48.0 * 1024.0, 6);
        l1.resize(std::min<std::size_t>(l1.size(), 12));
        space_.addAxis("l1_bytes", l1);
        // L2 grid pruned to 8 values in [32 KiB, 1 MiB].
        auto l2 = smoothGrid(32.0, 1024.0, 5);
        l2.resize(std::min<std::size_t>(l2.size(), 8));
        for (auto &v : l2)
            v *= 1024.0; // KB -> bytes
        space_.addAxis("l2_bytes", l2);
    } else {
        // ~1e8 configurations: 24*24 * 121 * 121 * 2 * 2 = 3.4e7;
        // with the NoC axis widened to 4 values: 6.7e7.
        space_.addAxis("pe_x", peRange(24));
        space_.addAxis("pe_y", peRange(24));
        auto l1 = smoothGrid(1.0, 1024.0 * 1024.0, 10);
        space_.addAxis("l1_bytes", l1);
        auto l2 = smoothGrid(1.0, 60000.0, 10);
        for (auto &v : l2)
            v *= 1024.0; // KB -> bytes
        space_.addAxis("l2_bytes", l2);
    }
    space_.addAxis("noc_bw", {64.0, 128.0});
    space_.addAxis("dataflow", {0.0, 1.0});
}

SpatialHwConfig
SpatialDesignSpace::decode(const HwPoint &p) const
{
    assert(space_.contains(p));
    SpatialHwConfig cfg;
    cfg.peX = static_cast<std::int64_t>(space_.value(p, 0));
    cfg.peY = static_cast<std::int64_t>(space_.value(p, 1));
    cfg.l1Bytes = static_cast<std::int64_t>(space_.value(p, 2));
    cfg.l2Bytes = static_cast<std::int64_t>(space_.value(p, 3));
    cfg.nocBandwidth = static_cast<std::int64_t>(space_.value(p, 4));
    cfg.dataflow = space_.value(p, 5) < 0.5 ? Dataflow::WeightStationary
                                            : Dataflow::OutputStationary;
    return cfg;
}

} // namespace unico::accel
