/**
 * @file
 * Power-performance-area (PPA) result type shared by every
 * estimation engine (analytical cost model and cycle-level
 * simulator) and by the co-optimization objectives.
 */

#ifndef UNICO_ACCEL_PPA_HH
#define UNICO_ACCEL_PPA_HH

#include <cmath>
#include <limits>

#include "common/shard_cache.hh"

namespace unico::accel {

/**
 * A single PPA estimate. Units follow the paper's tables:
 * latency in milliseconds, power in milliwatts, area in mm^2.
 */
struct Ppa
{
    double latencyMs = 0.0;
    double powerMw = 0.0;
    double areaMm2 = 0.0;
    double energyMj = 0.0;  ///< derived: latency * power (micro-joule)
    bool feasible = false;  ///< false when buffers/constraints violated

    /** Energy-delay product (mJ * ms), a common mapping loss. */
    double
    edp() const
    {
        return energyMj * latencyMs;
    }

    /** Infeasible sentinel with very large objective values. */
    static Ppa
    infeasible()
    {
        Ppa p;
        p.latencyMs = 1e12;
        p.powerMw = 1e9;
        p.areaMm2 = 1e6;
        p.energyMj = 1e15;
        p.feasible = false;
        return p;
    }

    /** True if every field is finite and non-negative. */
    bool
    valid() const
    {
        return std::isfinite(latencyMs) && std::isfinite(powerMw) &&
               std::isfinite(areaMm2) && latencyMs >= 0.0 &&
               powerMw >= 0.0 && areaMm2 >= 0.0;
    }
};

/**
 * One memoized PPA evaluation. @c seconds is the nominal virtual
 * cost of the original computation; a cache hit re-charges it to the
 * EvalClock so the cost ledger is identical with the cache on or
 * off. @c loss carries the mapping-search objective for evaluator
 * decorators that cache (ppa, loss) pairs.
 */
struct CachedEval
{
    Ppa ppa;
    double loss = 0.0;
    double seconds = 0.0;
};

/**
 * The shared evaluation cache of the co-search hot loop, keyed by
 * canonical fingerprints of (model tech, hardware config, operator,
 * mapping). One instance is shared by every model query of a run.
 */
using EvalCache = common::ShardedLruCache<CachedEval>;

/**
 * Canonical evaluation-cache key: a prepared query-context prefix
 * (model kind + tech + op + hw) combined with one mapping
 * fingerprint. Every producer (both cost models, the caching
 * evaluator decorators, prepared query contexts) must build keys
 * through this single helper so entries written by one path are hits
 * for every other.
 */
inline common::Fingerprint
evalCacheKey(const common::Fingerprint &context,
             const common::Fingerprint &mapping_fp)
{
    return common::combine(context, mapping_fp);
}

} // namespace unico::accel

#endif // UNICO_ACCEL_PPA_HH
