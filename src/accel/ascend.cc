#include "accel/ascend.hh"

#include <cassert>
#include <cmath>
#include <sstream>

namespace unico::accel {

std::string
CubeHwConfig::describe() const
{
    std::ostringstream oss;
    oss << "l0a=" << l0aBytes / 1024 << "K/" << l0aBanks << "b l0b="
        << l0bBytes / 1024 << "K/" << l0bBanks << "b l0c="
        << l0cBytes / 1024 << "K/" << l0cBanks << "b l1="
        << l1Bytes / 1024 << "K ub=" << ubBytes / 1024 << "K pb="
        << pbBytes / 1024 << "K ic=" << icacheBytes / 1024 << "K cube="
        << cubeM << "x" << cubeN << "x" << cubeK;
    return oss.str();
}

common::Fingerprint
CubeHwConfig::fingerprint() const
{
    common::FingerprintBuilder fb;
    fb.add(l0aBytes).add(l0bBytes).add(l0cBytes).add(l1Bytes)
        .add(ubBytes).add(pbBytes).add(icacheBytes)
        .add(l0aBanks).add(l0bBanks).add(l0cBanks)
        .add(cubeM).add(cubeN).add(cubeK);
    return fb.fingerprint();
}

CubeHwConfig
CubeHwConfig::expertDefault()
{
    // DaVinci-like defaults (Liao et al., HPCA'21): 64 KiB L0A/L0B,
    // 256 KiB L0C, 1 MiB L1, 256 KiB UB, 16x16x16 cube.
    return CubeHwConfig{};
}

namespace {

std::vector<double>
kib(std::initializer_list<double> values)
{
    std::vector<double> out;
    for (double v : values)
        out.push_back(v * 1024.0);
    return out;
}

} // namespace

AscendDesignSpace::AscendDesignSpace()
{
    // 8 * 8 * 8 * 6 * 6 * 4 * 3 * 4^3 * 3^3 ~= 9.5e8 configurations.
    space_.addAxis("l0a_bytes", kib({8, 16, 32, 48, 64, 96, 128, 192}));
    space_.addAxis("l0b_bytes", kib({8, 16, 32, 48, 64, 96, 128, 192}));
    space_.addAxis("l0c_bytes",
                   kib({32, 64, 128, 192, 256, 384, 512, 768}));
    space_.addAxis("l1_bytes", kib({256, 512, 768, 1024, 1536, 2048}));
    space_.addAxis("ub_bytes", kib({64, 128, 192, 256, 384, 512}));
    space_.addAxis("pb_bytes", kib({16, 32, 64, 128}));
    space_.addAxis("icache_bytes", kib({16, 32, 64}));
    space_.addAxis("l0a_banks", {1, 2, 4, 8});
    space_.addAxis("l0b_banks", {1, 2, 4, 8});
    space_.addAxis("l0c_banks", {1, 2, 4, 8});
    space_.addAxis("cube_m", {8, 16, 32});
    space_.addAxis("cube_n", {8, 16, 32});
    space_.addAxis("cube_k", {8, 16, 32});
}

CubeHwConfig
AscendDesignSpace::decode(const HwPoint &p) const
{
    assert(space_.contains(p));
    CubeHwConfig cfg;
    cfg.l0aBytes = static_cast<std::int64_t>(space_.value(p, 0));
    cfg.l0bBytes = static_cast<std::int64_t>(space_.value(p, 1));
    cfg.l0cBytes = static_cast<std::int64_t>(space_.value(p, 2));
    cfg.l1Bytes = static_cast<std::int64_t>(space_.value(p, 3));
    cfg.ubBytes = static_cast<std::int64_t>(space_.value(p, 4));
    cfg.pbBytes = static_cast<std::int64_t>(space_.value(p, 5));
    cfg.icacheBytes = static_cast<std::int64_t>(space_.value(p, 6));
    cfg.l0aBanks = static_cast<std::int64_t>(space_.value(p, 7));
    cfg.l0bBanks = static_cast<std::int64_t>(space_.value(p, 8));
    cfg.l0cBanks = static_cast<std::int64_t>(space_.value(p, 9));
    cfg.cubeM = static_cast<std::int64_t>(space_.value(p, 10));
    cfg.cubeN = static_cast<std::int64_t>(space_.value(p, 11));
    cfg.cubeK = static_cast<std::int64_t>(space_.value(p, 12));
    return cfg;
}

HwPoint
AscendDesignSpace::encodeDefault() const
{
    const CubeHwConfig def = CubeHwConfig::expertDefault();
    const double targets[] = {
        static_cast<double>(def.l0aBytes),
        static_cast<double>(def.l0bBytes),
        static_cast<double>(def.l0cBytes),
        static_cast<double>(def.l1Bytes),
        static_cast<double>(def.ubBytes),
        static_cast<double>(def.pbBytes),
        static_cast<double>(def.icacheBytes),
        static_cast<double>(def.l0aBanks),
        static_cast<double>(def.l0bBanks),
        static_cast<double>(def.l0cBanks),
        static_cast<double>(def.cubeM),
        static_cast<double>(def.cubeN),
        static_cast<double>(def.cubeK),
    };
    HwPoint p(space_.dims(), 0);
    for (std::size_t i = 0; i < space_.dims(); ++i) {
        const auto &vals = space_.axis(i).values;
        std::size_t best = 0;
        double best_err = std::abs(vals[0] - targets[i]);
        for (std::size_t j = 1; j < vals.size(); ++j) {
            const double err = std::abs(vals[j] - targets[i]);
            if (err < best_err) {
                best_err = err;
                best = j;
            }
        }
        p[i] = best;
    }
    return p;
}

} // namespace unico::accel
