#include "accel/design_space.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace unico::accel {

void
DesignSpace::addAxis(std::string name, std::vector<double> values)
{
    assert(!values.empty());
    axes_.push_back(Axis{std::move(name), std::move(values)});
}

double
DesignSpace::cardinality() const
{
    double card = 1.0;
    for (const auto &axis : axes_)
        card *= static_cast<double>(axis.values.size());
    return card;
}

double
DesignSpace::value(const HwPoint &p, std::size_t axis) const
{
    assert(axis < axes_.size());
    assert(p.size() == axes_.size());
    assert(p[axis] < axes_[axis].values.size());
    return axes_[axis].values[p[axis]];
}

bool
DesignSpace::contains(const HwPoint &p) const
{
    if (p.size() != axes_.size())
        return false;
    for (std::size_t i = 0; i < p.size(); ++i)
        if (p[i] >= axes_[i].values.size())
            return false;
    return true;
}

HwPoint
DesignSpace::randomPoint(common::Rng &rng) const
{
    HwPoint p(axes_.size(), 0);
    for (std::size_t i = 0; i < axes_.size(); ++i)
        p[i] = rng.uniformInt(axes_[i].values.size());
    return p;
}

HwPoint
DesignSpace::neighbor(const HwPoint &p, common::Rng &rng,
                      std::size_t max_moves) const
{
    assert(contains(p));
    HwPoint q = p;
    const std::size_t moves = 1 + rng.uniformInt(std::max<std::size_t>(
                                      max_moves, 1));
    for (std::size_t m = 0; m < moves; ++m) {
        const std::size_t axis = rng.uniformInt(axes_.size());
        const std::size_t n = axes_[axis].values.size();
        if (n == 1)
            continue;
        if (rng.bernoulli(0.7)) {
            // Step move along the ordered axis.
            if (q[axis] == 0)
                q[axis] = 1;
            else if (q[axis] == n - 1)
                q[axis] = n - 2;
            else
                q[axis] += rng.bernoulli(0.5) ? 1 : -1;
        } else {
            // Jump move for escaping local basins.
            q[axis] = rng.uniformInt(n);
        }
    }
    return q;
}

HwPoint
DesignSpace::crossover(const HwPoint &a, const HwPoint &b,
                       common::Rng &rng) const
{
    assert(contains(a) && contains(b));
    HwPoint child(a.size(), 0);
    for (std::size_t i = 0; i < a.size(); ++i)
        child[i] = rng.bernoulli(0.5) ? a[i] : b[i];
    return child;
}

std::vector<double>
DesignSpace::normalize(const HwPoint &p) const
{
    assert(contains(p));
    std::vector<double> out(p.size(), 0.0);
    for (std::size_t i = 0; i < p.size(); ++i) {
        const std::size_t n = axes_[i].values.size();
        out[i] = n > 1
                     ? static_cast<double>(p[i]) / static_cast<double>(n - 1)
                     : 0.5;
    }
    return out;
}

std::string
DesignSpace::key(const HwPoint &p) const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < p.size(); ++i)
        oss << (i ? "," : "") << p[i];
    return oss.str();
}

std::string
DesignSpace::describe(const HwPoint &p) const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (i)
            oss << " ";
        oss << axes_[i].name << "=" << value(p, i);
    }
    return oss.str();
}

std::vector<double>
smoothGrid(double lo, double hi, int max_exp)
{
    std::vector<double> out;
    double p2 = 1.0;
    for (int i = 0; i <= max_exp; ++i, p2 *= 2.0) {
        double p3 = 1.0;
        for (int j = 0; j <= max_exp; ++j, p3 *= 3.0) {
            const double v = p2 * p3;
            if (v >= lo && v <= hi)
                out.push_back(v);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace unico::accel
