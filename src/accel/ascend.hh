/**
 * @file
 * Ascend-like (DaVinci-style) cube-core hardware template, Sec. 4.1.
 *
 * The searchable parameters follow the paper: buffer sizes and bank
 * groups for L0A/L0B/L0C, the L1 buffer, the unified vector buffer,
 * the parameter buffer, the instruction-cache size and the M/N/K cube
 * dimensions — a space of ~1e9 configurations.
 */

#ifndef UNICO_ACCEL_ASCEND_HH
#define UNICO_ACCEL_ASCEND_HH

#include <cstdint>
#include <string>

#include "accel/design_space.hh"
#include "common/shard_cache.hh"

namespace unico::accel {

/** Decoded Ascend-like core configuration. */
struct CubeHwConfig
{
    std::int64_t l0aBytes = 64 * 1024;  ///< cube input A staging
    std::int64_t l0bBytes = 64 * 1024;  ///< cube input B staging
    std::int64_t l0cBytes = 256 * 1024; ///< cube accumulator buffer
    std::int64_t l1Bytes = 1024 * 1024; ///< shared L1 buffer
    std::int64_t ubBytes = 256 * 1024;  ///< unified (vector) buffer
    std::int64_t pbBytes = 32 * 1024;   ///< parameter buffer
    std::int64_t icacheBytes = 32 * 1024; ///< instruction cache
    std::int64_t l0aBanks = 2;          ///< L0A bank groups
    std::int64_t l0bBanks = 2;          ///< L0B bank groups
    std::int64_t l0cBanks = 2;          ///< L0C bank groups
    std::int64_t cubeM = 16;            ///< cube M dimension
    std::int64_t cubeN = 16;            ///< cube N dimension
    std::int64_t cubeK = 16;            ///< cube K dimension

    /** MACs executed by one cube issue. */
    std::int64_t cubeMacs() const { return cubeM * cubeN * cubeK; }

    /** Human-readable summary. */
    std::string describe() const;

    /** Canonical fingerprint for the evaluation cache. */
    common::Fingerprint fingerprint() const;

    /** Expert-selected default configuration (the paper's baseline
     *  against which UNICO's savings in Fig. 11 are reported). */
    static CubeHwConfig expertDefault();
};

/** Design space for the Ascend-like core (~1e9 points). */
class AscendDesignSpace
{
  public:
    AscendDesignSpace();

    /** The underlying generic discrete space. */
    const DesignSpace &space() const { return space_; }

    /** Decode an index vector into a configuration. */
    CubeHwConfig decode(const HwPoint &p) const;

    /** Index vector closest to the expert default configuration. */
    HwPoint encodeDefault() const;

  private:
    DesignSpace space_;
};

} // namespace unico::accel

#endif // UNICO_ACCEL_ASCEND_HH
