/**
 * @file
 * Generic discrete hardware design space.
 *
 * Every hardware template (the open-source spatial accelerator of
 * Fig. 1 and the Ascend-like cube core of Sec. 4.1) is expressed as a
 * set of named axes, each with a finite ordered list of values. A
 * hardware configuration is an index vector into those axes. The
 * MOBO surrogate consumes the normalized ([0,1]^d) embedding; the
 * cost models consume the decoded values.
 */

#ifndef UNICO_ACCEL_DESIGN_SPACE_HH
#define UNICO_ACCEL_DESIGN_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace unico::accel {

/** A hardware configuration: one index per design-space axis. */
using HwPoint = std::vector<std::size_t>;

/** One discrete design axis (e.g. PE_x or L1 size). */
struct Axis
{
    std::string name;           ///< axis name for reporting
    std::vector<double> values; ///< ordered candidate values
};

/** A finite, multi-axis discrete design space. */
class DesignSpace
{
  public:
    DesignSpace() = default;

    /** Append an axis; values must be non-empty. */
    void addAxis(std::string name, std::vector<double> values);

    /** Number of axes. */
    std::size_t dims() const { return axes_.size(); }

    /** Axis metadata. */
    const Axis &axis(std::size_t i) const { return axes_[i]; }

    /** Total number of configurations (as double; spaces reach 1e9). */
    double cardinality() const;

    /** Decoded value of axis @p axis for configuration @p p. */
    double value(const HwPoint &p, std::size_t axis) const;

    /** True if @p p indexes every axis within range. */
    bool contains(const HwPoint &p) const;

    /** Uniform random configuration. */
    HwPoint randomPoint(common::Rng &rng) const;

    /**
     * Local mutation: move 1..@p max_moves axes by +-1 step (ordered
     * axes) or to a random value. Used by acquisition optimization
     * and the evolutionary baselines.
     */
    HwPoint neighbor(const HwPoint &p, common::Rng &rng,
                     std::size_t max_moves = 2) const;

    /** Uniform crossover of two parents. */
    HwPoint crossover(const HwPoint &a, const HwPoint &b,
                      common::Rng &rng) const;

    /** Normalized [0,1]^d embedding for the surrogate model. */
    std::vector<double> normalize(const HwPoint &p) const;

    /** Stable string key for hashing/deduplication. */
    std::string key(const HwPoint &p) const;

    /** Human-readable "name=value" listing. */
    std::string describe(const HwPoint &p) const;

  private:
    std::vector<Axis> axes_;
};

/**
 * The set {2^i * 3^j : i,j in [0, max_exp]} intersected with
 * [lo, hi], sorted ascending — the buffer-size grid of Sec. 4.1.
 */
std::vector<double> smoothGrid(double lo, double hi, int max_exp = 10);

} // namespace unico::accel

#endif // UNICO_ACCEL_DESIGN_SPACE_HH
