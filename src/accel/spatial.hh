/**
 * @file
 * The 2-D spatial accelerator template of Fig. 1 (open-source
 * platform): a PE_x x PE_y array with private L1 scratchpads, a
 * shared L2 buffer, a NoC of configurable bandwidth and a
 * weight-/output-stationary dataflow switch with a GEMMCore
 * intrinsic.
 */

#ifndef UNICO_ACCEL_SPATIAL_HH
#define UNICO_ACCEL_SPATIAL_HH

#include <cstdint>
#include <string>

#include "accel/design_space.hh"
#include "common/shard_cache.hh"

namespace unico::accel {

/** Stationarity of the inner dataflow. */
enum class Dataflow {
    WeightStationary,
    OutputStationary,
};

/** Human-readable dataflow name. */
const char *toString(Dataflow df);

/** Decoded configuration of the spatial template. */
struct SpatialHwConfig
{
    std::int64_t peX = 1;       ///< PEs along x
    std::int64_t peY = 1;       ///< PEs along y
    std::int64_t l1Bytes = 512; ///< private scratchpad per PE
    std::int64_t l2Bytes = 65536; ///< shared global buffer
    std::int64_t nocBandwidth = 64; ///< bytes per cycle into the array
    Dataflow dataflow = Dataflow::WeightStationary;

    /** Total number of PEs. */
    std::int64_t pes() const { return peX * peY; }

    /** "pe=AxB l1=... l2=... noc=... df=..." summary. */
    std::string describe() const;

    /** Canonical fingerprint for the evaluation cache. */
    common::Fingerprint fingerprint() const;
};

/** Deployment scenario (power envelope and space size, Sec. 4.1). */
enum class Scenario {
    Edge,  ///< power < 2 W, HW space ~1e5
    Cloud, ///< power < 20 W, HW space ~1e9
};

/** Human-readable scenario name. */
const char *toString(Scenario sc);

/** Power constraint (mW) of a scenario. */
double powerBudgetMw(Scenario sc);

/**
 * The spatial template's design space plus decode logic.
 *
 * Edge restricts the PE array to 16x16 and a pruned buffer grid
 * (~1e5 configurations); cloud uses the full 24x24 array and the
 * complete {2^i * 3^j} buffer grids (~1e8 configurations).
 */
class SpatialDesignSpace
{
  public:
    explicit SpatialDesignSpace(Scenario scenario);

    /** Scenario this space was built for. */
    Scenario scenario() const { return scenario_; }

    /** The underlying generic discrete space. */
    const DesignSpace &space() const { return space_; }

    /** Decode an index vector into a configuration. */
    SpatialHwConfig decode(const HwPoint &p) const;

  private:
    Scenario scenario_;
    DesignSpace space_;
};

} // namespace unico::accel

#endif // UNICO_ACCEL_SPATIAL_HH
