/**
 * @file
 * A small fixed-size thread pool.
 *
 * Sec. 3.5 of the paper runs each successive-halving round as a set
 * of standalone parallel jobs. This pool provides that execution
 * substrate. It intentionally keeps the interface tiny: submit a
 * void() job, then wait for the whole batch.
 */

#ifndef UNICO_COMMON_THREAD_POOL_HH
#define UNICO_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.hh"
#include "common/status.hh"

namespace unico::common {

/**
 * Fixed-size worker pool with batch-wait semantics.
 *
 * Jobs may throw: an exception escaping a job is captured into the
 * pool's failure list instead of terminating the program (a single
 * bad PPA evaluation must not abort a multi-hour co-search). After
 * waitIdle(), drainFailures() hands the captured exceptions to the
 * caller in completion order; the pool itself stays fully usable for
 * subsequent batches.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 selects hardware concurrency. */
    explicit ThreadPool(std::size_t threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /**
     * One logical batch of jobs on a shared, long-lived pool.
     *
     * waitIdle()/drainFailures() on the pool itself are global: two
     * callers sharing one pool would steal each other's completions
     * and exceptions. A Batch carries its own pending counter and
     * failure list, so any number of concurrent batches can run on
     * the same pool without interference. The destructor waits for
     * the batch, so captured references outlive every job.
     *
     * Do not wait() on a batch from *inside* a job running on the
     * same pool: the worker would block waiting for work only it
     * could execute. Nested fan-out needs a second pool.
     */
    class Batch
    {
      public:
        explicit Batch(ThreadPool &pool) : pool_(pool) {}

        Batch(const Batch &) = delete;
        Batch &operator=(const Batch &) = delete;

        ~Batch() { wait(); }

        /** Enqueue a job attributed to this batch. */
        void submit(std::function<void()> job);

        /** Block until every job submitted to this batch finished. */
        void wait();

        /**
         * Exceptions captured from this batch's failed jobs, in
         * completion order; clears the internal list.
         */
        std::vector<std::exception_ptr> drainFailures();

      private:
        ThreadPool &pool_;
        std::mutex mutex_;
        std::condition_variable done_;
        std::vector<std::exception_ptr> failures_;
        std::size_t pending_ = 0;
    };

    /** Enqueue a job for asynchronous execution. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished (or failed). */
    void waitIdle();

    /**
     * Exceptions captured from failed jobs since the last drain, in
     * job-completion order; clears the internal list.
     */
    std::vector<std::exception_ptr> drainFailures();

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wakeWorker_;
    std::condition_variable idle_;
    std::vector<std::exception_ptr> failures_;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
};

/**
 * Fork-safe lazy pool handle: worker threads are created in the
 * process that first calls get(), not when the handle is
 * constructed. A handle created before a fork point (e.g. before the
 * evaluation fleet's zygote) is therefore safe to share through
 * configuration structs: a process forked while the handle is still
 * dormant inherits no threads, no held locks and no queue, and each
 * process that evaluates builds its own private pool on first use.
 * Do not fork while a get() call may be in flight on another thread.
 */
class LazyThreadPool
{
  public:
    /** @param threads worker count; 0 selects hardware concurrency. */
    explicit LazyThreadPool(std::size_t threads = 0) : threads_(threads) {}

    LazyThreadPool(const LazyThreadPool &) = delete;
    LazyThreadPool &operator=(const LazyThreadPool &) = delete;

    /** The pool, constructed on first call (thread-safe). */
    ThreadPool &
    get()
    {
        std::call_once(once_, [this] {
            pool_ = std::make_unique<ThreadPool>(threads_);
        });
        return *pool_;
    }

    /** Configured worker count (0 = hardware concurrency). */
    std::size_t configuredThreads() const { return threads_; }

  private:
    std::size_t threads_;
    std::once_flag once_;
    std::unique_ptr<ThreadPool> pool_;
};

/**
 * Run @p jobs on a transient pool of @p threads workers and wait.
 * With threads <= 1 the jobs run inline (deterministic order), which
 * is also the default on single-core hosts.
 *
 * Every job runs to completion even if some fail; the first captured
 * exception (by job index for inline execution, completion order
 * otherwise) is rethrown after the batch finishes. Callers that need
 * per-job outcomes should use runParallelCaptured().
 *
 * When @p cancel is non-null, jobs that have not yet *started* when
 * the token is cancelled are skipped (running jobs are expected to
 * poll the token themselves); the batch still returns only after
 * every started job finished, so a drain leaves no work in flight.
 */
void runParallel(const std::vector<std::function<void()>> &jobs,
                 std::size_t threads,
                 const CancelToken *cancel = nullptr);

/**
 * Like runParallel(jobs, threads, cancel) but on a caller-owned
 * persistent pool: no per-invocation thread construction/teardown.
 * Semantics are otherwise identical — every job runs (or is skipped
 * at dequeue time after cancellation), the call returns only once
 * the batch drained, and the first captured exception is rethrown.
 * Safe to call concurrently from several threads on one pool (each
 * call is an independent ThreadPool::Batch); never from inside a job
 * of the same pool.
 */
void runParallel(const std::vector<std::function<void()>> &jobs,
                 ThreadPool &pool, const CancelToken *cancel = nullptr);

/**
 * Like runParallel(), but never throws due to a job: returns one
 * JobOutcome per job (index-aligned). An EvalFault maps onto its own
 * status; any other exception is classified EvalStatus::Fatal with
 * the exception message.
 */
std::vector<JobOutcome>
runParallelCaptured(const std::vector<std::function<void()>> &jobs,
                    std::size_t threads);

} // namespace unico::common

#endif // UNICO_COMMON_THREAD_POOL_HH
