/**
 * @file
 * A small fixed-size thread pool.
 *
 * Sec. 3.5 of the paper runs each successive-halving round as a set
 * of standalone parallel jobs. This pool provides that execution
 * substrate. It intentionally keeps the interface tiny: submit a
 * void() job, then wait for the whole batch.
 */

#ifndef UNICO_COMMON_THREAD_POOL_HH
#define UNICO_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace unico::common {

/**
 * Fixed-size worker pool with batch-wait semantics.
 *
 * Jobs must not throw; exceptions escaping a job terminate the
 * program (the co-optimizer treats infeasible evaluations as penalty
 * values rather than exceptions).
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 selects hardware concurrency. */
    explicit ThreadPool(std::size_t threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Enqueue a job for asynchronous execution. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void waitIdle();

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wakeWorker_;
    std::condition_variable idle_;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
};

/**
 * Run @p jobs on a transient pool of @p threads workers and wait.
 * With threads <= 1 the jobs run inline (deterministic order), which
 * is also the default on single-core hosts.
 */
void runParallel(const std::vector<std::function<void()>> &jobs,
                 std::size_t threads);

} // namespace unico::common

#endif // UNICO_COMMON_THREAD_POOL_HH
