/**
 * @file
 * Signal-safe graceful-shutdown support.
 *
 * installShutdownHandlers() registers SIGINT/SIGTERM handlers that do
 * nothing but cancel the process-wide shutdownToken() (a lock-free
 * atomic store, the only thing a handler may safely do). Long-running
 * loops poll the token at iteration boundaries, drain in-flight work,
 * persist a final checkpoint and exit with a distinct resumable
 * status code (kExitResumable) so supervisors can tell "interrupted,
 * resume me" from success and from hard failure.
 *
 * A second SIGINT/SIGTERM while a graceful shutdown is already in
 * progress hard-exits with the conventional 128+signum code: an
 * operator pressing Ctrl-C twice means *now*.
 */

#ifndef UNICO_COMMON_SHUTDOWN_HH
#define UNICO_COMMON_SHUTDOWN_HH

#include "common/cancel.hh"

namespace unico::common {

/** Exit code of a run interrupted with resumable state on disk
 *  (EX_TEMPFAIL: "try again later"). */
constexpr int kExitResumable = 75;

/** The process-wide shutdown token cancelled by the handlers. */
CancelToken &shutdownToken();

/** Install the SIGINT/SIGTERM handlers (idempotent). */
void installShutdownHandlers();

/** True once a shutdown signal has been received. */
bool shutdownRequested();

/** The signal that requested shutdown, or 0. */
int shutdownSignal();

/** Re-arm after a handled shutdown (tests only). */
void clearShutdownRequest();

} // namespace unico::common

#endif // UNICO_COMMON_SHUTDOWN_HH
