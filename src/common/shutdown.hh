/**
 * @file
 * Signal-safe graceful-shutdown support, scoped per installation.
 *
 * A ShutdownScope registers SIGINT/SIGTERM handlers that do nothing
 * but cancel the process-wide shutdownToken() (a lock-free atomic
 * store, the only thing a handler may safely do). Long-running loops
 * poll the token at iteration boundaries, drain in-flight work,
 * persist a final checkpoint and exit with a distinct resumable
 * status code (kExitResumable) so supervisors can tell "interrupted,
 * resume me" from success and from hard failure.
 *
 * Installation is scoped and refcounted: nested scopes share one
 * handler installation, and when the last scope is destroyed the
 * previous sigactions are restored and the shutdown token re-armed —
 * so tests and embedding servers can install, tear down and
 * re-install any number of times in one process without leaking
 * handler state. The legacy installShutdownHandlers() entry point
 * takes a process-lifetime reference that is never released.
 *
 * Multi-tenant fan-out: job schedulers register one CancelToken per
 * job with registerShutdownToken(); the signal handler itself walks
 * the lock-free registration table and cancels every registered
 * token (CancelToken is all lock-free atomics, so this is
 * async-signal-safe — and starting no watcher thread keeps
 * single-threaded fork points such as the evaluation-fleet zygote
 * safe). Tokens registered after the signal arrived are cancelled
 * immediately.
 *
 * A second SIGINT/SIGTERM while a graceful shutdown is already in
 * progress hard-exits with the conventional 128+signum code: an
 * operator pressing Ctrl-C twice means *now*.
 */

#ifndef UNICO_COMMON_SHUTDOWN_HH
#define UNICO_COMMON_SHUTDOWN_HH

#include "common/cancel.hh"

namespace unico::common {

/** Exit code of a run interrupted with resumable state on disk
 *  (EX_TEMPFAIL: "try again later"). */
constexpr int kExitResumable = 75;

/** The process-wide shutdown token cancelled by the handlers. */
CancelToken &shutdownToken();

/**
 * Scoped SIGINT/SIGTERM handler installation. The first live scope
 * saves the previous sigactions and installs the shutdown handlers;
 * the last one restores them and re-arms the shutdown token. Scopes
 * may nest freely (refcounted); construction is idempotent in
 * effect.
 */
class ShutdownScope
{
  public:
    ShutdownScope();
    ~ShutdownScope();

    ShutdownScope(const ShutdownScope &) = delete;
    ShutdownScope &operator=(const ShutdownScope &) = delete;
};

/**
 * Fan-out registration: @p token is cancelled (CancelReason::Signal)
 * when a shutdown signal arrives — immediately at registration time
 * if one already has. The token must stay alive until unregistered.
 * Returns false when the fan-out table is full (the token will still
 * see shutdown if its owner also polls shutdownRequested()).
 */
bool registerShutdownToken(CancelToken &token);

/** Remove @p token from the fan-out table (idempotent). */
void unregisterShutdownToken(CancelToken &token);

/** Number of currently registered fan-out tokens (tests). */
std::size_t shutdownFanoutSize();

/**
 * Install the SIGINT/SIGTERM handlers for the remaining lifetime of
 * the process (legacy entry point; acquires one ShutdownScope
 * reference that is never released). Idempotent.
 */
void installShutdownHandlers();

/** True once a shutdown signal has been received. */
bool shutdownRequested();

/** The signal that requested shutdown, or 0. */
int shutdownSignal();

/** Re-arm after a handled shutdown (tests and long-lived servers). */
void clearShutdownRequest();

} // namespace unico::common

#endif // UNICO_COMMON_SHUTDOWN_HH
