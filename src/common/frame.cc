#include "common/frame.hh"

#include <cstring>

#include "common/crc64.hh"

namespace unico::common {

const char *
toString(FrameStatus status)
{
    switch (status) {
      case FrameStatus::Ok: return "ok";
      case FrameStatus::Eof: return "eof";
      case FrameStatus::Torn: return "torn";
      case FrameStatus::Corrupt: return "corrupt";
      case FrameStatus::Timeout: return "timeout";
      case FrameStatus::Error: return "error";
    }
    return "?";
}

namespace {

/** Append @p v as little-endian bytes (explicit, host-agnostic). */
void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

/** Validate a complete header; returns Ok or Corrupt. */
FrameStatus
checkHeader(const unsigned char *hdr, std::size_t max_payload,
            std::size_t &length, std::uint64_t &crc)
{
    if (getU32(hdr) != kFrameMagic)
        return FrameStatus::Corrupt;
    length = getU32(hdr + 4);
    if (length > max_payload)
        return FrameStatus::Corrupt;
    crc = getU64(hdr + 8);
    return FrameStatus::Ok;
}

} // namespace

std::string
encodeFrame(const std::string &payload)
{
    std::string out;
    out.reserve(kFrameHeaderSize + payload.size());
    putU32(out, kFrameMagic);
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    putU64(out, crc64(payload));
    out += payload;
    return out;
}

FrameStatus
decodeFrame(const std::string &bytes, std::size_t &offset,
            std::string &payload, std::size_t max_payload)
{
    const std::size_t avail = bytes.size() - offset;
    if (avail == 0)
        return FrameStatus::Eof;
    if (avail < kFrameHeaderSize)
        return FrameStatus::Torn;
    const auto *hdr =
        reinterpret_cast<const unsigned char *>(bytes.data() + offset);
    std::size_t length = 0;
    std::uint64_t want_crc = 0;
    if (checkHeader(hdr, max_payload, length, want_crc) !=
        FrameStatus::Ok)
        return FrameStatus::Corrupt;
    if (avail < kFrameHeaderSize + length)
        return FrameStatus::Torn;
    const char *body = bytes.data() + offset + kFrameHeaderSize;
    if (crc64(body, length) != want_crc)
        return FrameStatus::Corrupt;
    payload.assign(body, length);
    offset += kFrameHeaderSize + length;
    return FrameStatus::Ok;
}

FrameStatus
readFrame(int fd, std::string &payload, double deadline_seconds,
          std::size_t max_payload)
{
    // Convert to ONE absolute deadline up front: header and payload
    // reads share the budget, so a peer dribbling bytes cannot reset
    // the clock between transfers (the slow-loris hole).
    return readFrameUntil(fd, payload,
                          deadline_seconds > 0.0
                              ? monotonicNow() + deadline_seconds
                              : 0.0,
                          max_payload);
}

FrameStatus
readFrameUntil(int fd, std::string &payload, double deadline_monotonic,
               std::size_t max_payload)
{
    unsigned char hdr[kFrameHeaderSize];
    std::size_t got = 0;
    IoStatus st =
        readFullUntil(fd, hdr, sizeof(hdr), deadline_monotonic, &got);
    if (st == IoStatus::Eof)
        // EOF on a frame boundary is how a peer says goodbye; EOF
        // with header bytes already consumed is a torn message.
        return got == 0 ? FrameStatus::Eof : FrameStatus::Torn;
    if (st == IoStatus::Timeout)
        return FrameStatus::Timeout;
    if (st != IoStatus::Ok)
        return FrameStatus::Error;

    std::size_t length = 0;
    std::uint64_t want_crc = 0;
    if (checkHeader(hdr, max_payload, length, want_crc) !=
        FrameStatus::Ok)
        return FrameStatus::Corrupt;

    payload.resize(length);
    if (length > 0) {
        st = readFullUntil(fd, payload.data(), length,
                           deadline_monotonic, &got);
        if (st == IoStatus::Eof)
            return FrameStatus::Torn; // died mid-payload
        if (st == IoStatus::Timeout)
            return FrameStatus::Timeout;
        if (st != IoStatus::Ok)
            return FrameStatus::Error;
    }
    if (crc64(payload.data(), payload.size()) != want_crc)
        return FrameStatus::Corrupt;
    return FrameStatus::Ok;
}

IoStatus
writeFrame(int fd, const std::string &payload)
{
    return writeFull(fd, encodeFrame(payload));
}

IoStatus
writeFrameUntil(int fd, const std::string &payload,
                double deadline_monotonic)
{
    return writeFullUntil(fd, encodeFrame(payload),
                          deadline_monotonic);
}

} // namespace unico::common
