/**
 * @file
 * Sharded, mutex-striped LRU cache for evaluation memoization.
 *
 * UNICO's wall-clock cost is dominated by re-evaluating identical
 * (hardware, mapping, operator) triples: successive halving re-runs
 * surviving candidates round after round and multi-seed bench sweeps
 * repeat whole trials. The cache turns those repeats into hash
 * lookups. Keys are 128-bit canonical fingerprints built with
 * FingerprintBuilder; values are small PODs. Striping the key space
 * across independently locked shards keeps concurrent mapping-search
 * jobs from serializing on one mutex.
 *
 * Correctness contract for evaluation caching: the cache must sit
 * *below* any fault-injection layer (only fault-free model outputs
 * are stored) and a hit must charge the same nominal virtual cost as
 * the original computation, so search trajectories are bit-identical
 * with the cache on or off — only wall-clock changes.
 */

#ifndef UNICO_COMMON_SHARD_CACHE_HH
#define UNICO_COMMON_SHARD_CACHE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace unico::common {

/** A 128-bit content fingerprint (two independent 64-bit streams). */
struct Fingerprint
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Fingerprint &other) const = default;
};

/**
 * Incremental fingerprint construction over a canonical field
 * stream. Two FNV-1a-style accumulators with distinct offsets are
 * finalized through a splitmix64 avalanche, giving 128 well-mixed
 * bits; the probability of a collision among even billions of
 * distinct design points is negligible.
 *
 * Stability matters more than speed here: the byte stream is defined
 * purely by the order and values of add() calls, so a fingerprint is
 * reproducible across runs, platforms and thread schedules.
 */
class FingerprintBuilder
{
  public:
    FingerprintBuilder &
    add(std::uint64_t v)
    {
        a_ = mix(a_ ^ v);
        b_ = mix(b_ + (v ^ kStream2));
        return *this;
    }

    FingerprintBuilder &
    add(std::int64_t v)
    {
        return add(static_cast<std::uint64_t>(v));
    }

    FingerprintBuilder &
    add(int v)
    {
        return add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
    }

    FingerprintBuilder &
    add(bool v)
    {
        return add(static_cast<std::uint64_t>(v ? 1 : 2));
    }

    /** Doubles are hashed by bit pattern (exact, not approximate). */
    FingerprintBuilder &
    add(double v)
    {
        return add(std::bit_cast<std::uint64_t>(v));
    }

    FingerprintBuilder &
    add(std::string_view s)
    {
        add(static_cast<std::uint64_t>(s.size()));
        // Pack 8 bytes per mix step; the length prefix above keeps
        // concatenation ambiguities out of the stream.
        std::uint64_t word = 0;
        int n = 0;
        for (unsigned char c : s) {
            word = (word << 8) | c;
            if (++n == 8) {
                add(word);
                word = 0;
                n = 0;
            }
        }
        if (n > 0)
            add(word);
        return *this;
    }

    /** Fold an already-computed fingerprint into this stream. */
    FingerprintBuilder &
    add(const Fingerprint &fp)
    {
        return add(fp.hi).add(fp.lo);
    }

    Fingerprint
    fingerprint() const
    {
        return Fingerprint{mix(a_), mix(b_)};
    }

  private:
    /** splitmix64 finalizer (see mix64 below; duplicated here only
     *  because the free function is declared after this class). */
    static std::uint64_t
    mix(std::uint64_t z)
    {
        z += 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static constexpr std::uint64_t kStream2 = 0x6a09e667f3bcc908ULL;

    std::uint64_t a_ = 0xcbf29ce484222325ULL;
    std::uint64_t b_ = 0x84222325cbf29ce4ULL;
};

/** splitmix64 finalizer: full-avalanche 64-bit mix (shared by
 *  FingerprintBuilder and combine()). */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Canonical, order-sensitive combination of two fingerprints. Every
 *  cache key is built as combine(query context, mapping fingerprint),
 *  so decorator-level and model-level caching share entries. One
 *  combine runs per evaluation, warm or cold, so this is hot-path
 *  cost: both inputs are already finalized full-avalanche hashes, so
 *  one extra splitmix64 round per word suffices — each output word
 *  is a bijection of the corresponding @p b word for fixed @p a, so
 *  two keys under one context collide only if the mapping
 *  fingerprints collide in both words. Keys never leave the process
 *  (the eval cache and corpus tap are in-memory), so the scheme can
 *  evolve without a compatibility shim. */
inline Fingerprint
combine(const Fingerprint &a, const Fingerprint &b)
{
    return Fingerprint{mix64(a.hi + (b.hi ^ 0x6a09e667f3bcc908ULL)),
                       mix64(a.lo ^ (b.lo + 0xbb67ae8584caa73bULL))};
}

/** Aggregated cache counters (snapshot across all shards). */
struct CacheStats
{
    std::uint64_t hits = 0;       ///< lookups served from the cache
    std::uint64_t misses = 0;     ///< lookups that fell through
    std::uint64_t insertions = 0; ///< values stored
    std::uint64_t evictions = 0;  ///< LRU entries displaced
    std::uint64_t entries = 0;    ///< currently resident entries
    std::uint64_t bytes = 0;      ///< approximate resident bytes
    std::uint64_t capacityBytes = 0; ///< configured capacity
    std::uint64_t shards = 0;     ///< stripe count

    /** Per-shard eviction counts (index = shard); shows whether LRU
     *  pressure is spread evenly or one stripe is churning. */
    std::vector<std::uint64_t> shardEvictions;

    /** Training-corpus tap counters (zero when no tap is attached;
     *  filled from CorpusTap::stats() by whoever owns the tap). */
    std::uint64_t tapRows = 0;      ///< rows currently retained
    std::uint64_t tapAppends = 0;   ///< append() calls accepted
    std::uint64_t tapDuplicates = 0; ///< appends dropped as duplicate keys
    std::uint64_t tapDrops = 0;     ///< appends dropped at capacity
    std::uint64_t tapSnapshots = 0; ///< snapshot() calls served
    std::uint64_t tapStalls = 0;    ///< snapshots that contended with writers

    /** Hit fraction of all lookups (0 when none were made). */
    double
    hitRate() const
    {
        const std::uint64_t lookups = hits + misses;
        return lookups > 0
                   ? static_cast<double>(hits) /
                         static_cast<double>(lookups)
                   : 0.0;
    }
};

/** One-line digest ("cache: hits=... misses=... ..."). */
std::string toString(const CacheStats &stats);

/**
 * A fixed-capacity LRU cache striped over independently locked
 * shards.
 *
 * The shard is selected from the fingerprint's high bits, so entries
 * spread uniformly and two concurrent lookups rarely touch the same
 * mutex. Each shard runs its own LRU list bounded by an equal slice
 * of the byte capacity; per-entry cost is accounted as sizeof(Value)
 * plus key/node overhead. All operations are thread-safe; values are
 * returned by copy (they are small PODs by design).
 */
template <typename Value>
class ShardedLruCache
{
  public:
    /** Default stripe count; plenty for the host thread counts the
     *  driver uses while keeping empty-cache overhead tiny. */
    static constexpr std::size_t kDefaultShards = 16;

    /** Approximate resident bytes per entry (value + key + node and
     *  hash-table overhead). */
    static constexpr std::size_t
    entryBytes()
    {
        return sizeof(Value) + sizeof(Fingerprint) + 64;
    }

    /**
     * @param capacity_bytes total byte budget across shards; a zero
     *        capacity disables storage (every lookup misses).
     * @param shards stripe count (>= 1).
     */
    explicit ShardedLruCache(std::size_t capacity_bytes,
                             std::size_t shards = kDefaultShards)
        : capacityBytes_(capacity_bytes)
    {
        if (shards == 0)
            shards = 1;
        // Unused capacity slack goes to the first shard so tiny
        // capacities still admit at least one entry overall.
        const std::size_t per_shard_entries =
            capacity_bytes / entryBytes() / shards;
        const std::size_t remainder_entries =
            capacity_bytes / entryBytes() % shards;
        shards_.reserve(shards);
        for (std::size_t i = 0; i < shards; ++i) {
            auto shard = std::make_unique<Shard>();
            shard->maxEntries =
                per_shard_entries + (i < remainder_entries ? 1 : 0);
            shards_.push_back(std::move(shard));
        }
    }

    /** Look up @p key; refreshes LRU order on hit. */
    std::optional<Value>
    get(const Fingerprint &key)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            ++shard.misses;
            return std::nullopt;
        }
        ++shard.hits;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return it->second->second;
    }

    /** Insert or refresh @p key; evicts LRU entries at capacity. */
    void
    put(const Fingerprint &key, const Value &value)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.maxEntries == 0)
            return;
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            it->second->second = value;
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            return;
        }
        shard.lru.emplace_front(key, value);
        shard.map.emplace(key, shard.lru.begin());
        ++shard.insertions;
        while (shard.lru.size() > shard.maxEntries) {
            shard.map.erase(shard.lru.back().first);
            shard.lru.pop_back();
            ++shard.evictions;
        }
    }

    /** Aggregate counters across shards (momentary snapshot). */
    CacheStats
    stats() const
    {
        CacheStats s;
        s.capacityBytes = capacityBytes_;
        s.shards = shards_.size();
        s.shardEvictions.reserve(shards_.size());
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            s.hits += shard->hits;
            s.misses += shard->misses;
            s.insertions += shard->insertions;
            s.evictions += shard->evictions;
            s.entries += shard->lru.size();
            s.shardEvictions.push_back(shard->evictions);
        }
        s.bytes = s.entries * entryBytes();
        return s;
    }

    /** Drop every entry; counters are preserved. */
    void
    clear()
    {
        for (auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            shard->map.clear();
            shard->lru.clear();
        }
    }

    /** Configured byte capacity. */
    std::size_t capacityBytes() const { return capacityBytes_; }

  private:
    struct FingerprintHash
    {
        std::size_t
        operator()(const Fingerprint &fp) const
        {
            // Both words are already avalanched; fold them.
            return static_cast<std::size_t>(fp.hi ^
                                            (fp.lo * 0x9e3779b97f4a7c15ULL));
        }
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<std::pair<Fingerprint, Value>> lru; ///< front = MRU
        std::unordered_map<Fingerprint,
                           typename std::list<
                               std::pair<Fingerprint, Value>>::iterator,
                           FingerprintHash>
            map;
        std::size_t maxEntries = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
    };

    Shard &
    shardFor(const Fingerprint &key)
    {
        return *shards_[key.hi % shards_.size()];
    }

    std::size_t capacityBytes_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/** One training observation for the learned surrogate: the canonical
 *  evaluation fingerprint, the extracted feature vector and the exact
 *  targets (log-latency, log-energy, area, log-loss). */
struct CorpusRow
{
    Fingerprint key;
    std::vector<double> features;
    std::vector<double> targets;
};

/**
 * Thread-safe training-corpus tap fed by exact evaluations.
 *
 * The evaluation hot path calls append() — an O(1) push plus a
 * fingerprint dedup check under a single mutex held only for that
 * push, so concurrent evaluators are never stalled behind a reader:
 * snapshot() copies the rows under the same lock but is called at
 * refit cadence (rarely), and its contention is *observable* rather
 * than silent — a snapshot that finds the mutex held counts a stall
 * in TapStats before blocking.
 *
 * The tap is observability/offline-corpus plumbing only: the online
 * screens train on their own run-local exact evals so that fleet and
 * threaded runs stay byte-identical. snapshot() returns rows sorted
 * canonically by fingerprint so corpus dumps are reproducible across
 * thread schedules.
 */
class CorpusTap
{
  public:
    /** Aggregated tap counters (names mirror the CacheStats fields). */
    struct TapStats
    {
        std::uint64_t rows = 0;
        std::uint64_t appends = 0;
        std::uint64_t duplicates = 0;
        std::uint64_t drops = 0;
        std::uint64_t snapshots = 0;
        std::uint64_t stalls = 0;
    };

    /** Bounds retained rows; appends beyond it are counted and dropped
     *  (newest-loses keeps the retained set insertion-stable). */
    static constexpr std::size_t kDefaultMaxRows = 1 << 16;

    explicit CorpusTap(std::size_t max_rows = kDefaultMaxRows)
        : maxRows_(max_rows)
    {}

    /** Record one exact evaluation; duplicate keys are dropped. */
    void append(CorpusRow row);

    /** Copy of the retained rows, sorted by fingerprint (hi, lo). */
    std::vector<CorpusRow> snapshot() const;

    TapStats stats() const;

    /** Fold tap counters into a cache-stats snapshot for reporting. */
    void mergeInto(CacheStats &stats) const;

  private:
    struct FingerprintHash
    {
        std::size_t
        operator()(const Fingerprint &fp) const
        {
            return static_cast<std::size_t>(fp.hi ^
                                            (fp.lo * 0x9e3779b97f4a7c15ULL));
        }
    };

    mutable std::mutex mutex_;
    std::size_t maxRows_;
    std::vector<CorpusRow> rows_;
    std::unordered_map<Fingerprint, std::size_t, FingerprintHash> seen_;
    std::uint64_t appends_ = 0;
    std::uint64_t duplicates_ = 0;
    std::uint64_t drops_ = 0;
    mutable std::uint64_t snapshots_ = 0;
    mutable std::uint64_t stalls_ = 0;
};

} // namespace unico::common

#endif // UNICO_COMMON_SHARD_CACHE_HH
