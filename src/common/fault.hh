/**
 * @file
 * Deterministic, seeded fault-injection harness.
 *
 * A FaultPlan decides, for the i-th evaluation of a given evaluation
 * stream, whether that evaluation fails and how: a *transient* crash,
 * a *hang* (killed by the supervisor at its virtual-time deadline) or
 * a silently *corrupted* PPA result. Decisions are a pure function of
 * (plan seed, stream key, evaluation index), so an injected fault
 * pattern is bit-for-bit reproducible regardless of thread schedule
 * or retry interleaving — which is what makes every recovery path in
 * the driver testable and benchable.
 */

#ifndef UNICO_COMMON_FAULT_HH
#define UNICO_COMMON_FAULT_HH

#include <cstdint>
#include <string>

namespace unico::common {

/** What the injector does to one evaluation. */
enum class FaultKind {
    None,      ///< evaluation proceeds normally
    Transient, ///< evaluation crashes; no result, retryable
    Hang,      ///< evaluation never returns; supervisor timeout fires
    Corrupt,   ///< evaluation "succeeds" but the PPA is garbage
};

/** Human-readable fault-kind name. */
const char *toString(FaultKind kind);

/** Injection rates and supervisor-visible constants of a FaultPlan. */
struct FaultSpec
{
    double transientRate = 0.0; ///< P(transient crash) per evaluation
    double hangRate = 0.0;      ///< P(hang) per evaluation
    double corruptRate = 0.0;   ///< P(corrupted PPA) per evaluation
    /** Virtual seconds a hung evaluation costs: the supervisor's
     *  per-evaluation deadline, charged to the EvalClock when the
     *  watchdog kills the job. */
    double deadlineSeconds = 300.0;
    std::uint64_t seed = 0;     ///< fault-pattern seed

    /** True if any injection rate is non-zero. */
    bool
    active() const
    {
        return transientRate > 0.0 || hangRate > 0.0 ||
               corruptRate > 0.0;
    }
};

/**
 * Stateless fault oracle: decide(streamKey, evalIndex) maps every
 * (stream, index) pair to a FaultKind by hashing it together with
 * the plan seed. Rates are interpreted as independent per-evaluation
 * probabilities, with precedence hang > transient > corrupt when the
 * draw falls into an overlapping band (rates are summed, capped at
 * ~1).
 */
class FaultPlan
{
  public:
    FaultPlan() = default;
    explicit FaultPlan(FaultSpec spec) : spec_(spec) {}

    const FaultSpec &spec() const { return spec_; }

    /** True if this plan can ever inject a fault. */
    bool active() const { return spec_.active(); }

    /**
     * The fault (or not) injected into evaluation @p eval_index of
     * stream @p stream_key. Pure function: identical arguments always
     * give the identical decision.
     */
    FaultKind decide(std::uint64_t stream_key,
                     std::uint64_t eval_index) const;

    /** One-line human-readable description of the spec. */
    std::string describe() const;

  private:
    FaultSpec spec_;
};

} // namespace unico::common

#endif // UNICO_COMMON_FAULT_HH
