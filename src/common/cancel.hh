/**
 * @file
 * Cooperative cancellation token.
 *
 * A CancelToken carries one sticky cancellation request plus the
 * reason it was raised. Producers (signal handlers, the wall-clock
 * Watchdog, run-level deadlines) cancel it; consumers (the driver's
 * MOBO/SH loops, thread-pool jobs stepping a MappingRun) poll it at
 * cheap boundaries and wind down cooperatively. The first cancel
 * wins: a later cancel with a different reason does not overwrite
 * the recorded one.
 *
 * All operations are lock-free atomics, so cancel() is safe from a
 * POSIX signal handler (std::atomic<int> is async-signal-safe when
 * lock-free) and from the watchdog thread concurrently with polls.
 */

#ifndef UNICO_COMMON_CANCEL_HH
#define UNICO_COMMON_CANCEL_HH

#include <atomic>

namespace unico::common {

/** Why a token was cancelled. */
enum class CancelReason : int {
    None = 0,
    Signal,       ///< SIGINT/SIGTERM requested a graceful shutdown
    RunDeadline,  ///< whole-run wall-clock deadline expired
    EvalDeadline, ///< per-evaluation wall-clock deadline expired
    JobCancel,    ///< a job-manager client cancelled the job
};

/** Human-readable reason name. */
inline const char *
toString(CancelReason reason)
{
    switch (reason) {
      case CancelReason::None: return "none";
      case CancelReason::Signal: return "signal";
      case CancelReason::RunDeadline: return "wall-deadline";
      case CancelReason::EvalDeadline: return "eval-wall-deadline";
      case CancelReason::JobCancel: return "cancelled";
    }
    return "?";
}

/** Sticky, reason-carrying cancellation flag. */
class CancelToken
{
  public:
    /** Request cancellation; the first caller's reason sticks.
     *  @return true if this call performed the cancellation. */
    bool
    cancel(CancelReason reason)
    {
        int expected = 0;
        return reason_.compare_exchange_strong(
            expected, static_cast<int>(reason),
            std::memory_order_acq_rel, std::memory_order_acquire);
    }

    /** True once cancelled (any reason). */
    bool
    cancelled() const
    {
        return reason_.load(std::memory_order_acquire) != 0;
    }

    /** The recorded reason (None while not cancelled). */
    CancelReason
    reason() const
    {
        return static_cast<CancelReason>(
            reason_.load(std::memory_order_acquire));
    }

    /** Re-arm the token (owner only, with no concurrent producer). */
    void
    reset()
    {
        reason_.store(0, std::memory_order_release);
    }

  private:
    std::atomic<int> reason_{0};
};

} // namespace unico::common

#endif // UNICO_COMMON_CANCEL_HH
