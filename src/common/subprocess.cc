#include "common/subprocess.hh"

#if !defined(_WIN32)

#include <cerrno>
#include <csignal>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/io.hh"

namespace unico::common {

bool
sendFdMessage(int sock, int fd, std::uint64_t tag)
{
    struct msghdr msg = {};
    struct iovec iov = {};
    iov.iov_base = &tag;
    iov.iov_len = sizeof(tag);
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;

    alignas(struct cmsghdr) char ctrl[CMSG_SPACE(sizeof(int))] = {};
    msg.msg_control = ctrl;
    msg.msg_controllen = sizeof(ctrl);
    struct cmsghdr *cm = CMSG_FIRSTHDR(&msg);
    cm->cmsg_level = SOL_SOCKET;
    cm->cmsg_type = SCM_RIGHTS;
    cm->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(cm), &fd, sizeof(int));

    for (;;) {
        const ssize_t n = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
        if (n == static_cast<ssize_t>(sizeof(tag)))
            return true;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
}

bool
recvFdMessage(int sock, int &fd, std::uint64_t &tag,
              double deadline_seconds)
{
    if (waitReadable(sock, deadline_seconds) != IoStatus::Ok)
        return false;
    struct msghdr msg = {};
    struct iovec iov = {};
    iov.iov_base = &tag;
    iov.iov_len = sizeof(tag);
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(struct cmsghdr) char ctrl[CMSG_SPACE(sizeof(int))] = {};
    msg.msg_control = ctrl;
    msg.msg_controllen = sizeof(ctrl);

    ssize_t n;
    do {
        n = ::recvmsg(sock, &msg, 0);
    } while (n < 0 && errno == EINTR);
    if (n != static_cast<ssize_t>(sizeof(tag)))
        return false;
    const struct cmsghdr *cm = CMSG_FIRSTHDR(&msg);
    if (cm == nullptr || cm->cmsg_level != SOL_SOCKET ||
        cm->cmsg_type != SCM_RIGHTS ||
        cm->cmsg_len != CMSG_LEN(sizeof(int)))
        return false;
    std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
    setCloexec(fd);
    return true;
}

namespace {

/** Zygote main loop: fork a worker per 'S' command byte. Runs in the
 *  zygote process; never returns. */
[[noreturn]] void
zygoteServe(int control_fd, const std::function<void(int)> &serve)
{
    // Terminal signals target the whole foreground group; the fleet
    // winds down via EOF on its sockets, not via SIGINT races.
    ::signal(SIGINT, SIG_IGN);
    ::signal(SIGTERM, SIG_IGN);
    ::signal(SIGPIPE, SIG_IGN);
    // Kernel auto-reaps dead workers; the zygote never blocks in wait.
    ::signal(SIGCHLD, SIG_IGN);

    for (;;) {
        char cmd = 0;
        const IoStatus st = readFull(control_fd, &cmd, 1);
        if (st != IoStatus::Ok || cmd != 'S')
            _exit(0); // master closed the control socket (or garbage)

        int sv[2];
        if (!makeSocketPair(sv)) {
            if (!sendFdMessage(control_fd, control_fd, 0))
                _exit(0);
            continue;
        }
        const pid_t pid = ::fork();
        if (pid == 0) {
            // Worker: serve requests on its end until EOF.
            ::close(sv[0]);
            ::close(control_fd);
            serve(sv[1]);
            _exit(0);
        }
        ::close(sv[1]);
        if (pid < 0) {
            ::close(sv[0]);
            if (!sendFdMessage(control_fd, control_fd, 0))
                _exit(0);
            continue;
        }
        // tag 0 = spawn failed (the fd is a dummy the master closes).
        if (!sendFdMessage(control_fd, sv[0],
                           static_cast<std::uint64_t>(pid)))
            _exit(0);
        ::close(sv[0]); // master owns the surviving copy
    }
}

} // namespace

WorkerFactory::WorkerFactory(std::function<void(int)> child_serve)
{
    int sv[2];
    if (!makeSocketPair(sv))
        return;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        return;
    }
    if (pid == 0) {
        ::close(sv[0]);
        zygoteServe(sv[1], child_serve);
    }
    ::close(sv[1]);
    controlFd_ = sv[0];
    zygotePid_ = pid;
}

WorkerFactory::~WorkerFactory()
{
    if (controlFd_ >= 0)
        ::close(controlFd_);
    if (zygotePid_ > 0) {
        // The zygote exits on EOF; reap it so no zombie outlives us.
        int status = 0;
        pid_t r;
        do {
            r = ::waitpid(static_cast<pid_t>(zygotePid_), &status, 0);
        } while (r < 0 && errno == EINTR);
    }
}

bool
WorkerFactory::spawn(WorkerHandle &out, double deadline_seconds)
{
    if (controlFd_ < 0)
        return false;
    if (writeFull(controlFd_, "S", 1) != IoStatus::Ok) {
        ::close(controlFd_);
        controlFd_ = -1;
        return false;
    }
    int fd = -1;
    std::uint64_t tag = 0;
    if (!recvFdMessage(controlFd_, fd, tag, deadline_seconds)) {
        // Zygote died or hung: no further spawns are possible.
        ::close(controlFd_);
        controlFd_ = -1;
        return false;
    }
    if (tag == 0) {
        ::close(fd);
        return false;
    }
    out.pid = static_cast<std::int64_t>(tag);
    out.fd = fd;
    return true;
}

} // namespace unico::common

#endif // !_WIN32
