/**
 * @file
 * Deterministic pseudo-random number generation used throughout UNICO.
 *
 * All stochastic components of the framework (hardware sampling,
 * mapping search mutation, NSGA-II operators, ...) draw from an
 * explicitly seeded Rng so that every experiment in the paper
 * reproduction is bit-for-bit repeatable.
 */

#ifndef UNICO_COMMON_RNG_HH
#define UNICO_COMMON_RNG_HH

#include <cstdint>
#include <limits>
#include <vector>

namespace unico::common {

/**
 * SplitMix64 generator, used to expand a single 64-bit seed into the
 * state of the main xoshiro256** generator.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64 bits of the stream. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256** based random number generator with convenience helpers.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can be
 * used with standard <random> distributions if needed, but the
 * helpers below avoid the cross-platform nondeterminism of libstdc++
 * distribution implementations.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Raw 64 random bits. */
    result_type operator()() { return next(); }

    /** Raw 64 random bits. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal variate (Box-Muller, cached second value). */
    double gaussian();

    /** Normal variate with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with success probability p. */
    bool bernoulli(double p);

    /** Index drawn proportionally to non-negative weights. */
    std::size_t categorical(const std::vector<double> &weights);

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        if (v.size() < 2)
            return;
        for (std::size_t i = v.size() - 1; i > 0; --i) {
            std::size_t j = uniformInt(i + 1);
            std::swap(v[i], v[j]);
        }
    }

    /** Pick a uniformly random element (container must be non-empty). */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[uniformInt(v.size())];
    }

    /** Derive an independent child generator (for parallel jobs). */
    Rng split();

    /** Full generator state, for checkpoint/resume. */
    struct State
    {
        std::uint64_t s[4] = {0, 0, 0, 0};
        bool hasCachedGaussian = false;
        double cachedGaussian = 0.0;
    };

    /** Snapshot the generator state. */
    State
    saveState() const
    {
        State st;
        for (int i = 0; i < 4; ++i)
            st.s[i] = state_[i];
        st.hasCachedGaussian = hasCachedGaussian_;
        st.cachedGaussian = cachedGaussian_;
        return st;
    }

    /** Restore a snapshot taken with saveState(). */
    void
    restoreState(const State &st)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = st.s[i];
        hasCachedGaussian_ = st.hasCachedGaussian;
        cachedGaussian_ = st.cachedGaussian;
    }

  private:
    std::uint64_t state_[4];
    bool hasCachedGaussian_ = false;
    double cachedGaussian_ = 0.0;
};

} // namespace unico::common

#endif // UNICO_COMMON_RNG_HH
