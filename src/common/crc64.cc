#include "common/crc64.hh"

#include <array>

namespace unico::common {

namespace {

/** Reflected ECMA-182 polynomial (CRC-64/XZ). */
constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;

std::array<std::uint64_t, 256>
makeTable()
{
    std::array<std::uint64_t, 256> table{};
    for (std::uint64_t i = 0; i < 256; ++i) {
        std::uint64_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
        table[i] = crc;
    }
    return table;
}

} // namespace

std::uint64_t
crc64(const void *data, std::size_t len, std::uint64_t crc)
{
    static const std::array<std::uint64_t, 256> table = makeTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

} // namespace unico::common
