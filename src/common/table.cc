#include "common/table.hh"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace unico::common {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TableWriter::addRow(std::vector<std::string> row)
{
    assert(row.size() == headers_.size());
    rows_.push_back(std::move(row));
}

void
TableWriter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            os << " " << std::left << std::setw(static_cast<int>(width[c]))
               << row[c] << " |";
        os << "\n";
    };
    auto emit_rule = [&] {
        os << "+";
        for (std::size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c] + 2, '-') << "+";
        os << "\n";
    };

    emit_rule();
    emit_row(headers_);
    emit_rule();
    for (const auto &row : rows_)
        emit_row(row);
    emit_rule();
}

namespace {

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
TableWriter::printCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << csvEscape(headers_[c]);
    os << "\n";
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << csvEscape(row[c]);
        os << "\n";
    }
}

bool
TableWriter::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    printCsv(out);
    return static_cast<bool>(out);
}

std::string
TableWriter::num(double v, int precision)
{
    std::ostringstream oss;
    if (v != 0.0 && (std::fabs(v) < 1e-3 || std::fabs(v) >= 1e6)) {
        oss << std::scientific << std::setprecision(precision - 1) << v;
    } else {
        oss << std::fixed
            << std::setprecision(std::max(0, precision)) << v;
    }
    return oss.str();
}

std::string
TableWriter::num(long long v)
{
    return std::to_string(v);
}

} // namespace unico::common
