/**
 * @file
 * Length + CRC-64 framed message transport.
 *
 * The master/worker evaluation fleet exchanges request/response
 * payloads over byte streams (socketpairs today, TCP later). A frame
 * makes every message self-delimiting and self-checking, so the two
 * stream failure modes that matter — a *torn* message (peer died
 * mid-write, short read) and a *corrupt* message (bit damage, or a
 * desynchronized stream after a partial read) — are detected at the
 * transport layer and classified before any payload byte is trusted.
 *
 * Wire format, fixed little-endian so the protocol stays
 * host-agnostic for the multi-host step:
 *
 *   offset  size  field
 *        0     4  magic "UFR1"
 *        4     4  payload length (bytes, u32 LE)
 *        8     8  CRC-64/XZ of the payload (u64 LE)
 *       16     n  payload bytes
 */

#ifndef UNICO_COMMON_FRAME_HH
#define UNICO_COMMON_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/io.hh"

namespace unico::common {

/** Outcome of reading one frame from a stream or buffer. */
enum class FrameStatus {
    Ok,      ///< full frame received, CRC verified
    Eof,     ///< clean close exactly on a frame boundary
    Torn,    ///< stream ended mid-header or mid-payload
    Corrupt, ///< bad magic, insane length, or CRC mismatch
    Timeout, ///< deadline expired before the frame completed
    Error,   ///< I/O error (errno is set)
};

/** Human-readable status name. */
const char *toString(FrameStatus status);

/** Fixed header size in bytes. */
inline constexpr std::size_t kFrameHeaderSize = 16;

/** Frame magic ("UFR1", little-endian). */
inline constexpr std::uint32_t kFrameMagic = 0x31524655u;

/** Default sanity cap on payload size (16 MiB). A corrupted length
 *  field must not make the receiver allocate gigabytes. */
inline constexpr std::size_t kFrameMaxPayload = 16u << 20;

/** Serialize @p payload into one wire frame. */
std::string encodeFrame(const std::string &payload);

/**
 * Decode one frame from @p bytes starting at @p offset.
 *
 * On Ok, @p payload receives the message and @p offset advances past
 * the frame. On Torn (buffer ends mid-frame) and Corrupt, @p offset
 * is left unchanged. Eof means @p offset was already at the end.
 * This buffer-level decoder is the unit-testable core; the fd reader
 * below applies the same classification to live streams.
 */
FrameStatus decodeFrame(const std::string &bytes, std::size_t &offset,
                        std::string &payload,
                        std::size_t max_payload = kFrameMaxPayload);

/**
 * Read one complete frame from @p fd, EINTR-safe, bounded by ONE
 * @p deadline_seconds budget across the whole frame — header and
 * payload share the same clock, so a slow-loris peer dribbling one
 * byte per wait cannot stretch a frame past the deadline (<= 0 waits
 * forever). EOF before the first header byte is a clean Eof; EOF
 * anywhere inside a frame is Torn.
 */
FrameStatus readFrame(int fd, std::string &payload,
                      double deadline_seconds = 0.0,
                      std::size_t max_payload = kFrameMaxPayload);

/**
 * readFrame against an *absolute* monotonicNow()-based deadline
 * (<= 0 waits forever), so a request round-trip can hand the frame
 * read whatever budget remains after the write.
 */
FrameStatus readFrameUntil(int fd, std::string &payload,
                           double deadline_monotonic,
                           std::size_t max_payload = kFrameMaxPayload);

/** Write one frame; Eof reports a dead peer (EPIPE). */
IoStatus writeFrame(int fd, const std::string &payload);

/** writeFrame against an absolute monotonicNow()-based deadline
 *  (<= 0 waits forever); Timeout means the peer stopped draining. */
IoStatus writeFrameUntil(int fd, const std::string &payload,
                         double deadline_monotonic);

} // namespace unico::common

#endif // UNICO_COMMON_FRAME_HH
