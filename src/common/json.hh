/**
 * @file
 * Minimal JSON value type, parser and serializer.
 *
 * Used for the driver's checkpoint files (see core/checkpoint.hh).
 * Deliberately tiny: objects are ordered maps (deterministic dumps),
 * numbers are doubles printed with 17 significant digits so they
 * round-trip IEEE-754 exactly, and 64-bit integers that do not fit a
 * double (RNG state, seeds) are stored as hex strings by the caller.
 * No external dependency.
 */

#ifndef UNICO_COMMON_JSON_HH
#define UNICO_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace unico::common {

/** A JSON document node. */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double v) : type_(Type::Number), number_(v) {}
    Json(int v) : type_(Type::Number), number_(v) {}
    Json(std::int64_t v)
        : type_(Type::Number), number_(static_cast<double>(v))
    {}
    Json(std::size_t v)
        : type_(Type::Number), number_(static_cast<double>(v))
    {}
    Json(const char *s) : type_(Type::String), string_(s) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}

    /** An empty array / object literal. */
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; throw std::runtime_error on type mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::int64_t asInt() const;
    const std::string &asString() const;

    /** Array helpers. */
    std::size_t size() const;
    const Json &at(std::size_t i) const;
    void push(Json v);

    /** Object helpers. */
    bool has(const std::string &key) const;
    /** Object member; throws when absent (const) or inserts (non-const). */
    const Json &at(const std::string &key) const;
    Json &operator[](const std::string &key);
    const std::map<std::string, Json> &members() const;

    /** Serialize; @p indent > 0 pretty-prints. */
    std::string dump(int indent = 0) const;

    /** Parse a document; throws std::runtime_error on malformed input. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::map<std::string, Json> object_;
};

/** Hex encoding for 64-bit values that do not fit a JSON double. */
std::string hexU64(std::uint64_t v);
std::uint64_t parseHexU64(const std::string &s);

/**
 * Bit-exact double encoding (hex of the IEEE-754 bit pattern). Used
 * by the fleet wire protocol, where values must round-trip exactly
 * for byte-identical trajectories — including NaN/Inf, which plain
 * JSON numbers cannot carry at all.
 */
std::string hexDouble(double v);
double doubleFromHex(const std::string &s);

} // namespace unico::common

#endif // UNICO_COMMON_JSON_HH
