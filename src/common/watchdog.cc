#include "common/watchdog.hh"

#include <algorithm>
#include <vector>

namespace unico::common {

Watchdog::Watchdog() : thread_([this] { loop(); })
{
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    thread_.join();
}

std::uint64_t
Watchdog::watch(CancelToken &token, double seconds, CancelReason reason)
{
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               std::max(seconds, 0.0)));
    std::uint64_t id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        id = nextId_++;
        entries_.emplace(id, Entry{deadline, &token, reason});
    }
    wake_.notify_all();
    return id;
}

bool
Watchdog::release(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Expiry erases the entry under the same mutex, so presence here
    // proves the deadline has not fired and never will.
    return entries_.erase(id) > 0;
}

std::size_t
Watchdog::armed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
Watchdog::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        if (entries_.empty()) {
            wake_.wait(lock,
                       [this] { return stopping_ || !entries_.empty(); });
            continue;
        }
        auto earliest = Clock::time_point::max();
        for (const auto &[id, entry] : entries_)
            earliest = std::min(earliest, entry.deadline);
        if (wake_.wait_until(lock, earliest, [this, earliest] {
                if (stopping_)
                    return true;
                for (const auto &[id, entry] : entries_)
                    if (entry.deadline < earliest)
                        return true;
                return false;
            })) {
            continue; // stop requested or an earlier deadline arrived
        }
        const auto now = Clock::now();
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (it->second.deadline <= now) {
                it->second.token->cancel(it->second.reason);
                it = entries_.erase(it);
            } else {
                ++it;
            }
        }
    }
}

} // namespace unico::common
