#include "common/shutdown.hh"

#include <atomic>
#include <csignal>
#include <cstddef>
#include <mutex>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace unico::common {

namespace {

/** Signal number that requested shutdown (0 = none). Written only
 *  from the handler; sig_atomic_t keeps the store itself safe even
 *  where atomics are not lock-free. */
volatile std::sig_atomic_t g_signal = 0;

/**
 * Fan-out table: fixed-size array of lock-free token slots so the
 * signal handler can walk it without taking a lock. CancelToken is
 * all lock-free atomics, so cancelling one from a handler is safe.
 * Registration/unregistration are CAS/store on the slot pointers; a
 * token must outlive its unregistration (the handler may have loaded
 * the pointer just before the slot was cleared).
 */
constexpr std::size_t kFanoutSlots = 256;
std::atomic<CancelToken *> g_fanout[kFanoutSlots] = {};

void
fanOutShutdown()
{
    for (auto &slot : g_fanout) {
        CancelToken *token = slot.load(std::memory_order_acquire);
        if (token != nullptr)
            token->cancel(CancelReason::Signal);
    }
}

void
onShutdownSignal(int sig)
{
    if (shutdownToken().cancel(CancelReason::Signal)) {
        g_signal = sig;
        fanOutShutdown();
        return;
    }
    // Second signal while draining: the operator wants out *now*.
    // _exit is async-signal-safe; 128+signum is the shell convention.
#if defined(_WIN32)
    std::_Exit(128 + sig);
#else
    _exit(128 + sig);
#endif
}

/** Scope bookkeeping (normal-context only, never touched by the
 *  handler): refcount plus the sigactions to restore on teardown. */
std::mutex g_scope_mutex;
int g_scope_refs = 0;
#if !defined(_WIN32)
struct sigaction g_prev_int;
struct sigaction g_prev_term;
#else
void (*g_prev_int)(int) = SIG_DFL;
void (*g_prev_term)(int) = SIG_DFL;
#endif

void
installHandlers()
{
#if defined(_WIN32)
    g_prev_int = std::signal(SIGINT, onShutdownSignal);
    g_prev_term = std::signal(SIGTERM, onShutdownSignal);
#else
    struct sigaction sa = {};
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: interrupt blocking syscalls too
    sigaction(SIGINT, &sa, &g_prev_int);
    sigaction(SIGTERM, &sa, &g_prev_term);
#endif
}

void
restoreHandlers()
{
#if defined(_WIN32)
    std::signal(SIGINT, g_prev_int);
    std::signal(SIGTERM, g_prev_term);
#else
    sigaction(SIGINT, &g_prev_int, nullptr);
    sigaction(SIGTERM, &g_prev_term, nullptr);
#endif
}

} // namespace

CancelToken &
shutdownToken()
{
    static CancelToken token;
    return token;
}

ShutdownScope::ShutdownScope()
{
    std::lock_guard<std::mutex> lock(g_scope_mutex);
    if (g_scope_refs++ == 0)
        installHandlers();
}

ShutdownScope::~ShutdownScope()
{
    std::lock_guard<std::mutex> lock(g_scope_mutex);
    if (--g_scope_refs == 0) {
        restoreHandlers();
        // Re-arm for the next installation: a handled (or never
        // delivered) shutdown must not leak into a later scope.
        g_signal = 0;
        shutdownToken().reset();
    }
}

bool
registerShutdownToken(CancelToken &token)
{
    for (auto &slot : g_fanout) {
        CancelToken *expected = nullptr;
        if (slot.compare_exchange_strong(expected, &token,
                                         std::memory_order_acq_rel)) {
            // A signal that arrived before (or during) registration
            // must still reach this token.
            if (shutdownToken().cancelled())
                token.cancel(CancelReason::Signal);
            return true;
        }
    }
    return false;
}

void
unregisterShutdownToken(CancelToken &token)
{
    for (auto &slot : g_fanout) {
        CancelToken *expected = &token;
        slot.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel);
    }
}

std::size_t
shutdownFanoutSize()
{
    std::size_t n = 0;
    for (auto &slot : g_fanout)
        if (slot.load(std::memory_order_acquire) != nullptr)
            ++n;
    return n;
}

void
installShutdownHandlers()
{
    // Process-lifetime reference: acquire once, never release.
    static ShutdownScope *forever = nullptr;
    std::lock_guard<std::mutex> lock(g_scope_mutex);
    if (forever == nullptr) {
        if (g_scope_refs++ == 0)
            installHandlers();
        // Mark held without constructing a real scope (the lock is
        // already ours and ~ShutdownScope must never run for it).
        forever = reinterpret_cast<ShutdownScope *>(&g_scope_refs);
    }
}

bool
shutdownRequested()
{
    return shutdownToken().cancelled();
}

int
shutdownSignal()
{
    return static_cast<int>(g_signal);
}

void
clearShutdownRequest()
{
    g_signal = 0;
    shutdownToken().reset();
}

} // namespace unico::common
