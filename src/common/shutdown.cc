#include "common/shutdown.hh"

#include <csignal>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace unico::common {

namespace {

/** Signal number that requested shutdown (0 = none). Written only
 *  from the handler; sig_atomic_t keeps the store itself safe even
 *  where atomics are not lock-free. */
volatile std::sig_atomic_t g_signal = 0;

void
onShutdownSignal(int sig)
{
    if (shutdownToken().cancel(CancelReason::Signal)) {
        g_signal = sig;
        return;
    }
    // Second signal while draining: the operator wants out *now*.
    // _exit is async-signal-safe; 128+signum is the shell convention.
#if defined(_WIN32)
    std::_Exit(128 + sig);
#else
    _exit(128 + sig);
#endif
}

} // namespace

CancelToken &
shutdownToken()
{
    static CancelToken token;
    return token;
}

void
installShutdownHandlers()
{
#if defined(_WIN32)
    std::signal(SIGINT, onShutdownSignal);
    std::signal(SIGTERM, onShutdownSignal);
#else
    struct sigaction sa = {};
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: interrupt blocking syscalls too
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
#endif
}

bool
shutdownRequested()
{
    return shutdownToken().cancelled();
}

int
shutdownSignal()
{
    return static_cast<int>(g_signal);
}

void
clearShutdownRequest()
{
    g_signal = 0;
    shutdownToken().reset();
}

} // namespace unico::common
