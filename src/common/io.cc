#include "common/io.hh"

#include <cerrno>

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <time.h>
#include <unistd.h>
#endif

namespace unico::common {

const char *
toString(IoStatus status)
{
    switch (status) {
      case IoStatus::Ok: return "ok";
      case IoStatus::Eof: return "eof";
      case IoStatus::Timeout: return "timeout";
      case IoStatus::Error: return "error";
    }
    return "?";
}

#if defined(_WIN32)

// The evaluation fleet is POSIX-only; the helpers exist on Windows so
// common code links, but always report failure.
IoStatus
readFull(int, void *, std::size_t, std::size_t *got)
{
    if (got)
        *got = 0;
    return IoStatus::Error;
}

IoStatus
writeFull(int, const void *, std::size_t)
{
    return IoStatus::Error;
}

IoStatus
waitReadable(int, double)
{
    return IoStatus::Error;
}

IoStatus
readFullDeadline(int, void *, std::size_t, double, std::size_t *got)
{
    if (got)
        *got = 0;
    return IoStatus::Error;
}

bool
setCloexec(int, bool)
{
    return false;
}

bool
makeSocketPair(int[2])
{
    return false;
}

#else

namespace {

/** Monotonic now in seconds (immune to wall-clock steps). */
double
monotonicSeconds()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** One read(2)/recv(2) attempt; callers loop. */
ssize_t
readOnce(int fd, void *buf, std::size_t len)
{
    return ::read(fd, buf, len);
}

} // namespace

IoStatus
readFull(int fd, void *buf, std::size_t len, std::size_t *got)
{
    std::size_t off = 0;
    char *p = static_cast<char *>(buf);
    while (off < len) {
        const ssize_t n = readOnce(fd, p + off, len - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            if (got)
                *got = off;
            return IoStatus::Eof;
        }
        if (errno == EINTR)
            continue;
        if (got)
            *got = off;
        return IoStatus::Error;
    }
    if (got)
        *got = off;
    return IoStatus::Ok;
}

IoStatus
writeFull(int fd, const void *buf, std::size_t len)
{
    std::size_t off = 0;
    const char *p = static_cast<const char *>(buf);
    while (off < len) {
        // Try send(MSG_NOSIGNAL) first so writes to a dead socket peer
        // raise EPIPE instead of SIGPIPE; fall back to write(2) for
        // plain pipes/files (send fails with ENOTSOCK there).
        ssize_t n = ::send(fd, p + off, len - off, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, p + off, len - off);
        if (n >= 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        return errno == EPIPE ? IoStatus::Eof : IoStatus::Error;
    }
    return IoStatus::Ok;
}

IoStatus
writeFull(int fd, const std::string &bytes)
{
    return writeFull(fd, bytes.data(), bytes.size());
}

IoStatus
waitReadable(int fd, double deadline_seconds)
{
    const bool bounded = deadline_seconds > 0.0;
    const double deadline =
        bounded ? monotonicSeconds() + deadline_seconds : 0.0;
    for (;;) {
        int timeout_ms = -1;
        if (bounded) {
            const double left = deadline - monotonicSeconds();
            if (left <= 0.0)
                return IoStatus::Timeout;
            timeout_ms = static_cast<int>(left * 1000.0) + 1;
        }
        struct pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int r = ::poll(&pfd, 1, timeout_ms);
        if (r > 0)
            return IoStatus::Ok; // readable or HUP; read resolves it
        if (r == 0)
            return IoStatus::Timeout;
        if (errno == EINTR)
            continue;
        return IoStatus::Error;
    }
}

IoStatus
readFullDeadline(int fd, void *buf, std::size_t len,
                 double deadline_seconds, std::size_t *got)
{
    const bool bounded = deadline_seconds > 0.0;
    const double deadline =
        bounded ? monotonicSeconds() + deadline_seconds : 0.0;
    std::size_t off = 0;
    char *p = static_cast<char *>(buf);
    while (off < len) {
        const double left =
            bounded ? deadline - monotonicSeconds() : 0.0;
        if (bounded && left <= 0.0) {
            if (got)
                *got = off;
            return IoStatus::Timeout;
        }
        const IoStatus ready = waitReadable(fd, bounded ? left : 0.0);
        if (ready != IoStatus::Ok) {
            if (got)
                *got = off;
            return ready;
        }
        const ssize_t n = readOnce(fd, p + off, len - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            if (got)
                *got = off;
            return IoStatus::Eof;
        }
        if (errno == EINTR || errno == EAGAIN)
            continue;
        if (got)
            *got = off;
        return IoStatus::Error;
    }
    if (got)
        *got = off;
    return IoStatus::Ok;
}

bool
setCloexec(int fd, bool enable)
{
    const int flags = ::fcntl(fd, F_GETFD);
    if (flags < 0)
        return false;
    const int next =
        enable ? (flags | FD_CLOEXEC) : (flags & ~FD_CLOEXEC);
    return ::fcntl(fd, F_SETFD, next) == 0;
}

bool
makeSocketPair(int fds[2])
{
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        return false;
    setCloexec(fds[0]);
    setCloexec(fds[1]);
    return true;
}

#endif // !_WIN32

} // namespace unico::common
