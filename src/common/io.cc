#include "common/io.hh"

#include <cerrno>

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <time.h>
#include <unistd.h>
#endif

namespace unico::common {

const char *
toString(IoStatus status)
{
    switch (status) {
      case IoStatus::Ok: return "ok";
      case IoStatus::Eof: return "eof";
      case IoStatus::Timeout: return "timeout";
      case IoStatus::Error: return "error";
    }
    return "?";
}

#if defined(_WIN32)

// The evaluation fleet is POSIX-only; the helpers exist on Windows so
// common code links, but always report failure.
double
monotonicNow()
{
    return 0.0;
}

IoStatus
readFull(int, void *, std::size_t, std::size_t *got)
{
    if (got)
        *got = 0;
    return IoStatus::Error;
}

IoStatus
writeFull(int, const void *, std::size_t)
{
    return IoStatus::Error;
}

IoStatus
writeFull(int, const std::string &)
{
    return IoStatus::Error;
}

IoStatus
waitReadable(int, double)
{
    return IoStatus::Error;
}

IoStatus
waitWritable(int, double)
{
    return IoStatus::Error;
}

IoStatus
readFullDeadline(int, void *, std::size_t, double, std::size_t *got)
{
    if (got)
        *got = 0;
    return IoStatus::Error;
}

IoStatus
readFullUntil(int, void *, std::size_t, double, std::size_t *got)
{
    if (got)
        *got = 0;
    return IoStatus::Error;
}

IoStatus
writeFullUntil(int, const void *, std::size_t, double)
{
    return IoStatus::Error;
}

IoStatus
writeFullUntil(int, const std::string &, double)
{
    return IoStatus::Error;
}

bool
setNonblocking(int, bool)
{
    return false;
}

bool
setCloexec(int, bool)
{
    return false;
}

bool
makeSocketPair(int[2])
{
    return false;
}

#else

double
monotonicNow()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

namespace {

/** One read(2)/recv(2) attempt; callers loop. */
ssize_t
readOnce(int fd, void *buf, std::size_t len)
{
    return ::read(fd, buf, len);
}

/** One poll(2) wait for @p events against an absolute deadline
 *  (<= 0 waits forever); the building block of both public waits. */
IoStatus
waitUntil(int fd, short events, double deadline_monotonic)
{
    const bool bounded = deadline_monotonic > 0.0;
    for (;;) {
        int timeout_ms = -1;
        if (bounded) {
            const double left = deadline_monotonic - monotonicNow();
            if (left <= 0.0)
                return IoStatus::Timeout;
            timeout_ms = static_cast<int>(left * 1000.0) + 1;
        }
        struct pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = events;
        const int r = ::poll(&pfd, 1, timeout_ms);
        if (r > 0)
            return IoStatus::Ok; // ready or HUP; the transfer resolves it
        if (r == 0)
            return IoStatus::Timeout;
        if (errno == EINTR)
            continue;
        return IoStatus::Error;
    }
}

} // namespace

IoStatus
readFull(int fd, void *buf, std::size_t len, std::size_t *got)
{
    // Unbounded read = absolute-deadline read with no deadline.
    return readFullUntil(fd, buf, len, 0.0, got);
}

IoStatus
writeFull(int fd, const void *buf, std::size_t len)
{
    return writeFullUntil(fd, buf, len, 0.0);
}

IoStatus
writeFull(int fd, const std::string &bytes)
{
    return writeFullUntil(fd, bytes.data(), bytes.size(), 0.0);
}

IoStatus
waitReadable(int fd, double deadline_seconds)
{
    return waitUntil(fd, POLLIN,
                     deadline_seconds > 0.0
                         ? monotonicNow() + deadline_seconds
                         : 0.0);
}

IoStatus
waitWritable(int fd, double deadline_seconds)
{
    return waitUntil(fd, POLLOUT,
                     deadline_seconds > 0.0
                         ? monotonicNow() + deadline_seconds
                         : 0.0);
}

IoStatus
readFullDeadline(int fd, void *buf, std::size_t len,
                 double deadline_seconds, std::size_t *got)
{
    return readFullUntil(fd, buf, len,
                         deadline_seconds > 0.0
                             ? monotonicNow() + deadline_seconds
                             : 0.0,
                         got);
}

IoStatus
readFullUntil(int fd, void *buf, std::size_t len,
              double deadline_monotonic, std::size_t *got)
{
    const bool bounded = deadline_monotonic > 0.0;
    std::size_t off = 0;
    char *p = static_cast<char *>(buf);
    while (off < len) {
        if (bounded) {
            // Wait-first so the deadline binds even on BLOCKING fds
            // (a bare read would sleep past it); on a readable fd the
            // poll returns immediately.
            const IoStatus ready =
                waitUntil(fd, POLLIN, deadline_monotonic);
            if (ready != IoStatus::Ok) {
                if (got)
                    *got = off;
                return ready;
            }
        }
        const ssize_t n = readOnce(fd, p + off, len - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            if (got)
                *got = off;
            return IoStatus::Eof;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            const IoStatus ready =
                waitUntil(fd, POLLIN, deadline_monotonic);
            if (ready != IoStatus::Ok) {
                if (got)
                    *got = off;
                return ready;
            }
            continue;
        }
        if (got)
            *got = off;
        return IoStatus::Error;
    }
    if (bounded && monotonicNow() > deadline_monotonic && len == 0) {
        // Degenerate zero-length transfer past its deadline still
        // reports Timeout so callers never mistake it for progress.
        return IoStatus::Timeout;
    }
    if (got)
        *got = off;
    return IoStatus::Ok;
}

IoStatus
writeFullUntil(int fd, const void *buf, std::size_t len,
               double deadline_monotonic)
{
    const bool bounded = deadline_monotonic > 0.0;
    std::size_t off = 0;
    const char *p = static_cast<const char *>(buf);
    while (off < len) {
        if (bounded) {
            // Wait-first: bounds the stall on blocking fds too (a
            // fully nonblocking fd would surface it as EAGAIN below,
            // but fleet channels must not depend on fd flags).
            const IoStatus ready =
                waitUntil(fd, POLLOUT, deadline_monotonic);
            if (ready != IoStatus::Ok)
                return ready;
        }
        // Try send(MSG_NOSIGNAL) first so writes to a dead socket peer
        // raise EPIPE instead of SIGPIPE; fall back to write(2) for
        // plain pipes/files (send fails with ENOTSOCK there).
        ssize_t n = ::send(fd, p + off, len - off, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, p + off, len - off);
        if (n >= 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            const IoStatus ready =
                waitUntil(fd, POLLOUT, deadline_monotonic);
            if (ready != IoStatus::Ok)
                return ready;
            continue;
        }
        return errno == EPIPE ? IoStatus::Eof : IoStatus::Error;
    }
    return IoStatus::Ok;
}

IoStatus
writeFullUntil(int fd, const std::string &bytes,
               double deadline_monotonic)
{
    return writeFullUntil(fd, bytes.data(), bytes.size(),
                          deadline_monotonic);
}

bool
setNonblocking(int fd, bool enable)
{
    const int flags = ::fcntl(fd, F_GETFL);
    if (flags < 0)
        return false;
    const int next =
        enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    return ::fcntl(fd, F_SETFL, next) == 0;
}

bool
setCloexec(int fd, bool enable)
{
    const int flags = ::fcntl(fd, F_GETFD);
    if (flags < 0)
        return false;
    const int next =
        enable ? (flags | FD_CLOEXEC) : (flags & ~FD_CLOEXEC);
    return ::fcntl(fd, F_SETFD, next) == 0;
}

bool
makeSocketPair(int fds[2])
{
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        return false;
    setCloexec(fds[0]);
    setCloexec(fds[1]);
    return true;
}

#endif // !_WIN32

} // namespace unico::common
