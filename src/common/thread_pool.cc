#include "common/thread_pool.hh"

namespace unico::common {

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wakeWorker_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    wakeWorker_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
}

std::vector<std::exception_ptr>
ThreadPool::drainFailures()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::exception_ptr> out;
    out.swap(failures_);
    return out;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeWorker_.wait(lock,
                             [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            job = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        std::exception_ptr failure;
        try {
            job();
        } catch (...) {
            failure = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (failure)
                failures_.push_back(std::move(failure));
            --inFlight_;
            if (queue_.empty() && inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

void
ThreadPool::Batch::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
    }
    pool_.submit([this, job = std::move(job)] {
        std::exception_ptr failure;
        try {
            job();
        } catch (...) {
            failure = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (failure)
            failures_.push_back(std::move(failure));
        if (--pending_ == 0)
            done_.notify_all();
    });
}

void
ThreadPool::Batch::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
}

std::vector<std::exception_ptr>
ThreadPool::Batch::drainFailures()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::exception_ptr> out;
    out.swap(failures_);
    return out;
}

void
runParallel(const std::vector<std::function<void()>> &jobs,
            std::size_t threads, const CancelToken *cancel)
{
    if (threads <= 1) {
        std::exception_ptr first;
        for (const auto &job : jobs) {
            if (cancel != nullptr && cancel->cancelled())
                break;
            try {
                job();
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
        return;
    }
    ThreadPool pool(threads);
    runParallel(jobs, pool, cancel);
}

void
runParallel(const std::vector<std::function<void()>> &jobs,
            ThreadPool &pool, const CancelToken *cancel)
{
    ThreadPool::Batch batch(pool);
    for (const auto &job : jobs) {
        if (cancel == nullptr) {
            batch.submit(job);
        } else {
            // The skip decision happens when the job is *dequeued*:
            // a cancellation during the batch drains the queue
            // without starting new work.
            batch.submit([&job, cancel] {
                if (!cancel->cancelled())
                    job();
            });
        }
    }
    batch.wait();
    const auto failures = batch.drainFailures();
    if (!failures.empty())
        std::rethrow_exception(failures.front());
}

std::vector<JobOutcome>
runParallelCaptured(const std::vector<std::function<void()>> &jobs,
                    std::size_t threads)
{
    std::vector<JobOutcome> outcomes(jobs.size(),
                                     JobOutcome::success(true));
    std::vector<std::function<void()>> wrapped;
    wrapped.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        wrapped.push_back([&jobs, &outcomes, i] {
            try {
                jobs[i]();
            } catch (const EvalFault &f) {
                outcomes[i] = JobOutcome::failure(f.status(), f.what());
            } catch (const std::exception &e) {
                outcomes[i] =
                    JobOutcome::failure(EvalStatus::Fatal, e.what());
            } catch (...) {
                outcomes[i] = JobOutcome::failure(
                    EvalStatus::Fatal, "unknown exception");
            }
        });
    }
    // Wrapped jobs never throw, so runParallel cannot rethrow here.
    runParallel(wrapped, threads);
    return outcomes;
}

} // namespace unico::common
