#include "common/thread_pool.hh"

namespace unico::common {

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wakeWorker_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    wakeWorker_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeWorker_.wait(lock,
                             [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            job = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (queue_.empty() && inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

void
runParallel(const std::vector<std::function<void()>> &jobs,
            std::size_t threads)
{
    if (threads <= 1) {
        for (const auto &job : jobs)
            job();
        return;
    }
    ThreadPool pool(threads);
    for (const auto &job : jobs)
        pool.submit(job);
    pool.waitIdle();
}

} // namespace unico::common
