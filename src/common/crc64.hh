/**
 * @file
 * CRC-64 (ECMA-182 polynomial, XZ variant: reflected, inverted) for
 * checkpoint integrity trailers. A truncated or bit-flipped
 * checkpoint must be *detected* at load so resume can fall back to
 * the previous rotated generation instead of silently restoring
 * garbage state.
 */

#ifndef UNICO_COMMON_CRC64_HH
#define UNICO_COMMON_CRC64_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace unico::common {

/** CRC-64/XZ of @p len bytes, continuing from @p crc (0 to start). */
std::uint64_t crc64(const void *data, std::size_t len,
                    std::uint64_t crc = 0);

/** Convenience overload over a string's bytes. */
inline std::uint64_t
crc64(const std::string &s, std::uint64_t crc = 0)
{
    return crc64(s.data(), s.size(), crc);
}

} // namespace unico::common

#endif // UNICO_COMMON_CRC64_HH
