#include "common/json.hh"

#include <bit>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace unico::common {

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

namespace {

[[noreturn]] void
typeError(const char *want)
{
    throw std::runtime_error(std::string("json: not a ") + want);
}

} // namespace

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        typeError("bool");
    return bool_;
}

double
Json::asDouble() const
{
    if (type_ != Type::Number)
        typeError("number");
    return number_;
}

std::int64_t
Json::asInt() const
{
    if (type_ != Type::Number)
        typeError("number");
    return static_cast<std::int64_t>(std::llround(number_));
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        typeError("string");
    return string_;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    typeError("array/object");
}

const Json &
Json::at(std::size_t i) const
{
    if (type_ != Type::Array)
        typeError("array");
    if (i >= array_.size())
        throw std::runtime_error("json: array index out of range");
    return array_[i];
}

void
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        typeError("array");
    array_.push_back(std::move(v));
}

bool
Json::has(const std::string &key) const
{
    return type_ == Type::Object && object_.count(key) > 0;
}

const Json &
Json::at(const std::string &key) const
{
    if (type_ != Type::Object)
        typeError("object");
    auto it = object_.find(key);
    if (it == object_.end())
        throw std::runtime_error("json: missing key '" + key + "'");
    return it->second;
}

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        typeError("object");
    return object_[key];
}

const std::map<std::string, Json> &
Json::members() const
{
    if (type_ != Type::Object)
        typeError("object");
    return object_;
}

namespace {

void
dumpString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
dumpNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; encode as huge-magnitude sentinels
        // (checkpoints never contain them on healthy paths).
        out += v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
        return;
    }
    char buf[32];
    // %.17g round-trips IEEE-754 doubles exactly.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        dumpNumber(out, number_);
        break;
      case Type::String:
        dumpString(out, string_);
        break;
      case Type::Array: {
        out += '[';
        bool first = true;
        for (const auto &v : array_) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        if (!array_.empty())
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, v] : object_) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            dumpString(out, key);
            out += indent > 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        if (!object_.empty())
            newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    parseDocument()
    {
        Json v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        const char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Json();
            fail("bad literal");
          default: return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return s;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/': s += '/'; break;
                  case 'b': s += '\b'; break;
                  case 'f': s += '\f'; break;
                  case 'n': s += '\n'; break;
                  case 'r': s += '\r'; break;
                  case 't': s += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code += static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad hex digit");
                    }
                    // Checkpoints only escape control chars; encode
                    // the code point as UTF-8.
                    if (code < 0x80) {
                        s += static_cast<char>(code);
                    } else if (code < 0x800) {
                        s += static_cast<char>(0xc0 | (code >> 6));
                        s += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        s += static_cast<char>(0xe0 | (code >> 12));
                        s += static_cast<char>(0x80 |
                                               ((code >> 6) & 0x3f));
                        s += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default: fail("bad escape");
                }
            } else {
                s += c;
            }
        }
        fail("unterminated string");
    }

    Json
    parseNumber()
    {
        skipSpace();
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            fail("bad number");
        pos_ += static_cast<std::size_t>(end - start);
        return Json(v);
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return arr;
            }
            fail("expected ',' or ']'");
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skipSpace();
            std::string key = parseString();
            expect(':');
            obj[key] = parseValue();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return obj;
            }
            fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

std::string
hexU64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t
parseHexU64(const std::string &s)
{
    return static_cast<std::uint64_t>(
        std::strtoull(s.c_str(), nullptr, 16));
}

std::string
hexDouble(double v)
{
    return hexU64(std::bit_cast<std::uint64_t>(v));
}

double
doubleFromHex(const std::string &s)
{
    return std::bit_cast<double>(parseHexU64(s));
}

} // namespace unico::common
