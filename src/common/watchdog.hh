/**
 * @file
 * Wall-clock watchdog thread.
 *
 * The EvalClock charges *virtual* time, so a PPA engine that hangs in
 * real time never trips the virtual-deadline taxonomy. The Watchdog
 * closes that gap: callers register a (CancelToken, deadline) pair
 * and a dedicated thread cancels the token when the real-time
 * deadline passes. The driver uses one registration for the whole-run
 * deadline and one short-lived registration per evaluation attempt;
 * expiries surface through the cooperative CancelToken and are
 * classified with the existing Status taxonomy (Timeout).
 *
 * release() is atomic with expiry: once it returns, the watchdog
 * holds no reference to the token and will never cancel it, so the
 * owner may safely reset and reuse the token for the next attempt.
 */

#ifndef UNICO_COMMON_WATCHDOG_HH
#define UNICO_COMMON_WATCHDOG_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

#include "common/cancel.hh"

namespace unico::common {

/** Deadline enforcement thread for cooperative cancellation. */
class Watchdog
{
  public:
    Watchdog();
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Cancel @p token with @p reason once @p seconds of real time
     * elapse, unless released first.
     * @return registration id for release().
     */
    std::uint64_t watch(CancelToken &token, double seconds,
                        CancelReason reason);

    /**
     * Withdraw a registration. @return true when the deadline had not
     * fired; false when the token was already cancelled by it. After
     * return (either way) the watchdog no longer references the
     * token.
     */
    bool release(std::uint64_t id);

    /** Registrations currently armed (for tests/metrics). */
    std::size_t armed() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Entry
    {
        Clock::time_point deadline;
        CancelToken *token;
        CancelReason reason;
    };

    void loop();

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::map<std::uint64_t, Entry> entries_;
    std::uint64_t nextId_ = 1;
    bool stopping_ = false;
    std::thread thread_;
};

} // namespace unico::common

#endif // UNICO_COMMON_WATCHDOG_HH
