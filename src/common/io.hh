/**
 * @file
 * EINTR-safe file-descriptor I/O helpers.
 *
 * The driver installs signal handlers without SA_RESTART (so blocking
 * syscalls wake up for graceful shutdown), which means *every* raw
 * read/write in the process can short-transfer or fail with EINTR at
 * any time. These loops are the single place that gets the retry
 * logic right; checkpoint durability and the evaluation-fleet
 * transport both build on them instead of hand-rolling partial-I/O
 * handling at each call site.
 */

#ifndef UNICO_COMMON_IO_HH
#define UNICO_COMMON_IO_HH

#include <cstddef>
#include <string>

namespace unico::common {

/** Outcome of a full-buffer transfer or readiness wait. */
enum class IoStatus {
    Ok,      ///< every requested byte was transferred
    Eof,     ///< peer closed before any/all bytes arrived
    Timeout, ///< deadline expired while waiting for readiness
    Error,   ///< syscall failure other than EINTR (errno is set)
};

/** Human-readable status name. */
const char *toString(IoStatus status);

/** Monotonic clock in seconds (immune to wall-clock steps). The
 *  absolute-deadline transfer helpers below measure against it, so
 *  callers composing several transfers under one budget share the
 *  same time base. */
double monotonicNow();

/**
 * Read exactly @p len bytes into @p buf, retrying short reads,
 * EINTR, and (on non-blocking descriptors) EAGAIN via a readiness
 * wait. Returns Ok, or Eof if the peer closed first (@p got, when
 * non-null, receives the bytes read before EOF — distinguishing a
 * clean close at a message boundary from a torn transfer), or Error.
 */
IoStatus readFull(int fd, void *buf, std::size_t len,
                  std::size_t *got = nullptr);

/**
 * Write exactly @p len bytes from @p buf, retrying short writes,
 * EINTR, and (on non-blocking descriptors) EAGAIN via a readiness
 * wait. On sockets the transfer suppresses SIGPIPE (MSG_NOSIGNAL)
 * so a dead peer surfaces as Error/EPIPE instead of killing the
 * process. Returns Eof on EPIPE, Error otherwise.
 */
IoStatus writeFull(int fd, const void *buf, std::size_t len);

/** writeFull over a string's bytes. */
IoStatus writeFull(int fd, const std::string &bytes);

/**
 * Wait until @p fd is readable. @p deadline_seconds <= 0 waits
 * forever. Returns Ok (readable or peer-closed — the next read
 * resolves which), Timeout, or Error. EINTR restarts the wait with
 * the remaining time.
 */
IoStatus waitReadable(int fd, double deadline_seconds);

/**
 * Wait until @p fd accepts more output without blocking.
 * @p deadline_seconds <= 0 waits forever. Same contract as
 * waitReadable, for the send direction.
 */
IoStatus waitWritable(int fd, double deadline_seconds);

/**
 * Like readFull, but bounded by one deadline across the whole
 * transfer (<= 0 waits forever). Returns Timeout if it expires
 * mid-message; @p got reports partial progress for torn-transfer
 * diagnostics.
 */
IoStatus readFullDeadline(int fd, void *buf, std::size_t len,
                          double deadline_seconds,
                          std::size_t *got = nullptr);

/**
 * readFull bounded by an *absolute* monotonicNow()-based deadline
 * (<= 0 waits forever). Several transfers passed the same value
 * share one budget — this is what lets a frame read enforce a single
 * deadline across header and payload instead of restarting the clock
 * per readFull call (the slow-loris hole).
 */
IoStatus readFullUntil(int fd, void *buf, std::size_t len,
                       double deadline_monotonic,
                       std::size_t *got = nullptr);

/** writeFull bounded by an absolute monotonicNow()-based deadline
 *  (<= 0 waits forever). A peer that stops reading surfaces as
 *  Timeout instead of wedging the caller in write(2). */
IoStatus writeFullUntil(int fd, const void *buf, std::size_t len,
                        double deadline_monotonic);

/** writeFullUntil over a string's bytes. */
IoStatus writeFullUntil(int fd, const std::string &bytes,
                        double deadline_monotonic);

/** Set (or clear) O_NONBLOCK. Returns false on error. */
bool setNonblocking(int fd, bool enable = true);

/** Set (or clear) the close-on-exec flag. Returns false on error. */
bool setCloexec(int fd, bool enable = true);

/**
 * A connected, bidirectional local socket pair with close-on-exec
 * set on both ends. Returns false on error (errno is set).
 */
bool makeSocketPair(int fds[2]);

} // namespace unico::common

#endif // UNICO_COMMON_IO_HH
