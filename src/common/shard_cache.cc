#include "common/shard_cache.hh"

#include <algorithm>
#include <sstream>
#include <utility>

namespace unico::common {

std::string
toString(const CacheStats &stats)
{
    std::ostringstream oss;
    oss << "cache: hits=" << stats.hits << " misses=" << stats.misses
        << " hit_rate=" << stats.hitRate() << " insertions="
        << stats.insertions << " evictions=" << stats.evictions
        << " entries=" << stats.entries << " bytes=" << stats.bytes
        << "/" << stats.capacityBytes << " shards=" << stats.shards;
    if (stats.tapAppends > 0 || stats.tapRows > 0) {
        oss << " tap_rows=" << stats.tapRows << " tap_appends="
            << stats.tapAppends << " tap_duplicates=" << stats.tapDuplicates
            << " tap_drops=" << stats.tapDrops << " tap_snapshots="
            << stats.tapSnapshots << " tap_stalls=" << stats.tapStalls;
    }
    return oss.str();
}

void
CorpusTap::append(CorpusRow row)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++appends_;
    if (seen_.count(row.key) > 0) {
        ++duplicates_;
        return;
    }
    if (rows_.size() >= maxRows_) {
        ++drops_;
        return;
    }
    seen_.emplace(row.key, rows_.size());
    rows_.push_back(std::move(row));
}

std::vector<CorpusRow>
CorpusTap::snapshot() const
{
    std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
    if (!lock.owns_lock()) {
        // A writer holds the tap right now; record the contention,
        // then wait — the writer's critical section is O(1).
        lock.lock();
        ++stalls_;
    }
    ++snapshots_;
    std::vector<CorpusRow> out = rows_;
    lock.unlock();
    std::sort(out.begin(), out.end(),
              [](const CorpusRow &a, const CorpusRow &b) {
                  return a.key.hi != b.key.hi ? a.key.hi < b.key.hi
                                              : a.key.lo < b.key.lo;
              });
    return out;
}

CorpusTap::TapStats
CorpusTap::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    TapStats s;
    s.rows = rows_.size();
    s.appends = appends_;
    s.duplicates = duplicates_;
    s.drops = drops_;
    s.snapshots = snapshots_;
    s.stalls = stalls_;
    return s;
}

void
CorpusTap::mergeInto(CacheStats &stats) const
{
    const TapStats s = this->stats();
    stats.tapRows = s.rows;
    stats.tapAppends = s.appends;
    stats.tapDuplicates = s.duplicates;
    stats.tapDrops = s.drops;
    stats.tapSnapshots = s.snapshots;
    stats.tapStalls = s.stalls;
}

} // namespace unico::common
