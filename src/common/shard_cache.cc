#include "common/shard_cache.hh"

#include <sstream>

namespace unico::common {

std::string
toString(const CacheStats &stats)
{
    std::ostringstream oss;
    oss << "cache: hits=" << stats.hits << " misses=" << stats.misses
        << " hit_rate=" << stats.hitRate() << " insertions="
        << stats.insertions << " evictions=" << stats.evictions
        << " entries=" << stats.entries << " bytes=" << stats.bytes
        << "/" << stats.capacityBytes << " shards=" << stats.shards;
    return oss.str();
}

} // namespace unico::common
