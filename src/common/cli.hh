/**
 * @file
 * Minimal command-line option parsing shared by bench/example
 * binaries (--seed, --scale, --out, ...).
 */

#ifndef UNICO_COMMON_CLI_HH
#define UNICO_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace unico::common {

/**
 * Parses "--key value" and "--flag" style options.
 *
 * Unknown options are retained and can be queried; positional
 * arguments are collected in order.
 */
class CliArgs
{
  public:
    CliArgs(int argc, const char *const *argv);

    /** True if --name was present (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name or @p fallback. */
    std::string getString(const std::string &name,
                          const std::string &fallback) const;

    /** Integer value of --name or @p fallback. */
    std::int64_t getInt(const std::string &name, std::int64_t fallback) const;

    /** Floating-point value of --name or @p fallback. */
    double getDouble(const std::string &name, double fallback) const;

    /** Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace unico::common

#endif // UNICO_COMMON_CLI_HH
