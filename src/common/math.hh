/**
 * @file
 * Small shared integer math helpers.
 *
 * Both evaluation kernels (costmodel/analytical, camodel/simulator)
 * used to carry their own copy of ceilDiv; the copies have to stay
 * bit-identical because ceiling divisions feed tile counts and tile
 * counts feed the golden-pinned PPA numbers. One definition keeps
 * them from drifting.
 */

#ifndef UNICO_COMMON_MATH_HH
#define UNICO_COMMON_MATH_HH

#include <cmath>
#include <cstdint>

namespace unico::common {

/**
 * Integer ceiling division. @p b must be positive; @p a must be
 * non-negative (design spaces and mapping repair guarantee both at
 * every call site). ceilDiv(0, b) == 0. Written as div+mod rather
 * than (a + b - 1) / b so a near INT64_MAX cannot overflow; the two
 * forms agree everywhere the sum form is defined, so golden-pinned
 * tile counts are unchanged.
 */
inline std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return a / b + (a % b != 0 ? 1 : 0);
}

/**
 * ceilDiv computed in double, for hot paths whose consumers want a
 * double anyway: FP division pipelines where 64-bit integer division
 * does not. Exact — equal to double(ceilDiv(a, b)) — for 0 <= a <
 * 2^52, b >= 1: when b does not divide a the true quotient k + r/b
 * (1 <= r < b) is at distance r/b >= 1/b from the integer k, while
 * half an ulp of the rounded quotient is < 2^-52 * a / b <= r/b, so
 * rounding can never cross the integer and ceil() is unaffected.
 */
inline double
ceilDivDouble(std::int64_t a, std::int64_t b)
{
    return std::ceil(static_cast<double>(a) / static_cast<double>(b));
}

} // namespace unico::common

#endif // UNICO_COMMON_MATH_HH
