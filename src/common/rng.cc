#include "common/rng.hh"

#include <cassert>
#include <cmath>

namespace unico::common {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &s : state_)
        s = sm.next();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    assert(n > 0);
    // Lemire-style rejection to remove modulo bias.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
        std::uint64_t t = -n % n;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::categorical(const std::vector<double> &weights)
{
    assert(!weights.empty());
    double total = 0.0;
    for (double w : weights)
        total += (w > 0.0 ? w : 0.0);
    if (total <= 0.0)
        return uniformInt(weights.size());
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double w = weights[i] > 0.0 ? weights[i] : 0.0;
        if (r < w)
            return i;
        r -= w;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0x1d8af8f4e2b0c3a5ULL);
}

} // namespace unico::common
