#include "common/statistics.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace unico::common {

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

double
variance(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(v.size());
}

double
stddev(const std::vector<double> &v)
{
    return std::sqrt(variance(v));
}

double
minValue(const std::vector<double> &v)
{
    assert(!v.empty());
    return *std::min_element(v.begin(), v.end());
}

double
maxValue(const std::vector<double> &v)
{
    assert(!v.empty());
    return *std::max_element(v.begin(), v.end());
}

double
percentile(std::vector<double> v, double p)
{
    assert(!v.empty());
    assert(p >= 0.0 && p <= 100.0);
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v.front();
    const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

double
aucAboveTerminal(const std::vector<double> &curve)
{
    if (curve.size() < 2)
        return 0.0;
    const double terminal = curve.back();
    double auc = 0.0;
    for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
        const double a = std::max(curve[i] - terminal, 0.0);
        const double b = std::max(curve[i + 1] - terminal, 0.0);
        auc += 0.5 * (a + b);
    }
    return auc;
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size() || a.size() < 2)
        return 0.0;
    const double ma = mean(a);
    const double mb = mean(b);
    double num = 0.0, da = 0.0, db = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        num += (a[i] - ma) * (b[i] - mb);
        da += (a[i] - ma) * (a[i] - ma);
        db += (b[i] - mb) * (b[i] - mb);
    }
    if (da <= 0.0 || db <= 0.0)
        return 0.0;
    return num / std::sqrt(da * db);
}

namespace {

std::vector<double>
ranks(const std::vector<double> &v)
{
    const auto order = argsortAscending(v);
    std::vector<double> r(v.size(), 0.0);
    std::size_t i = 0;
    while (i < order.size()) {
        std::size_t j = i;
        while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]])
            ++j;
        // Average rank for ties.
        const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            r[order[k]] = avg;
        i = j + 1;
    }
    return r;
}

} // namespace

double
spearman(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size() || a.size() < 2)
        return 0.0;
    return pearson(ranks(a), ranks(b));
}

std::vector<double>
runningMin(const std::vector<double> &v)
{
    std::vector<double> out;
    out.reserve(v.size());
    double best = std::numeric_limits<double>::infinity();
    for (double x : v) {
        best = std::min(best, x);
        out.push_back(best);
    }
    return out;
}

std::vector<std::size_t>
argsortAscending(const std::vector<double> &v)
{
    std::vector<std::size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    return idx;
}

std::vector<std::size_t>
argsortDescending(const std::vector<double> &v)
{
    std::vector<std::size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) { return v[a] > v[b]; });
    return idx;
}

double
l2Norm(const std::vector<double> &v)
{
    double acc = 0.0;
    for (double x : v)
        acc += x * x;
    return std::sqrt(acc);
}

double
l2Distance(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(acc);
}

} // namespace unico::common
