/**
 * @file
 * Structured error taxonomy for PPA evaluations.
 *
 * Sec. 3.5 deploys each successive-halving round as standalone
 * parallel jobs on a master/worker cluster, where individual
 * evaluations (cycle-level simulations in particular) can hang,
 * crash or return garbage. The supervisor classifies every failed
 * evaluation into one of these categories and picks a recovery
 * policy per category (retry, degrade, penalize) instead of
 * aborting the whole multi-hour co-search.
 */

#ifndef UNICO_COMMON_STATUS_HH
#define UNICO_COMMON_STATUS_HH

#include <stdexcept>
#include <string>
#include <utility>

namespace unico::common {

/** Outcome category of one PPA evaluation (or evaluation batch). */
enum class EvalStatus {
    Ok,         ///< evaluation completed and the result is usable
    Transient,  ///< spurious failure (crash, garbage result); retryable
    Timeout,    ///< exceeded its virtual-time deadline; retryable
    Infeasible, ///< completed, but no feasible mapping exists
    Fatal,      ///< non-retryable failure (bad input, broken engine)
};

/** Human-readable category name. */
inline const char *
toString(EvalStatus status)
{
    switch (status) {
      case EvalStatus::Ok: return "ok";
      case EvalStatus::Transient: return "transient";
      case EvalStatus::Timeout: return "timeout";
      case EvalStatus::Infeasible: return "infeasible";
      case EvalStatus::Fatal: return "fatal";
    }
    return "?";
}

/** True for categories a supervisor may retry (with backoff). */
inline bool
retryable(EvalStatus status)
{
    return status == EvalStatus::Transient ||
           status == EvalStatus::Timeout;
}

/**
 * Value-or-status result of a fallible evaluation. The value is
 * meaningful only when ok(); failed results carry the category and a
 * diagnostic message instead.
 */
template <typename T>
struct EvalResult
{
    EvalStatus status = EvalStatus::Ok;
    T value{};
    std::string message;

    bool ok() const { return status == EvalStatus::Ok; }

    static EvalResult
    success(T v)
    {
        EvalResult r;
        r.value = std::move(v);
        return r;
    }

    static EvalResult
    failure(EvalStatus s, std::string msg = {})
    {
        EvalResult r;
        r.status = s;
        r.message = std::move(msg);
        return r;
    }
};

/** Status + message of one completed job (see runParallelCaptured). */
using JobOutcome = EvalResult<bool>;

/**
 * Exception form of a failed evaluation, thrown by fault injectors
 * and failure-aware engines; supervisors catch it and map the status
 * onto their recovery policy.
 */
class EvalFault : public std::runtime_error
{
  public:
    EvalFault(EvalStatus status, const std::string &what)
        : std::runtime_error(what), status_(status)
    {}

    EvalStatus status() const { return status_; }

  private:
    EvalStatus status_;
};

} // namespace unico::common

#endif // UNICO_COMMON_STATUS_HH
