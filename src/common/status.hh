/**
 * @file
 * Structured error taxonomy for PPA evaluations.
 *
 * Sec. 3.5 deploys each successive-halving round as standalone
 * parallel jobs on a master/worker cluster, where individual
 * evaluations (cycle-level simulations in particular) can hang,
 * crash or return garbage. The supervisor classifies every failed
 * evaluation into one of these categories and picks a recovery
 * policy per category (retry, degrade, penalize) instead of
 * aborting the whole multi-hour co-search.
 */

#ifndef UNICO_COMMON_STATUS_HH
#define UNICO_COMMON_STATUS_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace unico::common {

/** Outcome category of one PPA evaluation (or evaluation batch). */
enum class EvalStatus {
    Ok,         ///< evaluation completed and the result is usable
    Transient,  ///< spurious failure (crash, garbage result); retryable
    Timeout,    ///< exceeded its virtual-time deadline; retryable
    Infeasible, ///< completed, but no feasible mapping exists
    Fatal,      ///< non-retryable failure (bad input, broken engine)
};

/** Human-readable category name. */
inline const char *
toString(EvalStatus status)
{
    switch (status) {
      case EvalStatus::Ok: return "ok";
      case EvalStatus::Transient: return "transient";
      case EvalStatus::Timeout: return "timeout";
      case EvalStatus::Infeasible: return "infeasible";
      case EvalStatus::Fatal: return "fatal";
    }
    return "?";
}

/** True for categories a supervisor may retry (with backoff). */
inline bool
retryable(EvalStatus status)
{
    return status == EvalStatus::Transient ||
           status == EvalStatus::Timeout;
}

/**
 * Transport-layer fault category of the distributed evaluation
 * fleet. Unlike EvalStatus (what happened to the *evaluation*),
 * these classify what happened to the *conversation* with a worker
 * process. Every one of them is recovered transparently by the fleet
 * supervisor — kill + respawn + deterministic replay — so search
 * trajectories stay byte-identical to in-process evaluation; the
 * categories exist so FaultStats can report what the transport
 * absorbed.
 */
enum class TransportFault {
    WorkerCrash,    ///< worker process died (EOF / EPIPE / SIGCHLD)
    RequestTimeout, ///< no response within the request deadline
    TornFrame,      ///< stream ended mid-frame (short read)
    CorruptFrame,   ///< CRC-64 mismatch or malformed frame header
    WorkerHang,     ///< deadline expired with the worker still alive
    ConnectionLost, ///< established network channel dropped mid-use
    ConnectFailure, ///< could not (re)establish a network channel
    StaleFrame,     ///< CRC-valid reply for an earlier request
                    ///< (duplicate/reordered delivery), discarded
};

/** Human-readable transport-fault name. */
inline const char *
toString(TransportFault fault)
{
    switch (fault) {
      case TransportFault::WorkerCrash: return "worker-crash";
      case TransportFault::RequestTimeout: return "request-timeout";
      case TransportFault::TornFrame: return "torn-frame";
      case TransportFault::CorruptFrame: return "corrupt-frame";
      case TransportFault::WorkerHang: return "worker-hang";
      case TransportFault::ConnectionLost: return "connection-lost";
      case TransportFault::ConnectFailure: return "connect-failure";
      case TransportFault::StaleFrame: return "stale-frame";
    }
    return "?";
}

/**
 * Per-category transport fault counters plus the recovery actions
 * the fleet supervisor took. Diagnostics only: recovery is
 * transparent to the search, so these are never serialized into
 * checkpoints and never enter the records/front/trace CSVs — which
 * is what keeps fleet-mode outputs byte-identical to in-process
 * runs even when workers are killed mid-search.
 */
struct TransportStats
{
    std::uint64_t workerCrashes = 0;
    std::uint64_t requestTimeouts = 0;
    std::uint64_t tornFrames = 0;
    std::uint64_t corruptFrames = 0;
    /** Sub-annotation of requestTimeouts: expiries where the worker
     *  process was confirmed still alive and had to be SIGKILLed (a
     *  hung worker, vs. one whose death the deadline surfaced). Not
     *  part of total(). */
    std::uint64_t workerHangs = 0;
    /** Network fault categories (multi-host transport). A lost
     *  connection is a distinct event from a worker crash: the
     *  process may be healthy on the far host and reconnect. */
    std::uint64_t connectionsLost = 0;
    std::uint64_t connectFailures = 0;
    /** CRC-valid frames whose request nonce did not match the
     *  in-flight request (duplicated or reordered delivery). They are
     *  skipped, not retried, so they are not part of total(). */
    std::uint64_t staleFrames = 0;
    std::uint64_t workerRespawns = 0;  ///< replacement workers forked
    std::uint64_t reconnects = 0;      ///< remote channels re-adopted
    std::uint64_t heartbeats = 0;      ///< ping ops answered
    std::uint64_t workSteals = 0;      ///< requests served off-home
    std::uint64_t inprocFallbacks = 0; ///< circuit-breaker local evals
    /** Successful request round-trips (one framed request + reply).
     *  With op coalescing one round-trip carries many mutating ops,
     *  so opsApplied / requestRoundTrips measures batching leverage. */
    std::uint64_t requestRoundTrips = 0;
    std::uint64_t opsApplied = 0; ///< mutating ops acked by workers

    /** Total transport faults across exclusive categories. */
    std::uint64_t
    total() const
    {
        return workerCrashes + requestTimeouts + tornFrames +
               corruptFrames + connectionsLost + connectFailures;
    }

    /** Bump the counter of one observed fault. */
    void
    count(TransportFault fault)
    {
        switch (fault) {
          case TransportFault::WorkerCrash: ++workerCrashes; break;
          case TransportFault::RequestTimeout: ++requestTimeouts; break;
          case TransportFault::TornFrame: ++tornFrames; break;
          case TransportFault::CorruptFrame: ++corruptFrames; break;
          case TransportFault::WorkerHang: ++workerHangs; break;
          case TransportFault::ConnectionLost: ++connectionsLost; break;
          case TransportFault::ConnectFailure: ++connectFailures; break;
          case TransportFault::StaleFrame: ++staleFrames; break;
        }
    }

    /** Accumulate another counter set. */
    void
    merge(const TransportStats &other)
    {
        workerCrashes += other.workerCrashes;
        requestTimeouts += other.requestTimeouts;
        tornFrames += other.tornFrames;
        corruptFrames += other.corruptFrames;
        workerHangs += other.workerHangs;
        connectionsLost += other.connectionsLost;
        connectFailures += other.connectFailures;
        staleFrames += other.staleFrames;
        workerRespawns += other.workerRespawns;
        reconnects += other.reconnects;
        heartbeats += other.heartbeats;
        workSteals += other.workSteals;
        inprocFallbacks += other.inprocFallbacks;
        requestRoundTrips += other.requestRoundTrips;
        opsApplied += other.opsApplied;
    }
};

/**
 * Value-or-status result of a fallible evaluation. The value is
 * meaningful only when ok(); failed results carry the category and a
 * diagnostic message instead.
 */
template <typename T>
struct EvalResult
{
    EvalStatus status = EvalStatus::Ok;
    T value{};
    std::string message;

    bool ok() const { return status == EvalStatus::Ok; }

    static EvalResult
    success(T v)
    {
        EvalResult r;
        r.value = std::move(v);
        return r;
    }

    static EvalResult
    failure(EvalStatus s, std::string msg = {})
    {
        EvalResult r;
        r.status = s;
        r.message = std::move(msg);
        return r;
    }
};

/** Status + message of one completed job (see runParallelCaptured). */
using JobOutcome = EvalResult<bool>;

/**
 * Exception form of a failed evaluation, thrown by fault injectors
 * and failure-aware engines; supervisors catch it and map the status
 * onto their recovery policy.
 */
class EvalFault : public std::runtime_error
{
  public:
    EvalFault(EvalStatus status, const std::string &what)
        : std::runtime_error(what), status_(status)
    {}

    EvalStatus status() const { return status_; }

  private:
    EvalStatus status_;
};

} // namespace unico::common

#endif // UNICO_COMMON_STATUS_HH
