/**
 * @file
 * Worker-process factory (zygote pattern).
 *
 * The evaluation fleet needs to create worker processes *after* the
 * driver has started its thread pool — but fork(2) from a
 * multithreaded process is a minefield (another thread may hold the
 * allocator lock at fork time, deadlocking the child). The factory
 * therefore forks one single-threaded *zygote* process up front,
 * while the master is still single-threaded; every worker — initial
 * fleet and every respawn after a crash — is then forked by the
 * zygote on request. The zygote hands the master its end of the new
 * worker's socketpair via SCM_RIGHTS ancillary data.
 *
 * The zygote ignores SIGINT/SIGTERM (terminal signals go to the
 * whole foreground process group; workers must outlive a graceful
 * master drain) and sets SIGCHLD to SIG_IGN so dead workers are
 * reaped by the kernel automatically. It exits when the master
 * closes the control socket.
 */

#ifndef UNICO_COMMON_SUBPROCESS_HH
#define UNICO_COMMON_SUBPROCESS_HH

#include <cstdint>
#include <functional>

namespace unico::common {

/** One live worker process, as seen from the master. */
struct WorkerHandle
{
    std::int64_t pid = -1; ///< worker pid (kill/diagnostics)
    int fd = -1;           ///< master end of the worker socketpair
};

#if !defined(_WIN32)

/**
 * Pass @p fd plus a small @p tag over the unix socket @p sock.
 * Exposed for tests; the factory uses it to deliver worker sockets.
 */
bool sendFdMessage(int sock, int fd, std::uint64_t tag);

/**
 * Receive a descriptor + tag sent by sendFdMessage. Returns false on
 * EOF, error, malformed ancillary data, or deadline expiry
 * (@p deadline_seconds <= 0 waits forever).
 */
bool recvFdMessage(int sock, int &fd, std::uint64_t &tag,
                   double deadline_seconds = 0.0);

/** Forks worker processes on demand via a pre-forked zygote. */
class WorkerFactory
{
  public:
    /**
     * Fork the zygote. MUST be called while the calling process is
     * still single-threaded. @p child_serve runs inside each spawned
     * worker with the worker end of its socketpair; it must never
     * return (it _exit()s when its stream closes).
     */
    explicit WorkerFactory(std::function<void(int fd)> child_serve);

    /** Close the control socket (zygote exits) and reap it. */
    ~WorkerFactory();

    WorkerFactory(const WorkerFactory &) = delete;
    WorkerFactory &operator=(const WorkerFactory &) = delete;

    /** True if the zygote is up and spawn requests can be made. */
    bool ok() const { return controlFd_ >= 0; }

    /**
     * Ask the zygote to fork a fresh worker. NOT thread-safe; the
     * caller (the fleet's worker pool) serializes spawn requests.
     * @p deadline_seconds bounds the wait for the zygote's reply.
     * On failure the factory is considered broken (ok() == false).
     */
    bool spawn(WorkerHandle &out, double deadline_seconds = 10.0);

  private:
    int controlFd_ = -1;
    std::int64_t zygotePid_ = -1;
};

#endif // !_WIN32

} // namespace unico::common

#endif // UNICO_COMMON_SUBPROCESS_HH
