/**
 * @file
 * Small statistics helpers: summaries, percentiles, AUC, correlation.
 *
 * These are the numeric primitives behind the modified successive
 * halving (area-under-curve promotion criterion), the High Fidelity
 * Update Rule (95th-percentile Upper Update Limit) and the robustness
 * metric (right-tail percentile of a mapping-loss history).
 */

#ifndef UNICO_COMMON_STATISTICS_HH
#define UNICO_COMMON_STATISTICS_HH

#include <cstddef>
#include <vector>

namespace unico::common {

/** Arithmetic mean; returns 0 for an empty vector. */
double mean(const std::vector<double> &v);

/** Population variance; returns 0 for fewer than two samples. */
double variance(const std::vector<double> &v);

/** Population standard deviation. */
double stddev(const std::vector<double> &v);

/** Minimum value; requires a non-empty vector. */
double minValue(const std::vector<double> &v);

/** Maximum value; requires a non-empty vector. */
double maxValue(const std::vector<double> &v);

/**
 * Linear-interpolated percentile.
 *
 * @param v sample values (not required to be sorted)
 * @param p percentile in [0, 100]
 */
double percentile(std::vector<double> v, double p);

/**
 * Area trapped between a monotonically non-increasing loss curve and
 * the horizontal line through its terminal value (Fig. 4b of the
 * paper). A larger AUC indicates a deep and/or recent descent — the
 * "steep convergence rate" signal that the modified successive
 * halving promotes with a second chance; early-plateaued curves trap
 * little area.
 *
 * The x axis is the sample index (unit spacing); the trapezoid rule
 * is applied to max(curve[i] - terminal, 0).
 */
double aucAboveTerminal(const std::vector<double> &curve);

/** Pearson correlation coefficient; 0 when undefined. */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

/** Spearman rank correlation; 0 when undefined. */
double spearman(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Running best-so-far transform: out[i] = min(v[0..i]).
 * Used to turn a raw mapping-search history into the monotone
 * convergence curve assumed by the paper (Sec. 3.1).
 */
std::vector<double> runningMin(const std::vector<double> &v);

/** Indices that would sort v ascending (stable). */
std::vector<std::size_t> argsortAscending(const std::vector<double> &v);

/** Indices that would sort v descending (stable). */
std::vector<std::size_t> argsortDescending(const std::vector<double> &v);

/** Euclidean norm of a vector. */
double l2Norm(const std::vector<double> &v);

/** Euclidean distance between two equally sized vectors. */
double l2Distance(const std::vector<double> &a, const std::vector<double> &b);

} // namespace unico::common

#endif // UNICO_COMMON_STATISTICS_HH
