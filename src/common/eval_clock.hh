/**
 * @file
 * Virtual-time ledger for search-cost accounting.
 *
 * The paper reports search cost in wall-clock hours on a reference
 * server (Tables 1-2, Figs. 7/8/10). Re-running multi-day searches is
 * infeasible in a reproduction, so every PPA evaluation charges its
 * *nominal* cost to an EvalClock: an analytical-model query charges
 * seconds, a cycle-accurate simulation charges minutes. Parallel
 * rounds charge the makespan over a fixed worker pool, mirroring the
 * master/worker deployment of Sec. 3.5.
 */

#ifndef UNICO_COMMON_EVAL_CLOCK_HH
#define UNICO_COMMON_EVAL_CLOCK_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace unico::common {

/**
 * Accumulates virtual seconds of search cost.
 *
 * The clock also counts evaluations so benches can report both the
 * paper's cost axis (hours) and raw query counts.
 */
class EvalClock
{
  public:
    /** @param workers size of the (virtual) parallel worker pool. */
    explicit EvalClock(std::size_t workers = 1)
        : workers_(std::max<std::size_t>(workers, 1))
    {}

    /** Charge a single sequential task of @p seconds. */
    void
    charge(double seconds)
    {
        seconds_ += seconds;
        ++evaluations_;
    }

    /**
     * Charge a batch of parallel task durations using list scheduling
     * on the worker pool; the ledger advances by the makespan.
     */
    void
    chargeParallel(const std::vector<double> &task_seconds)
    {
        if (task_seconds.empty())
            return;
        // Longest-processing-time list scheduling approximation.
        std::vector<double> sorted = task_seconds;
        std::sort(sorted.begin(), sorted.end(), std::greater<>());
        std::vector<double> load(workers_, 0.0);
        for (double t : sorted) {
            auto it = std::min_element(load.begin(), load.end());
            *it += t;
        }
        seconds_ += *std::max_element(load.begin(), load.end());
        evaluations_ += task_seconds.size();
    }

    /** Charge overhead (surrogate fit, acquisition, ...) without
     *  counting it as an evaluation. */
    void chargeOverhead(double seconds) { seconds_ += seconds; }

    /** Total virtual seconds accumulated. */
    double seconds() const { return seconds_; }

    /** Total virtual hours accumulated. */
    double hours() const { return seconds_ / 3600.0; }

    /** Number of evaluations charged. */
    std::uint64_t evaluations() const { return evaluations_; }

    /** Worker-pool size used for parallel charging. */
    std::size_t workers() const { return workers_; }

    /** Reset the ledger to zero. */
    void
    reset()
    {
        seconds_ = 0.0;
        evaluations_ = 0;
    }

    /** Restore a ledger snapshot (checkpoint resume). */
    void
    restore(double seconds, std::uint64_t evaluations)
    {
        seconds_ = seconds;
        evaluations_ = evaluations;
    }

  private:
    std::size_t workers_;
    double seconds_ = 0.0;
    std::uint64_t evaluations_ = 0;
};

} // namespace unico::common

#endif // UNICO_COMMON_EVAL_CLOCK_HH
