#include "common/fault.hh"

#include <sstream>

namespace unico::common {

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::Transient: return "transient";
      case FaultKind::Hang: return "hang";
      case FaultKind::Corrupt: return "corrupt";
    }
    return "?";
}

namespace {

/** SplitMix64-style finalizer over the (seed, stream, index) tuple. */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t z = a;
    z += 0x9e3779b97f4a7c15ULL * (b + 1);
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z += 0x94d049bb133111ebULL * (c + 1);
    z ^= z >> 27;
    z *= 0x2545f4914f6cdd1dULL;
    z ^= z >> 31;
    return z;
}

} // namespace

FaultKind
FaultPlan::decide(std::uint64_t stream_key,
                  std::uint64_t eval_index) const
{
    if (!active())
        return FaultKind::None;
    const std::uint64_t h = mix(spec_.seed, stream_key, eval_index);
    // 53 high bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;
    double band = spec_.hangRate;
    if (u < band)
        return FaultKind::Hang;
    band += spec_.transientRate;
    if (u < band)
        return FaultKind::Transient;
    band += spec_.corruptRate;
    if (u < band)
        return FaultKind::Corrupt;
    return FaultKind::None;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream oss;
    oss << "faults(transient=" << spec_.transientRate
        << " hang=" << spec_.hangRate
        << " corrupt=" << spec_.corruptRate
        << " deadline=" << spec_.deadlineSeconds
        << "s seed=" << spec_.seed << ")";
    return oss.str();
}

} // namespace unico::common
