/**
 * @file
 * Plain-text table and CSV emission for bench harnesses.
 *
 * Every bench binary regenerates one of the paper's tables/figures;
 * TableWriter renders the rows in an aligned, human-readable form and
 * can also dump the same data as CSV for plotting.
 */

#ifndef UNICO_COMMON_TABLE_HH
#define UNICO_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace unico::common {

/** Row/column text table with alignment and CSV output. */
class TableWriter
{
  public:
    /** @param headers column titles. */
    explicit TableWriter(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> row);

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180-ish quoting for commas/quotes). */
    void printCsv(std::ostream &os) const;

    /** Write CSV to a file; returns false on I/O failure. */
    bool writeCsv(const std::string &path) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Format a double with @p precision significant-ish digits. */
    static std::string num(double v, int precision = 4);

    /** Format an integer value. */
    static std::string num(long long v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace unico::common

#endif // UNICO_COMMON_TABLE_HH
