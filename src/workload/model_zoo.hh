/**
 * @file
 * Model zoo: per-layer shape definitions of every DNN used in the
 * paper's evaluation (Secs. 4.2-4.6).
 *
 * Training sets: BERT, MobileNet(V1/V2), ResNet-50, SRGAN, UNet,
 * ViT-B/16, Xception, VGG-16. Validation/unseen sets additionally
 * use MobileNetV3 (large/small), NASNet-Mobile, EfficientNetV2-S,
 * ConvNeXt-T, ResUNet, FSRCNN (parametric resolution) and a DLEU-like
 * super-resolution/enhancement pipeline. Shapes follow the published
 * architectures at their standard input resolutions.
 */

#ifndef UNICO_WORKLOAD_MODEL_ZOO_HH
#define UNICO_WORKLOAD_MODEL_ZOO_HH

#include <string>
#include <vector>

#include "workload/network.hh"

namespace unico::workload {

/** BERT-base encoder (seq len 384), expressed as GEMMs. */
Network makeBert();

/** MobileNet V1 at 224x224. */
Network makeMobileNet();

/** MobileNet V2 at 224x224. */
Network makeMobileNetV2();

/** MobileNet V3 Large at 224x224. */
Network makeMobileNetV3Large();

/** MobileNet V3 Small at 224x224. */
Network makeMobileNetV3Small();

/** ResNet-50 at 224x224. */
Network makeResNet();

/** SRGAN generator for 4x super resolution of 96x96 input. */
Network makeSrgan();

/** UNet (biomedical, 572x572-style contracting/expanding path). */
Network makeUnet();

/** ViT-B/16 at 224x224 (patch embedding + encoder GEMMs). */
Network makeVit();

/** Xception at 299x299 (entry/middle/exit flows). */
Network makeXception();

/** VGG-16 at 224x224. */
Network makeVgg();

/** NASNet-Mobile at 224x224 (approximated cell structure). */
Network makeNasNetMobile();

/** EfficientNetV2-S at 384x384 (fused + regular MBConv stages). */
Network makeEfficientNetV2();

/** ConvNeXt-T at 224x224 (depthwise 7x7 + pointwise MLP blocks). */
Network makeConvNeXt();

/** ResUNet (residual UNet for remote sensing segmentation). */
Network makeResUnet();

/** FSRCNN super-resolution network at the given input resolution. */
Network makeFsrcnn(std::int64_t height, std::int64_t width);

/** DLEU-like (DLSS-style) enhancement+upscaling network at 1080p. */
Network makeDleu();

/** All registered model names. */
std::vector<std::string> modelNames();

/**
 * Look up a network by canonical name (e.g. "resnet", "mobilenet_v2",
 * "fsrcnn_120x320"). Throws std::invalid_argument for unknown names.
 */
Network makeNetwork(const std::string &name);

} // namespace unico::workload

#endif // UNICO_WORKLOAD_MODEL_ZOO_HH
