#include "workload/analysis.hh"

#include <algorithm>
#include <cassert>

namespace unico::workload {

OperatorMix
analyzeMix(const Network &net)
{
    OperatorMix mix;
    mix.layerCount = net.size();
    mix.uniqueShapeCount = net.uniqueOps().size();
    std::int64_t conv = 0, dw = 0, gemm = 0;
    for (const auto &op : net.ops()) {
        const std::int64_t macs = op.macs();
        mix.totalMacs += macs;
        mix.totalParams += op.weightElems();
        mix.totalActivations += op.inputElems() + op.outputElems();
        switch (op.kind) {
          case OpKind::Conv2D:
            conv += macs;
            break;
          case OpKind::DepthwiseConv2D:
            dw += macs;
            break;
          case OpKind::Gemm:
          case OpKind::Gemv:
            gemm += macs;
            break;
          case OpKind::Elementwise:
            break;
        }
    }
    if (mix.totalMacs > 0) {
        const auto total = static_cast<double>(mix.totalMacs);
        mix.convMacFraction = static_cast<double>(conv) / total;
        mix.depthwiseMacFraction = static_cast<double>(dw) / total;
        mix.gemmMacFraction = static_cast<double>(gemm) / total;
    }
    return mix;
}

std::vector<RooflinePoint>
roofline(const Network &net, double peak_macs_per_cycle,
         double bytes_per_cycle)
{
    assert(peak_macs_per_cycle > 0.0 && bytes_per_cycle > 0.0);
    std::vector<RooflinePoint> out;
    out.reserve(net.size());
    const double ridge = peak_macs_per_cycle / bytes_per_cycle;
    for (const auto &op : net.ops()) {
        RooflinePoint pt;
        pt.layer = op.name;
        pt.intensity = op.arithmeticIntensity();
        pt.memoryBound = pt.intensity < ridge;
        pt.attainableMacsPerCycle =
            pt.memoryBound ? pt.intensity * bytes_per_cycle
                           : peak_macs_per_cycle;
        out.push_back(std::move(pt));
    }
    return out;
}

double
memoryBoundMacFraction(const Network &net, double peak_macs_per_cycle,
                       double bytes_per_cycle)
{
    const auto points = roofline(net, peak_macs_per_cycle,
                                 bytes_per_cycle);
    double bound = 0.0, total = 0.0;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto macs = static_cast<double>(net.ops()[i].macs());
        total += macs;
        if (points[i].memoryBound)
            bound += macs;
    }
    return total > 0.0 ? bound / total : 0.0;
}

double
rooflineCycles(const Network &net, double peak_macs_per_cycle,
               double bytes_per_cycle)
{
    const auto points = roofline(net, peak_macs_per_cycle,
                                 bytes_per_cycle);
    double cycles = 0.0;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto macs = static_cast<double>(net.ops()[i].macs());
        cycles += macs / std::max(points[i].attainableMacsPerCycle,
                                  1e-12);
    }
    return cycles;
}

} // namespace unico::workload
