/**
 * @file
 * Tensor-operator workload description.
 *
 * Following the paper (Fig. 1), every operator is normalized to the
 * canonical 7-D convolution loop nest
 *
 *     for n in N:  for k in K:  for c in C:
 *       for y in Y: for x in X: for r in R: for s in S:
 *         Out[n,k,y,x] += W[k,c,r,s] * In[n,c,y*sy+r,x*sx+s]
 *
 * GEMM/GEMV operators are expressed as degenerate convolutions
 * (R = S = 1, Y = 1). The cost models and mapping space consume only
 * these loop extents, so this single representation covers every
 * network in the evaluation.
 */

#ifndef UNICO_WORKLOAD_TENSOR_OP_HH
#define UNICO_WORKLOAD_TENSOR_OP_HH

#include <cstdint>
#include <string>

#include "common/shard_cache.hh"

namespace unico::workload {

/** Operator category (affects reuse structure and vector-unit load). */
enum class OpKind {
    Conv2D,          ///< dense 2-D convolution
    DepthwiseConv2D, ///< per-channel convolution (C == 1 per group)
    Gemm,            ///< general matrix-matrix multiply
    Gemv,            ///< general matrix-vector multiply
    Elementwise,     ///< activation / add; vector-unit bound
};

/** Human-readable operator kind name. */
const char *toString(OpKind kind);

/**
 * A single tensor operator expressed over the canonical 7-D nest.
 *
 * All extents are >= 1. For DepthwiseConv2D, @c c is the channel
 * multiplier within a group (always 1 here) and @c k carries the
 * channel count.
 */
struct TensorOp
{
    std::string name;           ///< layer name, e.g. "conv3_2"
    OpKind kind = OpKind::Conv2D;

    std::int64_t n = 1;         ///< batch
    std::int64_t k = 1;         ///< output channels (GEMM rows M)
    std::int64_t c = 1;         ///< input channels (GEMM reduction K)
    std::int64_t y = 1;         ///< output height
    std::int64_t x = 1;         ///< output width (GEMM cols N)
    std::int64_t r = 1;         ///< filter height
    std::int64_t s = 1;         ///< filter width
    std::int64_t strideY = 1;   ///< vertical stride
    std::int64_t strideX = 1;   ///< horizontal stride

    /** Dense convolution factory. */
    static TensorOp conv(std::string name, std::int64_t k, std::int64_t c,
                         std::int64_t y, std::int64_t x, std::int64_t r,
                         std::int64_t s, std::int64_t stride = 1,
                         std::int64_t n = 1);

    /** Depthwise convolution factory (channels in @p k). */
    static TensorOp depthwise(std::string name, std::int64_t k,
                              std::int64_t y, std::int64_t x, std::int64_t r,
                              std::int64_t s, std::int64_t stride = 1);

    /** GEMM factory: (m x kk) * (kk x nn). */
    static TensorOp gemm(std::string name, std::int64_t m, std::int64_t nn,
                         std::int64_t kk);

    /** GEMV factory: (m x kk) * (kk). */
    static TensorOp gemv(std::string name, std::int64_t m, std::int64_t kk);

    /** Multiply-accumulate count of the full nest. */
    std::int64_t macs() const;

    /** Output tensor elements. */
    std::int64_t outputElems() const;

    /** Weight tensor elements. */
    std::int64_t weightElems() const;

    /** Input tensor elements (activation footprint). */
    std::int64_t inputElems() const;

    /** Input height consumed (Y * strideY + R - strideY). */
    std::int64_t inputHeight() const;

    /** Input width consumed. */
    std::int64_t inputWidth() const;

    /** Arithmetic intensity: MACs per byte moved (2-byte elements). */
    double arithmeticIntensity() const;

    /** Structural equality on shape (name ignored). */
    bool sameShape(const TensorOp &other) const;

    /** Stable shape-only key for deduplication. */
    std::string shapeKey() const;

    /** Canonical shape fingerprint (name ignored) for the
     *  evaluation cache. */
    common::Fingerprint fingerprint() const;
};

} // namespace unico::workload

#endif // UNICO_WORKLOAD_TENSOR_OP_HH
