#include "workload/parser.hh"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace unico::workload {

ParseError::ParseError(std::size_t line, const std::string &message)
    : std::runtime_error("line " + std::to_string(line) + ": " + message),
      line_(line)
{
}

ParseError::ParseError(const std::string &message)
    : std::runtime_error(message), line_(0)
{
}

namespace {

/** Parsed key=value pairs of one operator line. */
using KeyValues = std::map<std::string, std::int64_t>;

KeyValues
parseKeyValues(std::size_t line_no, std::istringstream &iss)
{
    KeyValues kv;
    std::string token;
    while (iss >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 >= token.size())
            throw ParseError(line_no, "expected key=value, got '" +
                                          token + "'");
        const std::string key = token.substr(0, eq);
        std::int64_t value = 0;
        try {
            value = std::stoll(token.substr(eq + 1));
        } catch (const std::exception &) {
            throw ParseError(line_no, "invalid integer in '" + token +
                                          "'");
        }
        if (value < 1)
            throw ParseError(line_no,
                             "value of '" + key + "' must be >= 1");
        if (value > kMaxDimensionValue)
            throw ParseError(line_no, "value of '" + key +
                                          "' exceeds the dimension cap "
                                          "(" +
                                          std::to_string(
                                              kMaxDimensionValue) +
                                          ")");
        if (!kv.emplace(key, value).second)
            throw ParseError(line_no, "duplicate key '" + key + "'");
    }
    return kv;
}

std::int64_t
require(std::size_t line_no, KeyValues &kv, const std::string &key)
{
    auto it = kv.find(key);
    if (it == kv.end())
        throw ParseError(line_no, "missing required key '" + key + "'");
    const std::int64_t v = it->second;
    kv.erase(it);
    return v;
}

std::int64_t
optional(KeyValues &kv, const std::string &key, std::int64_t fallback)
{
    auto it = kv.find(key);
    if (it == kv.end())
        return fallback;
    const std::int64_t v = it->second;
    kv.erase(it);
    return v;
}

void
rejectLeftovers(std::size_t line_no, const KeyValues &kv)
{
    if (!kv.empty())
        throw ParseError(line_no,
                         "unknown key '" + kv.begin()->first + "'");
}

} // namespace

Network
parseNetwork(std::istream &in, const std::string &name)
{
    Network net(name);
    std::set<std::string> op_names;
    std::string line;
    std::size_t line_no = 0;
    std::size_t bytes = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Input-size cap: corrupted or adversarial inputs fail fast
        // instead of exhausting memory on op accumulation.
        bytes += line.size() + 1;
        if (bytes > kMaxWorkloadFileBytes)
            throw ParseError(line_no, "workload input exceeds " +
                                          std::to_string(
                                              kMaxWorkloadFileBytes) +
                                          " bytes");
        // Strip comments.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream iss(line);
        std::string kind, op_name;
        if (!(iss >> kind))
            continue; // blank line
        if (!(iss >> op_name))
            throw ParseError(line_no, "missing operator name");
        if (!op_names.insert(op_name).second)
            throw ParseError(line_no, "duplicate operator name '" +
                                          op_name + "'");
        KeyValues kv = parseKeyValues(line_no, iss);

        if (kind == "conv") {
            const auto k = require(line_no, kv, "k");
            const auto c = require(line_no, kv, "c");
            const auto y = require(line_no, kv, "y");
            const auto x = require(line_no, kv, "x");
            const auto r = require(line_no, kv, "r");
            const auto s = require(line_no, kv, "s");
            const auto stride = optional(kv, "stride", 1);
            const auto n = optional(kv, "n", 1);
            rejectLeftovers(line_no, kv);
            net.add(TensorOp::conv(op_name, k, c, y, x, r, s, stride, n));
        } else if (kind == "depthwise") {
            const auto k = require(line_no, kv, "k");
            const auto y = require(line_no, kv, "y");
            const auto x = require(line_no, kv, "x");
            const auto r = require(line_no, kv, "r");
            const auto s = require(line_no, kv, "s");
            const auto stride = optional(kv, "stride", 1);
            rejectLeftovers(line_no, kv);
            net.add(TensorOp::depthwise(op_name, k, y, x, r, s, stride));
        } else if (kind == "gemm") {
            const auto m = require(line_no, kv, "m");
            const auto nn = require(line_no, kv, "n");
            const auto kk = require(line_no, kv, "k");
            rejectLeftovers(line_no, kv);
            net.add(TensorOp::gemm(op_name, m, nn, kk));
        } else if (kind == "gemv") {
            const auto m = require(line_no, kv, "m");
            const auto kk = require(line_no, kv, "k");
            rejectLeftovers(line_no, kv);
            net.add(TensorOp::gemv(op_name, m, kk));
        } else {
            throw ParseError(line_no,
                             "unknown operator kind '" + kind + "'");
        }
    }
    return net;
}

Network
parseNetworkString(const std::string &text, const std::string &name)
{
    std::istringstream iss(text);
    return parseNetwork(iss, name);
}

Network
parseNetworkFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ParseError("cannot open workload file: " + path);
    // Size cap up front: refuse to even stream an oversized file.
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(0, std::ios::beg);
    if (end > 0 &&
        static_cast<unsigned long long>(end) > kMaxWorkloadFileBytes)
        throw ParseError("workload file '" + path + "' exceeds " +
                         std::to_string(kMaxWorkloadFileBytes) +
                         " bytes");
    // Network name = file basename without extension.
    std::string name = path;
    const auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    const auto dot = name.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        name = name.substr(0, dot);
    return parseNetwork(in, name);
}

std::string
toText(const Network &net)
{
    std::ostringstream oss;
    oss << "# network: " << net.name() << "\n";
    for (const auto &op : net.ops()) {
        switch (op.kind) {
          case OpKind::Conv2D:
            oss << "conv " << op.name << " k=" << op.k << " c=" << op.c
                << " y=" << op.y << " x=" << op.x << " r=" << op.r
                << " s=" << op.s;
            if (op.strideX != 1)
                oss << " stride=" << op.strideX;
            if (op.n != 1)
                oss << " n=" << op.n;
            break;
          case OpKind::DepthwiseConv2D:
            oss << "depthwise " << op.name << " k=" << op.k << " y="
                << op.y << " x=" << op.x << " r=" << op.r << " s="
                << op.s;
            if (op.strideX != 1)
                oss << " stride=" << op.strideX;
            break;
          case OpKind::Gemm:
            oss << "gemm " << op.name << " m=" << op.k << " n=" << op.x
                << " k=" << op.c;
            break;
          case OpKind::Gemv:
            oss << "gemv " << op.name << " m=" << op.k << " k=" << op.c;
            break;
          case OpKind::Elementwise:
            oss << "# (elementwise " << op.name << " omitted)";
            break;
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace unico::workload
