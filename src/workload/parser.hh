/**
 * @file
 * Plain-text workload parser so downstream users can co-optimize for
 * their own networks without recompiling. Format: one operator per
 * line,
 *
 *     # comment
 *     conv      <name> k=64 c=32 y=28 x=28 r=3 s=3 [stride=1] [n=1]
 *     depthwise <name> k=256 y=14 x=14 r=3 s=3 [stride=1]
 *     gemm      <name> m=384 n=768 k=768
 *     gemv      <name> m=1000 k=4096
 *
 * Keys may appear in any order; unknown keys are an error.
 */

#ifndef UNICO_WORKLOAD_PARSER_HH
#define UNICO_WORKLOAD_PARSER_HH

#include <cstddef>
#include <cstdint>
#include <istream>
#include <stdexcept>
#include <string>

#include "workload/network.hh"

namespace unico::workload {

/** Error with 1-based line information. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(std::size_t line, const std::string &message);
    /** File-level error with no line attribution (open failure,
     *  size-cap violation); line() reports 0. */
    explicit ParseError(const std::string &message);

    /** 1-based line number of the offending input (0 = whole file). */
    std::size_t line() const { return line_; }

  private:
    std::size_t line_;
};

/** Hard cap on workload file/line sizes: adversarial or corrupted
 *  inputs fail fast with a clean ParseError instead of exhausting
 *  memory. Generous — real networks are a few KB. */
constexpr std::size_t kMaxWorkloadFileBytes = 16u << 20; // 16 MiB
/** Upper bound accepted for any dimension value; products of several
 *  dimensions stay well inside int64 for the cost models. */
constexpr std::int64_t kMaxDimensionValue = std::int64_t(1) << 24;

/** Parse a network from a stream. @throws ParseError. */
Network parseNetwork(std::istream &in, const std::string &name);

/** Parse a network from a string. @throws ParseError. */
Network parseNetworkString(const std::string &text,
                           const std::string &name);

/** Parse a network from a file. @throws ParseError (line() == 0 when
 *  the file cannot be opened or exceeds the size cap). */
Network parseNetworkFile(const std::string &path);

/** Serialize a network back into the parser's text format. */
std::string toText(const Network &net);

} // namespace unico::workload

#endif // UNICO_WORKLOAD_PARSER_HH
