/**
 * @file
 * A DNN workload: an ordered list of tensor operators plus helpers
 * for deduplicating repeated layer shapes, which keeps per-network
 * co-search tractable (the PPA of a network is the count-weighted sum
 * over unique shapes).
 */

#ifndef UNICO_WORKLOAD_NETWORK_HH
#define UNICO_WORKLOAD_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/tensor_op.hh"

namespace unico::workload {

/** A unique operator shape and its multiplicity within a network. */
struct WeightedOp
{
    TensorOp op;        ///< representative operator
    std::int64_t count; ///< occurrences of this exact shape
};

/** An ordered DNN workload. */
class Network
{
  public:
    Network() = default;

    /** @param name human readable network name. */
    explicit Network(std::string name) : name_(std::move(name)) {}

    /** Append a layer. */
    void add(TensorOp op) { ops_.push_back(std::move(op)); }

    const std::string &name() const { return name_; }
    const std::vector<TensorOp> &ops() const { return ops_; }
    std::size_t size() const { return ops_.size(); }

    /** Total MAC count across all layers. */
    std::int64_t totalMacs() const;

    /**
     * Unique layer shapes with multiplicities, ordered by descending
     * contribution (count * MACs) so truncation keeps the layers that
     * dominate end-to-end latency.
     */
    std::vector<WeightedOp> uniqueOps() const;

    /**
     * The @p max_shapes highest-contribution unique shapes. Used by
     * benches under --scale to bound mapping-search work while
     * preserving the network's performance profile.
     */
    std::vector<WeightedOp> dominantOps(std::size_t max_shapes) const;

  private:
    std::string name_;
    std::vector<TensorOp> ops_;
};

} // namespace unico::workload

#endif // UNICO_WORKLOAD_NETWORK_HH
