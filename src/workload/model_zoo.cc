#include "workload/model_zoo.hh"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace unico::workload {

namespace {

/** Append a standard transformer encoder block expressed as GEMMs.
 *  @param seq sequence length, @param dim hidden size,
 *  @param mlp feed-forward inner size. */
void
addTransformerBlock(Network &net, const std::string &prefix,
                    std::int64_t seq, std::int64_t dim, std::int64_t mlp)
{
    // QKV projections (fused as one GEMM of 3*dim outputs).
    net.add(TensorOp::gemm(prefix + "_qkv", seq, 3 * dim, dim));
    // Attention scores QK^T and context AV.
    net.add(TensorOp::gemm(prefix + "_qk", seq, seq, dim));
    net.add(TensorOp::gemm(prefix + "_av", seq, dim, seq));
    // Output projection.
    net.add(TensorOp::gemm(prefix + "_proj", seq, dim, dim));
    // Feed-forward network.
    net.add(TensorOp::gemm(prefix + "_ffn1", seq, mlp, dim));
    net.add(TensorOp::gemm(prefix + "_ffn2", seq, dim, mlp));
}

/** Append an inverted-residual (MBConv) block: expand 1x1, depthwise,
 *  project 1x1. @p in/@p out channel counts, @p expand ratio. */
void
addMbConv(Network &net, const std::string &prefix, std::int64_t in,
          std::int64_t out, std::int64_t expand, std::int64_t spatial,
          std::int64_t kernel, std::int64_t stride)
{
    const std::int64_t mid = in * expand;
    const std::int64_t out_spatial = spatial / stride;
    if (expand != 1)
        net.add(TensorOp::conv(prefix + "_expand", mid, in, spatial,
                               spatial, 1, 1));
    net.add(TensorOp::depthwise(prefix + "_dw", mid, out_spatial,
                                out_spatial, kernel, kernel, stride));
    net.add(TensorOp::conv(prefix + "_project", out, mid, out_spatial,
                           out_spatial, 1, 1));
}

/** Fused-MBConv block (EfficientNetV2): 3x3 expand conv + 1x1 project. */
void
addFusedMbConv(Network &net, const std::string &prefix, std::int64_t in,
               std::int64_t out, std::int64_t expand, std::int64_t spatial,
               std::int64_t stride)
{
    const std::int64_t mid = in * expand;
    const std::int64_t out_spatial = spatial / stride;
    net.add(TensorOp::conv(prefix + "_fused", mid, in, out_spatial,
                           out_spatial, 3, 3, stride));
    if (expand != 1)
        net.add(TensorOp::conv(prefix + "_project", out, mid, out_spatial,
                               out_spatial, 1, 1));
}

/** Depthwise-separable block (MobileNetV1 / Xception style). */
void
addSeparable(Network &net, const std::string &prefix, std::int64_t in,
             std::int64_t out, std::int64_t spatial, std::int64_t stride)
{
    const std::int64_t out_spatial = spatial / stride;
    net.add(TensorOp::depthwise(prefix + "_dw", in, out_spatial,
                                out_spatial, 3, 3, stride));
    net.add(TensorOp::conv(prefix + "_pw", out, in, out_spatial,
                           out_spatial, 1, 1));
}

/** ResNet bottleneck: 1x1 reduce, 3x3, 1x1 expand (+ optional
 *  projection shortcut when @p project is true). */
void
addBottleneck(Network &net, const std::string &prefix, std::int64_t in,
              std::int64_t mid, std::int64_t out, std::int64_t spatial,
              std::int64_t stride, bool project)
{
    const std::int64_t out_spatial = spatial / stride;
    net.add(TensorOp::conv(prefix + "_a", mid, in, out_spatial, out_spatial,
                           1, 1, stride));
    net.add(TensorOp::conv(prefix + "_b", mid, mid, out_spatial,
                           out_spatial, 3, 3));
    net.add(TensorOp::conv(prefix + "_c", out, mid, out_spatial,
                           out_spatial, 1, 1));
    if (project)
        net.add(TensorOp::conv(prefix + "_proj", out, in, out_spatial,
                               out_spatial, 1, 1, stride));
}

} // namespace

Network
makeBert()
{
    Network net("bert");
    const std::int64_t seq = 384, dim = 768, mlp = 3072;
    for (int i = 0; i < 12; ++i) {
        std::ostringstream prefix;
        prefix << "enc" << i;
        addTransformerBlock(net, prefix.str(), seq, dim, mlp);
    }
    net.add(TensorOp::gemm("pooler", 1, dim, dim));
    return net;
}

Network
makeMobileNet()
{
    Network net("mobilenet");
    net.add(TensorOp::conv("conv1", 32, 3, 112, 112, 3, 3, 2));
    struct Spec { std::int64_t in, out, spatial, stride; };
    const Spec specs[] = {
        {32, 64, 112, 1},   {64, 128, 112, 2},  {128, 128, 56, 1},
        {128, 256, 56, 2},  {256, 256, 28, 1},  {256, 512, 28, 2},
        {512, 512, 14, 1},  {512, 512, 14, 1},  {512, 512, 14, 1},
        {512, 512, 14, 1},  {512, 512, 14, 1},  {512, 1024, 14, 2},
        {1024, 1024, 7, 1},
    };
    int idx = 0;
    for (const auto &sp : specs) {
        std::ostringstream prefix;
        prefix << "block" << idx++;
        addSeparable(net, prefix.str(), sp.in, sp.out, sp.spatial,
                     sp.stride);
    }
    net.add(TensorOp::gemv("fc", 1000, 1024));
    return net;
}

Network
makeMobileNetV2()
{
    Network net("mobilenet_v2");
    net.add(TensorOp::conv("conv1", 32, 3, 112, 112, 3, 3, 2));
    struct Spec {
        std::int64_t in, out, expand, spatial, stride, repeat;
    };
    const Spec specs[] = {
        {32, 16, 1, 112, 1, 1},  {16, 24, 6, 112, 2, 2},
        {24, 32, 6, 56, 2, 3},   {32, 64, 6, 28, 2, 4},
        {64, 96, 6, 14, 1, 3},   {96, 160, 6, 14, 2, 3},
        {160, 320, 6, 7, 1, 1},
    };
    int idx = 0;
    for (const auto &sp : specs) {
        std::int64_t in = sp.in;
        std::int64_t spatial = sp.spatial;
        for (std::int64_t rep = 0; rep < sp.repeat; ++rep) {
            std::ostringstream prefix;
            prefix << "ir" << idx++;
            const std::int64_t stride = rep == 0 ? sp.stride : 1;
            addMbConv(net, prefix.str(), in, sp.out, sp.expand, spatial,
                      3, stride);
            spatial /= stride;
            in = sp.out;
        }
    }
    net.add(TensorOp::conv("conv_last", 1280, 320, 7, 7, 1, 1));
    net.add(TensorOp::gemv("fc", 1000, 1280));
    return net;
}

Network
makeMobileNetV3Large()
{
    Network net("mobilenet_v3_large");
    net.add(TensorOp::conv("conv1", 16, 3, 112, 112, 3, 3, 2));
    struct Spec {
        std::int64_t in, out, mid, spatial, kernel, stride;
    };
    const Spec specs[] = {
        {16, 16, 16, 112, 3, 1},   {16, 24, 64, 112, 3, 2},
        {24, 24, 72, 56, 3, 1},    {24, 40, 72, 56, 5, 2},
        {40, 40, 120, 28, 5, 1},   {40, 40, 120, 28, 5, 1},
        {40, 80, 240, 28, 3, 2},   {80, 80, 200, 14, 3, 1},
        {80, 80, 184, 14, 3, 1},   {80, 80, 184, 14, 3, 1},
        {80, 112, 480, 14, 3, 1},  {112, 112, 672, 14, 3, 1},
        {112, 160, 672, 14, 5, 2}, {160, 160, 960, 7, 5, 1},
        {160, 160, 960, 7, 5, 1},
    };
    int idx = 0;
    for (const auto &sp : specs) {
        std::ostringstream prefix;
        prefix << "bneck" << idx++;
        const std::int64_t out_spatial = sp.spatial / sp.stride;
        if (sp.mid != sp.in)
            net.add(TensorOp::conv(prefix.str() + "_expand", sp.mid, sp.in,
                                   sp.spatial, sp.spatial, 1, 1));
        net.add(TensorOp::depthwise(prefix.str() + "_dw", sp.mid,
                                    out_spatial, out_spatial, sp.kernel,
                                    sp.kernel, sp.stride));
        net.add(TensorOp::conv(prefix.str() + "_project", sp.out, sp.mid,
                               out_spatial, out_spatial, 1, 1));
    }
    net.add(TensorOp::conv("conv_last", 960, 160, 7, 7, 1, 1));
    net.add(TensorOp::gemv("fc1", 1280, 960));
    net.add(TensorOp::gemv("fc2", 1000, 1280));
    return net;
}

Network
makeMobileNetV3Small()
{
    Network net("mobilenet_v3_small");
    net.add(TensorOp::conv("conv1", 16, 3, 112, 112, 3, 3, 2));
    struct Spec {
        std::int64_t in, out, mid, spatial, kernel, stride;
    };
    const Spec specs[] = {
        {16, 16, 16, 112, 3, 2},  {16, 24, 72, 56, 3, 2},
        {24, 24, 88, 28, 3, 1},   {24, 40, 96, 28, 5, 2},
        {40, 40, 240, 14, 5, 1},  {40, 40, 240, 14, 5, 1},
        {40, 48, 120, 14, 5, 1},  {48, 48, 144, 14, 5, 1},
        {48, 96, 288, 14, 5, 2},  {96, 96, 576, 7, 5, 1},
        {96, 96, 576, 7, 5, 1},
    };
    int idx = 0;
    for (const auto &sp : specs) {
        std::ostringstream prefix;
        prefix << "bneck" << idx++;
        const std::int64_t out_spatial = sp.spatial / sp.stride;
        if (sp.mid != sp.in)
            net.add(TensorOp::conv(prefix.str() + "_expand", sp.mid, sp.in,
                                   sp.spatial, sp.spatial, 1, 1));
        net.add(TensorOp::depthwise(prefix.str() + "_dw", sp.mid,
                                    out_spatial, out_spatial, sp.kernel,
                                    sp.kernel, sp.stride));
        net.add(TensorOp::conv(prefix.str() + "_project", sp.out, sp.mid,
                               out_spatial, out_spatial, 1, 1));
    }
    net.add(TensorOp::conv("conv_last", 576, 96, 7, 7, 1, 1));
    net.add(TensorOp::gemv("fc1", 1024, 576));
    net.add(TensorOp::gemv("fc2", 1000, 1024));
    return net;
}

Network
makeResNet()
{
    Network net("resnet");
    net.add(TensorOp::conv("conv1", 64, 3, 112, 112, 7, 7, 2));
    struct Stage {
        std::int64_t in, mid, out, spatial, stride, blocks;
    };
    const Stage stages[] = {
        {64, 64, 256, 56, 1, 3},
        {256, 128, 512, 56, 2, 4},
        {512, 256, 1024, 28, 2, 6},
        {1024, 512, 2048, 14, 2, 3},
    };
    int stage_idx = 2;
    for (const auto &st : stages) {
        std::int64_t in = st.in;
        std::int64_t spatial = st.spatial;
        for (std::int64_t blk = 0; blk < st.blocks; ++blk) {
            std::ostringstream prefix;
            prefix << "conv" << stage_idx << "_" << blk;
            const std::int64_t stride = blk == 0 ? st.stride : 1;
            addBottleneck(net, prefix.str(), in, st.mid, st.out, spatial,
                          stride, blk == 0);
            spatial /= stride;
            in = st.out;
        }
        ++stage_idx;
    }
    net.add(TensorOp::gemv("fc", 1000, 2048));
    return net;
}

Network
makeSrgan()
{
    Network net("srgan");
    // Generator for 4x SR of a 96x96 LR input.
    net.add(TensorOp::conv("conv_in", 64, 3, 96, 96, 9, 9));
    for (int i = 0; i < 16; ++i) {
        std::ostringstream a, b;
        a << "resblk" << i << "_a";
        b << "resblk" << i << "_b";
        net.add(TensorOp::conv(a.str(), 64, 64, 96, 96, 3, 3));
        net.add(TensorOp::conv(b.str(), 64, 64, 96, 96, 3, 3));
    }
    net.add(TensorOp::conv("conv_mid", 64, 64, 96, 96, 3, 3));
    // Two pixel-shuffle upsampling stages.
    net.add(TensorOp::conv("up1", 256, 64, 96, 96, 3, 3));
    net.add(TensorOp::conv("up2", 256, 64, 192, 192, 3, 3));
    net.add(TensorOp::conv("conv_out", 3, 64, 384, 384, 9, 9));
    return net;
}

Network
makeUnet()
{
    Network net("unet");
    struct Level { std::int64_t ch, spatial; };
    const Level enc[] = {
        {64, 568}, {128, 280}, {256, 136}, {512, 64},
    };
    // Contracting path: two 3x3 convs per level.
    std::int64_t in = 1;
    for (std::size_t i = 0; i < 4; ++i) {
        std::ostringstream a, b;
        a << "enc" << i << "_a";
        b << "enc" << i << "_b";
        net.add(TensorOp::conv(a.str(), enc[i].ch, in, enc[i].spatial + 2,
                               enc[i].spatial + 2, 3, 3));
        net.add(TensorOp::conv(b.str(), enc[i].ch, enc[i].ch,
                               enc[i].spatial, enc[i].spatial, 3, 3));
        in = enc[i].ch;
    }
    // Bottleneck.
    net.add(TensorOp::conv("bottleneck_a", 1024, 512, 30, 30, 3, 3));
    net.add(TensorOp::conv("bottleneck_b", 1024, 1024, 28, 28, 3, 3));
    // Expanding path: up-conv + two 3x3 convs per level.
    const Level dec[] = {
        {512, 52}, {256, 100}, {128, 196}, {64, 388},
    };
    in = 1024;
    for (std::size_t i = 0; i < 4; ++i) {
        std::ostringstream up, a, b;
        up << "up" << i;
        a << "dec" << i << "_a";
        b << "dec" << i << "_b";
        net.add(TensorOp::conv(up.str(), dec[i].ch, in, dec[i].spatial + 4,
                               dec[i].spatial + 4, 2, 2));
        net.add(TensorOp::conv(a.str(), dec[i].ch, dec[i].ch * 2,
                               dec[i].spatial + 2, dec[i].spatial + 2, 3,
                               3));
        net.add(TensorOp::conv(b.str(), dec[i].ch, dec[i].ch,
                               dec[i].spatial, dec[i].spatial, 3, 3));
        in = dec[i].ch;
    }
    net.add(TensorOp::conv("out", 2, 64, 388, 388, 1, 1));
    return net;
}

Network
makeVit()
{
    Network net("vit");
    const std::int64_t seq = 197, dim = 768, mlp = 3072;
    // Patch embedding: 16x16 conv over 224x224x3 == GEMM 196x768x768.
    net.add(TensorOp::conv("patch_embed", dim, 3, 14, 14, 16, 16, 16));
    for (int i = 0; i < 12; ++i) {
        std::ostringstream prefix;
        prefix << "enc" << i;
        addTransformerBlock(net, prefix.str(), seq, dim, mlp);
    }
    net.add(TensorOp::gemv("head", 1000, dim));
    return net;
}

Network
makeXception()
{
    Network net("xception");
    // Entry flow.
    net.add(TensorOp::conv("conv1", 32, 3, 149, 149, 3, 3, 2));
    net.add(TensorOp::conv("conv2", 64, 32, 147, 147, 3, 3));
    struct Entry { std::int64_t in, out, spatial; };
    const Entry entry[] = {
        {64, 128, 147}, {128, 256, 74}, {256, 728, 37},
    };
    int idx = 0;
    for (const auto &e : entry) {
        std::ostringstream p1, p2, proj;
        p1 << "entry" << idx << "_sep1";
        p2 << "entry" << idx << "_sep2";
        proj << "entry" << idx << "_proj";
        addSeparable(net, p1.str(), e.in, e.out, e.spatial, 1);
        addSeparable(net, p2.str(), e.out, e.out, e.spatial, 2);
        net.add(TensorOp::conv(proj.str(), e.out, e.in, e.spatial / 2,
                               e.spatial / 2, 1, 1, 2));
        ++idx;
    }
    // Middle flow: 8 blocks of three separable convs at 19x19x728.
    for (int blk = 0; blk < 8; ++blk) {
        for (int s = 0; s < 3; ++s) {
            std::ostringstream prefix;
            prefix << "mid" << blk << "_sep" << s;
            addSeparable(net, prefix.str(), 728, 728, 19, 1);
        }
    }
    // Exit flow.
    addSeparable(net, "exit_sep1", 728, 728, 19, 1);
    addSeparable(net, "exit_sep2", 728, 1024, 19, 2);
    net.add(TensorOp::conv("exit_proj", 1024, 728, 10, 10, 1, 1, 2));
    addSeparable(net, "exit_sep3", 1024, 1536, 10, 1);
    addSeparable(net, "exit_sep4", 1536, 2048, 10, 1);
    net.add(TensorOp::gemv("fc", 1000, 2048));
    return net;
}

Network
makeVgg()
{
    Network net("vgg");
    struct Spec { std::int64_t in, out, spatial; };
    const Spec specs[] = {
        {3, 64, 224},    {64, 64, 224},
        {64, 128, 112},  {128, 128, 112},
        {128, 256, 56},  {256, 256, 56},  {256, 256, 56},
        {256, 512, 28},  {512, 512, 28},  {512, 512, 28},
        {512, 512, 14},  {512, 512, 14},  {512, 512, 14},
    };
    int idx = 0;
    for (const auto &sp : specs) {
        std::ostringstream prefix;
        prefix << "conv" << idx++;
        net.add(TensorOp::conv(prefix.str(), sp.out, sp.in, sp.spatial,
                               sp.spatial, 3, 3));
    }
    net.add(TensorOp::gemv("fc1", 4096, 512 * 7 * 7));
    net.add(TensorOp::gemv("fc2", 4096, 4096));
    net.add(TensorOp::gemv("fc3", 1000, 4096));
    return net;
}

Network
makeNasNetMobile()
{
    Network net("nasnet_mobile");
    net.add(TensorOp::conv("stem", 32, 3, 111, 111, 3, 3, 2));
    // NASNet cells mix separable 3x3/5x5/7x7 convolutions; we emit the
    // dominant separable operations of the published mobile variant
    // (N = 4 normal cells per stage, filters 44/88/176).
    struct Stage { std::int64_t ch, spatial, cells; };
    const Stage stages[] = {
        {44, 56, 4}, {88, 28, 4}, {176, 14, 4},
    };
    int stage_idx = 0;
    for (const auto &st : stages) {
        // Reduction cell entering the stage.
        {
            std::ostringstream p5, p7;
            p5 << "stage" << stage_idx << "_red_sep5";
            p7 << "stage" << stage_idx << "_red_sep7";
            net.add(TensorOp::depthwise(p5.str() + "_dw", st.ch,
                                        st.spatial, st.spatial, 5, 5, 2));
            net.add(TensorOp::conv(p5.str() + "_pw", st.ch, st.ch,
                                   st.spatial, st.spatial, 1, 1));
            net.add(TensorOp::depthwise(p7.str() + "_dw", st.ch,
                                        st.spatial, st.spatial, 7, 7, 2));
            net.add(TensorOp::conv(p7.str() + "_pw", st.ch, st.ch,
                                   st.spatial, st.spatial, 1, 1));
        }
        for (std::int64_t cell = 0; cell < st.cells; ++cell) {
            std::ostringstream p3, p5;
            p3 << "stage" << stage_idx << "_cell" << cell << "_sep3";
            p5 << "stage" << stage_idx << "_cell" << cell << "_sep5";
            // Two separable 3x3 and two separable 5x5 ops per cell;
            // the repetition index keeps operator names unique.
            for (int rep = 0; rep < 2; ++rep) {
                const std::string r = "_r" + std::to_string(rep);
                net.add(TensorOp::depthwise(p3.str() + r + "_dw", st.ch,
                                            st.spatial, st.spatial, 3, 3,
                                            1));
                net.add(TensorOp::conv(p3.str() + r + "_pw", st.ch,
                                       st.ch, st.spatial, st.spatial, 1,
                                       1));
                net.add(TensorOp::depthwise(p5.str() + r + "_dw", st.ch,
                                            st.spatial, st.spatial, 5, 5,
                                            1));
                net.add(TensorOp::conv(p5.str() + r + "_pw", st.ch,
                                       st.ch, st.spatial, st.spatial, 1,
                                       1));
            }
        }
        ++stage_idx;
    }
    net.add(TensorOp::gemv("fc", 1000, 1056));
    return net;
}

Network
makeEfficientNetV2()
{
    Network net("efficientnet_v2");
    net.add(TensorOp::conv("stem", 24, 3, 192, 192, 3, 3, 2));
    struct Spec {
        bool fused;
        std::int64_t in, out, expand, spatial, stride, repeat;
    };
    const Spec specs[] = {
        {true, 24, 24, 1, 192, 1, 2},
        {true, 24, 48, 4, 192, 2, 4},
        {true, 48, 64, 4, 96, 2, 4},
        {false, 64, 128, 4, 48, 2, 6},
        {false, 128, 160, 6, 24, 1, 9},
        {false, 160, 256, 6, 24, 2, 15},
    };
    int idx = 0;
    for (const auto &sp : specs) {
        std::int64_t in = sp.in;
        std::int64_t spatial = sp.spatial;
        for (std::int64_t rep = 0; rep < sp.repeat; ++rep) {
            std::ostringstream prefix;
            prefix << "mb" << idx++;
            const std::int64_t stride = rep == 0 ? sp.stride : 1;
            if (sp.fused)
                addFusedMbConv(net, prefix.str(), in, sp.out, sp.expand,
                               spatial, stride);
            else
                addMbConv(net, prefix.str(), in, sp.out, sp.expand,
                          spatial, 3, stride);
            spatial /= stride;
            in = sp.out;
        }
    }
    net.add(TensorOp::conv("head_conv", 1280, 256, 12, 12, 1, 1));
    net.add(TensorOp::gemv("fc", 1000, 1280));
    return net;
}

Network
makeConvNeXt()
{
    Network net("convnext");
    net.add(TensorOp::conv("stem", 96, 3, 56, 56, 4, 4, 4));
    struct Stage { std::int64_t ch, spatial, blocks; };
    const Stage stages[] = {
        {96, 56, 3}, {192, 28, 3}, {384, 14, 9}, {768, 7, 3},
    };
    std::int64_t in = 96;
    int stage_idx = 0;
    for (const auto &st : stages) {
        if (st.ch != in) {
            std::ostringstream ds;
            ds << "down" << stage_idx;
            net.add(TensorOp::conv(ds.str(), st.ch, in, st.spatial,
                                   st.spatial, 2, 2, 2));
        }
        for (std::int64_t blk = 0; blk < st.blocks; ++blk) {
            std::ostringstream prefix;
            prefix << "stage" << stage_idx << "_blk" << blk;
            net.add(TensorOp::depthwise(prefix.str() + "_dw7", st.ch,
                                        st.spatial, st.spatial, 7, 7, 1));
            net.add(TensorOp::conv(prefix.str() + "_pw1", st.ch * 4, st.ch,
                                   st.spatial, st.spatial, 1, 1));
            net.add(TensorOp::conv(prefix.str() + "_pw2", st.ch, st.ch * 4,
                                   st.spatial, st.spatial, 1, 1));
        }
        in = st.ch;
        ++stage_idx;
    }
    net.add(TensorOp::gemv("head", 1000, 768));
    return net;
}

Network
makeResUnet()
{
    Network net("resunet");
    const std::int64_t base = 64;
    struct Level { std::int64_t ch, spatial; };
    const Level enc[] = {
        {base, 256}, {base * 2, 128}, {base * 4, 64}, {base * 8, 32},
    };
    std::int64_t in = 3;
    for (std::size_t i = 0; i < 4; ++i) {
        std::ostringstream a, b, sc;
        a << "enc" << i << "_a";
        b << "enc" << i << "_b";
        sc << "enc" << i << "_shortcut";
        net.add(TensorOp::conv(a.str(), enc[i].ch, in, enc[i].spatial,
                               enc[i].spatial, 3, 3));
        net.add(TensorOp::conv(b.str(), enc[i].ch, enc[i].ch,
                               enc[i].spatial, enc[i].spatial, 3, 3));
        net.add(TensorOp::conv(sc.str(), enc[i].ch, in, enc[i].spatial,
                               enc[i].spatial, 1, 1));
        in = enc[i].ch;
    }
    net.add(TensorOp::conv("bridge_a", base * 16, base * 8, 16, 16, 3, 3));
    net.add(TensorOp::conv("bridge_b", base * 16, base * 16, 16, 16, 3, 3));
    const Level dec[] = {
        {base * 8, 32}, {base * 4, 64}, {base * 2, 128}, {base, 256},
    };
    in = base * 16;
    for (std::size_t i = 0; i < 4; ++i) {
        std::ostringstream up, a, b;
        up << "up" << i;
        a << "dec" << i << "_a";
        b << "dec" << i << "_b";
        net.add(TensorOp::conv(up.str(), dec[i].ch, in, dec[i].spatial,
                               dec[i].spatial, 2, 2));
        net.add(TensorOp::conv(a.str(), dec[i].ch, dec[i].ch * 2,
                               dec[i].spatial, dec[i].spatial, 3, 3));
        net.add(TensorOp::conv(b.str(), dec[i].ch, dec[i].ch,
                               dec[i].spatial, dec[i].spatial, 3, 3));
        in = dec[i].ch;
    }
    net.add(TensorOp::conv("out", 1, base, 256, 256, 1, 1));
    return net;
}

Network
makeFsrcnn(std::int64_t height, std::int64_t width)
{
    std::ostringstream name;
    name << "fsrcnn_" << height << "x" << width;
    Network net(name.str());
    // FSRCNN(56, 12, 4): feature extraction, shrinking, 4 mapping
    // layers, expanding, deconvolution (expressed at output scale 2x).
    net.add(TensorOp::conv("feature", 56, 1, height, width, 5, 5));
    net.add(TensorOp::conv("shrink", 12, 56, height, width, 1, 1));
    for (int i = 0; i < 4; ++i) {
        std::ostringstream prefix;
        prefix << "map" << i;
        net.add(TensorOp::conv(prefix.str(), 12, 12, height, width, 3, 3));
    }
    net.add(TensorOp::conv("expand", 56, 12, height, width, 1, 1));
    net.add(TensorOp::conv("deconv", 1, 56, height * 2, width * 2, 9, 9));
    return net;
}

Network
makeDleu()
{
    Network net("dleu");
    // DLSS-like enhancement + upscaling pipeline at 1080p -> 4K:
    // a shallow feature extractor, a recurrent-style enhancement
    // trunk, and pixel-shuffle upsampling.
    const std::int64_t h = 270, w = 480; // processed at quarter res
    net.add(TensorOp::conv("feat1", 32, 12, h, w, 3, 3));
    net.add(TensorOp::conv("feat2", 48, 32, h, w, 3, 3));
    for (int i = 0; i < 6; ++i) {
        std::ostringstream a, b;
        a << "trunk" << i << "_a";
        b << "trunk" << i << "_b";
        net.add(TensorOp::conv(a.str(), 48, 48, h, w, 3, 3));
        net.add(TensorOp::conv(b.str(), 48, 48, h, w, 3, 3));
    }
    net.add(TensorOp::conv("fuse", 64, 48, h, w, 1, 1));
    net.add(TensorOp::conv("up1", 128, 64, h, w, 3, 3));
    net.add(TensorOp::conv("up2", 48, 32, h * 2, w * 2, 3, 3));
    net.add(TensorOp::conv("out", 12, 12, h * 4, w * 4, 3, 3));
    return net;
}

std::vector<std::string>
modelNames()
{
    return {
        "bert",
        "mobilenet",
        "mobilenet_v2",
        "mobilenet_v3_large",
        "mobilenet_v3_small",
        "resnet",
        "srgan",
        "unet",
        "vit",
        "xception",
        "vgg",
        "nasnet_mobile",
        "efficientnet_v2",
        "convnext",
        "resunet",
        "fsrcnn_120x320",
        "fsrcnn_240x640",
        "dleu",
    };
}

Network
makeNetwork(const std::string &name)
{
    if (name == "bert")
        return makeBert();
    if (name == "mobilenet")
        return makeMobileNet();
    if (name == "mobilenet_v2")
        return makeMobileNetV2();
    if (name == "mobilenet_v3_large")
        return makeMobileNetV3Large();
    if (name == "mobilenet_v3_small")
        return makeMobileNetV3Small();
    if (name == "resnet")
        return makeResNet();
    if (name == "srgan")
        return makeSrgan();
    if (name == "unet")
        return makeUnet();
    if (name == "vit")
        return makeVit();
    if (name == "xception")
        return makeXception();
    if (name == "vgg")
        return makeVgg();
    if (name == "nasnet_mobile")
        return makeNasNetMobile();
    if (name == "efficientnet_v2")
        return makeEfficientNetV2();
    if (name == "convnext")
        return makeConvNeXt();
    if (name == "resunet")
        return makeResUnet();
    if (name == "dleu")
        return makeDleu();
    // fsrcnn_<H>x<W>
    if (name.rfind("fsrcnn_", 0) == 0) {
        const auto dims = name.substr(7);
        const auto sep = dims.find('x');
        if (sep != std::string::npos) {
            const std::int64_t h = std::stoll(dims.substr(0, sep));
            const std::int64_t w = std::stoll(dims.substr(sep + 1));
            if (h > 0 && w > 0)
                return makeFsrcnn(h, w);
        }
    }
    throw std::invalid_argument("unknown network: " + name);
}

} // namespace unico::workload
