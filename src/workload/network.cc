#include "workload/network.hh"

#include <algorithm>
#include <map>

namespace unico::workload {

std::int64_t
Network::totalMacs() const
{
    std::int64_t total = 0;
    for (const auto &op : ops_)
        total += op.macs();
    return total;
}

std::vector<WeightedOp>
Network::uniqueOps() const
{
    std::map<std::string, WeightedOp> by_shape;
    for (const auto &op : ops_) {
        auto [it, inserted] = by_shape.try_emplace(op.shapeKey(),
                                                   WeightedOp{op, 0});
        it->second.count += 1;
        (void)inserted;
    }
    std::vector<WeightedOp> out;
    out.reserve(by_shape.size());
    for (auto &entry : by_shape)
        out.push_back(std::move(entry.second));
    std::sort(out.begin(), out.end(),
              [](const WeightedOp &a, const WeightedOp &b) {
                  return a.count * a.op.macs() > b.count * b.op.macs();
              });
    return out;
}

std::vector<WeightedOp>
Network::dominantOps(std::size_t max_shapes) const
{
    auto all = uniqueOps();
    if (all.size() > max_shapes)
        all.resize(max_shapes);
    return all;
}

} // namespace unico::workload
