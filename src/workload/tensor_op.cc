#include "workload/tensor_op.hh"

#include <sstream>

namespace unico::workload {

const char *
toString(OpKind kind)
{
    switch (kind) {
      case OpKind::Conv2D: return "Conv2D";
      case OpKind::DepthwiseConv2D: return "DepthwiseConv2D";
      case OpKind::Gemm: return "Gemm";
      case OpKind::Gemv: return "Gemv";
      case OpKind::Elementwise: return "Elementwise";
    }
    return "Unknown";
}

TensorOp
TensorOp::conv(std::string name, std::int64_t k, std::int64_t c,
               std::int64_t y, std::int64_t x, std::int64_t r, std::int64_t s,
               std::int64_t stride, std::int64_t n)
{
    TensorOp op;
    op.name = std::move(name);
    op.kind = OpKind::Conv2D;
    op.n = n;
    op.k = k;
    op.c = c;
    op.y = y;
    op.x = x;
    op.r = r;
    op.s = s;
    op.strideY = stride;
    op.strideX = stride;
    return op;
}

TensorOp
TensorOp::depthwise(std::string name, std::int64_t k, std::int64_t y,
                    std::int64_t x, std::int64_t r, std::int64_t s,
                    std::int64_t stride)
{
    TensorOp op;
    op.name = std::move(name);
    op.kind = OpKind::DepthwiseConv2D;
    op.k = k;
    op.c = 1;
    op.y = y;
    op.x = x;
    op.r = r;
    op.s = s;
    op.strideY = stride;
    op.strideX = stride;
    return op;
}

TensorOp
TensorOp::gemm(std::string name, std::int64_t m, std::int64_t nn,
               std::int64_t kk)
{
    TensorOp op;
    op.name = std::move(name);
    op.kind = OpKind::Gemm;
    op.k = m;
    op.c = kk;
    op.x = nn;
    return op;
}

TensorOp
TensorOp::gemv(std::string name, std::int64_t m, std::int64_t kk)
{
    TensorOp op;
    op.name = std::move(name);
    op.kind = OpKind::Gemv;
    op.k = m;
    op.c = kk;
    return op;
}

std::int64_t
TensorOp::macs() const
{
    return n * k * c * y * x * r * s;
}

std::int64_t
TensorOp::outputElems() const
{
    return n * k * y * x;
}

std::int64_t
TensorOp::weightElems() const
{
    return k * c * r * s;
}

std::int64_t
TensorOp::inputHeight() const
{
    return (y - 1) * strideY + r;
}

std::int64_t
TensorOp::inputWidth() const
{
    return (x - 1) * strideX + s;
}

std::int64_t
TensorOp::inputElems() const
{
    const std::int64_t channels =
        kind == OpKind::DepthwiseConv2D ? k : c;
    return n * channels * inputHeight() * inputWidth();
}

double
TensorOp::arithmeticIntensity() const
{
    const double bytes =
        2.0 * static_cast<double>(inputElems() + weightElems() +
                                  outputElems());
    if (bytes <= 0.0)
        return 0.0;
    return static_cast<double>(macs()) / bytes;
}

bool
TensorOp::sameShape(const TensorOp &other) const
{
    return kind == other.kind && n == other.n && k == other.k &&
           c == other.c && y == other.y && x == other.x && r == other.r &&
           s == other.s && strideY == other.strideY &&
           strideX == other.strideX;
}

std::string
TensorOp::shapeKey() const
{
    std::ostringstream oss;
    oss << toString(kind) << ':' << n << 'x' << k << 'x' << c << 'x' << y
        << 'x' << x << 'x' << r << 'x' << s << ':' << strideY << ','
        << strideX;
    return oss.str();
}

common::Fingerprint
TensorOp::fingerprint() const
{
    common::FingerprintBuilder fb;
    fb.add(static_cast<int>(kind))
        .add(n)
        .add(k)
        .add(c)
        .add(y)
        .add(x)
        .add(r)
        .add(s)
        .add(strideY)
        .add(strideX);
    return fb.fingerprint();
}

} // namespace unico::workload
