/**
 * @file
 * Workload characterization: operator mix, arithmetic-intensity
 * profile and roofline estimates for a network on a given
 * compute/bandwidth budget. Used by examples and benches to explain
 * *why* a co-searched design behaves the way it does (e.g. which
 * networks are DRAM-bound on a candidate accelerator).
 */

#ifndef UNICO_WORKLOAD_ANALYSIS_HH
#define UNICO_WORKLOAD_ANALYSIS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/network.hh"

namespace unico::workload {

/** Aggregate operator-mix statistics of a network. */
struct OperatorMix
{
    std::int64_t totalMacs = 0;
    std::int64_t totalParams = 0;        ///< weight elements
    std::int64_t totalActivations = 0;   ///< input+output elements
    double convMacFraction = 0.0;        ///< dense conv share of MACs
    double depthwiseMacFraction = 0.0;
    double gemmMacFraction = 0.0;        ///< GEMM+GEMV share
    std::size_t layerCount = 0;
    std::size_t uniqueShapeCount = 0;
};

/** Compute the operator mix of @p net. */
OperatorMix analyzeMix(const Network &net);

/** Roofline classification of one operator on a machine model. */
struct RooflinePoint
{
    std::string layer;
    double intensity = 0.0;    ///< MACs per byte
    double attainableMacsPerCycle = 0.0;
    bool memoryBound = false;
};

/**
 * Roofline estimate for every layer of @p net on a machine with
 * @p peak_macs_per_cycle compute and @p bytes_per_cycle DRAM
 * bandwidth (no on-chip reuse beyond the operator's intrinsic
 * reuse — a conservative bound).
 */
std::vector<RooflinePoint> roofline(const Network &net,
                                    double peak_macs_per_cycle,
                                    double bytes_per_cycle);

/**
 * Fraction of a network's MACs that are memory bound under the
 * machine model (weighted by MACs).
 */
double memoryBoundMacFraction(const Network &net,
                              double peak_macs_per_cycle,
                              double bytes_per_cycle);

/**
 * Lower-bound execution cycles of @p net on the machine model:
 * sum over layers of max(compute cycles, traffic cycles).
 */
double rooflineCycles(const Network &net, double peak_macs_per_cycle,
                      double bytes_per_cycle);

} // namespace unico::workload

#endif // UNICO_WORKLOAD_ANALYSIS_HH
