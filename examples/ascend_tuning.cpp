/**
 * @file
 * Industrial scenario (Sec. 4.6): tune the Ascend-like cube core for
 * a super-resolution workload against the cycle-level simulator and
 * compare the discovered configuration with the expert default.
 * Every simulator query charges minutes of virtual search time, so
 * this example also demonstrates the EvalClock cost ledger.
 *
 * Usage: ascend_tuning [--seed S] [--scale X] [--net NAME]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/ascend_env.hh"
#include "core/driver.hh"
#include "workload/model_zoo.hh"

using namespace unico;

int
main(int argc, char **argv)
{
    common::CliArgs args(argc, argv);
    const double scale = args.getDouble("scale", 1.0);
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 5));
    const std::string net = args.getString("net", "fsrcnn_120x320");

    core::AscendEnvOptions env_opt;
    env_opt.maxShapesPerNetwork = 3;
    core::AscendEnv env({workload::makeNetwork(net)}, env_opt);

    std::cout << "Ascend-like tuning for " << net << " (area <= "
              << env.areaBudgetMm2() << " mm2)\nHW space: "
              << env.hwSpace().cardinality()
              << " configurations; PPA engine: cycle-level simulator\n\n";

    core::DriverConfig cfg = core::DriverConfig::unico();
    cfg.batchSize = 10;
    cfg.maxIter = std::max(static_cast<int>(10 * scale), 3);
    cfg.sh.bMax = std::max(static_cast<int>(64 * scale), 16);
    cfg.minBudgetPerRound = 6;
    cfg.seed = seed;
    core::CoOptimizer driver(env, cfg);
    const auto result = driver.run();

    const auto default_hw = env.ascendSpace().encodeDefault();
    const accel::Ppa def =
        env.evaluateConfig(default_hw, cfg.sh.bMax, seed + 1);

    std::cout << "search cost: " << result.totalHours
              << " virtual hours for " << result.records.size()
              << " HW samples\n\n";

    common::TableWriter table(
        {"variant", "hw", "L(ms)", "P(mW)", "A(mm2)", "R"});
    table.addRow({"expert default", env.describeHw(default_hw),
                  common::TableWriter::num(def.latencyMs),
                  common::TableWriter::num(def.powerMw, 1),
                  common::TableWriter::num(def.areaMm2, 1), "-"});
    for (const auto &entry : result.front.entries()) {
        const auto &rec = result.records[entry.id];
        if (!rec.fullySearched)
            continue;
        table.addRow({"UNICO pareto", env.describeHw(rec.hw),
                      common::TableWriter::num(rec.ppa.latencyMs),
                      common::TableWriter::num(rec.ppa.powerMw, 1),
                      common::TableWriter::num(rec.ppa.areaMm2, 1),
                      common::TableWriter::num(rec.sensitivity, 2)});
    }
    table.print(std::cout);

    if (!result.front.empty()) {
        const auto &rec = result.records[result.minDistanceRecord()];
        std::cout << "\nrecommended configuration: "
                  << env.describeHw(rec.hw) << "\n  latency "
                  << rec.ppa.latencyMs << " ms ("
                  << (def.latencyMs - rec.ppa.latencyMs) / def.latencyMs *
                         100.0
                  << "% vs default), power " << rec.ppa.powerMw
                  << " mW ("
                  << (def.powerMw - rec.ppa.powerMw) / def.powerMw * 100.0
                  << "% vs default)\n";
    }
    return 0;
}
