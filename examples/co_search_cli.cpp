/**
 * @file
 * Command-line co-search driver: run any of the shipped algorithms
 * on zoo networks or user-supplied workload files and export the
 * results as CSV — the "tool" face of the library.
 *
 * Usage:
 *   co_search_cli --model resnet [--model vit ...] \
 *                 [--workload my_net.txt ...] \
 *                 [--backend spatial|ascend] \
 *                 [--scenario edge|cloud] [--engine ENGINE] \
 *                 [--area-budget MM2] \
 *                 [--algo unico|hasco|mobohb|nsga2|sh|msh] \
 *                 [--batch N] [--iters I] [--bmax B] [--seed S] \
 *                 [--threads T] [--batch-evals N] \
 *                 [--csv-prefix out/prefix] [--progress-every N] \
 *                 [--cache-mb MB] [--no-cache] \
 *                 [--surrogate] [--surrogate-keep F] [--no-surrogate] \
 *                 [--fault-rate F] [--hang-rate F] [--corrupt-rate F] \
 *                 [--fault-seed S] [--checkpoint FILE] [--resume] \
 *                 [--checkpoint-every N] [--checkpoint-keep K] \
 *                 [--wall-deadline SEC] [--eval-wall-deadline SEC] \
 *                 [--workers N] [--worker-eval-deadline SEC] \
 *                 [--worker-chaos-kills K] [--worker-chaos-seed S] \
 *                 [--fleet-listen HOST:PORT] [--fleet-port-file FILE] \
 *                 [--fleet-connect HOST:PORT]
 *
 * Evaluation fleet: --workers N forks N evaluation worker processes
 * (master/worker over CRC-framed socketpairs, Sec. 3.5's cluster
 * deployment in miniature). Worker crashes, hangs and corrupt
 * responses are absorbed by respawn + deterministic replay, so
 * results — records, front, trace CSVs and checkpoints — are
 * byte-identical to the in-process run for any worker count, even
 * under --worker-chaos-kills, which SIGKILLs live workers mid-search
 * at seeded points to prove exactly that.
 *
 * Multi-host fleet: --fleet-listen HOST:PORT (with --workers N)
 * switches the master from forked workers to a TCP listener that
 * adopts N remote workers as they dial in (":0" picks a free port;
 * --fleet-port-file writes the resolved port for scripts). On another
 * host — or through the chaos_proxy binary — start workers with the
 * SAME workload/backend/scenario flags plus --fleet-connect
 * HOST:PORT: the handshake refuses a worker whose stack identity
 * (backend, scenario, workload digest) differs, and a worker that
 * loses its connection reconnects with jittered exponential backoff
 * and resumes exactly-once via op-history replay. Results stay
 * byte-identical to the in-process run through all of it.
 *
 * Fault tolerance: the --*-rate flags wrap the environment in a
 * deterministic fault injector (per-evaluation crash/hang/corrupt
 * probabilities) to exercise the driver's supervisor; --checkpoint
 * saves resumable state at trial boundaries (every N trials with
 * --checkpoint-every, keeping a K-deep rotation window with
 * --checkpoint-keep) and --resume continues a killed search from the
 * newest valid generation, bit-for-bit.
 *
 * Interruption: SIGINT/SIGTERM wind the search down gracefully —
 * in-flight evaluations drain, a final checkpoint is written, and the
 * process exits with code 75 (EX_TEMPFAIL: resumable). A second
 * signal kills immediately. --wall-deadline bounds the whole run and
 * --eval-wall-deadline each evaluation attempt in real seconds.
 *
 * Batched evaluation: --batch-evals N fans the mapping engines'
 * evaluation-independent candidate blocks (random sampling, annealing
 * exploration, genetic seeding) across N threads on a pool separate
 * from --threads' round-dispatch pool. The deterministic batch
 * contract keeps every record, front, trace CSV and checkpoint
 * byte-identical to the serial run; only wall-clock changes. The pool
 * is lazily constructed in whichever process evaluates first, so it
 * composes with --workers (the fleet zygote forks before any thread
 * exists).
 *
 * Evaluation cache: PPA queries are memoized in a sharded LRU cache
 * (--cache-mb sets the byte budget, default 64 MB; --no-cache
 * disables it). Results, checkpoints and the records/front/trace
 * CSVs are bit-identical either way — only wall-clock changes.
 *
 * Progress: --progress-every N prints one JSON object per line on
 * stdout — the stepped driver's typed progress events (started /
 * trial / incumbent / front / checkpoint / finished), with trial
 * events thinned to every Nth. The identical event stream is what
 * co_search_server serves over HTTP, so scripts can watch either.
 *
 * Surrogate screening: --surrogate (tune with --surrogate-keep F,
 * default 0.25) trains an online ridge-regression cost model on the
 * exact evaluations each run pays for and answers the predicted-worst
 * candidates from the model, reserving exact evaluation for the keep
 * fraction. Off by default; --no-surrogate forces the legacy path,
 * whose outputs are byte-identical to builds without the feature.
 * Screened-out candidates are fidelity-tagged and never become
 * incumbents, Pareto entries, checkpoint state or CSV rows.
 */

#include <iostream>

#include "baselines/nsga2.hh"
#include "common/cli.hh"
#include "common/fault.hh"
#include "common/shard_cache.hh"
#include "common/shutdown.hh"
#include "common/thread_pool.hh"
#include "common/table.hh"
#include "core/backend.hh"
#include "core/driver.hh"
#include "core/fault_env.hh"
#include "core/fleet.hh"
#include "core/report.hh"
#include "surrogate/learned_model.hh"
#include "workload/model_zoo.hh"
#include "workload/parser.hh"

using namespace unico;

namespace {

int
usage(const char *prog)
{
    std::cerr
        << "usage: " << prog
        << " --model NAME | --workload FILE [more ...]\n"
           "  [--backend NAME] [--scenario edge|cloud]"
           " [--engine random|annealing|genetic]\n"
           "  [--area-budget MM2] [--algo unico|hasco|mobohb|"
           "nsga2|sh|msh]\n"
           "  [--batch N] [--iters I] [--bmax B] [--seed S]"
           " [--threads T] [--batch-evals N]\n"
           "  [--max-shapes K] [--csv-prefix PREFIX]"
           " [--progress-every N]\n"
           "  [--cache-mb MB] [--no-cache]\n"
           "  [--surrogate] [--surrogate-keep F] [--no-surrogate]\n"
           "  [--fault-rate F] [--hang-rate F] [--corrupt-rate F]"
           " [--fault-seed S]\n"
           "  [--checkpoint FILE] [--resume] [--checkpoint-every N]"
           " [--checkpoint-keep K]\n"
           "  [--wall-deadline SEC] [--eval-wall-deadline SEC]\n"
           "  [--workers N] [--worker-eval-deadline SEC]"
           " [--worker-chaos-kills K] [--worker-chaos-seed S]\n"
           "  [--fleet-listen HOST:PORT] [--fleet-port-file FILE]"
           " [--fleet-connect HOST:PORT]\n"
           "backends: ";
    for (const auto &name : core::backendNames())
        std::cerr << name << " ";
    std::cerr << "\nmodels: ";
    for (const auto &name : workload::modelNames())
        std::cerr << name << " ";
    std::cerr << "\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliArgs args(argc, argv);

    // Workload list: every positional arg and every --model /
    // --workload option value.
    std::vector<workload::Network> nets;
    try {
        if (args.has("model"))
            nets.push_back(
                workload::makeNetwork(args.getString("model", "")));
        if (args.has("workload"))
            nets.push_back(workload::parseNetworkFile(
                args.getString("workload", "")));
        for (const auto &pos : args.positional()) {
            if (pos.find('.') != std::string::npos)
                nets.push_back(workload::parseNetworkFile(pos));
            else
                nets.push_back(workload::makeNetwork(pos));
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return usage(args.program().c_str());
    }
    if (nets.empty())
        return usage(args.program().c_str());

    // Backend selection: every evaluation stack (HW space + mapping
    // search + PPA engine) is constructed through the registry, and
    // each backend parses its own option vocabulary.
    const std::string backend = args.getString("backend", "spatial");
    core::BackendOptions env_opt;
    try {
        env_opt = core::parseBackendOptions(backend, args);
    } catch (const core::BackendError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return usage(args.program().c_str());
    }

    // Batched cold evaluation: --batch-evals N fans the engines'
    // evaluation-independent candidate blocks across N threads,
    // byte-identical to serial. Lazy handle: no thread exists before
    // the fleet zygote forks, and each evaluating process (master or
    // fleet worker) materializes its own pool on first use.
    const std::int64_t batch_evals = args.getInt("batch-evals", 0);
    if (batch_evals < 0 || batch_evals > 1024) {
        std::cerr << "error: --batch-evals must be 0..1024\n";
        return usage(args.program().c_str());
    }
    std::unique_ptr<common::LazyThreadPool> eval_pool;
    if (batch_evals > 0) {
        eval_pool = std::make_unique<common::LazyThreadPool>(
            static_cast<std::size_t>(batch_evals));
        env_opt.evalPool = eval_pool.get();
    }

    // Evaluation cache: on by default; --no-cache disables it and
    // --cache-mb sizes it. Search results do not depend on either.
    const std::int64_t cache_mb = args.getInt("cache-mb", 64);
    accel::EvalCache cache(
        args.has("no-cache") || cache_mb <= 0
            ? 0
            : static_cast<std::size_t>(cache_mb) * 1024 * 1024);
    if (!args.has("no-cache") && cache_mb > 0)
        env_opt.cache = &cache;

    // Learned surrogate screening: off by default (byte-identical
    // legacy path); --surrogate (or --surrogate-keep F) turns it on,
    // --no-surrogate wins over both. Exact evaluations stay the sole
    // source of truth — screened-out candidates never reach results,
    // checkpoints or the records/front/trace CSVs.
    common::CorpusTap corpus_tap;
    surrogate::SurrogateContext surrogate_ctx;
    surrogate_ctx.options.enabled =
        (args.has("surrogate") || args.has("surrogate-keep")) &&
        !args.has("no-surrogate");
    surrogate_ctx.options.keep =
        args.getDouble("surrogate-keep", surrogate_ctx.options.keep);
    surrogate_ctx.tap = &corpus_tap;
    if (surrogate_ctx.options.enabled) {
        if (!(surrogate_ctx.options.keep > 0.0) ||
            surrogate_ctx.options.keep > 1.0) {
            std::cerr
                << "error: --surrogate-keep must be in (0, 1]\n";
            return usage(args.program().c_str());
        }
        env_opt.surrogate = &surrogate_ctx;
    }

    std::cout << "workloads:";
    for (const auto &net : nets)
        std::cout << " " << net.name();
    const std::unique_ptr<core::CoSearchEnv> backend_env =
        core::makeBackendEnv(backend, std::move(nets), env_opt);
    std::cout << "\nbackend: " << backend_env->backendName();
    if (!backend_env->scenarioName().empty())
        std::cout << " (" << backend_env->scenarioName() << ")";
    std::cout << "\n";
    if (surrogate_ctx.options.enabled)
        std::cout << "surrogate screening: keep="
                  << surrogate_ctx.options.keep << "\n";
    if (eval_pool != nullptr)
        std::cout << "batched evaluation: " << batch_evals
                  << " threads\n";

    // Optional fault injection: wrap the real environment in a
    // deterministic injector so the run exercises the supervisor.
    common::FaultSpec fault_spec;
    fault_spec.transientRate = args.getDouble("fault-rate", 0.0);
    fault_spec.hangRate = args.getDouble("hang-rate", 0.0);
    fault_spec.corruptRate = args.getDouble("corrupt-rate", 0.0);
    fault_spec.seed =
        static_cast<std::uint64_t>(args.getInt("fault-seed", 7));
    core::FaultyEnv faulty_env(*backend_env,
                               common::FaultPlan(fault_spec));
    core::CoSearchEnv &base_env =
        fault_spec.active() ? static_cast<core::CoSearchEnv &>(faulty_env)
                            : *backend_env;
    if (fault_spec.active())
        std::cout << "fault injection: "
                  << faulty_env.plan().describe() << "\n";

    // Remote worker mode: this process serves evaluations for a
    // master elsewhere instead of searching itself. It must be built
    // with the SAME workload/backend/scenario flags — the handshake
    // verifies the stack identity and refuses a mismatch, because a
    // worker on the wrong workload would silently diverge the search.
    const std::string fleet_connect =
        args.getString("fleet-connect", "");
    if (!fleet_connect.empty()) {
        core::FleetWorkerOptions wopts;
        wopts.connectAddr = fleet_connect;
        wopts.connectDeadlineSeconds =
            args.getDouble("fleet-connect-deadline", 10.0);
        wopts.maxReconnectAttempts = static_cast<int>(
            args.getInt("fleet-reconnect-attempts", 10));
        wopts.reconnectMaxSeconds =
            args.getDouble("fleet-reconnect-max", 2.0);
        std::cout << "fleet worker: dialing " << fleet_connect << "\n";
        const int rc = core::runFleetWorkerClient(base_env, wopts);
        if (rc == 1)
            std::cerr << "error: master at " << fleet_connect
                      << " unreachable\n";
        else if (rc == 2)
            std::cerr << "error: master refused this worker's stack "
                         "identity (wrong workload/backend/scenario)\n";
        return rc;
    }

    // Optional evaluation fleet: fork worker processes NOW, while the
    // process is still single-threaded (the zygote must precede the
    // driver's thread pool). Results are byte-identical to the
    // in-process path for any worker count.
    std::unique_ptr<core::FleetEnv> fleet_env;
    const std::int64_t workers_arg = args.getInt("workers", 0);
    const double worker_deadline =
        args.getDouble("worker-eval-deadline", 30.0);
    const std::int64_t worker_kills =
        args.getInt("worker-chaos-kills", 0);
    if (workers_arg < 0 || workers_arg > 1024 || worker_kills < 0 ||
        !(worker_deadline > 0.0)) {
        std::cerr << "error: --workers must be 0..1024, "
                     "--worker-chaos-kills >= 0 and "
                     "--worker-eval-deadline > 0\n";
        return usage(args.program().c_str());
    }
    const auto fleet_workers = static_cast<std::size_t>(workers_arg);
    const std::string fleet_listen = args.getString("fleet-listen", "");
    if (!fleet_listen.empty() && fleet_workers == 0) {
        std::cerr << "error: --fleet-listen requires --workers N\n";
        return usage(args.program().c_str());
    }
    if (fleet_workers > 0) {
        core::FleetConfig fleet_cfg;
        fleet_cfg.workers = fleet_workers;
        fleet_cfg.requestDeadlineSeconds = worker_deadline;
        fleet_cfg.chaosKills = static_cast<int>(worker_kills);
        fleet_cfg.chaosSeed = static_cast<std::uint64_t>(
            args.getInt("worker-chaos-seed", 0x5eed));
        fleet_cfg.listenAddr = fleet_listen;
        fleet_cfg.connectWaitSeconds =
            args.getDouble("fleet-connect-wait", 30.0);
        fleet_cfg.reconnectWaitSeconds =
            args.getDouble("fleet-reconnect-wait", 5.0);
        // Written by the transport the moment the bind resolves —
        // BEFORE the constructor below blocks waiting for workers,
        // who need the port to dial in.
        fleet_cfg.listenPortFile =
            args.getString("fleet-port-file", "");
        fleet_env =
            std::make_unique<core::FleetEnv>(base_env, fleet_cfg);
        std::cout << "evaluation fleet: " << fleet_env->liveWorkers()
                  << "/" << fleet_workers << " workers";
        if (!fleet_listen.empty())
            std::cout << " (tcp port " << fleet_env->listenPort()
                      << ")";
        if (fleet_cfg.chaosKills > 0)
            std::cout << " (chaos: " << fleet_cfg.chaosKills
                      << " kills, seed " << fleet_cfg.chaosSeed << ")";
        std::cout << "\n";
    }
    core::CoSearchEnv &env =
        fleet_env ? static_cast<core::CoSearchEnv &>(*fleet_env)
                  : base_env;

    const std::string algo = args.getString("algo", "unico");
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    core::CoSearchResult result;
    if (algo == "nsga2") {
        baselines::Nsga2Config cfg;
        cfg.population = static_cast<int>(args.getInt("batch", 20));
        cfg.generations = static_cast<int>(args.getInt("iters", 8));
        cfg.swBudget = static_cast<int>(args.getInt("bmax", 200));
        cfg.seed = seed;
        result = baselines::runNsga2(env, cfg);
    } else {
        core::DriverConfig cfg;
        try {
            cfg = core::driverConfigForAlgo(algo);
        } catch (const std::exception &) {
            return usage(args.program().c_str());
        }
        cfg.batchSize = static_cast<int>(args.getInt("batch", 20));
        cfg.maxIter = static_cast<int>(args.getInt("iters", 8));
        cfg.sh.bMax = static_cast<int>(args.getInt("bmax", 200));
        cfg.realThreads =
            static_cast<std::size_t>(args.getInt("threads", 1));
        cfg.seed = seed;
        cfg.checkpointPath = args.getString("checkpoint", "");
        cfg.resumeFromCheckpoint = args.has("resume");
        if (cfg.resumeFromCheckpoint && cfg.checkpointPath.empty()) {
            std::cerr << "error: --resume requires --checkpoint FILE\n";
            return usage(args.program().c_str());
        }
        cfg.checkpointEvery =
            static_cast<int>(args.getInt("checkpoint-every", 1));
        cfg.checkpointKeep =
            static_cast<int>(args.getInt("checkpoint-keep", 3));
        cfg.wallDeadlineSeconds = args.getDouble("wall-deadline", 0.0);
        cfg.evalWallDeadlineSeconds =
            args.getDouble("eval-wall-deadline", 0.0);
        // Graceful shutdown: SIGINT/SIGTERM cancel this token; the
        // driver drains, checkpoints and returns with interrupted
        // state instead of dying mid-write. Scoped install — this is
        // deliberately after the fleet fork point (handlers must not
        // leak into workers) and stays live through the run.
        common::ShutdownScope shutdown_scope;
        cfg.cancel = &common::shutdownToken();

        // --progress-every N: machine-readable progress as one JSON
        // object per line on stdout — the same typed events the job
        // server streams. Trial events are thinned to every Nth;
        // life-cycle events (started/incumbent/front/checkpoint/
        // finished) always print.
        struct NdjsonProgress final : core::ProgressObserver
        {
            int every = 0;

            void
            onProgress(const core::ProgressEvent &event) override
            {
                if (event.kind == core::ProgressKind::TrialCompleted &&
                    event.iteration % every != 0)
                    return;
                std::cout << core::toJson(event).dump() << "\n";
                std::cout.flush();
            }
        };
        NdjsonProgress progress;
        progress.every =
            static_cast<int>(args.getInt("progress-every", 0));
        core::ProgressObserver *observer =
            progress.every > 0 ? &progress : nullptr;

        core::CoOptimizer driver(env, cfg, nullptr, observer);
        try {
            result = driver.run();
        } catch (const std::exception &e) {
            // A stale/foreign checkpoint or a malformed document must
            // fail with a clean diagnostic, not a core dump.
            std::cerr << "error: " << e.what() << "\n";
            return 1;
        }
        for (const auto &warning : result.warnings)
            std::cerr << "warning: " << warning << "\n";
        if (fault_spec.active()) {
            const auto counts = faulty_env.injected();
            std::cout << "\ninjected faults: transient="
                      << counts.transient << " hang=" << counts.hang
                      << " corrupt=" << counts.corrupt << "\n"
                      << "recovered " << core::toString(result.faults)
                      << "\n";
        } else if (result.faults.total() > 0 ||
                   result.faults.gpFallbacks > 0 ||
                   result.faults.checkpointRecoveries > 0 ||
                   result.faults.transport.total() > 0 ||
                   result.faults.transport.workerRespawns > 0) {
            // Genuine (non-injected) faults — watchdog timeouts, GP
            // fit fallbacks, checkpoint recoveries, transport faults
            // the fleet absorbed — also deserve a digest.
            std::cout << "\nrecovered " << core::toString(result.faults)
                      << "\n";
        }
    }

    // Baselines (nsga2) don't report cache counters themselves;
    // snapshot them here so every algorithm prints the same digest.
    // The corpus-tap counters fold into the cache stats (they share
    // the diagnostics CSV), and the surrogate digest rides beside it.
    if (const accel::EvalCache *c = env.evalCache()) {
        result.cacheStats = c->stats();
        corpus_tap.mergeInto(result.cacheStats);
    }
    result.surrogateStats = env.surrogateStats();

    std::cout << "\n" << core::toString(core::summarize(result)) << "\n";
    if (env.evalCache() != nullptr)
        std::cout << common::toString(result.cacheStats) << "\n";
    if (surrogate_ctx.options.enabled)
        std::cout << surrogate::toString(result.surrogateStats) << "\n";
    std::cout << "\n";
    common::TableWriter table(
        {"hw", "L(ms)", "P(mW)", "A(mm2)", "R"});
    for (const auto &entry : result.front.entries()) {
        const auto &rec = result.records[entry.id];
        table.addRow({env.describeHw(rec.hw),
                      common::TableWriter::num(rec.ppa.latencyMs),
                      common::TableWriter::num(rec.ppa.powerMw, 1),
                      common::TableWriter::num(rec.ppa.areaMm2, 2),
                      common::TableWriter::num(rec.sensitivity, 3)});
    }
    std::cout << "Pareto front:\n";
    table.print(std::cout);
    if (!result.front.empty()) {
        const auto &best = result.records[result.minDistanceRecord()];
        std::cout << "\nrecommended design: "
                  << env.describeHw(best.hw) << "\n";
    }

    const std::string prefix = args.getString("csv-prefix", "");
    if (!prefix.empty()) {
        bool ok =
            core::writeRecordsCsv(result, env, prefix + "_records.csv") &&
            core::writeFrontCsv(result, env, prefix + "_front.csv") &&
            core::writeTraceCsv(result, prefix + "_trace.csv");
        // Cache counters go to their own file so the three result
        // CSVs above stay byte-identical with the cache on or off.
        if (env.evalCache() != nullptr)
            ok = ok &&
                 core::writeCacheCsv(result, prefix + "_cache.csv");
        // Likewise the fault ledger (supervisor + transport): its
        // counters legitimately differ across execution topologies.
        ok = ok && core::writeFaultsCsv(result, prefix + "_faults.csv");
        std::cout << (ok ? "\ncsv written to " : "\ncsv write FAILED: ")
                  << prefix << "_{records,front,trace}.csv\n";
        if (!ok)
            return 1;
    }
    if (result.interrupted) {
        std::cout << "\ninterrupted (" << result.interruptReason
                  << "): state checkpointed, rerun with --resume to "
                     "continue\n";
        return common::kExitResumable;
    }
    return 0;
}
