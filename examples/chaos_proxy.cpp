/**
 * @file
 * Standalone deterministic network-fault injector for the evaluation
 * fleet: a frame-aware TCP proxy that sits between `co_search_cli
 * --fleet-listen` (the master) and `co_search_cli --fleet-connect`
 * workers, injecting delays, drops, duplicates, reorders, torn
 * frames, payload bit flips and hard partitions from a seeded
 * schedule (net/chaos_proxy).
 *
 * Usage:
 *   chaos_proxy --upstream HOST:PORT [--listen HOST:PORT]
 *               [--chaos "seed=7,drop=0.05,delay=0.2:0.02,..."]
 *               [--port-file FILE] [--run-seconds SEC]
 *
 * --listen defaults to 127.0.0.1:0 (a free port; read it from
 * --port-file or stdout). The proxy runs until SIGINT/SIGTERM (or
 * --run-seconds) and then prints its injection ledger, so a chaos run
 * can assert how many faults the fleet actually absorbed.
 *
 * Example — a two-worker fleet on one machine with 5% frame drops and
 * a hard partition every 200 frames:
 *
 *   co_search_cli --model resnet --workers 2 --fleet-listen 127.0.0.1:0 \
 *       --fleet-port-file /tmp/master.port &
 *   chaos_proxy --upstream 127.0.0.1:$(cat /tmp/master.port) \
 *       --chaos "seed=7,drop=0.05,partition=200:0.4" \
 *       --port-file /tmp/proxy.port &
 *   co_search_cli --model resnet --fleet-connect \
 *       127.0.0.1:$(cat /tmp/proxy.port) &   # twice, one per worker
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "common/cli.hh"
#include "common/io.hh"
#include "common/shutdown.hh"
#include "net/chaos_proxy.hh"

using namespace unico;

namespace {

int
usage(const char *prog)
{
    std::cerr << "usage: " << prog
              << " --upstream HOST:PORT [--listen HOST:PORT]\n"
                 "  [--chaos SPEC] [--port-file FILE]"
                 " [--run-seconds SEC]\n"
                 "chaos SPEC keys: seed=N drop=P tear=P flip=P dup=P"
                 " reorder=P\n"
                 "  delay=P[:SECONDS] partition=EVERY[:SECONDS]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliArgs args(argc, argv);

    const std::string upstream = args.getString("upstream", "");
    if (upstream.empty())
        return usage(args.program().c_str());
    const std::string listen =
        args.getString("listen", "127.0.0.1:0");

    net::ChaosProfile profile;
    const std::string spec = args.getString("chaos", "");
    std::string error;
    if (!spec.empty() && !net::ChaosProfile::parse(spec, profile, &error)) {
        std::cerr << "error: bad --chaos spec: " << error << "\n";
        return usage(args.program().c_str());
    }

    net::ChaosProxy proxy(listen, upstream, profile);
    if (!proxy.start(&error)) {
        std::cerr << "error: " << error << "\n";
        return 1;
    }
    std::cout << "chaos proxy: " << listen << " (port " << proxy.port()
              << ") -> " << upstream << "\n";

    const std::string port_file = args.getString("port-file", "");
    if (!port_file.empty()) {
        std::ofstream out(port_file, std::ios::trunc);
        out << proxy.port() << "\n";
        if (!out) {
            std::cerr << "error: cannot write --port-file "
                      << port_file << "\n";
            return 1;
        }
    }

    // Run until a signal (or the optional wall budget) asks us down.
    common::installShutdownHandlers();
    const double run_seconds = args.getDouble("run-seconds", 0.0);
    const double deadline = run_seconds > 0.0
                                ? common::monotonicNow() + run_seconds
                                : 0.0;
    while (!common::shutdownRequested()) {
        if (deadline > 0.0 && common::monotonicNow() >= deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    proxy.stop();

    const auto c = proxy.counters();
    std::cout << "chaos ledger: connections=" << c.connections
              << " frames=" << c.framesForwarded
              << " delayed=" << c.delayed << " dropped=" << c.dropped
              << " duplicated=" << c.duplicated
              << " reordered=" << c.reordered << " torn=" << c.torn
              << " flipped=" << c.flipped
              << " partitions=" << c.partitions
              << " refused=" << c.refusedDuringPartition << "\n";
    return 0;
}
