/**
 * @file
 * Quickstart: co-optimize a spatial accelerator for MobileNet under
 * the edge power envelope with UNICO, then print the Pareto front
 * and the min-Euclidean-distance design.
 *
 * Usage: quickstart [--seed S] [--iters I] [--batch N] [--bmax B]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/driver.hh"
#include "core/spatial_env.hh"
#include "workload/model_zoo.hh"

int
main(int argc, char **argv)
{
    using namespace unico;
    common::CliArgs args(argc, argv);

    // 1. Pick the workload(s) to co-optimize for.
    std::vector<workload::Network> nets;
    nets.push_back(workload::makeMobileNet());

    // 2. Build the co-search environment: spatial HW template (edge
    //    scenario), annealing mapping search, analytical PPA model.
    core::SpatialEnvOptions env_opt;
    env_opt.scenario = accel::Scenario::Edge;
    env_opt.engine = mapping::EngineKind::Annealing;
    env_opt.maxShapesPerNetwork = 4;
    core::SpatialEnv env(std::move(nets), env_opt);

    std::cout << "HW design space: " << env.hwSpace().cardinality()
              << " configurations, " << env.hwSpace().dims()
              << " axes\n";
    std::cout << "Workload: mobilenet, " << env.layers().size()
              << " dominant layer shapes\n\n";

    // 3. Configure and run UNICO (Algorithm 1).
    core::DriverConfig cfg = core::DriverConfig::unico();
    cfg.batchSize = static_cast<int>(args.getInt("batch", 12));
    cfg.maxIter = static_cast<int>(args.getInt("iters", 4));
    cfg.sh.bMax = static_cast<int>(args.getInt("bmax", 120));
    cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 7));
    core::CoOptimizer optimizer(env, cfg);
    const core::CoSearchResult result = optimizer.run();

    // 4. Report the Pareto front.
    std::cout << "Evaluated " << result.records.size()
              << " hardware configurations in " << result.totalHours
              << " virtual hours (" << result.evaluations
              << " PPA queries)\n\n";

    common::TableWriter table(
        {"hw", "latency(ms)", "power(mW)", "area(mm2)", "R"});
    for (const auto &entry : result.front.entries()) {
        const auto &rec = result.records[entry.id];
        table.addRow({env.describeHw(rec.hw),
                      common::TableWriter::num(rec.ppa.latencyMs),
                      common::TableWriter::num(rec.ppa.powerMw, 1),
                      common::TableWriter::num(rec.ppa.areaMm2, 2),
                      common::TableWriter::num(rec.sensitivity, 3)});
    }
    std::cout << "Pareto front (" << result.front.size()
              << " designs):\n";
    table.print(std::cout);

    if (!result.front.empty()) {
        const auto &best =
            result.records[result.minDistanceRecord()];
        std::cout << "\nMin-distance design: "
                  << env.describeHw(best.hw) << "\n  latency "
                  << best.ppa.latencyMs << " ms, power "
                  << best.ppa.powerMw << " mW, area "
                  << best.ppa.areaMm2 << " mm2\n";
    }
    return 0;
}
