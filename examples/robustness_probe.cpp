/**
 * @file
 * Robustness-metric walkthrough: compute R (Eq. 2) for a handful of
 * hardware configurations on a training workload, then show how R
 * predicts the latency penalty those configurations suffer when the
 * SW mapping search budget is cut — the mechanism behind Secs.
 * 3.4/4.3.
 *
 * Usage: robustness_probe [--seed S] [--hw-samples N]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/statistics.hh"
#include "common/table.hh"
#include "core/spatial_env.hh"
#include "workload/model_zoo.hh"

using namespace unico;

int
main(int argc, char **argv)
{
    common::CliArgs args(argc, argv);
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
    const auto hw_samples =
        static_cast<std::size_t>(args.getInt("hw-samples", 10));

    core::SpatialEnvOptions env_opt;
    env_opt.maxShapesPerNetwork = 4;
    core::SpatialEnv train({workload::makeSrgan()}, env_opt);
    core::SpatialEnv deploy({workload::makeMobileNetV2()}, env_opt);

    std::cout << "R (Eq. 2) on srgan vs budget-limited latency penalty "
                 "on mobilenet_v2\n\n";

    common::TableWriter table({"hw", "R (train)", "L limited (ms)",
                               "L converged (ms)", "penalty"});
    common::Rng rng(seed);
    std::vector<double> r_values, penalties;
    while (r_values.size() < hw_samples) {
        const auto hw = train.hwSpace().randomPoint(rng);
        auto train_run = train.createRun(hw, seed + 7);
        train_run->step(200);
        if (!train_run->bestPpa().feasible)
            continue;
        const double r = train_run->sensitivity(0.05);

        auto limited = deploy.createRun(hw, seed + 11);
        limited->step(40);
        auto converged = deploy.createRun(hw, seed + 11);
        converged->step(400);
        if (!limited->bestPpa().feasible ||
            !converged->bestPpa().feasible)
            continue;
        const double lat_limited = limited->bestPpa().latencyMs;
        const double lat_converged = converged->bestPpa().latencyMs;
        const double penalty = lat_limited / lat_converged;

        r_values.push_back(r);
        penalties.push_back(penalty);
        table.addRow({train.describeHw(hw),
                      common::TableWriter::num(r, 3),
                      common::TableWriter::num(lat_limited),
                      common::TableWriter::num(lat_converged),
                      common::TableWriter::num(penalty, 2) + "x"});
    }
    table.print(std::cout);

    std::cout << "\nspearman(R, penalty) = "
              << common::TableWriter::num(
                     common::spearman(r_values, penalties), 3)
              << "  (positive: robust designs need less mapping-search "
                 "budget on new workloads)\n";
    return 0;
}
