/**
 * @file
 * Multi-tenant co-search job server.
 *
 * Serves the core::JobManager over the minimal HTTP/JSON control
 * plane in serve::JobServer:
 *
 *   co_search_server [--listen HOST:PORT] [--port-file PATH] \
 *                    [--max-concurrent N] [--max-queued N] \
 *                    [--cache-mb MB] [--no-cache]
 *
 * Jobs are submitted as JSON documents using the co_search_cli flag
 * vocabulary (see core/job_manager.hh); every job runs through the
 * same stepped driver, so a job served here writes byte-identical
 * records/front/trace CSVs and checkpoints to the same config run
 * through the CLI. All jobs share one evaluation cache (read-mostly,
 * byte-neutral — sharing changes wall-clock time, never results).
 *
 * Shutdown: SIGINT/SIGTERM fans out to every live job's CancelToken;
 * each job drains at its next cooperative boundary and persists a
 * final checkpoint. The server then refuses new submits, waits for
 * every job to reach a terminal state, and exits with the resumable
 * status code 75 — same contract as an interrupted CLI run.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "common/cli.hh"
#include "common/shutdown.hh"
#include "core/job_manager.hh"
#include "serve/server.hh"

using namespace unico;

namespace {

int
usage()
{
    std::cout
        << "usage: co_search_server [--listen HOST:PORT]\n"
           "  [--port-file PATH] [--max-concurrent N] [--max-queued N]\n"
           "  [--cache-mb MB] [--no-cache]\n"
           "\n"
           "Submit jobs as JSON (co_search_cli vocabulary), e.g.:\n"
           "  curl -s http://127.0.0.1:7780/jobs -d \\\n"
           "    '{\"model\":\"resnet18\",\"algo\":\"unico\",\"iters\":8,"
           "\"seed\":1,\"csv_prefix\":\"/tmp/job1\"}'\n"
           "  curl -sN http://127.0.0.1:7780/jobs/1/events\n"
           "  curl -s -X POST http://127.0.0.1:7780/jobs/1/cancel\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliArgs args(argc, argv);
    if (args.has("help"))
        return usage();

    const std::int64_t cache_mb = args.getInt("cache-mb", 64);
    accel::EvalCache cache(
        args.has("no-cache") || cache_mb <= 0
            ? 0
            : static_cast<std::size_t>(cache_mb) * 1024 * 1024);

    core::JobManagerConfig mgr_cfg;
    mgr_cfg.maxConcurrent =
        static_cast<std::size_t>(args.getInt("max-concurrent", 2));
    mgr_cfg.maxQueued =
        static_cast<std::size_t>(args.getInt("max-queued", 16));
    if (!args.has("no-cache") && cache_mb > 0)
        mgr_cfg.sharedCache = &cache;

    // Scoped handler install + per-job fan-out: one SIGINT cancels
    // every live job's token, and each job drains to a checkpoint.
    common::ShutdownScope shutdown_scope;

    core::JobManager manager(mgr_cfg);

    serve::JobServerConfig srv_cfg;
    srv_cfg.addr = args.getString("listen", "127.0.0.1:0");
    serve::JobServer server(manager, srv_cfg);
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "error: " << error << "\n";
        return 1;
    }
    std::cout << "co_search_server listening on port " << server.port()
              << " (max-concurrent=" << mgr_cfg.maxConcurrent
              << ", max-queued=" << mgr_cfg.maxQueued << ")\n";
    std::cout.flush();

    // Port file last, after the listener is live: watchers treat its
    // existence as "ready to accept".
    const std::string port_file = args.getString("port-file", "");
    if (!port_file.empty()) {
        std::FILE *f = std::fopen(port_file.c_str(), "w");
        if (f == nullptr) {
            std::cerr << "error: cannot write " << port_file << "\n";
            return 1;
        }
        std::fprintf(f, "%d\n", server.port());
        std::fclose(f);
    }

    while (!common::shutdownRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::cout << "shutdown signal received; draining jobs...\n";
    std::cout.flush();

    // Fan-out has already cancelled running jobs; shutdown() also
    // refuses new submits and cancels anything still queued. Then
    // wait for every job to reach a terminal state — running jobs
    // finish their current boundary and write a final checkpoint.
    manager.shutdown();
    for (const auto &st : manager.list())
        manager.wait(st.id);
    server.stop();

    std::size_t drained = 0;
    for (const auto &st : manager.list()) {
        std::cout << "job " << st.id << ": "
                  << core::toString(st.state)
                  << (st.error.empty() ? "" : " (" + st.error + ")")
                  << "\n";
        ++drained;
    }
    std::cout << "drained " << drained << " job(s); exiting resumable\n";
    return common::kExitResumable;
}
