/**
 * @file
 * Edge co-design scenario: find one accelerator configuration that
 * serves a *family* of edge workloads (MobileNetV2 + EfficientNetV2
 * + FSRCNN super-resolution) under the 2 W envelope, comparing UNICO
 * against a HASCO-style full-budget co-search, then stress-testing
 * both winners on an unseen workload (ConvNeXt).
 *
 * Usage: edge_codesign [--seed S] [--scale X]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/driver.hh"
#include "core/spatial_env.hh"
#include "workload/model_zoo.hh"

using namespace unico;

namespace {

core::DriverConfig
scaled(core::DriverConfig cfg, double scale, std::uint64_t seed)
{
    cfg.batchSize = std::max(static_cast<int>(16 * scale), 6);
    cfg.maxIter = std::max(static_cast<int>(8 * scale), 3);
    cfg.sh.bMax = std::max(static_cast<int>(200 * scale), 32);
    cfg.seed = seed;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    common::CliArgs args(argc, argv);
    const double scale = args.getDouble("scale", 1.0);
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 3));

    // The product requirement: one chip, three workloads, < 2 W.
    std::vector<workload::Network> family;
    family.push_back(workload::makeMobileNetV2());
    family.push_back(workload::makeEfficientNetV2());
    family.push_back(workload::makeFsrcnn(120, 320));

    core::SpatialEnvOptions env_opt;
    env_opt.scenario = accel::Scenario::Edge;
    env_opt.maxShapesPerNetwork = 4;
    core::SpatialEnv env(std::move(family), env_opt);

    std::cout << "Edge co-design for {mobilenet_v2, efficientnet_v2, "
                 "fsrcnn_120x320}, power < 2 W\n"
              << env.layers().size() << " dominant layer shapes, HW "
              << "space " << env.hwSpace().cardinality() << "\n\n";

    core::CoOptimizer unico(env, scaled(core::DriverConfig::unico(),
                                        scale, seed));
    const auto unico_result = unico.run();
    core::CoOptimizer hasco(env, scaled(core::DriverConfig::hascoLike(),
                                        scale, seed));
    const auto hasco_result = hasco.run();

    common::TableWriter table({"method", "hw", "L(ms)", "P(mW)",
                               "A(mm2)", "cost(h)"});
    struct Pick
    {
        const char *method;
        const core::CoSearchResult *result;
        accel::HwPoint hw;
    };
    std::vector<Pick> picks;
    for (const auto &[name, res] :
         {std::pair<const char *, const core::CoSearchResult *>{
              "UNICO", &unico_result},
          {"HASCO", &hasco_result}}) {
        if (res->front.empty()) {
            table.addRow({name, "(no feasible design)", "-", "-", "-",
                          common::TableWriter::num(res->totalHours, 2)});
            continue;
        }
        const auto &rec = res->records[res->minDistanceRecord()];
        picks.push_back(Pick{name, res, rec.hw});
        table.addRow({name, env.describeHw(rec.hw),
                      common::TableWriter::num(rec.ppa.latencyMs),
                      common::TableWriter::num(rec.ppa.powerMw, 1),
                      common::TableWriter::num(rec.ppa.areaMm2, 2),
                      common::TableWriter::num(res->totalHours, 2)});
    }
    std::cout << "co-design result (min-distance Pareto design):\n";
    table.print(std::cout);

    // Deployment twist: a new workload arrives after tape-out.
    std::cout << "\nunseen workload check (convnext):\n";
    core::SpatialEnvOptions val_opt;
    val_opt.scenario = accel::Scenario::Edge;
    val_opt.maxShapesPerNetwork = 4;
    core::SpatialEnv val_env({workload::makeConvNeXt()}, val_opt);
    common::TableWriter val_table({"method", "convnext L(ms)",
                                   "P(mW)"});
    for (const auto &pick : picks) {
        auto run = val_env.createRun(pick.hw, seed + 99);
        run->step(std::max(static_cast<int>(150 * scale), 32));
        const auto ppa = run->bestPpa();
        val_table.addRow({pick.method,
                          ppa.feasible
                              ? common::TableWriter::num(ppa.latencyMs)
                              : "infeasible",
                          ppa.feasible
                              ? common::TableWriter::num(ppa.powerMw, 1)
                              : "-"});
    }
    val_table.print(std::cout);
    return 0;
}
