/**
 * @file
 * Shared plumbing for the per-table / per-figure bench binaries:
 * CLI conventions (--seed, --scale, --out), algorithm registry,
 * hypervolume trace post-processing and table helpers.
 *
 * Every binary regenerates one table or figure of the paper; scaled
 * defaults keep the full suite runnable in minutes on one core while
 * preserving the qualitative ordering the paper reports.
 */

#ifndef UNICO_BENCH_BENCH_COMMON_HH
#define UNICO_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/nsga2.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "core/backend.hh"
#include "core/driver.hh"
#include "moo/hypervolume.hh"
#include "moo/scalarize.hh"
#include "workload/model_zoo.hh"

namespace unico::bench {

/** Common bench options parsed from the command line. */
struct BenchOptions
{
    std::uint64_t seed = 1;
    double scale = 1.0;      ///< shrinks batch sizes / budgets
    std::string outCsv;      ///< optional CSV dump path
    /** Evaluation stack the bench runs against (--backend). */
    std::string backend = "spatial";
    /** Surrogate screening (--surrogate / --surrogate-keep /
     *  --no-surrogate), mirroring the CLI flag semantics. */
    bool surrogate = false;
    double surrogateKeep = 0.25;

    static BenchOptions
    parse(const common::CliArgs &args)
    {
        BenchOptions opt;
        opt.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
        opt.scale = args.getDouble("scale", 1.0);
        opt.outCsv = args.getString("out", "");
        opt.backend = args.getString("backend", "spatial");
        opt.surrogate =
            (args.has("surrogate") || args.has("surrogate-keep")) &&
            !args.has("no-surrogate");
        opt.surrogateKeep =
            args.getDouble("surrogate-keep", opt.surrogateKeep);
        return opt;
    }

    /** Configure a caller-owned surrogate context from the flags
     *  (the context is non-copyable: it holds the atomic sink). */
    void
    applySurrogate(surrogate::SurrogateContext &ctx) const
    {
        ctx.options.enabled = surrogate;
        ctx.options.keep = surrogateKeep;
    }

    /** Scale an integer parameter, keeping a floor. */
    int
    scaled(int value, int floor_value) const
    {
        return std::max(static_cast<int>(std::lround(value * scale)),
                        floor_value);
    }
};

/** Driver configuration sized for the open-source platform benches. */
inline core::DriverConfig
benchDriverConfig(core::DriverConfig cfg, const BenchOptions &opt)
{
    // HASCO-style full-budget BO samples small sequential batches (it
    // cannot early-stop, so each sample is expensive); the batched SH
    // methods sample wide and run more MOBO trials for less cost.
    if (cfg.budgetMode == core::BudgetMode::FullBudget) {
        cfg.batchSize = opt.scaled(6, 2);
        cfg.maxIter = opt.scaled(14, 4);
    } else {
        cfg.batchSize = opt.scaled(24, 6);
        cfg.maxIter = opt.scaled(10, 3);
    }
    cfg.sh.bMax = opt.scaled(240, 32);
    cfg.minBudgetPerRound = 8;
    cfg.workers = 8;
    cfg.seed = opt.seed;
    return cfg;
}

/** NSGA-II configuration matched in total evaluation budget. */
inline baselines::Nsga2Config
benchNsga2Config(const BenchOptions &opt)
{
    baselines::Nsga2Config cfg;
    cfg.population = opt.scaled(18, 6);
    cfg.generations = opt.scaled(7, 2);
    cfg.swBudget = opt.scaled(240, 32);
    cfg.workers = 8;
    cfg.seed = opt.seed;
    return cfg;
}

/**
 * Build an environment for zoo networks through the backend
 * registry. The scenario applies to scenario-aware backends
 * (spatial); area-capped backends (ascend) use their default
 * envelope.
 */
inline std::unique_ptr<core::CoSearchEnv>
makeBenchEnv(const std::string &backend,
             const std::vector<std::string> &nets,
             accel::Scenario scenario, std::size_t max_shapes = 5,
             accel::EvalCache *cache = nullptr,
             surrogate::SurrogateContext *surrogate = nullptr)
{
    std::vector<workload::Network> networks;
    networks.reserve(nets.size());
    for (const auto &name : nets)
        networks.push_back(workload::makeNetwork(name));
    core::BackendOptions env_opt;
    env_opt.scenario = scenario;
    env_opt.maxShapesPerNetwork = max_shapes;
    env_opt.cache = cache;
    env_opt.surrogate = surrogate;
    return core::makeBackendEnv(backend, std::move(networks), env_opt);
}

/** makeBenchEnv() under the bench's --backend selection. */
inline std::unique_ptr<core::CoSearchEnv>
makeBenchEnv(const BenchOptions &opt, const std::vector<std::string> &nets,
             accel::Scenario scenario, std::size_t max_shapes = 5,
             accel::EvalCache *cache = nullptr,
             surrogate::SurrogateContext *surrogate = nullptr)
{
    return makeBenchEnv(opt.backend, nets, scenario, max_shapes, cache,
                        surrogate);
}

/**
 * Hypervolume-difference series of a search trace under shared
 * normalization bounds (so different algorithms are comparable).
 * Objectives are min-max normalized to [0,1]^3 with ref (1,...,1)
 * slightly padded and ideal 0.
 */
inline std::vector<std::pair<double, double>>
hvDifferenceSeries(const std::vector<core::TracePoint> &trace,
                   const moo::Objectives &ideal,
                   const moo::Objectives &nadir)
{
    std::vector<std::pair<double, double>> out;
    const moo::Objectives ref(ideal.size(), 1.1);
    const moo::Objectives zero(ideal.size(), 0.0);
    for (const auto &tp : trace) {
        std::vector<moo::Objectives> pts;
        pts.reserve(tp.front.size());
        for (const auto &y : tp.front)
            pts.push_back(moo::normalizeObjectives(y, ideal, nadir));
        out.emplace_back(
            tp.hours, moo::hypervolumeDifference(pts, ref, zero));
    }
    return out;
}

/** Union ideal/nadir across several results' trace fronts. */
inline void
unionBounds(const std::vector<const core::CoSearchResult *> &results,
            moo::Objectives &ideal, moo::Objectives &nadir)
{
    std::vector<moo::Objectives> all;
    for (const auto *res : results)
        for (const auto &tp : res->trace)
            for (const auto &y : tp.front)
                all.push_back(y);
    if (all.empty()) {
        ideal = {0, 0, 0};
        nadir = {1, 1, 1};
        return;
    }
    ideal = moo::idealPoint(all);
    nadir = moo::nadirPoint(all);
}

/** Print a table and optionally dump it as CSV. */
inline void
emitTable(const common::TableWriter &table, const BenchOptions &opt)
{
    table.print(std::cout);
    if (!opt.outCsv.empty()) {
        if (table.writeCsv(opt.outCsv))
            std::cout << "csv written to " << opt.outCsv << "\n";
        else
            std::cout << "failed to write " << opt.outCsv << "\n";
    }
}

/** Min-distance record helper: returns (L, P, A, hours). */
struct MinDistSummary
{
    double latencyMs = 0.0;
    double powerMw = 0.0;
    double areaMm2 = 0.0;
    double hours = 0.0;
    bool valid = false;
};

inline MinDistSummary
summarize(const core::CoSearchResult &result)
{
    MinDistSummary s;
    s.hours = result.totalHours;
    if (result.front.empty())
        return s;
    const auto &rec = result.records[result.minDistanceRecord()];
    s.latencyMs = rec.ppa.latencyMs;
    s.powerMw = rec.ppa.powerMw;
    s.areaMm2 = rec.ppa.areaMm2;
    s.valid = true;
    return s;
}

} // namespace unico::bench

#endif // UNICO_BENCH_BENCH_COMMON_HH
