/**
 * @file
 * Reproduces Table 2: HASCO vs NSGA-II vs UNICO on the cloud device
 * (power < 20 W) across seven DNNs.
 */

#include "table_runner.hh"

int
main(int argc, char **argv)
{
    return unico::bench::runScenarioTable(
        argc, argv, unico::accel::Scenario::Cloud,
        "Table 2: cloud device co-optimization (HASCO / NSGAII / UNICO)");
}
