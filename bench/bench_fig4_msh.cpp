/**
 * @file
 * Reproduces the method illustration of Fig. 4: how the modified
 * successive halving (MSH) differs from default SH on a batch of
 * mapping-search convergence curves.
 *
 * A synthetic batch contains (a) flat low-TV candidates, (b) a
 * late-but-steeply-converging candidate with a poor terminal value,
 * and (c) stragglers. Default SH (p = 0) drops (b); MSH promotes it
 * through the AUC quota, and the printed table shows both survivor
 * sets plus the AUC definition at work.
 */

#include <algorithm>
#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/sh.hh"

using namespace unico;

int
main(int argc, char **argv)
{
    const common::CliArgs args(argc, argv);
    (void)args;

    std::cout << "Fig. 4: SH vs MSH candidate promotion on synthetic "
                 "convergence curves\n\n";

    // Eight synthetic best-so-far curves (per-candidate losses).
    struct Candidate
    {
        const char *label;
        std::vector<double> curve;
    };
    const std::vector<Candidate> batch = {
        {"A (good TV, plateaued)", {60, 20, 10, 10, 10, 10, 10, 10}},
        {"B (good TV, plateaued)", {55, 25, 12, 12, 12, 12, 12, 12}},
        {"C (ok TV, plateaued)", {50, 30, 20, 18, 18, 18, 18, 18}},
        {"D (steep late converger)", {90, 90, 88, 80, 64, 50, 40, 32}},
        {"E (slow straggler)", {70, 66, 64, 62, 60, 58, 57, 56}},
        {"F (slow straggler)", {75, 72, 70, 69, 68, 67, 66, 65}},
        {"G (mediocre plateau)", {65, 40, 30, 28, 28, 28, 28, 28}},
        {"H (mediocre plateau)", {68, 45, 33, 30, 30, 30, 30, 30}},
    };

    std::vector<double> tv, auc;
    common::TableWriter table({"candidate", "terminal value", "AUC"});
    for (const auto &cand : batch) {
        tv.push_back(cand.curve.back());
        auc.push_back(core::convergenceAuc(cand.curve));
        table.addRow({cand.label,
                      common::TableWriter::num(tv.back(), 1),
                      common::TableWriter::num(auc.back(), 3)});
    }
    table.print(std::cout);

    const std::size_t k = 4;                       // 0.5 N
    const std::size_t p = 1;                       // 0.15 N -> 1
    const auto sh = core::selectSurvivors(tv, auc, k, 0);
    const auto msh = core::selectSurvivors(tv, auc, k, p);

    auto print_set = [&](const char *name,
                         const std::vector<std::size_t> &set) {
        std::cout << name << " survivors: ";
        for (std::size_t idx : set)
            std::cout << batch[idx].label[0] << " ";
        std::cout << "\n";
    };
    std::cout << "\n";
    print_set("default SH (k=4, p=0)", sh);
    print_set("MSH        (k=4, p=1)", msh);

    const bool d_in_sh =
        std::find(sh.begin(), sh.end(), std::size_t{3}) != sh.end();
    const bool d_in_msh =
        std::find(msh.begin(), msh.end(), std::size_t{3}) != msh.end();
    std::cout << "\nsteep late converger D: SH "
              << (d_in_sh ? "keeps" : "drops") << " it, MSH "
              << (d_in_msh ? "keeps" : "drops") << " it\n"
              << "Expected shape (paper Fig. 4a): SH drops D by "
                 "terminal value; MSH's AUC quota gives it a second "
                 "chance.\n";
    return 0;
}
