/**
 * @file
 * Reproduces Fig. 7: hypervolume difference vs search cost for
 * HASCO, NSGA-II, MOBOHB and UNICO on the edge (7a) and cloud (7b)
 * devices. Per network, every algorithm's trace is normalized under
 * shared bounds; the emitted series is the mean hypervolume
 * difference across networks, interpolated on a common cost grid.
 */

#include <map>

#include "bench_common.hh"

using namespace unico;
using namespace unico::bench;

namespace {

/** Piecewise-constant interpolation of a (hours, hv) series. */
double
interpolate(const std::vector<std::pair<double, double>> &series,
            double hours, double before_start)
{
    double value = before_start;
    for (const auto &[h, v] : series) {
        if (h > hours)
            break;
        value = v;
    }
    return value;
}

void
runDevice(accel::Scenario scenario, const BenchOptions &opt,
          const std::vector<std::string> &nets, const char *label,
          int seeds)
{
    struct MethodRun
    {
        std::string method;
        std::vector<std::vector<std::pair<double, double>>> series;
    };
    std::vector<MethodRun> methods = {
        {"HASCO", {}}, {"NSGAII", {}}, {"MOBOHB", {}}, {"UNICO", {}}};

    double max_hours = 0.0;
    for (const auto &net : nets) {
      for (int s = 0; s < seeds; ++s) {
        BenchOptions seed_opt = opt;
        seed_opt.seed = opt.seed + static_cast<std::uint64_t>(s) * 1000;
        const auto env = makeBenchEnv(seed_opt, {net}, scenario);

        std::vector<core::CoSearchResult> results;
        {
            core::CoOptimizer d(*env,
                                benchDriverConfig(
                                    core::DriverConfig::hascoLike(),
                                    seed_opt));
            results.push_back(d.run());
        }
        results.push_back(
            baselines::runNsga2(*env, benchNsga2Config(seed_opt)));
        {
            core::CoOptimizer d(*env,
                                benchDriverConfig(
                                    core::DriverConfig::mobohbLike(),
                                    seed_opt));
            results.push_back(d.run());
        }
        {
            core::CoOptimizer d(*env, benchDriverConfig(
                                         core::DriverConfig::unico(),
                                         seed_opt));
            results.push_back(d.run());
        }

        // Shared normalization bounds per network.
        moo::Objectives ideal, nadir;
        std::vector<const core::CoSearchResult *> ptrs;
        for (const auto &r : results)
            ptrs.push_back(&r);
        unionBounds(ptrs, ideal, nadir);

        for (std::size_t m = 0; m < methods.size(); ++m) {
            auto series =
                hvDifferenceSeries(results[m].trace, ideal, nadir);
            if (!series.empty())
                max_hours = std::max(max_hours, series.back().first);
            methods[m].series.push_back(std::move(series));
        }
      }
    }

    // Mean series on a common grid; before a method's first snapshot
    // its difference is the full box (nothing found yet).
    const double full_box = std::pow(1.1, 3.0);
    common::TableWriter table(
        {"hours", "HASCO", "NSGAII", "MOBOHB", "UNICO"});
    const int grid = 16;
    for (int g = 1; g <= grid; ++g) {
        const double hours = max_hours * g / grid;
        std::vector<std::string> row = {
            common::TableWriter::num(hours, 2)};
        for (const auto &method : methods) {
            double acc = 0.0;
            for (const auto &series : method.series)
                acc += interpolate(series, hours, full_box);
            row.push_back(common::TableWriter::num(
                acc / static_cast<double>(method.series.size()), 4));
        }
        table.addRow(std::move(row));
    }

    std::cout << "\nFig. 7" << label
              << ": mean hypervolume difference vs search cost ("
              << (scenario == accel::Scenario::Edge ? "edge" : "cloud")
              << ")\n";
    table.print(std::cout);

    // Final-value summary.
    std::cout << "final hypervolume difference (lower is better): ";
    for (const auto &method : methods) {
        double acc = 0.0;
        for (const auto &series : method.series)
            acc += interpolate(series, max_hours, full_box);
        std::cout << method.method << "="
                  << common::TableWriter::num(
                         acc / static_cast<double>(method.series.size()),
                         4)
                  << " ";
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliArgs args(argc, argv);
    const BenchOptions opt = BenchOptions::parse(args);

    // Representative subset by default; --full uses all 7 networks.
    std::vector<std::string> nets = {"mobilenet", "resnet", "vit"};
    if (args.has("full"))
        nets = {"bert", "mobilenet", "resnet", "srgan",
                "unet", "vit",       "xception"};

    const int seeds = static_cast<int>(args.getInt("seeds", 3));
    std::cout << "Fig. 7: search-convergence comparison, scale="
              << opt.scale << ", seed=" << opt.seed
              << ", seeds averaged=" << seeds << "\n";
    runDevice(accel::Scenario::Edge, opt, nets, "a", seeds);
    runDevice(accel::Scenario::Cloud, opt, nets, "b", seeds);

    std::cout << "\nExpected shape (paper Fig. 7): UNICO's curve drops "
                 "fastest and ends lowest;\nMOBOHB follows, HASCO and "
                 "NSGAII converge slowest.\n";
    return 0;
}
