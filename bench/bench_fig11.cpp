/**
 * @file
 * Reproduces Fig. 11: UNICO deployment on the Ascend-like platform.
 *
 * For each of {UNet, FSRCNN@120x320, FSRCNN@240x640, DLEU}, UNICO
 * co-optimizes the cube-core configuration (paper: batch N = 8,
 * MaxIter = 30, b_max = 200; scaled here to batch 12 x 12 trials,
 * area <= 200 mm^2) against the cycle-level simulator, and the
 * latency/power savings of the best-found hardware over the expert
 * default are reported.
 */

#include "bench_common.hh"

using namespace unico;
using namespace unico::bench;

int
main(int argc, char **argv)
{
    const common::CliArgs args(argc, argv);
    const BenchOptions opt = BenchOptions::parse(args);

    std::cout << "Fig. 11: UNICO vs expert default on the Ascend-like "
                 "platform, scale=" << opt.scale << ", seed=" << opt.seed
              << "\n(PPA engine: cycle-level simulator; every query "
                 "charges 2-10 virtual minutes)\n\n";

    const std::vector<std::string> nets = {
        "unet", "fsrcnn_120x320", "fsrcnn_240x640", "dleu"};

    common::TableWriter table({"network", "variant", "hw", "L(ms)",
                               "P(mW)", "A(mm2)", "latency savings",
                               "power savings", "cost(h)"});

    double lat_save_acc = 0.0, pow_save_acc = 0.0;
    int count = 0;
    for (const auto &net : nets) {
        // Fig. 11 is the Ascend deployment experiment: pin the
        // registry backend rather than following --backend.
        const auto env =
            makeBenchEnv("ascend", {net}, accel::Scenario::Edge, 3);

        // Paper settings N=8, MaxIter=30, b_max=200; scaled here.
        core::DriverConfig cfg = core::DriverConfig::unico();
        cfg.batchSize = 12;
        cfg.maxIter = opt.scaled(12, 3);
        cfg.sh.bMax = opt.scaled(64, 16);
        cfg.minBudgetPerRound = 6;
        cfg.workers = 8;
        cfg.seed = opt.seed;
        core::CoOptimizer driver(*env, cfg);
        const auto result = driver.run();

        const int default_budget = cfg.sh.bMax;
        const accel::HwPoint expert_hw = env->expertDefault().value();
        const accel::Ppa def =
            env->evaluateConfig(expert_hw, default_budget, opt.seed + 3);

        table.addRow({net, "default", env->describeHw(expert_hw),
                      common::TableWriter::num(def.latencyMs),
                      common::TableWriter::num(def.powerMw, 1),
                      common::TableWriter::num(def.areaMm2, 1), "-", "-",
                      "-"});

        if (result.front.empty()) {
            table.addRow({net, "UNICO", "no feasible design", "-", "-",
                          "-", "-", "-",
                          common::TableWriter::num(result.totalHours, 1)});
            continue;
        }
        // The co-optimization goal of Sec. 4.6 is reducing *both*
        // latency and power under the area cap: pick the front design
        // maximizing the balanced improvement min(latency savings,
        // power savings) over the default; fall back to the
        // min-distance representative when nothing improves both.
        const core::HwEvalRecord *picked = nullptr;
        double best_balance = 0.0;
        for (const auto &entry : result.front.entries()) {
            const auto &cand = result.records[entry.id];
            if (!cand.fullySearched)
                continue;
            const double ls =
                (def.latencyMs - cand.ppa.latencyMs) / def.latencyMs;
            const double ps =
                (def.powerMw - cand.ppa.powerMw) / def.powerMw;
            const double balance = std::min(ls, ps);
            if (balance > best_balance) {
                best_balance = balance;
                picked = &cand;
            }
        }
        if (!picked)
            picked = &result.records[result.minDistanceRecord()];
        const auto &rec = *picked;
        const double lat_save =
            (def.latencyMs - rec.ppa.latencyMs) / def.latencyMs * 100.0;
        const double pow_save =
            (def.powerMw - rec.ppa.powerMw) / def.powerMw * 100.0;
        lat_save_acc += lat_save;
        pow_save_acc += pow_save;
        ++count;
        table.addRow({net, "UNICO", env->describeHw(rec.hw),
                      common::TableWriter::num(rec.ppa.latencyMs),
                      common::TableWriter::num(rec.ppa.powerMw, 1),
                      common::TableWriter::num(rec.ppa.areaMm2, 1),
                      common::TableWriter::num(lat_save, 1) + "%",
                      common::TableWriter::num(pow_save, 1) + "%",
                      common::TableWriter::num(result.totalHours, 1)});
    }

    emitTable(table, opt);
    if (count > 0) {
        std::cout << "\naverage savings: latency "
                  << common::TableWriter::num(lat_save_acc / count, 1)
                  << "%, power "
                  << common::TableWriter::num(pow_save_acc / count, 1)
                  << "%\n";
    }
    std::cout << "\nExpected shape (paper Fig. 11): UNICO improves "
                 "latency (e.g. ~12-26% on UNet/FSRCNN)\nand power "
                 "(~32% average) over the expert default, typically by "
                 "rebalancing the L0A/L0B/L0C split.\n";
    return 0;
}
