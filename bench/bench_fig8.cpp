/**
 * @file
 * Reproduces Fig. 8: is the metric R a reliable indicator of HW
 * generalization?
 *
 * Protocol (Sec. 4.3): (1) run UNICO *without* R on the training set
 * {UNet, SRGAN, BERT}; (2) select Pareto pairs with similar PPA on
 * the training networks; (3) compute R for each pair member; (4)
 * run individual SW mapping search for both members on the unseen
 * validation set {ResNet, ResUNet, ViT, MobileNet}; (5) check that
 * the more robust member (smaller R) achieves lower validation
 * latency.
 */

#include "bench_common.hh"
#include "common/statistics.hh"

using namespace unico;
using namespace unico::bench;

namespace {

struct FrontPoint
{
    std::size_t record;
    moo::Objectives normalized;
    double sensitivity;
};

} // namespace

int
main(int argc, char **argv)
{
    const common::CliArgs args(argc, argv);
    const BenchOptions opt = BenchOptions::parse(args);

    std::cout << "Fig. 8: reliability of the robustness metric R, "
              << "scale=" << opt.scale << ", seed=" << opt.seed << "\n\n";

    // (1) Co-optimize on the training set WITHOUT R as an objective.
    const auto train_env = makeBenchEnv(
        opt, {"unet", "srgan", "bert"}, accel::Scenario::Edge, 4);
    auto cfg = benchDriverConfig(core::DriverConfig::unico(), opt);
    cfg.useRobustness = false;
    cfg.name = "UNICO-noR";
    core::CoOptimizer driver(*train_env, cfg);
    const core::CoSearchResult result = driver.run();

    if (result.front.size() < 2) {
        std::cout << "front too small to form pairs; increase --scale\n";
        return 0;
    }

    // Fig. 8a: the obtained Pareto front (power vs latency), with R.
    common::TableWriter front_table(
        {"point", "hw", "L(ms)", "P(mW)", "A(mm2)", "R"});
    std::vector<FrontPoint> points;
    {
        const auto pts = result.front.points();
        const auto ideal = moo::idealPoint(pts);
        const auto nadir = moo::nadirPoint(pts);
        int idx = 0;
        for (const auto &entry : result.front.entries()) {
            const auto &rec = result.records[entry.id];
            // Only fully-searched designs carry a trustworthy R
            // estimate (enough mapping samples behind it).
            if (!rec.fullySearched)
                continue;
            points.push_back(FrontPoint{
                entry.id,
                moo::normalizeObjectives(entry.objectives, ideal, nadir),
                rec.sensitivity});
            front_table.addRow(
                {common::TableWriter::num(static_cast<long long>(idx++)),
                 train_env->describeHw(rec.hw),
                 common::TableWriter::num(rec.ppa.latencyMs),
                 common::TableWriter::num(rec.ppa.powerMw, 1),
                 common::TableWriter::num(rec.ppa.areaMm2, 2),
                 common::TableWriter::num(rec.sensitivity, 3)});
        }
    }
    std::cout << "Fig. 8a: Pareto front on the training set\n";
    front_table.print(std::cout);

    // (2) Pick up to 3 pairs with similar PPA but differing R.
    struct Pair
    {
        std::size_t a, b;  // indices into points
        double ppaDist;
        double rGap;
    };
    std::vector<Pair> pairs;
    for (std::size_t i = 0; i < points.size(); ++i) {
        for (std::size_t j = i + 1; j < points.size(); ++j) {
            Pair p;
            p.a = i;
            p.b = j;
            p.ppaDist = common::l2Distance(points[i].normalized,
                                           points[j].normalized);
            p.rGap = std::abs(points[i].sensitivity -
                              points[j].sensitivity);
            pairs.push_back(p);
        }
    }
    // Paper rule: pair members must have similar PPA (<= ~10%
    // collective difference); among qualifying pairs prefer the
    // clearest R gap. Relax the similarity threshold gradually if the
    // front is too sparse to produce three pairs.
    std::vector<bool> used(points.size(), false);
    std::vector<Pair> chosen;
    for (double threshold : {0.10, 0.20, 0.35}) {
        std::vector<Pair> eligible;
        for (const auto &p : pairs)
            if (p.ppaDist <= threshold && p.rGap > 1e-9)
                eligible.push_back(p);
        std::sort(eligible.begin(), eligible.end(),
                  [](const Pair &x, const Pair &y) {
                      return x.rGap > y.rGap;
                  });
        for (const auto &p : eligible) {
            if (chosen.size() >= 3)
                break;
            if (used[p.a] || used[p.b])
                continue;
            used[p.a] = used[p.b] = true;
            chosen.push_back(p);
        }
        if (chosen.size() >= 3)
            break;
    }
    if (chosen.empty()) {
        std::cout << "\nno comparable pairs with differing R found; "
                     "increase --scale\n";
        return 0;
    }

    // (4)-(5) Validate both pair members on unseen DNNs. The
    // validation mapping search runs on a limited budget — that is
    // where robustness to SW search pays off (a fragile design's
    // narrow mapping optimum is missed under a finite budget).
    const std::vector<std::string> validation = {
        "resnet", "resunet", "vit", "mobilenet"};
    const int budget = opt.scaled(36, 16);

    common::TableWriter table({"pair", "point", "R", "role", "net",
                               "val L(ms)"});
    int wins = 0, comparisons = 0;
    int pair_idx = 0;
    for (const auto &p : chosen) {
        const FrontPoint &fa = points[p.a];
        const FrontPoint &fb = points[p.b];
        const bool a_robust = fa.sensitivity <= fb.sensitivity;
        const FrontPoint &robust = a_robust ? fa : fb;
        const FrontPoint &fragile = a_robust ? fb : fa;

        // Aggregate scale-free: geometric mean of per-network
        // latency ratios (validation nets differ by orders of
        // magnitude in absolute latency). Each search is averaged
        // over a few seeds to damp mapping-search luck.
        double log_ratio = 0.0;
        const int val_seeds = 3;
        for (const auto &net : validation) {
            const auto val_env =
                makeBenchEnv(opt, {net}, accel::Scenario::Edge, 4);
            double lat_r = 0.0, lat_f = 0.0;
            for (int s = 0; s < val_seeds; ++s) {
                auto run_r = val_env->createRun(
                    result.records[robust.record].hw,
                    opt.seed + 101 + s * 37);
                run_r->step(budget);
                auto run_f = val_env->createRun(
                    result.records[fragile.record].hw,
                    opt.seed + 101 + s * 37);
                run_f->step(budget);
                lat_r += run_r->bestPpa().feasible
                             ? run_r->bestPpa().latencyMs
                             : 1e9;
                lat_f += run_f->bestPpa().feasible
                             ? run_f->bestPpa().latencyMs
                             : 1e9;
            }
            lat_r /= val_seeds;
            lat_f /= val_seeds;
            log_ratio += std::log(lat_f / lat_r);
            table.addRow({common::TableWriter::num(
                              static_cast<long long>(pair_idx)),
                          common::TableWriter::num(static_cast<long long>(
                              robust.record)),
                          common::TableWriter::num(robust.sensitivity, 3),
                          "robust", net,
                          common::TableWriter::num(lat_r)});
            table.addRow({common::TableWriter::num(
                              static_cast<long long>(pair_idx)),
                          common::TableWriter::num(static_cast<long long>(
                              fragile.record)),
                          common::TableWriter::num(fragile.sensitivity, 3),
                          "fragile", net,
                          common::TableWriter::num(lat_f)});
        }
        const double geo_gain = std::exp(
            log_ratio / static_cast<double>(validation.size()));
        ++comparisons;
        if (geo_gain >= 1.0)
            ++wins;
        std::cout << "\npair " << pair_idx << ": robust R="
                  << robust.sensitivity << " vs fragile R="
                  << fragile.sensitivity
                  << ", geo-mean validation latency ratio "
                     "(fragile/robust) = "
                  << common::TableWriter::num(geo_gain, 3) << " ("
                  << (geo_gain >= 1.0 ? "robust wins" : "fragile wins")
                  << ")\n";
        ++pair_idx;
    }

    std::cout << "\nFig. 8b: per-network validation latencies\n";
    emitTable(table, opt);
    std::cout << "\nrobust-point wins: " << wins << "/" << comparisons
              << " pairs\n";

    // Population-level evidence beyond the paper's three pairs: rank
    // correlation between R and the budget-limited validation
    // degradation across every fully-searched design of the search.
    {
        std::vector<double> r_values, degradation;
        std::size_t taken = 0;
        for (const auto &rec : result.records) {
            if (!rec.fullySearched || !rec.constraintOk)
                continue;
            if (taken++ >= 14)
                break;
            double log_deg = 0.0;
            int n = 0;
            for (const auto &net : {"mobilenet", "resnet", "vit"}) {
                const auto val_env =
                    makeBenchEnv(opt, {net}, accel::Scenario::Edge, 4);
                double limited = 0.0, converged = 0.0;
                for (int s = 0; s < 2; ++s) {
                    auto lim = val_env->createRun(rec.hw, 500 + s);
                    lim->step(budget);
                    auto conv = val_env->createRun(rec.hw, 500 + s);
                    conv->step(opt.scaled(240, 64));
                    limited += lim->bestPpa().latencyMs;
                    converged += conv->bestPpa().latencyMs;
                }
                log_deg += std::log(std::max(limited / converged, 1e-9));
                ++n;
            }
            r_values.push_back(rec.sensitivity);
            degradation.push_back(std::exp(log_deg / n));
        }
        const double rho = common::spearman(r_values, degradation);
        std::cout << "\nrank correlation between R (training) and "
                     "budget-limited validation degradation\nacross "
                  << r_values.size()
                  << " fully-searched designs: spearman = "
                  << common::TableWriter::num(rho, 3) << "\n";
    }

    std::cout << "\nExpected shape (paper Fig. 8): the smaller-R member "
                 "of each pair attains lower\nlatency on the unseen "
                 "validation networks, and R correlates positively "
                 "with\nhow much a design depends on SW search budget.\n";
    return 0;
}
