/**
 * @file
 * Reproduces Table 1: HASCO vs NSGA-II vs UNICO on the edge device
 * (power < 2 W) across seven DNNs.
 */

#include "table_runner.hh"

int
main(int argc, char **argv)
{
    return unico::bench::runScenarioTable(
        argc, argv, unico::accel::Scenario::Edge,
        "Table 1: edge device co-optimization (HASCO / NSGAII / UNICO)");
}
