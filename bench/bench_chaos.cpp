/**
 * @file
 * Crash-resilience overhead sweep: forks the real co_search_cli
 * binary, SIGKILLs it K times at deterministic points mid-search,
 * resumes after every kill, and reports the wall-clock cost and the
 * re-executed-trial overhead of each kill count relative to the
 * uninterrupted run — the price of crash-consistency.
 *
 * Expected shape: outputs stay byte-identical at every K (asserted),
 * total wall time grows roughly linearly with K (each kill discards
 * at most one in-flight trial plus the partial work of the killed
 * process), and the re-executed-trial count stays <= K with the
 * default checkpoint cadence of 1.
 *
 * Usage: bench_chaos [--kills "0,1,2,4,8"] [--iters N] [--batch N]
 *                    [--bmax B] [--seed S] [--csv out.csv]
 */

#if defined(_WIN32)

#include <cstdio>
int
main()
{
    std::puts("bench_chaos: POSIX-only (fork/exec/SIGKILL)");
    return 0;
}

#else

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "common/cli.hh"

#ifndef UNICO_CLI_PATH
#define UNICO_CLI_PATH "./examples/co_search_cli"
#endif

namespace {

struct Lcg
{
    std::uint64_t s;
    explicit Lcg(std::uint64_t seed) : s(seed) {}
    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 33;
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

pid_t
spawn(const std::vector<std::string> &args)
{
    std::vector<char *> argv;
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);
    // Flush before fork: the child would otherwise replay the
    // parent's buffered output when freopen flushes the stream.
    std::fflush(stdout);
    const pid_t pid = fork();
    if (pid == 0) {
        std::freopen("/dev/null", "w", stdout);
        execv(argv[0], argv.data());
        _exit(127);
    }
    return pid;
}

/** Run to completion or SIGKILL after delay_ms; true = killed. */
bool
runMaybeKill(const std::vector<std::string> &args, int delay_ms,
             int &exit_code)
{
    const pid_t pid = spawn(args);
    int status = 0;
    if (delay_ms >= 0) {
        for (int waited = 0; waited < delay_ms; ++waited) {
            if (waitpid(pid, &status, WNOHANG) == pid) {
                exit_code =
                    WIFEXITED(status) ? WEXITSTATUS(status) : -1;
                return false;
            }
            usleep(1000);
        }
        kill(pid, SIGKILL);
        waitpid(pid, &status, 0);
        return true;
    }
    waitpid(pid, &status, 0);
    exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return false;
}

/** Completed trials recorded in the newest valid checkpoint. */
int
completedTrials(const std::string &ck_path)
{
    // Cheap extraction (the CRC is validated by the CLI itself):
    // find the "completedIterations" key in the JSON text.
    const std::string text = readFile(ck_path);
    const auto pos = text.find("\"completedIterations\"");
    if (pos == std::string::npos)
        return 0;
    return std::atoi(text.c_str() + text.find(':', pos) + 1);
}

} // namespace

int
main(int argc, char **argv)
{
    const unico::common::CliArgs args(argc, argv);
    const std::string iters =
        std::to_string(args.getInt("iters", 10));
    const std::string batch =
        std::to_string(args.getInt("batch", 16));
    const std::string bmax = std::to_string(args.getInt("bmax", 400));
    const std::string seed = std::to_string(args.getInt("seed", 3));
    const std::string kills_csv =
        args.getString("kills", "0,1,2,4,8");

    std::vector<int> kill_counts;
    {
        std::istringstream iss(kills_csv);
        std::string tok;
        while (std::getline(iss, tok, ','))
            kill_counts.push_back(std::atoi(tok.c_str()));
    }

    const std::string dir = "/tmp/unico_bench_chaos";
    mkdir(dir.c_str(), 0755);
    auto cli = [&](const std::string &tag, bool resume) {
        std::vector<std::string> a = {
            UNICO_CLI_PATH, "resnet",
            "--batch",      batch,
            "--iters",      iters,
            "--bmax",       bmax,
            "--seed",       seed,
            "--checkpoint", dir + "/" + tag + ".json",
            "--csv-prefix", dir + "/" + tag,
        };
        if (resume)
            a.push_back("--resume");
        return a;
    };
    auto cleanup = [&](const std::string &tag) {
        for (const char *suffix :
             {".json", ".json.1", ".json.2", ".json.tmp",
              "_records.csv", "_front.csv", "_trace.csv",
              "_cache.csv"})
            std::remove((dir + "/" + tag + suffix).c_str());
    };

    // Reference: uninterrupted run.
    cleanup("base");
    int code = 0;
    const auto t0 = std::chrono::steady_clock::now();
    runMaybeKill(cli("base", false), -1, code);
    const double base_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (code != 0) {
        std::cerr << "baseline run failed (" << code << ")\n";
        return 1;
    }
    const std::string base_records =
        readFile(dir + "/base_records.csv");
    const int total_trials = completedTrials(dir + "/base.json");

    std::ostringstream csv;
    csv << "kills,runs,wall_ms,overhead_x,replayed_trials,"
           "identical\n";
    std::printf("%6s %6s %10s %10s %9s %10s\n", "kills", "runs",
                "wall(ms)", "overhead", "replayed", "identical");

    for (const int target_kills : kill_counts) {
        const std::string tag = "k" + std::to_string(target_kills);
        cleanup(tag);
        Lcg rng(0x5eed0000ULL + target_kills);
        int kills = 0, runs = 0, replayed = 0;
        int prev_completed = 0;
        const auto start = std::chrono::steady_clock::now();
        for (;;) {
            const bool resume =
                fileExists(dir + "/" + tag + ".json") ||
                fileExists(dir + "/" + tag + ".json.1");
            const int delay =
                kills < target_kills
                    ? 5 + static_cast<int>(rng.next() % 150)
                    : -1;
            ++runs;
            const bool killed =
                runMaybeKill(cli(tag, resume), delay, code);
            if (killed) {
                ++kills;
                // Trials finished by the killed process but not yet
                // on disk will be re-executed by the next run.
                const int now = fileExists(dir + "/" + tag + ".json")
                                    ? completedTrials(dir + "/" +
                                                      tag + ".json")
                                    : 0;
                if (now < prev_completed)
                    replayed += prev_completed - now;
                prev_completed = now;
                continue;
            }
            if (code != 0) {
                std::cerr << tag << ": run failed (" << code << ")\n";
                return 1;
            }
            break;
        }
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        const bool identical =
            readFile(dir + "/" + tag + "_records.csv") ==
            base_records;
        if (!identical) {
            std::cerr << tag
                      << ": records diverged from baseline\n";
            return 1;
        }
        std::printf("%6d %6d %10.1f %9.2fx %9d %10s\n", kills, runs,
                    wall_ms, wall_ms / base_ms, replayed,
                    identical ? "yes" : "NO");
        csv << kills << ',' << runs << ',' << wall_ms << ','
            << wall_ms / base_ms << ',' << replayed << ','
            << (identical ? 1 : 0) << "\n";
        cleanup(tag);
    }
    std::printf("(baseline %.1f ms, %d trials)\n", base_ms,
                total_trials);
    cleanup("base");

    const std::string out = args.getString("csv", "");
    if (!out.empty()) {
        std::ofstream f(out);
        f << csv.str();
        std::cout << "csv written to " << out << "\n";
    }
    return 0;
}

#endif // !_WIN32
