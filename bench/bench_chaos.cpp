/**
 * @file
 * Crash-resilience overhead sweep: forks the real co_search_cli
 * binary, SIGKILLs it K times at deterministic points mid-search,
 * resumes after every kill, and reports the wall-clock cost and the
 * re-executed-trial overhead of each kill count relative to the
 * uninterrupted run — the price of crash-consistency.
 *
 * Expected shape: outputs stay byte-identical at every K (asserted),
 * total wall time grows roughly linearly with K (each kill discards
 * at most one in-flight trial plus the partial work of the killed
 * process), and the re-executed-trial count stays <= K with the
 * default checkpoint cadence of 1.
 *
 * A second sweep exercises the evaluation fleet: the CLI runs with
 * --workers 4 and the master SIGKILLs K of its own worker processes
 * mid-search (--worker-chaos-kills). Here the master survives, so the
 * cost of a kill is a respawn plus one replayed request — outputs
 * must again be byte-identical to the in-process baseline.
 *
 * A third sweep exercises the multi-host TCP transport: the master
 * listens on localhost, two worker PROCESSES dial it through the
 * chaos proxy, and each row applies a different network-fault profile
 * (clean TCP, added latency, frame drops, hard partitions, and the
 * full storm). The row reports wall-clock overhead versus in-process,
 * the transport's fault ledger (lost connections, reconnects, stale /
 * torn / corrupt frames) and round-trips per acked op — and asserts
 * byte-identical records at every profile.
 *
 * All sweeps land in BENCH_chaos.json (machine-readable, uploaded by
 * CI next to BENCH_micro.json) in addition to the console table and
 * the optional --csv file.
 *
 * Usage: bench_chaos [--kills "0,1,2,4,8"] [--worker-kills "0,2,4,8"]
 *                    [--workers 4] [--iters N] [--batch N] [--bmax B]
 *                    [--seed S] [--csv out.csv]
 *                    [--json BENCH_chaos.json] [--no-net]
 */

#if defined(_WIN32)

#include <cstdio>
int
main()
{
    std::puts("bench_chaos: POSIX-only (fork/exec/SIGKILL)");
    return 0;
}

#else

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "common/cli.hh"
#include "common/json.hh"

#ifndef UNICO_CLI_PATH
#define UNICO_CLI_PATH "./examples/co_search_cli"
#endif
#ifndef UNICO_PROXY_PATH
#define UNICO_PROXY_PATH "./examples/chaos_proxy"
#endif

namespace {

struct Lcg
{
    std::uint64_t s;
    explicit Lcg(std::uint64_t seed) : s(seed) {}
    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 33;
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

pid_t
spawn(const std::vector<std::string> &args)
{
    std::vector<char *> argv;
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);
    // Flush before fork: the child would otherwise replay the
    // parent's buffered output when freopen flushes the stream.
    std::fflush(stdout);
    const pid_t pid = fork();
    if (pid == 0) {
        std::freopen("/dev/null", "w", stdout);
        execv(argv[0], argv.data());
        _exit(127);
    }
    return pid;
}

/** Run to completion or SIGKILL after delay_ms; true = killed. */
bool
runMaybeKill(const std::vector<std::string> &args, int delay_ms,
             int &exit_code)
{
    const pid_t pid = spawn(args);
    int status = 0;
    if (delay_ms >= 0) {
        for (int waited = 0; waited < delay_ms; ++waited) {
            if (waitpid(pid, &status, WNOHANG) == pid) {
                exit_code =
                    WIFEXITED(status) ? WEXITSTATUS(status) : -1;
                return false;
            }
            usleep(1000);
        }
        kill(pid, SIGKILL);
        waitpid(pid, &status, 0);
        return true;
    }
    waitpid(pid, &status, 0);
    exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return false;
}

/** Numeric column from a one-row fault-ledger CSV; 0 if absent. */
std::uint64_t
faultsCsvColumn(const std::string &path, const std::string &name)
{
    const std::string text = readFile(path);
    const auto nl = text.find('\n');
    if (nl == std::string::npos)
        return 0;
    std::istringstream head(text.substr(0, nl));
    std::istringstream row(text.substr(nl + 1));
    std::string col, val;
    while (std::getline(head, col, ',') &&
           std::getline(row, val, ','))
        if (col == name)
            return std::strtoull(val.c_str(), nullptr, 10);
    return 0;
}

std::vector<int>
parseIntList(const std::string &csv)
{
    std::vector<int> out;
    std::istringstream iss(csv);
    std::string tok;
    while (std::getline(iss, tok, ','))
        out.push_back(std::atoi(tok.c_str()));
    return out;
}

/** Poll @p path until it holds a positive port number; -1 on timeout. */
int
awaitPortFile(const std::string &path, double wait_s = 30.0)
{
    for (int i = 0; i < static_cast<int>(wait_s * 100); ++i) {
        std::ifstream in(path);
        int port = 0;
        if (in >> port && port > 0)
            return port;
        usleep(10 * 1000);
    }
    return -1;
}

/** Reap @p pid within @p wait_s seconds; SIGKILL + -3 on overrun. */
int
reapWithin(pid_t pid, double wait_s)
{
    int status = 0;
    for (int i = 0; i < static_cast<int>(wait_s * 100); ++i) {
        if (waitpid(pid, &status, WNOHANG) == pid)
            return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        usleep(10 * 1000);
    }
    kill(pid, SIGKILL);
    waitpid(pid, &status, 0);
    return -3;
}

/** Completed trials recorded in the newest valid checkpoint. */
int
completedTrials(const std::string &ck_path)
{
    // Cheap extraction (the CRC is validated by the CLI itself):
    // find the "completedIterations" key in the JSON text.
    const std::string text = readFile(ck_path);
    const auto pos = text.find("\"completedIterations\"");
    if (pos == std::string::npos)
        return 0;
    return std::atoi(text.c_str() + text.find(':', pos) + 1);
}

} // namespace

int
main(int argc, char **argv)
{
    const unico::common::CliArgs args(argc, argv);
    const std::string iters =
        std::to_string(args.getInt("iters", 10));
    const std::string batch =
        std::to_string(args.getInt("batch", 16));
    const std::string bmax = std::to_string(args.getInt("bmax", 400));
    const std::string seed = std::to_string(args.getInt("seed", 3));
    const std::vector<int> kill_counts =
        parseIntList(args.getString("kills", "0,1,2,4,8"));
    const std::vector<int> worker_kill_counts =
        parseIntList(args.getString("worker-kills", "0,2,4,8"));
    const std::string workers =
        std::to_string(args.getInt("workers", 4));

    const std::string dir = "/tmp/unico_bench_chaos";
    mkdir(dir.c_str(), 0755);
    auto cli = [&](const std::string &tag, bool resume) {
        std::vector<std::string> a = {
            UNICO_CLI_PATH, "resnet",
            "--batch",      batch,
            "--iters",      iters,
            "--bmax",       bmax,
            "--seed",       seed,
            "--checkpoint", dir + "/" + tag + ".json",
            "--csv-prefix", dir + "/" + tag,
        };
        if (resume)
            a.push_back("--resume");
        return a;
    };
    auto cleanup = [&](const std::string &tag) {
        for (const char *suffix :
             {".json", ".json.1", ".json.2", ".json.tmp",
              "_records.csv", "_front.csv", "_trace.csv",
              "_cache.csv", "_faults.csv"})
            std::remove((dir + "/" + tag + suffix).c_str());
    };

    // Reference: uninterrupted run.
    cleanup("base");
    int code = 0;
    const auto t0 = std::chrono::steady_clock::now();
    runMaybeKill(cli("base", false), -1, code);
    const double base_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (code != 0) {
        std::cerr << "baseline run failed (" << code << ")\n";
        return 1;
    }
    const std::string base_records =
        readFile(dir + "/base_records.csv");
    const int total_trials = completedTrials(dir + "/base.json");

    unico::common::Json bench_json = unico::common::Json::array();

    std::ostringstream csv;
    csv << "kills,runs,wall_ms,overhead_x,replayed_trials,"
           "identical\n";
    std::printf("Master-kill sweep (crash-consistency overhead)\n");
    std::printf("%6s %6s %10s %10s %9s %10s\n", "kills", "runs",
                "wall(ms)", "overhead", "replayed", "identical");

    for (const int target_kills : kill_counts) {
        const std::string tag = "k" + std::to_string(target_kills);
        cleanup(tag);
        Lcg rng(0x5eed0000ULL + target_kills);
        int kills = 0, runs = 0, replayed = 0;
        int prev_completed = 0;
        const auto start = std::chrono::steady_clock::now();
        for (;;) {
            const bool resume =
                fileExists(dir + "/" + tag + ".json") ||
                fileExists(dir + "/" + tag + ".json.1");
            const int delay =
                kills < target_kills
                    ? 5 + static_cast<int>(rng.next() % 150)
                    : -1;
            ++runs;
            const bool killed =
                runMaybeKill(cli(tag, resume), delay, code);
            if (killed) {
                ++kills;
                // Trials finished by the killed process but not yet
                // on disk will be re-executed by the next run.
                const int now = fileExists(dir + "/" + tag + ".json")
                                    ? completedTrials(dir + "/" +
                                                      tag + ".json")
                                    : 0;
                if (now < prev_completed)
                    replayed += prev_completed - now;
                prev_completed = now;
                continue;
            }
            if (code != 0) {
                std::cerr << tag << ": run failed (" << code << ")\n";
                return 1;
            }
            break;
        }
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        const bool identical =
            readFile(dir + "/" + tag + "_records.csv") ==
            base_records;
        if (!identical) {
            std::cerr << tag
                      << ": records diverged from baseline\n";
            return 1;
        }
        std::printf("%6d %6d %10.1f %9.2fx %9d %10s\n", kills, runs,
                    wall_ms, wall_ms / base_ms, replayed,
                    identical ? "yes" : "NO");
        csv << kills << ',' << runs << ',' << wall_ms << ','
            << wall_ms / base_ms << ',' << replayed << ','
            << (identical ? 1 : 0) << "\n";
        {
            auto row = unico::common::Json::object();
            row["name"] =
                "chaos/master_kills/" + std::to_string(target_kills);
            row["run_type"] = "iteration";
            row["kills"] = kills;
            row["runs"] = runs;
            row["real_time"] = wall_ms;
            row["time_unit"] = "ms";
            row["overhead_x"] = wall_ms / base_ms;
            row["replayed_trials"] = replayed;
            row["identical"] = identical;
            bench_json.push(std::move(row));
        }
        cleanup(tag);
    }
    std::printf("(baseline %.1f ms, %d trials)\n", base_ms,
                total_trials);

    // --- Fleet sweep: same search served by worker processes; the
    // master SIGKILLs K of them at deterministic points mid-run. The
    // master survives, so there is no resume loop — a kill costs a
    // respawn plus one replayed request, never a result.
    std::printf("\nWorker-kill sweep (fleet mode, --workers %s)\n",
                workers.c_str());
    std::printf("%6s %10s %10s %8s %9s %8s %10s\n", "kills",
                "wall(ms)", "overhead", "crashes", "respawns",
                "rt/eval", "identical");
    csv << "worker_kills,wall_ms,overhead_x,crashes,respawns,"
           "round_trips,ops_applied,round_trips_per_eval,identical\n";
    for (const int wkills : worker_kill_counts) {
        const std::string tag = "w" + std::to_string(wkills);
        cleanup(tag);
        auto a = cli(tag, false);
        a.insert(a.end(), {"--workers", workers,
                           "--worker-chaos-kills",
                           std::to_string(wkills)});
        const auto start = std::chrono::steady_clock::now();
        runMaybeKill(a, -1, code);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (code != 0) {
            std::cerr << tag << ": run failed (" << code << ")\n";
            return 1;
        }
        const bool identical =
            readFile(dir + "/" + tag + "_records.csv") ==
            base_records;
        if (!identical) {
            std::cerr << tag
                      << ": records diverged from baseline\n";
            return 1;
        }
        const std::uint64_t crashes = faultsCsvColumn(
            dir + "/" + tag + "_faults.csv", "worker_crashes");
        const std::uint64_t respawns = faultsCsvColumn(
            dir + "/" + tag + "_faults.csv", "worker_respawns");
        // Batching leverage: with op coalescing one framed round-trip
        // carries several mutating ops, so round-trips per acked op
        // drops well below the 1.0 a per-op protocol pays.
        const std::uint64_t round_trips = faultsCsvColumn(
            dir + "/" + tag + "_faults.csv", "request_round_trips");
        const std::uint64_t ops_applied = faultsCsvColumn(
            dir + "/" + tag + "_faults.csv", "ops_applied");
        const double rt_per_eval =
            static_cast<double>(round_trips) /
            static_cast<double>(std::max<std::uint64_t>(1, ops_applied));
        std::printf("%6d %10.1f %9.2fx %8llu %9llu %8.3f %10s\n",
                    wkills, wall_ms, wall_ms / base_ms,
                    static_cast<unsigned long long>(crashes),
                    static_cast<unsigned long long>(respawns),
                    rt_per_eval, identical ? "yes" : "NO");
        csv << wkills << ',' << wall_ms << ',' << wall_ms / base_ms
            << ',' << crashes << ',' << respawns << ',' << round_trips
            << ',' << ops_applied << ',' << rt_per_eval << ','
            << (identical ? 1 : 0) << "\n";
        auto row = unico::common::Json::object();
        row["name"] =
            "chaos/worker_kills/" + std::to_string(wkills);
        row["run_type"] = "iteration";
        row["workers"] = std::atoi(workers.c_str());
        row["kills"] = wkills;
        row["real_time"] = wall_ms;
        row["time_unit"] = "ms";
        row["overhead_x"] = wall_ms / base_ms;
        row["worker_crashes"] = crashes;
        row["worker_respawns"] = respawns;
        row["request_round_trips"] = round_trips;
        row["ops_applied"] = ops_applied;
        row["round_trips_per_eval"] = rt_per_eval;
        row["identical"] = identical;
        bench_json.push(std::move(row));
        cleanup(tag);
    }

    // --- Network-fault sweep: real master + worker PROCESSES over
    // TCP through the chaos proxy. Each profile stresses one fault
    // class; "storm" layers all of them. Identity vs the in-process
    // baseline is asserted at every row.
    if (!args.has("no-net")) {
        struct NetProfile
        {
            const char *name;
            const char *chaos;
        };
        const NetProfile profiles[] = {
            {"tcp_clean", "seed=7"},
            {"delay", "seed=7,delay=0.5:0.01"},
            {"drop", "seed=7,drop=0.05"},
            {"partition", "seed=7,partition=80:0.3"},
            {"storm", "seed=7,drop=0.02,tear=0.01,flip=0.02,dup=0.05,"
                      "reorder=0.05,delay=0.2:0.005,partition=100:0.3"},
        };
        std::printf("\nNetwork-fault sweep (TCP fleet through chaos "
                    "proxy, 2 workers)\n");
        std::printf("%10s %10s %10s %6s %6s %7s %8s %10s\n", "profile",
                    "wall(ms)", "overhead", "lost", "reconn", "stale",
                    "rt/eval", "identical");
        csv << "net_profile,wall_ms,overhead_x,connections_lost,"
               "reconnects,stale_frames,torn_frames,corrupt_frames,"
               "round_trips_per_eval,identical\n";
        for (const NetProfile &p : profiles) {
            const std::string tag = std::string("n_") + p.name;
            cleanup(tag);
            std::remove((dir + "/master.port").c_str());
            std::remove((dir + "/proxy.port").c_str());

            auto margs = cli(tag, false);
            margs.insert(margs.end(),
                         {"--workers", "2", "--fleet-listen",
                          "127.0.0.1:0", "--fleet-connect-wait", "30",
                          "--fleet-reconnect-wait", "2",
                          "--worker-eval-deadline", "2", "--threads",
                          "2", "--fleet-port-file",
                          dir + "/master.port"});
            const auto start = std::chrono::steady_clock::now();
            const pid_t master = spawn(margs);
            const int mport = awaitPortFile(dir + "/master.port");
            if (mport <= 0) {
                std::cerr << tag << ": master never published a port\n";
                return 1;
            }
            const pid_t proxy = spawn(
                {UNICO_PROXY_PATH, "--upstream",
                 "127.0.0.1:" + std::to_string(mport), "--port-file",
                 dir + "/proxy.port", "--chaos", p.chaos});
            const int pport = awaitPortFile(dir + "/proxy.port");
            if (pport <= 0) {
                std::cerr << tag << ": proxy never published a port\n";
                return 1;
            }
            std::vector<pid_t> ws;
            for (int i = 0; i < 2; ++i)
                ws.push_back(spawn(
                    {UNICO_CLI_PATH, "resnet", "--fleet-connect",
                     "127.0.0.1:" + std::to_string(pport),
                     "--fleet-reconnect-attempts", "40",
                     "--fleet-reconnect-max", "0.5"}));
            const int mcode = reapWithin(master, 600.0);
            const double wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            kill(proxy, SIGTERM);
            reapWithin(proxy, 30.0);
            for (const pid_t w : ws)
                reapWithin(w, 120.0);
            if (mcode != 0) {
                std::cerr << tag << ": master failed (" << mcode
                          << ")\n";
                return 1;
            }
            const bool identical =
                readFile(dir + "/" + tag + "_records.csv") ==
                base_records;
            if (!identical) {
                std::cerr << tag
                          << ": records diverged from baseline\n";
                return 1;
            }
            const std::string faults = dir + "/" + tag + "_faults.csv";
            const std::uint64_t lost =
                faultsCsvColumn(faults, "connections_lost");
            const std::uint64_t reconnects =
                faultsCsvColumn(faults, "reconnects");
            const std::uint64_t stale =
                faultsCsvColumn(faults, "stale_frames");
            const std::uint64_t torn =
                faultsCsvColumn(faults, "torn_frames");
            const std::uint64_t corrupt =
                faultsCsvColumn(faults, "corrupt_frames");
            const std::uint64_t round_trips =
                faultsCsvColumn(faults, "request_round_trips");
            const std::uint64_t ops_applied =
                faultsCsvColumn(faults, "ops_applied");
            const double rt_per_eval =
                static_cast<double>(round_trips) /
                static_cast<double>(
                    std::max<std::uint64_t>(1, ops_applied));
            std::printf(
                "%10s %10.1f %9.2fx %6llu %6llu %7llu %8.3f %10s\n",
                p.name, wall_ms, wall_ms / base_ms,
                static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(reconnects),
                static_cast<unsigned long long>(stale), rt_per_eval,
                identical ? "yes" : "NO");
            csv << p.name << ',' << wall_ms << ','
                << wall_ms / base_ms << ',' << lost << ','
                << reconnects << ',' << stale << ',' << torn << ','
                << corrupt << ',' << rt_per_eval << ','
                << (identical ? 1 : 0) << "\n";
            auto row = unico::common::Json::object();
            row["name"] = std::string("chaos/net/") + p.name;
            row["run_type"] = "iteration";
            row["chaos_profile"] = p.chaos;
            row["real_time"] = wall_ms;
            row["time_unit"] = "ms";
            row["overhead_x"] = wall_ms / base_ms;
            row["connections_lost"] = lost;
            row["reconnects"] = reconnects;
            row["stale_frames"] = stale;
            row["torn_frames"] = torn;
            row["corrupt_frames"] = corrupt;
            row["request_round_trips"] = round_trips;
            row["ops_applied"] = ops_applied;
            row["round_trips_per_eval"] = rt_per_eval;
            row["identical"] = identical;
            bench_json.push(std::move(row));
            cleanup(tag);
        }
    }
    cleanup("base");

    // Machine-readable output next to BENCH_micro.json; CI uploads it
    // so the perf trajectory tracks robustness overhead over time.
    const std::string json_out =
        args.getString("json", "BENCH_chaos.json");
    if (!json_out.empty()) {
        auto doc = unico::common::Json::object();
        auto ctx = unico::common::Json::object();
        ctx["executable"] = "bench_chaos";
        ctx["baseline_ms"] = base_ms;
        ctx["baseline_trials"] = total_trials;
        ctx["iters"] = std::atoi(iters.c_str());
        ctx["batch"] = std::atoi(batch.c_str());
        ctx["seed"] = std::atoi(seed.c_str());
        doc["context"] = std::move(ctx);
        doc["benchmarks"] = std::move(bench_json);
        std::ofstream f(json_out);
        f << doc.dump(2) << "\n";
        std::cout << "json written to " << json_out << "\n";
    }

    const std::string out = args.getString("csv", "");
    if (!out.empty()) {
        std::ofstream f(out);
        f << csv.str();
        std::cout << "csv written to " << out << "\n";
    }
    return 0;
}

#endif // !_WIN32
