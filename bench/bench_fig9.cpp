/**
 * @file
 * Reproduces Fig. 9: generalization to unseen DNNs.
 *
 * Co-optimize UNICO (with R) and HASCO on the training set
 * {MobileNetV2, ResNet, SRGAN, VGG}; take each method's
 * min-Euclidean-distance hardware; run an individual SW mapping
 * search with that fixed hardware on eight unseen networks; report
 * the per-network gain ratio of UNICO over HASCO on the
 * min-Euclidean-distance of the resulting PPA.
 */

#include "bench_common.hh"

using namespace unico;
using namespace unico::bench;

namespace {

/** Normalized PPA distance to the origin under shared scales. */
double
ppaDistance(const accel::Ppa &ppa, const accel::Ppa &scale_ref)
{
    const double l = ppa.latencyMs / std::max(scale_ref.latencyMs, 1e-12);
    const double p = ppa.powerMw / std::max(scale_ref.powerMw, 1e-12);
    const double a = ppa.areaMm2 / std::max(scale_ref.areaMm2, 1e-12);
    return std::sqrt(l * l + p * p + a * a);
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliArgs args(argc, argv);
    const BenchOptions opt = BenchOptions::parse(args);

    std::cout << "Fig. 9: UNICO vs HASCO generalization to unseen DNNs, "
              << "scale=" << opt.scale << ", seed=" << opt.seed << "\n\n";

    const std::vector<std::string> training = {"mobilenet_v2", "resnet",
                                               "srgan", "vgg"};
    // --surrogate/--surrogate-keep screen the training co-searches;
    // the fixed-hardware validation runs below stay exact so the
    // generalization comparison itself is never approximated.
    surrogate::SurrogateContext surrogate_ctx;
    opt.applySurrogate(surrogate_ctx);
    if (surrogate_ctx.options.enabled)
        std::cout << "surrogate screening: keep="
                  << surrogate_ctx.options.keep << "\n\n";
    const auto train_env = makeBenchEnv(opt, training,
                                        accel::Scenario::Edge, 3,
                                        nullptr, &surrogate_ctx);

    auto unico_cfg = benchDriverConfig(core::DriverConfig::unico(), opt);
    core::CoOptimizer unico_driver(*train_env, unico_cfg);
    const auto unico_result = unico_driver.run();

    auto hasco_cfg =
        benchDriverConfig(core::DriverConfig::hascoLike(), opt);
    core::CoOptimizer hasco_driver(*train_env, hasco_cfg);
    const auto hasco_result = hasco_driver.run();

    if (unico_result.front.empty() || hasco_result.front.empty()) {
        std::cout << "empty front(s); increase --scale\n";
        return 0;
    }
    // Pick each method's representative under a *shared*
    // normalization (union bounds over both methods' fully-searched
    // fronts) so the selection criterion treats both identically.
    std::vector<moo::Objectives> shippable;
    for (const auto *res : {&unico_result, &hasco_result}) {
        for (const auto &entry : res->front.entries())
            if (res->records[entry.id].fullySearched)
                shippable.push_back(entry.objectives);
    }
    const auto ideal = moo::idealPoint(shippable);
    const auto nadir = moo::nadirPoint(shippable);
    auto pick = [&](const core::CoSearchResult &res) -> std::size_t {
        double best_dist = std::numeric_limits<double>::infinity();
        std::size_t best = res.minDistanceRecord();
        for (const auto &entry : res.front.entries()) {
            if (!res.records[entry.id].fullySearched)
                continue;
            const auto norm =
                moo::normalizeObjectives(entry.objectives, ideal, nadir);
            double acc = 0.0;
            for (double v : norm)
                acc += v * v;
            if (acc < best_dist) {
                best_dist = acc;
                best = static_cast<std::size_t>(entry.id);
            }
        }
        return best;
    };
    const auto &unico_hw = unico_result.records[pick(unico_result)].hw;
    const auto &hasco_hw = hasco_result.records[pick(hasco_result)].hw;
    std::cout << "UNICO hardware: " << train_env->describeHw(unico_hw)
              << "\nHASCO hardware: " << train_env->describeHw(hasco_hw)
              << "\n\n";

    const std::vector<std::string> validation = {
        "unet",          "vit",
        "xception",      "mobilenet_v3_large",
        "mobilenet_v3_small", "nasnet_mobile",
        "efficientnet_v2",    "convnext",
    };
    // Budget-limited validation (the deployment reality the R metric
    // targets: a new workload gets a quick mapping search, not an
    // exhaustive one), averaged over mapping-search seeds.
    const int budget = opt.scaled(60, 24);
    const int val_seeds = 3;

    common::TableWriter table({"network", "UNICO dist", "HASCO dist",
                               "gain (HASCO/UNICO)"});
    double gain_acc = 0.0;
    int gain_count = 0;
    for (const auto &net : validation) {
        const auto val_env =
            makeBenchEnv(opt, {net}, accel::Scenario::Edge, 4);
        accel::Ppa ppa_u, ppa_h;
        ppa_u.feasible = ppa_h.feasible = true;
        for (int s = 0; s < val_seeds; ++s) {
            auto run_u =
                val_env->createRun(unico_hw, opt.seed + 17 + s * 53);
            run_u->step(budget);
            auto run_h =
                val_env->createRun(hasco_hw, opt.seed + 17 + s * 53);
            run_h->step(budget);
            const accel::Ppa pu = run_u->bestPpa();
            const accel::Ppa ph = run_h->bestPpa();
            ppa_u.feasible &= pu.feasible;
            ppa_h.feasible &= ph.feasible;
            ppa_u.latencyMs += pu.latencyMs / val_seeds;
            ppa_u.powerMw += pu.powerMw / val_seeds;
            ppa_u.areaMm2 += pu.areaMm2 / val_seeds;
            ppa_h.latencyMs += ph.latencyMs / val_seeds;
            ppa_h.powerMw += ph.powerMw / val_seeds;
            ppa_h.areaMm2 += ph.areaMm2 / val_seeds;
        }
        if (!ppa_u.feasible || !ppa_h.feasible) {
            table.addRow({net, ppa_u.feasible ? "ok" : "infeasible",
                          ppa_h.feasible ? "ok" : "infeasible", "-"});
            continue;
        }
        // Shared scale: the element-wise max of the two PPAs.
        accel::Ppa scale_ref;
        scale_ref.latencyMs = std::max(ppa_u.latencyMs, ppa_h.latencyMs);
        scale_ref.powerMw = std::max(ppa_u.powerMw, ppa_h.powerMw);
        scale_ref.areaMm2 = std::max(ppa_u.areaMm2, ppa_h.areaMm2);
        const double dist_u = ppaDistance(ppa_u, scale_ref);
        const double dist_h = ppaDistance(ppa_h, scale_ref);
        const double gain = dist_h / std::max(dist_u, 1e-12);
        gain_acc += gain;
        ++gain_count;
        table.addRow({net, common::TableWriter::num(dist_u, 4),
                      common::TableWriter::num(dist_h, 4),
                      common::TableWriter::num(gain, 3)});
    }

    emitTable(table, opt);
    if (gain_count > 0) {
        std::cout << "\naverage gain ratio: "
                  << common::TableWriter::num(gain_acc / gain_count, 3)
                  << " (paper reports UNICO improving HASCO's "
                     "min-distance by ~44% on average,\n i.e. a mean "
                     "gain ratio > 1)\n";
    }
    return 0;
}
