/**
 * @file
 * Micro-benchmarks (google-benchmark) for the building blocks whose
 * throughput determines co-search cost: the analytical PPA model,
 * the cycle-level simulator, GP fit/predict, hypervolume and the
 * mapping operators. These quantify the paper's premise that the
 * analytical engine is orders of magnitude cheaper than the
 * cycle-level one.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <string_view>
#include <vector>

#include "camodel/simulator.hh"
#include "common/rng.hh"
#include "common/shard_cache.hh"
#include "common/thread_pool.hh"
#include "core/backend.hh"
#include "core/driver.hh"
#include "costmodel/analytical.hh"
#include "moo/hypervolume.hh"
#include "surrogate/gp.hh"
#include "surrogate/learned_model.hh"
#include "workload/model_zoo.hh"

using namespace unico;

namespace {

workload::TensorOp
convOp()
{
    return workload::TensorOp::conv("c", 64, 32, 28, 28, 3, 3);
}

accel::SpatialHwConfig
spatialHw()
{
    accel::SpatialHwConfig hw;
    hw.peX = hw.peY = 8;
    hw.l1Bytes = 16 * 1024;
    hw.l2Bytes = 512 * 1024;
    hw.nocBandwidth = 128;
    return hw;
}

void
BM_AnalyticalEvaluate(benchmark::State &state)
{
    const costmodel::AnalyticalCostModel model;
    const auto op = convOp();
    const auto hw = spatialHw();
    const mapping::MappingSpace space(op);
    common::Rng rng(1);
    std::vector<mapping::Mapping> mappings;
    for (int i = 0; i < 64; ++i)
        mappings.push_back(space.random(rng));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(op, hw, mappings[i++ % mappings.size()]));
    }
}
BENCHMARK(BM_AnalyticalEvaluate);

void
BM_CycleLevelEvaluate(benchmark::State &state)
{
    const camodel::CycleAccurateModel model;
    const auto op = workload::TensorOp::gemm("g", 512, 512, 512);
    const auto hw = accel::CubeHwConfig::expertDefault();
    const camodel::CubeMappingSpace space(op);
    common::Rng rng(2);
    std::vector<camodel::CubeMapping> mappings;
    for (int i = 0; i < 16; ++i)
        mappings.push_back(space.random(rng));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(op, hw, mappings[i++ % mappings.size()]));
    }
}
BENCHMARK(BM_CycleLevelEvaluate);

void
BM_AnalyticalEvaluateCachedWarm(benchmark::State &state)
{
    const costmodel::AnalyticalCostModel model;
    const auto op = convOp();
    const auto hw = spatialHw();
    const mapping::MappingSpace space(op);
    common::Rng rng(1);
    std::vector<mapping::Mapping> mappings;
    for (int i = 0; i < 64; ++i)
        mappings.push_back(space.random(rng));
    accel::EvalCache cache(16 * 1024 * 1024);
    for (const auto &m : mappings)
        model.evaluateCached(op, hw, m, cache); // warm every entry
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evaluateCached(
            op, hw, mappings[i++ % mappings.size()], cache));
    }
}
BENCHMARK(BM_AnalyticalEvaluateCachedWarm);

void
BM_CycleLevelEvaluateCachedWarm(benchmark::State &state)
{
    const camodel::CycleAccurateModel model;
    const auto op = workload::TensorOp::gemm("g", 512, 512, 512);
    const auto hw = accel::CubeHwConfig::expertDefault();
    const camodel::CubeMappingSpace space(op);
    common::Rng rng(2);
    std::vector<camodel::CubeMapping> mappings;
    for (int i = 0; i < 16; ++i)
        mappings.push_back(space.random(rng));
    accel::EvalCache cache(16 * 1024 * 1024);
    double secs = 0.0;
    for (const auto &m : mappings)
        model.evaluateCached(op, hw, m, cache, &secs);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evaluateCached(
            op, hw, mappings[i++ % mappings.size()], cache, &secs));
    }
}
BENCHMARK(BM_CycleLevelEvaluateCachedWarm);

/**
 * Successive-halving-shaped workload over the cycle-level engine:
 * the same candidate set is re-evaluated round after round (the
 * co-search hot loop re-runs survivors with larger budgets, and
 * multi-seed sweeps repeat whole trials). Uncached vs cached
 * quantifies the warm-path speedup the evaluation cache buys where
 * it matters — on the expensive simulator queries.
 */
void
mshRounds(benchmark::State &state, accel::EvalCache *cache)
{
    const camodel::CycleAccurateModel model;
    const auto op = workload::TensorOp::gemm("g", 256, 256, 256);
    const auto hw = accel::CubeHwConfig::expertDefault();
    const camodel::CubeMappingSpace space(op);
    common::Rng rng(7);
    std::vector<camodel::CubeMapping> mappings;
    for (int i = 0; i < 16; ++i)
        mappings.push_back(space.random(rng));
    double secs = 0.0;
    for (auto _ : state) {
        double acc = 0.0;
        for (int round = 0; round < 4; ++round) {
            for (const auto &m : mappings) {
                const accel::Ppa ppa =
                    cache != nullptr
                        ? model.evaluateCached(op, hw, m, *cache, &secs)
                        : model.evaluate(op, hw, m);
                acc += ppa.latencyMs;
            }
        }
        benchmark::DoNotOptimize(acc);
    }
}

void
BM_MshRoundsUncached(benchmark::State &state)
{
    mshRounds(state, nullptr);
}
BENCHMARK(BM_MshRoundsUncached);

void
BM_MshRoundsCached(benchmark::State &state)
{
    accel::EvalCache cache(16 * 1024 * 1024);
    mshRounds(state, &cache);
}
BENCHMARK(BM_MshRoundsCached);

/**
 * Cold-evaluation kernels: one cache-miss query = cache-key
 * fingerprint + model evaluation, the exact work a mapping engine
 * pays for every previously unseen candidate. The unprepared
 * variants replicate the pre-overhaul kernel — re-hashing the query
 * context fingerprint and re-deriving operand masks / sqrt energy
 * constants per call, as evaluateCached() historically did, and for
 * the cube running the per-L0-tile inner pipeline (retained verbatim
 * as the traced path; trace cap 1 keeps recording cost negligible).
 * The prepared variants amortize the context through
 * PreparedSpatialQuery/PreparedCubeQuery and (cube) the hoisted
 * loop-invariant fast path — the production stack since the layer
 * policies build one context per layer-run. The ns_per_eval counter
 * carries both into BENCH_micro.json, where CI guards the ratio.
 */
void
BM_ColdEvalSpatial(benchmark::State &state)
{
    const costmodel::AnalyticalCostModel model;
    const auto op = convOp();
    const auto hw = spatialHw();
    const mapping::MappingSpace space(op);
    common::Rng rng(1);
    std::vector<mapping::Mapping> mappings;
    for (int i = 0; i < 64; ++i)
        mappings.push_back(space.random(rng));
    std::size_t i = 0;
    std::uint64_t keys = 0;
    double lat = 0.0;
    for (auto _ : state) {
        const auto &m = mappings[i];
        i = (i + 1) & (mappings.size() - 1); // size is a power of two
        keys += accel::evalCacheKey(model.queryFingerprint(op, hw),
                                    m.fingerprint())
                    .lo;
        lat += model.evaluate(op, hw, m).latencyMs;
    }
    benchmark::DoNotOptimize(keys);
    benchmark::DoNotOptimize(lat);
    // iterations * 1e-9 under kIsRate|kInvert reports elapsed
    // nanoseconds per evaluation.
    state.counters["ns_per_eval"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 1e-9,
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ColdEvalSpatial);

void
BM_ColdEvalSpatialPrepared(benchmark::State &state)
{
    const costmodel::AnalyticalCostModel model;
    const auto op = convOp();
    const auto hw = spatialHw();
    const mapping::MappingSpace space(op);
    common::Rng rng(1);
    std::vector<mapping::Mapping> mappings;
    for (int i = 0; i < 64; ++i)
        mappings.push_back(space.random(rng));
    const costmodel::PreparedSpatialQuery prep = model.prepare(op, hw);
    std::size_t i = 0;
    std::uint64_t keys = 0;
    double lat = 0.0;
    for (auto _ : state) {
        const auto &m = mappings[i];
        i = (i + 1) & (mappings.size() - 1); // size is a power of two
        keys += prep.cacheKey(m).lo;
        lat += model.evaluate(prep, m).latencyMs;
    }
    benchmark::DoNotOptimize(keys);
    benchmark::DoNotOptimize(lat);
    // iterations * 1e-9 under kIsRate|kInvert reports elapsed
    // nanoseconds per evaluation.
    state.counters["ns_per_eval"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 1e-9,
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ColdEvalSpatialPrepared);

void
BM_ColdEvalCube(benchmark::State &state)
{
    // Pre-overhaul reference: traceLimit = 1 selects the historical
    // per-L0-tile inner pipeline (kept verbatim for trace users and
    // bit-identity checks); the event cap makes recording free after
    // the first event, so this times the old kernel's add sequence.
    camodel::CubeTech tech;
    tech.traceLimit = 1;
    const camodel::CycleAccurateModel model(tech);
    const auto op = workload::TensorOp::gemm("g", 512, 512, 512);
    const auto hw = accel::CubeHwConfig::expertDefault();
    const camodel::CubeMappingSpace space(op);
    common::Rng rng(2);
    std::vector<camodel::CubeMapping> mappings;
    for (int i = 0; i < 16; ++i)
        mappings.push_back(space.random(rng));
    std::size_t i = 0;
    std::uint64_t keys = 0;
    double lat = 0.0;
    for (auto _ : state) {
        const auto &m = mappings[i];
        i = (i + 1) & (mappings.size() - 1); // size is a power of two
        keys += accel::evalCacheKey(model.queryFingerprint(op, hw),
                                    m.fingerprint())
                    .lo;
        lat += model.evaluate(op, hw, m).latencyMs;
    }
    benchmark::DoNotOptimize(keys);
    benchmark::DoNotOptimize(lat);
    // iterations * 1e-9 under kIsRate|kInvert reports elapsed
    // nanoseconds per evaluation.
    state.counters["ns_per_eval"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 1e-9,
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ColdEvalCube);

void
BM_ColdEvalCubePrepared(benchmark::State &state)
{
    const camodel::CycleAccurateModel model;
    const auto op = workload::TensorOp::gemm("g", 512, 512, 512);
    const auto hw = accel::CubeHwConfig::expertDefault();
    const camodel::CubeMappingSpace space(op);
    common::Rng rng(2);
    std::vector<camodel::CubeMapping> mappings;
    for (int i = 0; i < 16; ++i)
        mappings.push_back(space.random(rng));
    const camodel::PreparedCubeQuery prep = model.prepare(op, hw);
    std::size_t i = 0;
    std::uint64_t keys = 0;
    double lat = 0.0;
    for (auto _ : state) {
        const auto &m = mappings[i];
        i = (i + 1) & (mappings.size() - 1); // size is a power of two
        keys += prep.cacheKey(m).lo;
        lat += model.evaluate(prep, m).latencyMs;
    }
    benchmark::DoNotOptimize(keys);
    benchmark::DoNotOptimize(lat);
    // iterations * 1e-9 under kIsRate|kInvert reports elapsed
    // nanoseconds per evaluation.
    state.counters["ns_per_eval"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 1e-9,
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ColdEvalCubePrepared);

/**
 * Batched cold evaluation: a 16-candidate block through
 * evaluateBatch() on a persistent pool (arg = threads; 0 = serial),
 * under one prepared context. Reported per block; wall-clock scales
 * with the pool while results stay byte-identical. The cube model is
 * the case that matters: its per-candidate cost (~10 us) dwarfs the
 * pool's dispatch overhead, which is also why the spatial engines
 * only batch when blocks are large and a pool is explicitly given.
 */
void
BM_ColdEvalCubeBatch(benchmark::State &state)
{
    const camodel::CycleAccurateModel model;
    const auto op = workload::TensorOp::gemm("g", 512, 512, 512);
    const auto hw = accel::CubeHwConfig::expertDefault();
    const camodel::CubeMappingSpace space(op);
    common::Rng rng(2);
    std::vector<camodel::CubeMapping> mappings;
    for (int i = 0; i < 16; ++i)
        mappings.push_back(space.random(rng));
    const camodel::PreparedCubeQuery prep = model.prepare(op, hw);
    const auto threads = static_cast<std::size_t>(state.range(0));
    common::ThreadPool pool(threads == 0 ? 1 : threads);
    common::ThreadPool *p = threads == 0 ? nullptr : &pool;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.evaluateBatch(prep, mappings, p));
}
BENCHMARK(BM_ColdEvalCubeBatch)->Arg(0)->Arg(4);

void
BM_MappingMutate(benchmark::State &state)
{
    const mapping::MappingSpace space(convOp());
    common::Rng rng(3);
    mapping::Mapping m = space.random(rng);
    for (auto _ : state) {
        m = space.mutate(m, rng);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_MappingMutate);

void
BM_GpFit(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    common::Rng rng(4);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (std::size_t i = 0; i < n; ++i) {
        x.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        y.push_back(rng.gaussian());
    }
    for (auto _ : state) {
        surrogate::GaussianProcess gp;
        gp.fit(x, y);
        benchmark::DoNotOptimize(gp.trained());
    }
}
BENCHMARK(BM_GpFit)->Arg(32)->Arg(128)->Arg(256);

void
BM_GpPredict(benchmark::State &state)
{
    common::Rng rng(5);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 128; ++i) {
        x.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        y.push_back(rng.gaussian());
    }
    surrogate::GaussianProcess gp;
    gp.fit(x, y);
    const std::vector<double> q = {0.3, 0.5, 0.7};
    for (auto _ : state)
        benchmark::DoNotOptimize(gp.predict(q));
}
BENCHMARK(BM_GpPredict);

void
BM_Hypervolume3d(benchmark::State &state)
{
    common::Rng rng(6);
    std::vector<moo::Objectives> pts;
    for (int i = 0; i < state.range(0); ++i)
        pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    const moo::Objectives ref = {1.1, 1.1, 1.1};
    for (auto _ : state)
        benchmark::DoNotOptimize(moo::hypervolume(pts, ref));
}
BENCHMARK(BM_Hypervolume3d)->Arg(8)->Arg(32);

void
BM_ModelZooBuild(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(workload::makeResNet().totalMacs());
    }
}
BENCHMARK(BM_ModelZooBuild);

/**
 * End-to-end spatial co-search on the Fig. 9 training workload,
 * exact-only vs surrogate-screened (keep = 0.25). Counters carry the
 * acceptance metrics into BENCH_micro.json: cold exact evaluations
 * (= evaluation-cache insertions — every unique mapping that reached
 * the exact model), screening decision totals, and the final
 * constrained front's hypervolume in fixed log10 coordinates. The
 * fixed log-domain reference makes the hypervolume comparable across
 * the two registrations without shared min-max bounds.
 */
void
surrogateCoSearch(benchmark::State &state, bool screened)
{
    double cold_evals = 0.0;
    double hv = 0.0;
    surrogate::SurrogateStats sstats;
    for (auto _ : state) {
        std::vector<workload::Network> nets;
        for (const char *name :
             {"mobilenet_v2", "resnet", "srgan", "vgg"})
            nets.push_back(workload::makeNetwork(name));
        accel::EvalCache cache(64 * 1024 * 1024);
        common::CorpusTap tap;
        surrogate::SurrogateContext ctx;
        ctx.options.enabled = screened;
        ctx.options.keep = 0.25;
        ctx.tap = &tap;
        core::BackendOptions env_opt;
        env_opt.scenario = accel::Scenario::Edge;
        env_opt.maxShapesPerNetwork = 2;
        env_opt.cache = &cache;
        env_opt.surrogate = &ctx;
        auto env =
            core::makeBackendEnv("spatial", std::move(nets), env_opt);
        core::DriverConfig cfg = core::DriverConfig::unico();
        cfg.batchSize = 6;
        cfg.maxIter = 3;
        cfg.sh.bMax = 240;
        cfg.minBudgetPerRound = 8;
        cfg.workers = 1;
        cfg.seed = 9;
        core::CoOptimizer driver(*env, cfg);
        const core::CoSearchResult result = driver.run();
        cold_evals = static_cast<double>(cache.stats().insertions);
        sstats = result.surrogateStats;
        std::vector<moo::Objectives> pts;
        pts.reserve(result.front.size());
        std::size_t dims = 3;
        for (const auto &entry : result.front.entries()) {
            moo::Objectives z;
            z.reserve(entry.objectives.size());
            for (double v : entry.objectives)
                z.push_back(std::log10(1.0 + std::max(v, 0.0)));
            dims = z.size();
            pts.push_back(std::move(z));
        }
        hv = moo::hypervolume(pts, moo::Objectives(dims, 9.0));
    }
    state.counters["cold_exact_evals"] = cold_evals;
    state.counters["screen_candidates"] =
        static_cast<double>(sstats.candidates);
    state.counters["screened_out"] =
        static_cast<double>(sstats.screenedOut);
    state.counters["admitted"] = static_cast<double>(sstats.admitted);
    state.counters["forced_admits"] =
        static_cast<double>(sstats.forcedAdmits);
    state.counters["surrogate_refits"] =
        static_cast<double>(sstats.refits);
    state.counters["hypervolume_log10"] = hv;
}

void
BM_CoSearchExactOnly(benchmark::State &state)
{
    surrogateCoSearch(state, false);
}
BENCHMARK(BM_CoSearchExactOnly)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void
BM_CoSearchSurrogateScreened(benchmark::State &state)
{
    surrogateCoSearch(state, true);
}
BENCHMARK(BM_CoSearchSurrogateScreened)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

/**
 * Like BENCHMARK_MAIN(), but additionally writes the machine-readable
 * BENCH_micro.json (google-benchmark JSON schema) into the working
 * directory unless the caller passed an explicit --benchmark_out;
 * CI runs the micro subset and uploads that file as an artifact.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0)
            has_out = true;
    static char out_flag[] = "--benchmark_out=BENCH_micro.json";
    static char fmt_flag[] = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag);
        args.push_back(fmt_flag);
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
