/**
 * @file
 * Micro-benchmarks (google-benchmark) for the building blocks whose
 * throughput determines co-search cost: the analytical PPA model,
 * the cycle-level simulator, GP fit/predict, hypervolume and the
 * mapping operators. These quantify the paper's premise that the
 * analytical engine is orders of magnitude cheaper than the
 * cycle-level one.
 */

#include <benchmark/benchmark.h>

#include "camodel/simulator.hh"
#include "common/rng.hh"
#include "costmodel/analytical.hh"
#include "moo/hypervolume.hh"
#include "surrogate/gp.hh"
#include "workload/model_zoo.hh"

using namespace unico;

namespace {

workload::TensorOp
convOp()
{
    return workload::TensorOp::conv("c", 64, 32, 28, 28, 3, 3);
}

accel::SpatialHwConfig
spatialHw()
{
    accel::SpatialHwConfig hw;
    hw.peX = hw.peY = 8;
    hw.l1Bytes = 16 * 1024;
    hw.l2Bytes = 512 * 1024;
    hw.nocBandwidth = 128;
    return hw;
}

void
BM_AnalyticalEvaluate(benchmark::State &state)
{
    const costmodel::AnalyticalCostModel model;
    const auto op = convOp();
    const auto hw = spatialHw();
    const mapping::MappingSpace space(op);
    common::Rng rng(1);
    std::vector<mapping::Mapping> mappings;
    for (int i = 0; i < 64; ++i)
        mappings.push_back(space.random(rng));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(op, hw, mappings[i++ % mappings.size()]));
    }
}
BENCHMARK(BM_AnalyticalEvaluate);

void
BM_CycleLevelEvaluate(benchmark::State &state)
{
    const camodel::CycleAccurateModel model;
    const auto op = workload::TensorOp::gemm("g", 512, 512, 512);
    const auto hw = accel::CubeHwConfig::expertDefault();
    const camodel::CubeMappingSpace space(op);
    common::Rng rng(2);
    std::vector<camodel::CubeMapping> mappings;
    for (int i = 0; i < 16; ++i)
        mappings.push_back(space.random(rng));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(op, hw, mappings[i++ % mappings.size()]));
    }
}
BENCHMARK(BM_CycleLevelEvaluate);

void
BM_MappingMutate(benchmark::State &state)
{
    const mapping::MappingSpace space(convOp());
    common::Rng rng(3);
    mapping::Mapping m = space.random(rng);
    for (auto _ : state) {
        m = space.mutate(m, rng);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_MappingMutate);

void
BM_GpFit(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    common::Rng rng(4);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (std::size_t i = 0; i < n; ++i) {
        x.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        y.push_back(rng.gaussian());
    }
    for (auto _ : state) {
        surrogate::GaussianProcess gp;
        gp.fit(x, y);
        benchmark::DoNotOptimize(gp.trained());
    }
}
BENCHMARK(BM_GpFit)->Arg(32)->Arg(128)->Arg(256);

void
BM_GpPredict(benchmark::State &state)
{
    common::Rng rng(5);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 128; ++i) {
        x.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        y.push_back(rng.gaussian());
    }
    surrogate::GaussianProcess gp;
    gp.fit(x, y);
    const std::vector<double> q = {0.3, 0.5, 0.7};
    for (auto _ : state)
        benchmark::DoNotOptimize(gp.predict(q));
}
BENCHMARK(BM_GpPredict);

void
BM_Hypervolume3d(benchmark::State &state)
{
    common::Rng rng(6);
    std::vector<moo::Objectives> pts;
    for (int i = 0; i < state.range(0); ++i)
        pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    const moo::Objectives ref = {1.1, 1.1, 1.1};
    for (auto _ : state)
        benchmark::DoNotOptimize(moo::hypervolume(pts, ref));
}
BENCHMARK(BM_Hypervolume3d)->Arg(8)->Arg(32);

void
BM_ModelZooBuild(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(workload::makeResNet().totalMacs());
    }
}
BENCHMARK(BM_ModelZooBuild);

} // namespace

BENCHMARK_MAIN();
