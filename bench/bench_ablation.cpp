/**
 * @file
 * Ablations of UNICO's design choices beyond Fig. 10 (the items
 * called out in DESIGN.md §6):
 *
 *  (a) the MSH AUC-promotion quota p (p = 0 degenerates to SH;
 *      the paper fixes p = 0.15 N),
 *  (b) the sub-optimal quantile alpha of the robustness metric, and
 *  (c) the HW batch size N at a fixed evaluation budget.
 *
 * Each sweep reports final normalized hypervolume, cost and the
 * min-distance design's latency.
 */

#include "bench_common.hh"

using namespace unico;
using namespace unico::bench;

namespace {

double
finalHv(const core::CoSearchResult &result, const moo::Objectives &ideal,
        const moo::Objectives &nadir)
{
    if (result.trace.empty())
        return 0.0;
    std::vector<moo::Objectives> pts;
    for (const auto &y : result.trace.back().front)
        pts.push_back(moo::normalizeObjectives(y, ideal, nadir));
    return moo::hypervolume(pts, moo::Objectives(ideal.size(), 1.1));
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliArgs args(argc, argv);
    const BenchOptions opt = BenchOptions::parse(args);
    const int seeds = static_cast<int>(args.getInt("seeds", 2));

    std::cout << "UNICO design-choice ablations (DESIGN.md §6), scale="
              << opt.scale << ", seeds averaged=" << seeds << "\n\n";

    const auto env =
        makeBenchEnv(opt, {"mobilenet", "resnet"}, accel::Scenario::Edge, 3);

    auto run_with = [&](auto mutate_cfg) {
        std::vector<core::CoSearchResult> results;
        for (int s = 0; s < seeds; ++s) {
            BenchOptions so = opt;
            so.seed = opt.seed + static_cast<std::uint64_t>(s) * 7919;
            auto cfg = benchDriverConfig(core::DriverConfig::unico(), so);
            mutate_cfg(cfg);
            core::CoOptimizer driver(*env, cfg);
            results.push_back(driver.run());
        }
        return results;
    };

    // ---- (a) AUC promotion quota p -----------------------------------
    {
        common::TableWriter table({"pFrac", "final hv", "cost(h)",
                                   "min-dist L(ms)"});
        std::vector<std::vector<core::CoSearchResult>> all;
        const double p_values[] = {0.0, 0.15, 0.3, 0.45};
        for (double p : p_values)
            all.push_back(
                run_with([p](core::DriverConfig &cfg) {
                    cfg.sh.pFrac = p;
                }));

        moo::Objectives ideal, nadir;
        std::vector<const core::CoSearchResult *> ptrs;
        for (const auto &group : all)
            for (const auto &r : group)
                ptrs.push_back(&r);
        unionBounds(ptrs, ideal, nadir);

        for (std::size_t i = 0; i < all.size(); ++i) {
            double hv = 0.0, hours = 0.0, lat = 0.0;
            int lat_n = 0;
            for (const auto &r : all[i]) {
                hv += finalHv(r, ideal, nadir);
                hours += r.totalHours;
                if (!r.front.empty()) {
                    lat += r.records[r.minDistanceRecord()]
                               .ppa.latencyMs;
                    ++lat_n;
                }
            }
            const double n = static_cast<double>(all[i].size());
            table.addRow({common::TableWriter::num(p_values[i], 2),
                          common::TableWriter::num(hv / n, 4),
                          common::TableWriter::num(hours / n, 2),
                          lat_n ? common::TableWriter::num(lat / lat_n)
                                : "-"});
        }
        std::cout << "(a) MSH AUC-promotion quota p (p=0 is default "
                     "SH; paper uses 0.15):\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    // ---- (b) robustness quantile alpha ---------------------------------
    {
        common::TableWriter table(
            {"alpha", "mean R (feasible)", "final hv"});
        const double alphas[] = {0.01, 0.05, 0.15, 0.30};
        std::vector<std::vector<core::CoSearchResult>> all;
        for (double a : alphas)
            all.push_back(run_with(
                [a](core::DriverConfig &cfg) { cfg.alpha = a; }));

        moo::Objectives ideal, nadir;
        std::vector<const core::CoSearchResult *> ptrs;
        for (const auto &group : all)
            for (const auto &r : group)
                ptrs.push_back(&r);
        unionBounds(ptrs, ideal, nadir);

        for (std::size_t i = 0; i < all.size(); ++i) {
            double r_acc = 0.0, hv = 0.0;
            std::size_t r_n = 0;
            for (const auto &res : all[i]) {
                hv += finalHv(res, ideal, nadir);
                for (const auto &rec : res.records) {
                    if (rec.ppa.feasible) {
                        r_acc += rec.sensitivity;
                        ++r_n;
                    }
                }
            }
            table.addRow(
                {common::TableWriter::num(alphas[i], 2),
                 r_n ? common::TableWriter::num(
                           r_acc / static_cast<double>(r_n), 3)
                     : "-",
                 common::TableWriter::num(
                     hv / static_cast<double>(all[i].size()), 4)});
        }
        std::cout << "(b) sub-optimal quantile alpha of R (paper: "
                     "0.05 -> the 95% right-tail point). Smaller alpha\n"
                     "    reaches deeper into the tail and reports "
                     "larger R:\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    // ---- (c) batch size at fixed sample budget ------------------------
    {
        common::TableWriter table(
            {"batch N", "trials", "final hv", "cost(h)"});
        const int total_samples = opt.scaled(240, 48);
        const int batches[] = {6, 12, 24, 48};
        std::vector<std::vector<core::CoSearchResult>> all;
        for (int n : batches) {
            const int iters = std::max(total_samples / n, 1);
            all.push_back(run_with([n, iters](core::DriverConfig &cfg) {
                cfg.batchSize = n;
                cfg.maxIter = iters;
            }));
        }
        moo::Objectives ideal, nadir;
        std::vector<const core::CoSearchResult *> ptrs;
        for (const auto &group : all)
            for (const auto &r : group)
                ptrs.push_back(&r);
        unionBounds(ptrs, ideal, nadir);

        for (std::size_t i = 0; i < all.size(); ++i) {
            double hv = 0.0, hours = 0.0;
            for (const auto &r : all[i]) {
                hv += finalHv(r, ideal, nadir);
                hours += r.totalHours;
            }
            const double n = static_cast<double>(all[i].size());
            table.addRow(
                {common::TableWriter::num(
                     static_cast<long long>(batches[i])),
                 common::TableWriter::num(static_cast<long long>(
                     std::max(total_samples / batches[i], 1))),
                 common::TableWriter::num(hv / n, 4),
                 common::TableWriter::num(hours / n, 2)});
        }
        std::cout << "(c) HW batch size N at a fixed total sample "
                     "budget (wider batches parallelize better but\n"
                     "    refresh the surrogate less often):\n";
        table.print(std::cout);
    }
    return 0;
}
