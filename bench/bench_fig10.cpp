/**
 * @file
 * Reproduces Fig. 10: feature-contribution ablation.
 *
 * Four variants on the multi-DNN workload {UNet, SRGAN, BERT, ViT}:
 *   HASCO               (full budget + champion update)
 *   SH  + ChampionUpdate
 *   MSH + ChampionUpdate
 *   UNICO               (MSH + HighFidelityUpdate + R)
 * reporting hypervolume (higher is better) against search cost.
 */

#include "bench_common.hh"

using namespace unico;
using namespace unico::bench;

namespace {

/** Hypervolume (not difference) series under shared normalization. */
std::vector<std::pair<double, double>>
hvSeries(const std::vector<core::TracePoint> &trace,
         const moo::Objectives &ideal, const moo::Objectives &nadir)
{
    std::vector<std::pair<double, double>> out;
    const moo::Objectives ref(ideal.size(), 1.1);
    for (const auto &tp : trace) {
        std::vector<moo::Objectives> pts;
        for (const auto &y : tp.front)
            pts.push_back(moo::normalizeObjectives(y, ideal, nadir));
        out.emplace_back(tp.hours, moo::hypervolume(pts, ref));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::CliArgs args(argc, argv);
    const BenchOptions opt = BenchOptions::parse(args);

    std::cout << "Fig. 10: ablation of MSH and the high-fidelity "
                 "update, scale=" << opt.scale << ", seed=" << opt.seed
              << "\n\n";

    const auto env = makeBenchEnv(
        opt, {"unet", "srgan", "bert", "vit"}, accel::Scenario::Edge, 3);

    struct Variant
    {
        std::string name;
        core::DriverConfig cfg;
        core::CoSearchResult result;
    };
    std::vector<Variant> variants;
    variants.push_back({"HASCO",
                        benchDriverConfig(core::DriverConfig::hascoLike(),
                                          opt),
                        {}});
    variants.push_back(
        {"SH+ChampionUpdate",
         benchDriverConfig(core::DriverConfig::shChampion(), opt),
         {}});
    variants.push_back(
        {"MSH+ChampionUpdate",
         benchDriverConfig(core::DriverConfig::mshChampion(), opt),
         {}});
    variants.push_back(
        {"UNICO",
         benchDriverConfig(core::DriverConfig::unico(), opt),
         {}});

    for (auto &variant : variants) {
        core::CoOptimizer driver(*env, variant.cfg);
        variant.result = driver.run();
    }

    moo::Objectives ideal, nadir;
    std::vector<const core::CoSearchResult *> ptrs;
    for (const auto &v : variants)
        ptrs.push_back(&v.result);
    unionBounds(ptrs, ideal, nadir);

    common::TableWriter series_table(
        {"variant", "hours", "hypervolume"});
    common::TableWriter final_table(
        {"variant", "final hv", "cost(h)", "evals", "vs HASCO"});

    double hasco_final = 0.0;
    for (auto &variant : variants) {
        const auto series =
            hvSeries(variant.result.trace, ideal, nadir);
        for (const auto &[hours, hv] : series) {
            series_table.addRow({variant.name,
                                 common::TableWriter::num(hours, 2),
                                 common::TableWriter::num(hv, 4)});
        }
        const double final_hv = series.empty() ? 0.0 : series.back().second;
        if (variant.name == "HASCO")
            hasco_final = final_hv;
        const double rel =
            hasco_final > 0.0
                ? (final_hv - hasco_final) / hasco_final * 100.0
                : 0.0;
        final_table.addRow(
            {variant.name, common::TableWriter::num(final_hv, 4),
             common::TableWriter::num(variant.result.totalHours, 2),
             common::TableWriter::num(
                 static_cast<long long>(variant.result.evaluations)),
             common::TableWriter::num(rel, 1) + "%"});
    }

    std::cout << "hypervolume vs cost series:\n";
    series_table.print(std::cout);
    std::cout << "\nfinal comparison:\n";
    emitTable(final_table, opt);

    std::cout << "\nExpected shape (paper Fig. 10): "
                 "SH+ChampionUpdate prunes too aggressively and can "
                 "fall below HASCO;\nMSH+ChampionUpdate improves on "
                 "HASCO (~14% in the paper); full UNICO improves "
                 "most (~28%).\n";
    return 0;
}
