/**
 * @file
 * Reproduces the method illustration of Fig. 5: the analytical
 * penalty F(theta) and the behaviour of the robustness metric
 * R = Delta * (1 + F(theta)) across latency/power displacement
 * scenarios.
 */

#include <cmath>
#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/robustness.hh"

using namespace unico;

int
main(int argc, char **argv)
{
    const common::CliArgs args(argc, argv);
    (void)args;

    std::cout << "Fig. 5c: the analytical angle penalty F(theta)\n\n";
    common::TableWriter ftable({"theta/pi", "F(theta)", "1 + F(theta)"});
    for (int i = 0; i <= 16; ++i) {
        const double theta = M_PI * i / 16.0;
        ftable.addRow({common::TableWriter::num(theta / M_PI, 3),
                       common::TableWriter::num(core::fTheta(theta), 3),
                       common::TableWriter::num(
                           1.0 + core::fTheta(theta), 3)});
    }
    ftable.print(std::cout);
    std::cout << "anchors: F(0)=1 (power drops with latency, mild), "
                 "F(pi/2)=0, F(pi)=2 (power rises, penalized)\n\n";

    std::cout << "Fig. 5a/b: R for hypothetical optimal/sub-optimal "
                 "mapping pairs\n\n";
    struct Scenario
    {
        const char *label;
        double latOpt, powOpt, latSub, powSub;
    };
    const Scenario scenarios[] = {
        {"identical mappings", 1.0, 100.0, 1.0, 100.0},
        {"small drift, power falls", 1.0, 100.0, 1.05, 103.0},
        {"small drift, power rises", 1.0, 103.0, 1.05, 100.0},
        {"large drift, power falls", 1.0, 100.0, 1.5, 140.0},
        {"large drift, power rises", 1.0, 140.0, 1.5, 100.0},
    };
    common::TableWriter rtable({"scenario", "theta/pi", "Delta", "R"});
    for (const auto &sc : scenarios) {
        const double dl = (sc.latSub - sc.latOpt) / sc.latOpt;
        const double dp = (sc.powSub - sc.powOpt) / sc.powOpt;
        const double delta = std::sqrt(dl * dl + dp * dp);
        const double theta = core::displacementAngle(
            sc.latOpt / sc.latOpt, sc.powOpt / sc.powOpt,
            sc.latSub / sc.latOpt, sc.powSub / sc.powOpt);
        const double r =
            delta > 0.0 ? delta * (1.0 + core::fTheta(theta)) : 0.0;
        rtable.addRow({sc.label,
                       common::TableWriter::num(theta / M_PI, 3),
                       common::TableWriter::num(delta, 4),
                       common::TableWriter::num(r, 4)});
    }
    rtable.print(std::cout);
    std::cout << "\nExpected shape (paper Fig. 5): R = 0 for identical "
                 "mappings; for equal drift Delta,\nthe power-rising "
                 "direction (theta > pi/2) yields a larger R than the "
                 "power-falling one.\n";
    return 0;
}
